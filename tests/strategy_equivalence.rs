//! End-to-end equivalence of the three counting strategies through all
//! three algorithms, on a fixture whose maximal pattern is long enough to
//! force passes ≥ 4 — the regime where the vertical strategy's pass-to-pass
//! occurrence-list cache is actually exercised (pass 2 goes through the
//! shared pair-counting fast path in every strategy, so short fixtures
//! never reach the join kernel).

use seqpat::{Algorithm, CountingStrategy, Database, MinSupport, Miner, MinerConfig, Parallelism};

/// Five customers share the 5-step sequence ⟨(1)(2)(3)(4)(5)⟩; two more
/// carry prefixes/noise so intermediate passes have candidates to prune.
fn long_pattern_db() -> Database {
    let mut rows = Vec::new();
    for customer in 1..=5u64 {
        for (t, item) in [1u32, 2, 3, 4, 5].into_iter().enumerate() {
            rows.push((customer, t as i64, vec![item]));
        }
    }
    rows.extend([
        (6, 1, vec![1]),
        (6, 2, vec![2]),
        (6, 3, vec![3]),
        (7, 1, vec![2]),
        (7, 2, vec![5]),
        (7, 3, vec![6]),
    ]);
    Database::from_rows(rows)
}

fn render(patterns: &[seqpat::Pattern]) -> Vec<String> {
    patterns
        .iter()
        .map(|p| format!("{}:{}", p, p.support))
        .collect()
}

const ALGORITHMS: [Algorithm; 3] = [
    Algorithm::AprioriAll,
    Algorithm::AprioriSome,
    Algorithm::DynamicSome { step: 2 },
];

const STRATEGIES: [CountingStrategy; 3] = [
    CountingStrategy::Direct,
    CountingStrategy::HashTree,
    CountingStrategy::Vertical,
];

#[test]
fn long_patterns_agree_across_strategies_and_threads() {
    let db = long_pattern_db();
    for algorithm in ALGORITHMS {
        let mut baseline: Option<Vec<String>> = None;
        for strategy in STRATEGIES {
            let mut join_ops: Option<u64> = None;
            for threads in [1usize, 2, 4] {
                let config = MinerConfig::new(MinSupport::Count(5))
                    .algorithm(algorithm)
                    .counting(strategy)
                    .parallelism(Parallelism::threads(threads));
                let result = Miner::new(config).mine(&db);
                let rendered = render(&result.patterns);
                // The fixture's answer: the full 5-step sequence is maximal.
                assert!(
                    rendered.contains(&"<(1)(2)(3)(4)(5)>:5".to_string()),
                    "{algorithm} / {strategy} / {threads} threads found {rendered:?}"
                );
                let expected = baseline.get_or_insert_with(|| rendered.clone());
                assert_eq!(
                    &rendered, expected,
                    "{algorithm} / {strategy} / {threads} threads"
                );
                // Join counts are thread-invariant; only the vertical
                // strategy performs any.
                let expected_joins = *join_ops.get_or_insert(result.stats.join_ops);
                assert_eq!(
                    result.stats.join_ops, expected_joins,
                    "{algorithm} / {strategy}: joins changed with {threads} threads"
                );
                if strategy == CountingStrategy::Vertical {
                    assert!(
                        result.stats.join_ops > 0,
                        "{algorithm}: vertical never reached the join kernel"
                    );
                    assert!(result.stats.vertical_peak_bytes > 0);
                } else {
                    assert_eq!(result.stats.join_ops, 0);
                    assert_eq!(result.stats.vertical_peak_bytes, 0);
                }
            }
        }
    }
}

#[test]
fn cache_cap_zero_still_gives_identical_answers() {
    // Disabling occurrence-list retention forces every pass to fold its
    // candidates from the base index — more joins, same supports.
    let db = long_pattern_db();
    let cached =
        Miner::new(MinerConfig::new(MinSupport::Count(5)).counting(CountingStrategy::Vertical))
            .mine(&db);
    let mut config = MinerConfig::new(MinSupport::Count(5)).counting(CountingStrategy::Vertical);
    config.vertical.cache_cap_bytes = 0;
    let uncached = Miner::new(config).mine(&db);
    assert_eq!(render(&cached.patterns), render(&uncached.patterns));
    assert!(
        uncached.stats.join_ops > cached.stats.join_ops,
        "folding from scratch must cost extra joins (cached {}, uncached {})",
        cached.stats.join_ops,
        uncached.stats.join_ops
    );
}
