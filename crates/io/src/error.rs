//! Error type for dataset parsing.

use std::fmt;

/// Errors produced by the readers in this crate.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed content, with line number (1-based) and description.
    Parse {
        /// Line where the problem was found.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl IoError {
    pub(crate) fn parse(line: usize, message: impl Into<String>) -> Self {
        IoError::Parse {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = IoError::parse(3, "bad token");
        assert_eq!(e.to_string(), "parse error at line 3: bad token");
        let io = IoError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.to_string().contains("gone"));
    }

    #[test]
    fn source_chain() {
        use std::error::Error;
        let io = IoError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.source().is_some());
        assert!(IoError::parse(1, "x").source().is_none());
    }
}
