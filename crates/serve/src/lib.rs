//! # seqpat-serve — serving mined sequential patterns.
//!
//! Mining (the `seqpat-core` pipeline) answers "*which* sequences are
//! frequent"; this crate answers the paper's motivating follow-up at query
//! time: *customers who bought ⟨X Y⟩ next buy …?* The mined maximal
//! patterns are compiled once into a compact flattened prefix trie over
//! litemset ids, and [`PatternTrie::predict_into`] resolves a prefix to the
//! top-k next litemsets with **zero allocations** on the hot path.
//!
//! ## Layout
//!
//! * [`trie`] — the index itself: a preorder node array plus a CSR children
//!   table (the same flattening shape as core's `FlatNode` hash tree), with
//!   a per-node support-ranked child permutation so top-k is a bounded scan.
//! * [`lookup`] — the query hot path: hybrid linear/binary child probe
//!   (the `contain.rs` idiom) and the caller-owned-scratch `predict_into`.
//! * [`mod@format`] — the on-disk form `SEQPATS1`: validated header + sections,
//!   positioned-read loading, mirroring the `SEQPATC1` colstore discipline.
//! * [`oracle`] — a naive linear-scan-over-patterns reference answerer;
//!   tests and the CI smoke diff the trie against it.
//! * [`stats`] — the concurrent read-mostly query loop (`Arc`-shared
//!   immutable index, chunked worker fan-out) with latency percentiles.
//!
//! ## Quick start
//!
//! ```
//! use seqpat_core::{Itemset, LargeIdSequence, LitemsetTable};
//! use seqpat_serve::{PatternTrie, Prediction};
//!
//! let table = LitemsetTable::new(vec![
//!     (Itemset::new(vec![30]), 4),
//!     (Itemset::new(vec![40, 70]), 2),
//!     (Itemset::new(vec![90]), 3),
//! ]);
//! let patterns = vec![
//!     LargeIdSequence { ids: vec![0, 1], support: 2 }, // <(30)(40 70)>
//!     LargeIdSequence { ids: vec![0, 2], support: 3 }, // <(30)(90)>
//! ];
//! let trie = PatternTrie::build(&patterns, table, 5).unwrap();
//! let mut out = [Prediction::default(); 8];
//! let n = trie.predict_into(&[0], &mut out); // after (30), what next?
//! assert_eq!(n, 2);
//! assert_eq!(out[0], Prediction { id: 2, support: 3 }); // (90), support 3
//! assert_eq!(out[1], Prediction { id: 1, support: 2 }); // (40 70)
//! ```

pub mod format;
pub mod lookup;
pub mod oracle;
pub mod stats;
pub mod trie;

pub use lookup::Prediction;
pub use oracle::oracle_predict;
pub use stats::{run_workload, LatencySummary, WorkloadOptions, WorkloadReport};
pub use trie::{PatternTrie, TrieBuildError};
