//! # seqpat — Mining Sequential Patterns (Agrawal & Srikant, ICDE 1995)
//!
//! Umbrella crate re-exporting the whole workspace under one roof. The
//! pieces:
//!
//! * [`core`] (`seqpat-core`) — the paper's contribution: the five-phase
//!   pipeline and the AprioriAll / AprioriSome / DynamicSome algorithms.
//! * [`itemset`] (`seqpat-itemset`) — the Apriori large-itemset substrate
//!   (candidate hash trees, customer-level support).
//! * [`datagen`] (`seqpat-datagen`) — the paper's synthetic
//!   customer-sequence generator.
//! * [`io`] (`seqpat-io`) — SPMF and CSV dataset formats, statistics.
//! * [`prefixspan`] (`seqpat-prefixspan`) — a PrefixSpan comparator
//!   (extension beyond the paper).
//! * [`gsp`] (`seqpat-gsp`) — the EDBT'96 successor algorithm with
//!   min-gap / max-gap / sliding-window time constraints (extension; the
//!   '95 paper's conclusion names these generalizations as future work).
//! * [`serve`] (`seqpat-serve`) — the pattern-serving layer: mined
//!   patterns compiled into a flattened prefix trie with zero-allocation
//!   top-k `predict` lookups and a validated on-disk form (`SEQPATS1`).
//!
//! The most common entry points are re-exported at the top level:
//!
//! ```
//! use seqpat::{Database, Miner, MinerConfig, MinSupport, Algorithm};
//!
//! let db = Database::from_rows(vec![
//!     (1, 1, vec![30]), (1, 2, vec![90]),
//!     (2, 1, vec![30]), (2, 2, vec![40, 70]), (2, 3, vec![90]),
//!     (3, 1, vec![30, 50, 70]),
//!     (4, 1, vec![30]), (4, 2, vec![40, 70]),
//!     (5, 1, vec![90]),
//! ]);
//! let result = Miner::new(
//!     MinerConfig::new(MinSupport::Fraction(0.4)).algorithm(Algorithm::AprioriSome),
//! )
//! .mine(&db);
//! for pattern in &result.patterns {
//!     println!("{pattern} supported by {} customers", pattern.support);
//! }
//! assert!(!result.patterns.is_empty());
//! ```

pub use seqpat_core as core;
pub use seqpat_datagen as datagen;
pub use seqpat_gsp as gsp;
pub use seqpat_io as io;
pub use seqpat_itemset as itemset;
pub use seqpat_prefixspan as prefixspan;
pub use seqpat_serve as serve;

pub use seqpat_core::{
    Algorithm, CandidateArena, CountingStrategy, Database, Item, Itemset, MinSupport, Miner,
    MinerConfig, MiningResult, Parallelism, Pattern, Sequence, VerticalParams,
};
pub use seqpat_datagen::{generate, GenParams};
