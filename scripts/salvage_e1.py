#!/usr/bin/env python3
"""Rebuilds results/e1_minsup_sweep.csv from a (possibly partial) console
log of exp_minsup_sweep — the binary only writes its CSV at the end, so an
interrupted long run would otherwise lose everything it printed."""
import re
import sys
from pathlib import Path

log_path = Path(sys.argv[1] if len(sys.argv) > 1 else "/tmp/e1_full.log")
out_path = Path("results/e1_minsup_sweep.csv")

dataset = None
rows = []
for line in log_path.read_text().splitlines():
    m = re.match(r"E1: (\S+) \(\|D\| = (\d+)\)", line.strip())
    if m:
        dataset = m.group(1)
        continue
    m = re.match(
        r"\s*([\d.]+)%\s+(\S+)\s+([\d.]+)\s+(\d+)\s+(\d+)\s+(\d+)\s*$", line
    )
    if m and dataset:
        minsup = float(m.group(1)) / 100.0
        rows.append(
            f"{dataset},{m.group(2)},{minsup},{float(m.group(3)):.6f},"
            f"{m.group(4)},{m.group(5)},{m.group(6)},,,"
        )

out_path.parent.mkdir(exist_ok=True)
out_path.write_text(
    "dataset,algorithm,minsup,seconds,patterns,candidates_generated,"
    "candidates_counted,containment_tests,large_sequences,litemsets\n"
    + "\n".join(rows)
    + "\n"
)
print(f"salvaged {len(rows)} rows -> {out_path}")
