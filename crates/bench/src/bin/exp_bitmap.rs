//! **E11 — the bitmap counting crossover study.**
//!
//! Sweeps *density* × *minimum support* and races the three index-aware
//! strategies (hash tree, vertical id-lists, SPAM-style bitmap) serially
//! in every cell. Density is steered through the item-universe size `N`
//! of the paper's generator: a small universe concentrates support on few
//! litemsets (dense bitmaps — the S-step kernel's regime), the paper's
//! 10 000-item universe spreads it long-tail thin (sparse — the id-list
//! joins' regime).
//!
//! Each cell records wall time, the exact-work counters (`ops` =
//! containment tests + joins + S-step words), per-strategy peak index
//! bytes, and what `CountingStrategy::Auto` chose for the cell and why.
//! The output, `results/e11_bitmap.json`, is the calibration source for
//! the `AUTO_*` thresholds in `seqpat_core::counting` — EXPERIMENTS.md
//! §E11 walks through the reading.
//!
//! Every cell asserts all strategies (and Auto) return the same pattern
//! count, so a disagreement aborts with a non-zero exit.

use seqpat_bench::harness::{measure_config, MiningMeasurement};
use seqpat_bench::table::fmt_secs;
use seqpat_bench::{Args, Table};
use seqpat_core::counting::{AUTO_BITMAP_CAP_BYTES, AUTO_DENSITY_CROSSOVER, AUTO_MIN_CUSTOMERS};
use seqpat_core::{CountingStrategy, MinSupport, Miner, MinerConfig, Parallelism};
use seqpat_datagen::{generate, GenParams};

/// The racers: one cell per explicit index strategy (direct is strictly
/// dominated by the hash tree on these sizes and would double runtime).
const RACERS: [CountingStrategy; 3] = [
    CountingStrategy::HashTree,
    CountingStrategy::Vertical,
    CountingStrategy::Bitmap,
];

/// Peak index footprint of a run, whichever index the strategy built.
fn peak_bytes(m: &MiningMeasurement) -> u64 {
    m.vertical_peak_bytes.max(m.bitmap_words * 8)
}

fn ops(m: &MiningMeasurement) -> u64 {
    m.containment_tests + m.join_ops + m.sstep_ops
}

fn main() {
    let args = Args::parse();
    // The shape with the paper's longest transactions — itemset candidates
    // survive transformation, so counting passes dominate.
    let shape = "C20-T2.5-S8-I1.25";
    // Density axis: item-universe sizes, dense → paper's long-tail sparse.
    // Each density level gets a minsup range that keeps the large-sequence
    // lattice comparable across levels: shrinking the universe multiplies
    // every item's support, so a fixed low minsup on a dense universe
    // explodes candidate generation rather than stressing counting.
    let cells_spec: &[(u32, &[f64])] = if args.quick {
        &[(100, &[0.15]), (10_000, &[0.01])]
    } else {
        &[
            (100, &[0.2, 0.15, 0.1]),
            (500, &[0.1, 0.05]),
            (2_000, &[0.02, 0.01]),
            (10_000, &[0.01, 0.0075, 0.005]),
        ]
    };

    println!(
        "E11: bitmap crossover on {shape} (|D| = {}, serial, N × minsup sweep)\n",
        args.customers
    );
    let mut table = Table::new(&[
        "N items",
        "minsup %",
        "density",
        "strategy",
        "time s",
        "ops",
        "peak index bytes",
        "patterns",
        "auto chose",
    ]);
    let mut cells = Vec::new();
    for &(num_items, grid) in cells_spec {
        let params = GenParams::paper_dataset(shape)
            .expect("paper dataset")
            .customers(args.customers)
            .items(num_items);
        let dataset = format!("{shape}-N{num_items}");
        let db = generate(&params, args.seed);
        for &minsup in grid {
            // The Auto run first: it records the density statistics the
            // selector saw and which kernel it routed the cell to.
            let auto = Miner::new(
                MinerConfig::new(MinSupport::Fraction(minsup))
                    .counting(CountingStrategy::Auto)
                    .parallelism(Parallelism::Serial),
            )
            .mine(&db);
            let decision = auto
                .stats
                .auto_decision
                .clone()
                .expect("auto run records its decision");

            let mut strategies = Vec::new();
            let mut measured: Vec<(CountingStrategy, MiningMeasurement)> = Vec::new();
            for strategy in RACERS {
                let m = measure_config(
                    &db,
                    &dataset,
                    minsup,
                    MinerConfig::new(MinSupport::Fraction(minsup))
                        .counting(strategy)
                        .parallelism(Parallelism::Serial),
                );
                assert_eq!(
                    m.patterns,
                    auto.patterns.len(),
                    "{strategy} disagrees with auto on {dataset} at minsup {minsup}"
                );
                table.row(vec![
                    num_items.to_string(),
                    format!("{:.2}", minsup * 100.0),
                    format!("{:.4}", decision.density),
                    strategy.to_string(),
                    fmt_secs(m.seconds),
                    ops(&m).to_string(),
                    peak_bytes(&m).to_string(),
                    m.patterns.to_string(),
                    decision.choice.to_string(),
                ]);
                strategies.push(format!(
                    "        {{\"strategy\": \"{strategy}\", \"seconds\": {:.6}, \
                     \"containment_tests\": {}, \"join_ops\": {}, \"sstep_ops\": {}, \
                     \"ops\": {}, \"index_seconds\": {:.6}, \"peak_index_bytes\": {}, \
                     \"patterns\": {}}}",
                    m.seconds,
                    m.containment_tests,
                    m.join_ops,
                    m.sstep_ops,
                    ops(&m),
                    m.vertical_index_seconds + m.bitmap_index_seconds,
                    peak_bytes(&m),
                    m.patterns
                ));
                measured.push((strategy, m));
            }
            let fastest = measured
                .iter()
                .min_by(|a, b| a.1.seconds.total_cmp(&b.1.seconds))
                .map(|(s, _)| *s)
                .expect("non-empty racers");
            let fewest_ops = measured
                .iter()
                .min_by_key(|(_, m)| ops(m))
                .map(|(s, _)| *s)
                .expect("non-empty racers");
            cells.push(format!(
                "    {{\"dataset\": \"{dataset}\", \"num_items\": {num_items}, \
                 \"minsup\": {minsup}, \"customers\": {}, \"litemsets\": {}, \
                 \"mean_len\": {:.4}, \"density\": {:.6}, \"bitmap_bytes\": {}, \
                 \"auto_choice\": \"{}\", \"auto_reason\": \"{}\", \
                 \"fastest\": \"{fastest}\", \"fewest_ops\": \"{fewest_ops}\", \
                 \"strategies\": [\n{}\n      ]}}",
                decision.customers,
                decision.litemsets,
                decision.mean_len,
                decision.density,
                decision.bitmap_bytes,
                decision.choice,
                decision.reason,
                strategies.join(",\n")
            ));
        }
    }
    table.print();

    let json = format!(
        "{{\n  \"experiment\": \"e11_bitmap\",\n  \"shape\": \"{shape}\",\n  \
         \"customers\": {},\n  \"seed\": {},\n  \"auto_thresholds\": {{\
         \"min_customers\": {AUTO_MIN_CUSTOMERS}, \
         \"density_crossover\": {AUTO_DENSITY_CROSSOVER}, \
         \"bitmap_cap_bytes\": {AUTO_BITMAP_CAP_BYTES}}},\n  \"cells\": [\n{}\n  ]\n}}\n",
        args.customers,
        args.seed,
        cells.join(",\n")
    );
    std::fs::create_dir_all(&args.out_dir).expect("create results dir");
    let path = std::path::Path::new(&args.out_dir).join("e11_bitmap.json");
    std::fs::write(&path, json).expect("write JSON");
    println!("\nwrote {}", path.display());
}
