//! Deterministic multi-core execution for customer-sharded counting.
//!
//! Support is counted per customer, each customer at most once, so every
//! counting loop in the workspace is embarrassingly parallel across
//! customers. This module provides the two pieces the counters need:
//!
//! * [`Parallelism`] — the user-facing knob (serial, explicit thread
//!   count, or auto-detect), carried on `AprioriConfig` and
//!   `MinerConfig`;
//! * [`map_chunks`] — scoped-thread map over contiguous slice chunks with
//!   results returned **in chunk order**, so reductions are deterministic
//!   and parallel runs produce bit-identical outputs to serial runs.
//!
//! Zero dependencies: built on `std::thread::scope`, which keeps the
//! workspace reproducible offline and lets threads borrow the shared
//! read-only inputs (candidate lists, hash trees) without `Arc`.

use std::num::NonZeroUsize;

/// How many threads counting loops may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Single-threaded, no scoped threads spawned at all.
    Serial,
    /// Exactly this many worker threads (capped at the number of
    /// customers; chunks are contiguous customer ranges).
    Threads(NonZeroUsize),
    /// One thread per available core, via
    /// [`std::thread::available_parallelism`]. Falls back to serial when
    /// the hardware cannot be queried.
    #[default]
    Auto,
}

impl Parallelism {
    /// Convenience constructor; `threads == 0` means [`Parallelism::Auto`],
    /// `1` means [`Parallelism::Serial`].
    pub fn threads(threads: usize) -> Self {
        match NonZeroUsize::new(threads) {
            None => Parallelism::Auto,
            Some(n) if n.get() == 1 => Parallelism::Serial,
            Some(n) => Parallelism::Threads(n),
        }
    }

    /// The concrete worker count this configuration resolves to.
    pub fn resolved_threads(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.get(),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Parallelism::Serial => write!(f, "serial"),
            Parallelism::Threads(n) => write!(f, "{n}"),
            Parallelism::Auto => write!(f, "auto"),
        }
    }
}

/// Runs `map` over contiguous chunks of `items`, one chunk per worker, and
/// returns the per-chunk results **in chunk order**.
///
/// The chunking is a pure function of `items.len()` and `threads`
/// (`ceil(len / workers)` items per chunk, workers capped at `len`), and
/// results are collected by joining workers in spawn order — never in
/// completion order — so any fold over the returned vector is
/// deterministic regardless of OS scheduling. With `threads <= 1`, or too
/// few items to split, `map` runs on the calling thread and no threads
/// are spawned.
pub fn map_chunks<T, R, M>(items: &[T], threads: usize, map: M) -> Vec<R>
where
    T: Sync,
    R: Send,
    M: Fn(&[T]) -> R + Sync,
{
    let workers = threads.min(items.len()).max(1);
    if workers == 1 {
        return vec![map(items)];
    }
    let chunk_len = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let map = &map;
        let handles: Vec<_> = items
            .chunks(chunk_len)
            // seqpat-lint: allow(no-spawn-in-kernels) map_chunks is the one sanctioned fan-out point — every kernel parallelizes through it, and scoped threads join before it returns
            .map(|chunk| scope.spawn(move || map(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(counts) => counts,
                // A worker panic is a bug in `map`; re-raise its payload on
                // the caller's thread rather than panicking a second time.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// Sums equal-length per-chunk count vectors element-wise, consuming them
/// **in iteration order** (pair with [`map_chunks`], whose results arrive
/// in chunk order). Integer `+=` is exact, so the totals are bit-identical
/// to a serial count regardless of how the input was chunked.
///
/// This is the one chunk-merge reducer shared by every counting loop in
/// the workspace (itemset supports, sequence supports, pair matrices,
/// vertical-join partials); side effects — draining a per-chunk test
/// counter, say — belong in the iterator adapter feeding it.
pub fn sum_partials<T, I>(partials: I, len: usize) -> Vec<T>
where
    T: Copy + Default + std::ops::AddAssign,
    I: IntoIterator<Item = Vec<T>>,
{
    let mut totals = vec![T::default(); len];
    for partial in partials {
        debug_assert_eq!(partial.len(), len, "partial length mismatch");
        for (total, v) in totals.iter_mut().zip(partial) {
            *total += v;
        }
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution() {
        assert_eq!(Parallelism::Serial.resolved_threads(), 1);
        assert_eq!(
            Parallelism::Threads(NonZeroUsize::new(5).unwrap()).resolved_threads(),
            5
        );
        assert!(Parallelism::Auto.resolved_threads() >= 1);
        assert_eq!(Parallelism::threads(0), Parallelism::Auto);
        assert_eq!(Parallelism::threads(1), Parallelism::Serial);
        assert_eq!(
            Parallelism::threads(3),
            Parallelism::Threads(NonZeroUsize::new(3).unwrap())
        );
    }

    #[test]
    fn chunk_results_arrive_in_order() {
        let items: Vec<u64> = (0..101).collect();
        for threads in [1, 2, 3, 7, 16, 200] {
            let sums = map_chunks(&items, threads, |chunk| chunk.iter().sum::<u64>());
            assert_eq!(sums.iter().sum::<u64>(), items.iter().sum::<u64>());
            assert!(sums.len() <= threads.min(items.len()));
            // First chunk holds the smallest items — order is positional.
            let firsts = map_chunks(&items, threads, |chunk| chunk[0]);
            let mut sorted = firsts.clone();
            sorted.sort_unstable();
            assert_eq!(firsts, sorted);
        }
    }

    #[test]
    fn sum_partials_is_elementwise_and_order_independent_for_integers() {
        let partials = vec![vec![1u64, 0, 2], vec![0, 5, 1], vec![3, 0, 0]];
        assert_eq!(sum_partials(partials, 3), vec![4, 5, 3]);
        let none: Vec<Vec<u32>> = Vec::new();
        assert_eq!(sum_partials(none, 2), vec![0u32, 0]);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: [u8; 0] = [];
        assert_eq!(map_chunks(&empty, 8, |c| c.len()), vec![0]);
        assert_eq!(map_chunks(&[42u8], 8, |c| c.len()), vec![1]);
    }

    #[test]
    fn identical_results_across_thread_counts() {
        let items: Vec<u32> = (0..997).map(|i| i * 31 % 113).collect();
        let reduce = |threads: usize| -> Vec<u64> {
            let partials = map_chunks(&items, threads, |chunk| {
                let mut hist = vec![0u64; 113];
                for &x in chunk {
                    hist[x as usize] += 1;
                }
                hist
            });
            partials.into_iter().fold(vec![0u64; 113], |mut acc, h| {
                for (a, v) in acc.iter_mut().zip(h) {
                    *a += v;
                }
                acc
            })
        };
        let serial = reduce(1);
        for threads in [2, 3, 7] {
            assert_eq!(reduce(threads), serial);
        }
    }
}
