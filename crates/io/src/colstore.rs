//! On-disk columnar store for the transformed database (`SEQPATC1`).
//!
//! The sequence phase reads the transformed database as contiguous runs of
//! customer rows; this module stores those rows in a two-level CSR layout
//! so a shard of rows can be loaded with four positioned reads and decoded
//! directly into a reusable scratch buffer — no upfront deserialization,
//! peak memory proportional to the shard, not the database.
//!
//! # File layout (all integers little-endian)
//!
//! | offset | field |
//! |---|---|
//! | 0   | magic `b"SEQPATC1"` |
//! | 8   | `u32` version (currently 1) |
//! | 12  | `u32` endianness tag `0x1A2B3C4D` |
//! | 16  | `u64` total_customers (support denominator) |
//! | 24  | `u64` num_rows |
//! | 32  | `u64` num_elements (retained transactions, all rows) |
//! | 40  | `u64` num_ids (litemset-id occurrences, all elements) |
//! | 48  | `u64` num_litemsets |
//! | 56  | `u64` num_table_items (items across all litemsets) |
//! | 64  | `u64` ×6 section offsets: customer_ids, row_offsets, elem_offsets, ids, table, file_len |
//! | 112 | sections, contiguous, in that order |
//!
//! Sections:
//!
//! * `customer_ids` — `u64` × num_rows, the original customer ids.
//! * `row_offsets` — `u64` × (num_rows + 1), CSR level 1: row *r*'s
//!   elements are `row_offsets[r] .. row_offsets[r+1]`.
//! * `elem_offsets` — `u64` × (num_elements + 1), CSR level 2: element
//!   *e*'s ids are `elem_offsets[e] .. elem_offsets[e+1]`.
//! * `ids` — `u32` × num_ids, ascending within each element.
//! * `table` — the litemset table: supports (`u64` × L), item offsets
//!   (`u64` × (L+1)), items (`u32` × num_table_items).
//!
//! The store is *versioned* by the magic+version pair and *endianness
//! checked* by the tag: a file written on a big-endian machine would carry
//! a byte-swapped tag and be rejected instead of misread (writers always
//! emit little-endian; the tag guards against future non-conforming
//! writers and against reading a foreign file).
//!
//! # Access model
//!
//! The workspace forbids `unsafe`, so the "mmap" backend does not actually
//! `mmap(2)`: [`ColstoreDataset`] keeps the file open and serves each shard
//! with positioned reads (`pread` via `FileExt::read_exact_at` on Unix, a
//! mutex-guarded seek+read elsewhere). The kernel's page cache provides
//! the same lazy, page-granular behaviour mmap would — without the UB
//! surface of a remappable slice.
//!
//! # Failure model
//!
//! [`ColstoreDataset::open`] validates the header, the section geometry
//! against the real file length, and the whole litemset table, and fails
//! closed with [`IoError`]. After a successful open the only way a shard
//! load can fail is the file being truncated, rewritten, or the device
//! erroring mid-run; [`Dataset::load_shard`] cannot report errors (it
//! returns rows), and silently dropping rows would corrupt supports, so
//! that one case aborts the process via panic.

use std::fs::File;
use std::io::{self, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};

use crate::error::IoError;
use crate::readat::{u32s_from, u64s_from, ReadAt};
use seqpat_core::cast::w64;
use seqpat_core::{
    Dataset, Itemset, LitemsetTable, ShardScratch, TransformedCustomer, TransformedDatabase,
};

/// First eight bytes of every colstore file.
pub const MAGIC: [u8; 8] = *b"SEQPATC1";
/// Format version written (and the only one read).
pub const VERSION: u32 = 1;
/// Endianness tag: reads back byte-swapped if the file is foreign-endian.
const ENDIAN_TAG: u32 = 0x1A2B_3C4D;
/// Fixed header size in bytes (sections start here).
const HEADER_LEN: u64 = 112;

/// The header's six counts; section offsets are derived from them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Header {
    total_customers: u64,
    num_rows: u64,
    num_elements: u64,
    num_ids: u64,
    num_litemsets: u64,
    num_table_items: u64,
}

/// Absolute byte offsets of each section (and the expected file length).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Sections {
    customer_ids: u64,
    row_offsets: u64,
    elem_offsets: u64,
    ids: u64,
    table: u64,
    file_len: u64,
}

impl Header {
    /// Section offsets, or `None` when the counts overflow u64 byte
    /// arithmetic (only possible for a corrupt header).
    fn sections(&self) -> Option<Sections> {
        let customer_ids = HEADER_LEN;
        let row_offsets = customer_ids.checked_add(self.num_rows.checked_mul(8)?)?;
        let elem_offsets =
            row_offsets.checked_add(self.num_rows.checked_add(1)?.checked_mul(8)?)?;
        let ids = elem_offsets.checked_add(self.num_elements.checked_add(1)?.checked_mul(8)?)?;
        let table = ids.checked_add(self.num_ids.checked_mul(4)?)?;
        let table_len = self
            .num_litemsets
            .checked_mul(8)?
            .checked_add(self.num_litemsets.checked_add(1)?.checked_mul(8)?)?
            .checked_add(self.num_table_items.checked_mul(4)?)?;
        let file_len = table.checked_add(table_len)?;
        Some(Sections {
            customer_ids,
            row_offsets,
            elem_offsets,
            ids,
            table,
            file_len,
        })
    }
}

fn corrupt(msg: impl Into<String>) -> IoError {
    IoError::parse(0, msg)
}

/// Narrows a validated `u64` offset/count to `usize`.
fn uz(v: u64) -> usize {
    debug_assert!(usize::try_from(v).is_ok(), "offset {v} overflows usize");
    // seqpat-lint: allow(no-lossy-casts-in-kernels) open() rejects files whose length overflows usize, and every value narrowed here is bounded by a validated file length
    v as usize
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Streaming colstore writer: rows are pushed one at a time and spilled to
/// four temporary column files next to the destination, so peak memory is
/// one row regardless of database size. [`ColstoreWriter::finish`] stitches
/// header + columns + litemset table into the final file and removes the
/// spill files.
#[derive(Debug)]
pub struct ColstoreWriter {
    final_path: PathBuf,
    spill_paths: [PathBuf; 4],
    customer_ids: io::BufWriter<File>,
    row_offsets: io::BufWriter<File>,
    elem_offsets: io::BufWriter<File>,
    ids: io::BufWriter<File>,
    rows: u64,
    elements: u64,
    id_count: u64,
}

impl ColstoreWriter {
    /// Opens a writer targeting `path`. Creates (and truncates) four spill
    /// files `<path>.colN.tmp` in the same directory.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, IoError> {
        let final_path = path.as_ref().to_path_buf();
        let spill = |n: u32| -> PathBuf {
            // seqpat-lint: allow(no-alloc-in-hot-loop) runs four times per file creation, not per row
            let mut os = final_path.clone().into_os_string();
            // seqpat-lint: allow(no-alloc-in-hot-loop) runs four times per file creation, not per row
            os.push(format!(".col{n}.tmp"));
            PathBuf::from(os)
        };
        let spill_paths = [spill(0), spill(1), spill(2), spill(3)];
        debug_assert_eq!(spill_paths.len(), 4);
        let open = |p: &Path| -> Result<io::BufWriter<File>, IoError> {
            // seqpat-lint: allow(no-alloc-in-hot-loop) four buffered writers per file creation, not per row
            Ok(io::BufWriter::new(File::create(p)?))
        };
        let customer_ids = open(&spill_paths[0])?;
        let mut row_offsets = open(&spill_paths[1])?;
        let mut elem_offsets = open(&spill_paths[2])?;
        let ids = open(&spill_paths[3])?;
        // Both offset columns lead with their initial zero.
        row_offsets.write_all(&0u64.to_le_bytes())?;
        elem_offsets.write_all(&0u64.to_le_bytes())?;
        Ok(Self {
            final_path,
            spill_paths,
            customer_ids,
            row_offsets,
            elem_offsets,
            ids,
            rows: 0,
            elements: 0,
            id_count: 0,
        })
    }

    /// Appends one transformed customer row.
    pub fn push_row(&mut self, row: &TransformedCustomer) -> Result<(), IoError> {
        self.customer_ids
            .write_all(&row.customer_id.to_le_bytes())?;
        for element in &row.elements {
            for &id in element {
                self.ids.write_all(&id.to_le_bytes())?;
            }
            self.id_count += w64(element.len());
            self.elements += 1;
            self.elem_offsets.write_all(&self.id_count.to_le_bytes())?;
        }
        self.rows += 1;
        self.row_offsets.write_all(&self.elements.to_le_bytes())?;
        Ok(())
    }

    /// Rows pushed so far.
    pub fn rows_written(&self) -> u64 {
        self.rows
    }

    /// Writes the final file (header, columns, litemset table), fsync-free
    /// but length-verified, and removes the spill files.
    pub fn finish(mut self, table: &LitemsetTable, total_customers: u64) -> Result<(), IoError> {
        self.customer_ids.flush()?;
        self.row_offsets.flush()?;
        self.elem_offsets.flush()?;
        self.ids.flush()?;

        let num_table_items: u64 = table.iter().map(|(_, set, _)| w64(set.len())).sum();
        let header = Header {
            total_customers,
            num_rows: self.rows,
            num_elements: self.elements,
            num_ids: self.id_count,
            num_litemsets: w64(table.len()),
            num_table_items,
        };
        let sections = match header.sections() {
            Some(s) => s,
            None => return Err(corrupt("dataset too large for the colstore format")),
        };

        let mut out = io::BufWriter::new(File::create(&self.final_path)?);
        out.write_all(&MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&ENDIAN_TAG.to_le_bytes())?;
        for count in [
            header.total_customers,
            header.num_rows,
            header.num_elements,
            header.num_ids,
            header.num_litemsets,
            header.num_table_items,
        ] {
            out.write_all(&count.to_le_bytes())?;
        }
        for off in [
            sections.customer_ids,
            sections.row_offsets,
            sections.elem_offsets,
            sections.ids,
            sections.table,
            sections.file_len,
        ] {
            out.write_all(&off.to_le_bytes())?;
        }
        for spill in &self.spill_paths {
            let mut f = File::open(spill)?;
            io::copy(&mut f, &mut out)?;
        }
        // Litemset table: supports, item offsets, items.
        for (_, _, support) in table.iter() {
            out.write_all(&support.to_le_bytes())?;
        }
        let mut item_off = 0u64;
        out.write_all(&item_off.to_le_bytes())?;
        for (_, set, _) in table.iter() {
            item_off += w64(set.len());
            out.write_all(&item_off.to_le_bytes())?;
        }
        for (_, set, _) in table.iter() {
            for &item in set.items() {
                out.write_all(&item.to_le_bytes())?;
            }
        }
        out.flush()?;
        drop(out);

        let written = std::fs::metadata(&self.final_path)?.len();
        if written != sections.file_len {
            return Err(corrupt(format!(
                "colstore writer produced {written} bytes, expected {}",
                sections.file_len
            )));
        }
        for spill in &self.spill_paths {
            let _ = std::fs::remove_file(spill);
        }
        Ok(())
    }
}

/// Converts a resident [`TransformedDatabase`] into a colstore file.
pub fn write_transformed(tdb: &TransformedDatabase, path: impl AsRef<Path>) -> Result<(), IoError> {
    let mut writer = ColstoreWriter::create(path)?;
    for row in &tdb.customers {
        writer.push_row(row)?;
    }
    writer.finish(&tdb.table, w64(tdb.total_customers))
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// An opened colstore file, serving shards of [`TransformedCustomer`] rows
/// through the [`Dataset`] trait. Only the header and the litemset table
/// are resident; rows stay on disk until a shard load asks for them.
#[derive(Debug)]
pub struct ColstoreDataset {
    path: PathBuf,
    file: ReadAt,
    header: Header,
    sections: Sections,
    table: LitemsetTable,
}

impl ColstoreDataset {
    /// Opens and validates a colstore file: magic/version/endianness, the
    /// section geometry against the real file length, the offset-column
    /// boundary invariants, and the full litemset table. Fails closed —
    /// after a successful open, shard loads trust the file's structure.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, IoError> {
        let path = path.as_ref().to_path_buf();
        let raw = File::open(&path)?;
        let actual_len = raw.metadata()?.len();
        let file = ReadAt::new(raw);

        let mut head = [0u8; 112];
        if actual_len < HEADER_LEN {
            return Err(corrupt(format!(
                "file is {actual_len} bytes, shorter than the {HEADER_LEN}-byte header"
            )));
        }
        file.read_exact_at(&mut head, 0)?;
        debug_assert_eq!(head.len() as u64, HEADER_LEN);
        if head[0..8] != MAGIC {
            return Err(corrupt("bad magic: not a colstore file"));
        }
        let head_u32 = |at: usize| -> u32 {
            debug_assert!(at + 4 <= head.len());
            let mut b = [0u8; 4];
            b.copy_from_slice(&head[at..at + 4]);
            u32::from_le_bytes(b)
        };
        let head_u64 = |at: usize| -> u64 {
            debug_assert!(at + 8 <= head.len());
            let mut b = [0u8; 8];
            b.copy_from_slice(&head[at..at + 8]);
            u64::from_le_bytes(b)
        };
        let version = head_u32(8);
        if version != VERSION {
            return Err(corrupt(format!(
                "unsupported colstore version {version} (reader supports {VERSION})"
            )));
        }
        let endian = head_u32(12);
        if endian != ENDIAN_TAG {
            return Err(corrupt(if endian == ENDIAN_TAG.swap_bytes() {
                "endianness mismatch: file written with byte-swapped integers".to_string()
            } else {
                format!("bad endianness tag {endian:#010x}")
            }));
        }
        let header = Header {
            total_customers: head_u64(16),
            num_rows: head_u64(24),
            num_elements: head_u64(32),
            num_ids: head_u64(40),
            num_litemsets: head_u64(48),
            num_table_items: head_u64(56),
        };
        let sections = header
            .sections()
            .ok_or_else(|| corrupt("header counts overflow the section layout"))?;
        let stored = Sections {
            customer_ids: head_u64(64),
            row_offsets: head_u64(72),
            elem_offsets: head_u64(80),
            ids: head_u64(88),
            table: head_u64(96),
            file_len: head_u64(104),
        };
        if stored != sections {
            return Err(corrupt(
                "stored section offsets disagree with the header counts",
            ));
        }
        if actual_len != sections.file_len {
            return Err(corrupt(format!(
                "file is {actual_len} bytes, header says {}",
                sections.file_len
            )));
        }
        if usize::try_from(actual_len).is_err()
            || usize::try_from(header.total_customers).is_err()
            || usize::try_from(header.num_rows).is_err()
        {
            return Err(corrupt("file too large for this platform's usize"));
        }
        if header.num_rows > header.total_customers {
            return Err(corrupt("more rows than customers"));
        }

        // Offset-column boundary invariants (interior monotonicity is
        // checked shard by shard, while decoding already touches the data).
        let check_bound =
            |file: &ReadAt, off: u64, expect: u64, what: &str| -> Result<(), IoError> {
                let mut b = [0u8; 8];
                file.read_exact_at(&mut b, off)?;
                let got = u64::from_le_bytes(b);
                if got != expect {
                    // seqpat-lint: allow(no-alloc-in-hot-loop) error path of a once-per-open validation
                    return Err(corrupt(format!("{what} is {got}, expected {expect}")));
                }
                Ok(())
            };
        check_bound(&file, sections.row_offsets, 0, "row_offsets[0]")?;
        check_bound(
            &file,
            sections.row_offsets + 8 * header.num_rows,
            header.num_elements,
            "row_offsets[num_rows]",
        )?;
        check_bound(&file, sections.elem_offsets, 0, "elem_offsets[0]")?;
        check_bound(
            &file,
            sections.elem_offsets + 8 * header.num_elements,
            header.num_ids,
            "elem_offsets[num_elements]",
        )?;

        let table = Self::read_table(&file, &header, &sections)?;
        Ok(Self {
            path,
            file,
            header,
            sections,
            table,
        })
    }

    fn read_table(
        file: &ReadAt,
        header: &Header,
        sections: &Sections,
    ) -> Result<LitemsetTable, IoError> {
        let n = uz(header.num_litemsets);
        debug_assert!(sections.table >= sections.ids);
        let mut supports_buf = vec![0u8; n * 8];
        file.read_exact_at(&mut supports_buf, sections.table)?;
        let supports = u64s_from(&supports_buf);
        let mut offs_buf = vec![0u8; (n + 1) * 8];
        file.read_exact_at(&mut offs_buf, sections.table + 8 * header.num_litemsets)?;
        let offs = u64s_from(&offs_buf);
        let mut items_buf = vec![0u8; uz(header.num_table_items) * 4];
        file.read_exact_at(
            &mut items_buf,
            sections.table + 8 * header.num_litemsets + 8 * (header.num_litemsets + 1),
        )?;
        let items = u32s_from(&items_buf);

        if offs.first() != Some(&0) || offs.last() != Some(&header.num_table_items) {
            return Err(corrupt("litemset item offsets do not span the item column"));
        }
        let mut large = Vec::with_capacity(n);
        for i in 0..n {
            debug_assert!(i + 1 < offs.len() && i < supports.len());
            let (start, end) = (offs[i], offs[i + 1]);
            if start > end || end > header.num_table_items {
                return Err(corrupt("litemset item offsets are not monotone"));
            }
            let set = &items[uz(start)..uz(end)];
            if set.is_empty() || set.windows(2).any(|w| w[0] >= w[1]) {
                return Err(corrupt("litemset items are not strictly ascending"));
            }
            large.push((Itemset::from_sorted(set.to_vec()), supports[i]));
        }
        Ok(LitemsetTable::new(large))
    }

    /// Aborts the process: the file stopped honouring the structure that
    /// was validated at open (truncated, rewritten, or a device error).
    /// `load_shard` returns rows, not a `Result`, and fabricating or
    /// dropping rows would silently corrupt every downstream support.
    fn fail(&self, what: &str, detail: impl std::fmt::Display) -> ! {
        // seqpat-lint: allow(no-panic-in-kernels) open() validated the whole structure; reaching here means the store changed or the device failed mid-run, and returning wrong rows would silently corrupt supports — failing loudly is the only sound option
        panic!(
            "colstore {}: {what} failed after a validated open: {detail}",
            self.path.display()
        )
    }

    fn read_u64s(&self, offset: u64, count: usize, what: &str) -> Vec<u64> {
        let mut buf = vec![0u8; count * 8];
        if let Err(e) = self.file.read_exact_at(&mut buf, offset) {
            self.fail(what, e);
        }
        u64s_from(&buf)
    }

    /// Decodes the rows of `range` into `scratch`.
    fn decode_shard(&self, range: Range<usize>, scratch: &mut ShardScratch) {
        debug_assert!(range.start <= range.end && range.end <= uz(self.header.num_rows));
        scratch.clear();
        let n = range.end - range.start;
        if n == 0 {
            return;
        }
        let customer_ids = self.read_u64s(
            self.sections.customer_ids + 8 * w64(range.start),
            n,
            "customer-id read",
        );
        let row_offs = self.read_u64s(
            self.sections.row_offsets + 8 * w64(range.start),
            n + 1,
            "row-offset read",
        );
        let (e0, e1) = (row_offs[0], row_offs[n]);
        if e0 > e1 || e1 > self.header.num_elements {
            self.fail("row-offset decode", "offsets not monotone");
        }
        let elem_offs = self.read_u64s(
            self.sections.elem_offsets + 8 * e0,
            uz(e1 - e0) + 1,
            "element-offset read",
        );
        let (i0, i1) = (elem_offs[0], elem_offs[uz(e1 - e0)]);
        if i0 > i1 || i1 > self.header.num_ids {
            self.fail("element-offset decode", "offsets not monotone");
        }
        let mut ids_buf = vec![0u8; uz(i1 - i0) * 4];
        if let Err(e) = self
            .file
            .read_exact_at(&mut ids_buf, self.sections.ids + 4 * i0)
        {
            self.fail("id read", e);
        }
        let ids = u32s_from(&ids_buf);

        let num_litemsets = u32::try_from(self.header.num_litemsets).unwrap_or(u32::MAX);
        for r in 0..n {
            let (row_e0, row_e1) = (row_offs[r], row_offs[r + 1]);
            if row_e0 > row_e1 || row_e1 > e1 {
                self.fail("row decode", "row offsets not monotone");
            }
            let mut elements = Vec::with_capacity(uz(row_e1 - row_e0));
            for e in uz(row_e0 - e0)..uz(row_e1 - e0) {
                let (id_start, id_end) = (elem_offs[e], elem_offs[e + 1]);
                if id_start > id_end || id_end > i1 {
                    self.fail("element decode", "element offsets not monotone");
                }
                let element = ids[uz(id_start - i0)..uz(id_end - i0)].to_vec();
                // Ascending ids mean the last one bounds them all; together
                // with the table check this validates every id in one pass.
                let sorted = element.windows(2).all(|w| w[0] < w[1]);
                if element.is_empty()
                    || !sorted
                    || element.last().is_some_and(|&id| id >= num_litemsets)
                {
                    self.fail("element decode", "ids not ascending within the table");
                }
                elements.push(element);
            }
            scratch.push(TransformedCustomer {
                customer_id: customer_ids[r],
                elements,
            });
        }
    }
}

impl Dataset for ColstoreDataset {
    fn table(&self) -> &LitemsetTable {
        &self.table
    }

    fn total_customers(&self) -> usize {
        uz(self.header.total_customers)
    }

    fn num_rows(&self) -> usize {
        uz(self.header.num_rows)
    }

    fn resident(&self) -> Option<&[TransformedCustomer]> {
        None
    }

    fn load_shard<'a>(
        &'a self,
        range: Range<usize>,
        scratch: &'a mut ShardScratch,
    ) -> &'a [TransformedCustomer] {
        self.decode_shard(range, scratch);
        scratch.rows()
    }

    fn shard_bytes(&self, range: Range<usize>) -> u64 {
        debug_assert!(range.start <= range.end && range.end <= uz(self.header.num_rows));
        let n = w64(range.end - range.start);
        if n == 0 {
            return 0;
        }
        let row_bounds = self.read_u64s(
            self.sections.row_offsets + 8 * w64(range.start),
            uz(n) + 1,
            "row-offset read",
        );
        let (e0, e1) = (row_bounds[0], row_bounds[uz(n)]);
        if e0 > e1 || e1 > self.header.num_elements {
            self.fail("row-offset decode", "offsets not monotone");
        }
        let first = self.read_u64s(
            self.sections.elem_offsets + 8 * e0,
            1,
            "element-offset read",
        );
        let last = self.read_u64s(
            self.sections.elem_offsets + 8 * e1,
            1,
            "element-offset read",
        );
        let (i0, i1) = (first[0], last[0]);
        if i0 > i1 || i1 > self.header.num_ids {
            self.fail("element-offset decode", "offsets not monotone");
        }
        // Storage bytes of this shard: customer ids + both offset columns'
        // spans + the id payload.
        8 * n + 8 * (n + 1) + 8 * (e1 - e0 + 1) + 4 * (i1 - i0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqpat_core::shard_ranges;

    fn sample_tdb() -> TransformedDatabase {
        let table = LitemsetTable::new(vec![
            (Itemset::new(vec![30]), 4),
            (Itemset::new(vec![40]), 2),
            (Itemset::new(vec![40, 70]), 2),
            (Itemset::new(vec![70]), 3),
            (Itemset::new(vec![90]), 3),
        ]);
        let customers = vec![
            TransformedCustomer {
                customer_id: 1,
                elements: vec![vec![0], vec![4]],
            },
            TransformedCustomer {
                customer_id: 2,
                elements: vec![vec![0], vec![1, 2, 3]],
            },
            TransformedCustomer {
                customer_id: 3,
                elements: vec![vec![0, 3]],
            },
            TransformedCustomer {
                customer_id: 4,
                elements: vec![],
            },
            TransformedCustomer {
                customer_id: 5,
                elements: vec![vec![4]],
            },
        ];
        TransformedDatabase {
            customers,
            table,
            total_customers: 5,
        }
    }

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("seqpat-colstore-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_all_rows() {
        let tdb = sample_tdb();
        let path = tmp_path("roundtrip.colstore");
        write_transformed(&tdb, &path).unwrap();
        let ds = ColstoreDataset::open(&path).unwrap();
        assert_eq!(ds.num_rows(), 5);
        assert_eq!(ds.total_customers(), 5);
        assert_eq!(ds.table().len(), tdb.table.len());
        for id in 0..tdb.table.len() as u32 {
            assert_eq!(ds.table().itemset(id), tdb.table.itemset(id));
            assert_eq!(ds.table().support(id), tdb.table.support(id));
        }
        let mut scratch = ShardScratch::new();
        let rows = ds.load_shard(0..5, &mut scratch);
        assert_eq!(rows, &tdb.customers[..]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn every_shard_split_matches_resident_rows() {
        let tdb = sample_tdb();
        let path = tmp_path("shards.colstore");
        write_transformed(&tdb, &path).unwrap();
        let ds = ColstoreDataset::open(&path).unwrap();
        for shard in [Some(1), Some(2), Some(3), None] {
            let mut scratch = ShardScratch::new();
            let mut got: Vec<TransformedCustomer> = Vec::new();
            for range in shard_ranges(ds.num_rows(), shard) {
                got.extend(ds.load_shard(range, &mut scratch).iter().cloned());
            }
            assert_eq!(got, tdb.customers, "shard size {shard:?}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shard_bytes_sum_to_whole() {
        let tdb = sample_tdb();
        let path = tmp_path("bytes.colstore");
        write_transformed(&tdb, &path).unwrap();
        let ds = ColstoreDataset::open(&path).unwrap();
        let whole = ds.shard_bytes(0..5);
        assert!(whole > 0);
        // Per-shard sums exceed the whole only by the repeated offset
        // boundary entries (one u64 per extra shard per level).
        let split: u64 = shard_ranges(5, Some(2))
            .into_iter()
            .map(|r| ds.shard_bytes(r))
            .sum();
        assert!(split >= whole);
        assert!(split <= whole + 8 * 4 * 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_truncated_file() {
        let tdb = sample_tdb();
        let path = tmp_path("trunc.colstore");
        write_transformed(&tdb, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert!(ColstoreDataset::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_bad_magic_and_version() {
        let tdb = sample_tdb();
        let path = tmp_path("magic.colstore");
        write_transformed(&tdb, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(ColstoreDataset::open(&path).is_err());
        bytes[0] = b'S';
        bytes[8] = 99; // version
        std::fs::write(&path, &bytes).unwrap();
        assert!(ColstoreDataset::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_byte_swapped_endianness() {
        let tdb = sample_tdb();
        let path = tmp_path("endian.colstore");
        write_transformed(&tdb, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[12..16].reverse();
        std::fs::write(&path, &bytes).unwrap();
        let err = ColstoreDataset::open(&path).unwrap_err();
        assert!(format!("{err}").contains("endianness"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_database_roundtrips() {
        let tdb = TransformedDatabase {
            customers: vec![],
            table: LitemsetTable::default(),
            total_customers: 0,
        };
        let path = tmp_path("empty.colstore");
        write_transformed(&tdb, &path).unwrap();
        let ds = ColstoreDataset::open(&path).unwrap();
        assert_eq!(ds.num_rows(), 0);
        assert!(ds.table().is_empty());
        let mut scratch = ShardScratch::new();
        assert!(ds.load_shard(0..0, &mut scratch).is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
