#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> bench smoke (one tiny ablation cell for all four strategies + auto)"
cargo run --release -p seqpat-bench --bin exp_ablation -- \
  --quick --customers 150 --out target/ci-results

echo "==> bench smoke (bitmap crossover, one dense + one sparse cell)"
cargo run --release -p seqpat-bench --bin exp_bitmap -- \
  --quick --customers 150 --out target/ci-results

echo "==> CI green"
