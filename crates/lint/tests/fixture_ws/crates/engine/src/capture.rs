//! Seeds for `shared-mutable-capture-in-parallel`: fan-out closures racing
//! on shared state, plus the clean chunk-owned-scratch shape that must stay
//! silent.

use std::sync::atomic::{AtomicU64, Ordering};

use seqpat_itemset::parallel::{map_chunks, sum_partials};

/// Seeded: the chunk closure mutates a shared buffer captured by `&mut` —
/// chunks race on `totals`, so the result depends on scheduling.
pub fn count_bad(xs: &[u32], totals: &mut Vec<u64>) {
    map_chunks(xs, 4, |chunk| {
        for x in chunk {
            totals[0] += u64::from(*x);
        }
    });
}

/// Seeded: an interior-mutable counter shared across chunks — the atomic
/// makes it race-free but the update order is still scheduling-dependent.
pub fn count_atomic(xs: &[u32], hits: &AtomicU64) {
    map_chunks(xs, 4, |chunk| {
        for x in chunk {
            if *x > 0 {
                hits.fetch_add(1, Ordering::Relaxed);
            }
        }
    });
}

/// Clean: each chunk owns its scratch; only the order-insensitive integer
/// sum crosses the thread boundary.
pub fn count_good(xs: &[u32]) -> u64 {
    let partials = map_chunks(xs, 4, |chunk| {
        let mut local = 0u64;
        for x in chunk {
            local += u64::from(*x);
        }
        local
    });
    sum_partials(&partials)
}
