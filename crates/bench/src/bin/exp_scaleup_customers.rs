//! **E3 — scale-up with the number of customers** (the paper's
//! "Scale-up: Number of customers" figure).
//!
//! `|D|` sweeps over a 10× range with the C10-T2.5-S4-I1.25 shape at
//! minsup 1%; times are reported relative to the smallest size. The paper
//! shows near-linear scale-up for all three algorithms — support counting
//! dominates and is linear in `|D|`.
//!
//! The corpus (pattern tables) is built once and shared across sizes, as
//! the paper scales only the customer population.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqpat_bench::harness::{measure, paper_algorithms};
use seqpat_bench::{Args, Table};
use seqpat_datagen::corpus::Corpus;
use seqpat_datagen::generator::generate_with_corpus;
use seqpat_datagen::GenParams;

fn main() {
    let args = Args::parse();
    let base = args.customers.max(500);
    let multipliers: &[usize] = if args.quick {
        &[1, 2]
    } else {
        &[1, 2, 4, 7, 10]
    };
    let minsup = 0.01;
    let shape = GenParams::paper_dataset("C10-T2.5-S4-I1.25").expect("paper dataset");

    let mut rng = StdRng::seed_from_u64(args.seed);
    let corpus = Corpus::build(&shape, &mut rng);

    println!(
        "E3: scale-up with |D| (base {base}, shape {}, minsup 1%)\n",
        shape.label()
    );
    let mut table = Table::new(&["|D|", "algorithm", "time s", "relative"]);
    let mut rows = Vec::new();
    let mut baselines: Vec<f64> = Vec::new();
    for (i, &mult) in multipliers.iter().enumerate() {
        let customers = base * mult;
        let params = shape.clone().customers(customers);
        let db = generate_with_corpus(&params, &corpus, &mut rng);
        for (ai, algorithm) in paper_algorithms().into_iter().enumerate() {
            let m = measure(&db, &params.label(), minsup, algorithm);
            if i == 0 {
                baselines.push(m.seconds.max(1e-9));
            }
            let relative = m.seconds / baselines[ai];
            table.row(vec![
                customers.to_string(),
                m.algorithm.clone(),
                seqpat_bench::table::fmt_secs(m.seconds),
                format!("{relative:.2}"),
            ]);
            rows.push(format!(
                "{},{},{:.6},{:.4}",
                customers, m.algorithm, m.seconds, relative
            ));
        }
    }
    table.print();
    println!("\n(relative = time / time at |D| = {base}; linear scale-up ⇒ relative ≈ |D|/{base})");
    let path = args
        .write_csv(
            "e3_scaleup_customers",
            "customers,algorithm,seconds,relative",
            &rows,
        )
        .expect("write CSV");
    println!("wrote {}", path.display());
}
