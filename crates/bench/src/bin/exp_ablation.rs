//! **E7 — ablations** of the implementation choices DESIGN.md calls out,
//! plus **E10 — the vertical-counting crossover study**.
//!
//! E7 cells:
//!
//! * counting strategy: all four explicit strategies — the paper's
//!   candidate hash tree, the direct bitmap-prefiltered scan, the vertical
//!   occurrence-index joins, the SPAM-style bitmap S-step kernel — plus
//!   the `auto` selector, one serial cell each;
//! * hash-tree shape: fanout × leaf-capacity grid;
//! * counting threads: 2 / 4 workers for the explicit strategies.
//!
//! Results are identical across all cells by construction (the property
//! tests pin that) and every cell is asserted against the direct baseline,
//! so any strategy disagreement aborts the run with a non-zero exit. Only
//! the time and the per-strategy work counters move. The work counters are
//! *not* comparable unit-for-unit across strategies — horizontal strategies
//! do exact containment tests, the vertical strategy does occurrence-list
//! merge-joins, the bitmap strategy smears frontier words — so all three
//! are reported, plus their sum `ops` as the "exact verification
//! operations" total E10 analyses.
//!
//! E10 sweeps minimum support with the index strategies serial on one
//! dataset and writes `results/e10_vertical.json`: per cell wall time,
//! containment tests, joins, `ops = tests + joins + sstep words`, peak
//! vertical index bytes and the (identical) pattern count. (E11, the
//! bitmap crossover sweep, lives in `exp_bitmap`.)

use seqpat_bench::harness::{measure_config, MiningMeasurement};
use seqpat_bench::table::fmt_secs;
use seqpat_bench::{Args, Table};
use seqpat_core::counting::TreeParams;
use seqpat_core::{CountingStrategy, MinSupport, MinerConfig, Parallelism};
use seqpat_datagen::{generate, GenParams};

/// The four explicit strategies, baseline first.
const STRATEGIES: [CountingStrategy; 4] = [
    CountingStrategy::Direct,
    CountingStrategy::HashTree,
    CountingStrategy::Vertical,
    CountingStrategy::Bitmap,
];

/// Everything E7's serial smoke covers: the explicit strategies plus Auto.
const SERIAL_CELLS: [CountingStrategy; 5] = [
    CountingStrategy::Direct,
    CountingStrategy::HashTree,
    CountingStrategy::Vertical,
    CountingStrategy::Bitmap,
    CountingStrategy::Auto,
];

fn ops(m: &MiningMeasurement) -> u64 {
    m.containment_tests + m.join_ops + m.sstep_ops
}

fn main() {
    let args = Args::parse();
    let minsup = if args.quick { 0.01 } else { 0.005 };
    let dataset = "C10-T2.5-S4-I1.25";
    let params = GenParams::paper_dataset(dataset)
        .expect("paper dataset")
        .customers(args.customers);
    let db = generate(&params, args.seed);

    println!(
        "E7: counting ablation on {dataset} (|D| = {}, minsup {:.2}%)\n",
        args.customers,
        minsup * 100.0
    );
    let mut table = Table::new(&[
        "strategy",
        "fanout",
        "leaf cap",
        "threads",
        "time s",
        "containment tests",
        "joins",
        "sstep ops",
        "patterns",
    ]);
    let mut rows = Vec::new();
    let mut serial = |strategy: CountingStrategy| {
        let m = measure_config(
            &db,
            dataset,
            minsup,
            MinerConfig::new(MinSupport::Fraction(minsup))
                .counting(strategy)
                .parallelism(Parallelism::Serial),
        );
        table.row(vec![
            strategy.to_string(),
            "-".into(),
            "-".into(),
            m.threads.to_string(),
            fmt_secs(m.seconds),
            m.containment_tests.to_string(),
            m.join_ops.to_string(),
            m.sstep_ops.to_string(),
            m.patterns.to_string(),
        ]);
        rows.push(format!(
            "{},,,{},{:.6},{},{},{},{}",
            strategy,
            m.threads,
            m.seconds,
            m.containment_tests,
            m.join_ops,
            m.sstep_ops,
            m.patterns
        ));
        m
    };
    // One serial cell per strategy, Auto included; a pattern-set mismatch
    // against the direct baseline aborts the run (non-zero exit).
    let mut direct: Option<MiningMeasurement> = None;
    for strategy in SERIAL_CELLS {
        let m = serial(strategy);
        if let Some(baseline) = &direct {
            assert_eq!(
                m.patterns, baseline.patterns,
                "{strategy} disagrees with the direct baseline on the answer"
            );
        } else {
            direct = Some(m);
        }
    }
    let direct = direct.expect("baseline cell");

    for fanout in [4usize, 16, 64] {
        for leaf_capacity in [8usize, 32, 128] {
            let mut config = MinerConfig::new(MinSupport::Fraction(minsup))
                .counting(CountingStrategy::HashTree)
                .parallelism(Parallelism::Serial);
            config.tree_params = TreeParams {
                fanout,
                leaf_capacity,
            };
            let m = measure_config(&db, dataset, minsup, config);
            assert_eq!(
                m.patterns, direct.patterns,
                "strategies must agree on the answer"
            );
            table.row(vec![
                "hashtree".into(),
                fanout.to_string(),
                leaf_capacity.to_string(),
                m.threads.to_string(),
                fmt_secs(m.seconds),
                m.containment_tests.to_string(),
                m.join_ops.to_string(),
                m.sstep_ops.to_string(),
                m.patterns.to_string(),
            ]);
            rows.push(format!(
                "hashtree,{},{},{},{:.6},{},{},{},{}",
                fanout,
                leaf_capacity,
                m.threads,
                m.seconds,
                m.containment_tests,
                m.join_ops,
                m.sstep_ops,
                m.patterns
            ));
        }
    }

    // Threads axis: all strategies, default tree shape. Answers and work
    // counters stay bit-identical to the serial rows.
    for strategy in STRATEGIES {
        for threads in [2usize, 4] {
            let config = MinerConfig::new(MinSupport::Fraction(minsup))
                .counting(strategy)
                .parallelism(Parallelism::threads(threads));
            let m = measure_config(&db, dataset, minsup, config);
            assert_eq!(
                m.patterns, direct.patterns,
                "thread count must not change the answer"
            );
            assert_eq!(m.threads, threads);
            table.row(vec![
                strategy.to_string(),
                "-".into(),
                "-".into(),
                threads.to_string(),
                fmt_secs(m.seconds),
                m.containment_tests.to_string(),
                m.join_ops.to_string(),
                m.sstep_ops.to_string(),
                m.patterns.to_string(),
            ]);
            rows.push(format!(
                "{},,,{},{:.6},{},{},{},{}",
                strategy,
                threads,
                m.seconds,
                m.containment_tests,
                m.join_ops,
                m.sstep_ops,
                m.patterns
            ));
        }
    }
    table.print();
    let path = args
        .write_csv(
            "e7_ablation",
            "strategy,fanout,leaf_capacity,threads,seconds,containment_tests,join_ops,sstep_ops,patterns",
            &rows,
        )
        .expect("write CSV");
    println!("\nwrote {}", path.display());

    // ---- E10: vertical crossover sweep ---------------------------------
    let grid: &[f64] = if args.quick {
        &[0.01]
    } else {
        &[0.01, 0.0075, 0.005, 0.0033]
    };
    println!("\nE10: vertical crossover on {dataset} (serial, minsup sweep)\n");
    let mut table = Table::new(&[
        "minsup %",
        "strategy",
        "time s",
        "containment tests",
        "joins",
        "sstep ops",
        "ops",
        "peak index bytes",
        "patterns",
    ]);
    let mut entries = Vec::new();
    let mut vertical_beats_hashtree = false;
    for &minsup in grid {
        let mut cells: Vec<(CountingStrategy, MiningMeasurement)> = Vec::new();
        for strategy in STRATEGIES {
            let config = MinerConfig::new(MinSupport::Fraction(minsup))
                .counting(strategy)
                .parallelism(Parallelism::Serial);
            let m = measure_config(&db, dataset, minsup, config);
            if let Some((_, first)) = cells.first() {
                assert_eq!(
                    m.patterns, first.patterns,
                    "strategies must agree at minsup {minsup}"
                );
            }
            table.row(vec![
                format!("{:.2}", minsup * 100.0),
                strategy.to_string(),
                fmt_secs(m.seconds),
                m.containment_tests.to_string(),
                m.join_ops.to_string(),
                m.sstep_ops.to_string(),
                ops(&m).to_string(),
                m.vertical_peak_bytes.max(m.bitmap_words * 8).to_string(),
                m.patterns.to_string(),
            ]);
            entries.push(format!(
                "    {{\"minsup\": {minsup}, \"strategy\": \"{strategy}\", \
                 \"seconds\": {:.6}, \"containment_tests\": {}, \"join_ops\": {}, \
                 \"sstep_ops\": {}, \"ops\": {}, \"vertical_index_seconds\": {:.6}, \
                 \"vertical_peak_bytes\": {}, \"patterns\": {}}}",
                m.seconds,
                m.containment_tests,
                m.join_ops,
                m.sstep_ops,
                ops(&m),
                m.vertical_index_seconds,
                m.vertical_peak_bytes,
                m.patterns
            ));
            cells.push((strategy, m));
        }
        let hashtree = &cells[1].1;
        let vertical = &cells[2].1;
        if ops(vertical) < ops(hashtree) {
            vertical_beats_hashtree = true;
        }
    }
    table.print();
    assert!(
        vertical_beats_hashtree,
        "expected at least one cell where vertical does fewer exact ops than the hash tree"
    );

    let json = format!(
        "{{\n  \"experiment\": \"e10_vertical\",\n  \"dataset\": \"{dataset}\",\n  \
         \"customers\": {},\n  \"seed\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        args.customers,
        args.seed,
        entries.join(",\n")
    );
    std::fs::create_dir_all(&args.out_dir).expect("create results dir");
    let path = std::path::Path::new(&args.out_dir).join("e10_vertical.json");
    std::fs::write(&path, json).expect("write JSON");
    println!("\nwrote {}", path.display());
}
