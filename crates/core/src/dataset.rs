//! Backend abstraction over customer-sequence access (out-of-core mining).
//!
//! The sequence phase only ever touches the transformed database through
//! two access patterns: the litemset table (id ↔ itemset mapping) and
//! contiguous runs of [`TransformedCustomer`] rows. [`Dataset`] captures
//! exactly that surface, so every counting strategy can run against either
//! the resident [`TransformedDatabase`] or an on-disk columnar store
//! (`seqpat-io`'s colstore) without knowing which one it has.
//!
//! Supports are additive across disjoint customer partitions, so
//! [`shard_ranges`] splits the row space into fixed-size shards and the
//! counting layer sums per-shard partial counts with the same
//! deterministic reducer used for per-thread partials — sharded runs are
//! bit-identical to whole-database runs for every strategy.

use std::ops::Range;

use crate::cast::w64;
use crate::types::transformed::{LitemsetTable, TransformedCustomer, TransformedDatabase};

/// Reusable decode buffer for non-resident backends. A shard load decodes
/// rows into the scratch's vector (clearing previous contents); resident
/// backends ignore it and hand out subslices directly.
#[derive(Debug, Default)]
pub struct ShardScratch {
    rows: Vec<TransformedCustomer>,
}

impl ShardScratch {
    /// An empty scratch buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The rows decoded by the most recent load into this scratch.
    pub fn rows(&self) -> &[TransformedCustomer] {
        &self.rows
    }

    /// Clears the buffer, keeping its allocation for the next shard.
    pub fn clear(&mut self) {
        self.rows.clear();
    }

    /// Appends one decoded row (used by backend loaders).
    pub fn push(&mut self, row: TransformedCustomer) {
        self.rows.push(row);
    }
}

/// A source of transformed customer rows, resident or on-disk.
///
/// # Contract
///
/// * Rows are indexed `0..num_rows()` in a fixed, deterministic order (the
///   transformation phase's customer order).
/// * [`Dataset::load_shard`] must return exactly the rows of `range`, in
///   order, and must be repeatable: loading the same range twice yields
///   equal rows. Ranges passed in are always within `0..num_rows()`.
/// * [`Dataset::total_customers`] is the support denominator — the number
///   of customers in the *original* database, which may exceed
///   `num_rows()` when a backend drops empty rows.
/// * [`Dataset::resident`] returns the full row slice when the backend
///   already holds all rows in memory; callers use it to skip scratch
///   copies and to enable pass-to-pass caches that borrow the rows.
pub trait Dataset {
    /// The litemset id table (always memory-resident).
    fn table(&self) -> &LitemsetTable;

    /// Support denominator: customers in the original database.
    fn total_customers(&self) -> usize;

    /// Number of stored customer rows.
    fn num_rows(&self) -> usize;

    /// The full row slice, when this backend is memory-resident.
    fn resident(&self) -> Option<&[TransformedCustomer]>;

    /// Loads the rows of `range` — either a borrowed subslice (resident
    /// backends) or rows decoded into `scratch` (on-disk backends).
    fn load_shard<'a>(
        &'a self,
        range: Range<usize>,
        scratch: &'a mut ShardScratch,
    ) -> &'a [TransformedCustomer];

    /// Approximate bytes occupied by the rows of `range` — storage bytes
    /// for on-disk backends, heap bytes for resident ones. Drives the
    /// `shard_bytes` statistic.
    fn shard_bytes(&self, range: Range<usize>) -> u64;
}

impl Dataset for TransformedDatabase {
    fn table(&self) -> &LitemsetTable {
        &self.table
    }

    fn total_customers(&self) -> usize {
        self.total_customers
    }

    fn num_rows(&self) -> usize {
        self.customers.len()
    }

    fn resident(&self) -> Option<&[TransformedCustomer]> {
        Some(&self.customers)
    }

    fn load_shard<'a>(
        &'a self,
        range: Range<usize>,
        _scratch: &'a mut ShardScratch,
    ) -> &'a [TransformedCustomer] {
        debug_assert!(range.start <= range.end && range.end <= self.customers.len());
        &self.customers[range]
    }

    fn shard_bytes(&self, range: Range<usize>) -> u64 {
        debug_assert!(range.start <= range.end && range.end <= self.customers.len());
        let mut bytes = 0u64;
        for row in &self.customers[range] {
            bytes += w64(std::mem::size_of::<TransformedCustomer>());
            for element in &row.elements {
                bytes += w64(std::mem::size_of::<Vec<u32>>());
                bytes += w64(element.len()) * w64(std::mem::size_of::<u32>());
            }
        }
        bytes
    }
}

/// Splits `0..num_rows` into consecutive shards of `shard_customers` rows
/// (the last shard may be shorter). `None`, zero, or a shard size covering
/// every row yields a single whole-range shard. The split is a pure
/// function of `(num_rows, shard_customers)`, so shard boundaries — and
/// therefore the order partial counts are merged in — are deterministic.
pub fn shard_ranges(num_rows: usize, shard_customers: Option<usize>) -> Vec<Range<usize>> {
    let size = match shard_customers {
        Some(s) if s > 0 && s < num_rows => s,
        // One whole-range shard; the single-element vec is intentional,
        // not a misspelled `(0..num_rows).collect()`.
        _ => return std::iter::once(0..num_rows).collect(),
    };
    let mut ranges = Vec::with_capacity(num_rows.div_ceil(size));
    let mut start = 0usize;
    while start < num_rows {
        let end = (start + size).min(num_rows);
        ranges.push(start..end);
        start = end;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::itemset::Itemset;

    fn tiny_db() -> TransformedDatabase {
        let table =
            LitemsetTable::new(vec![(Itemset::new(vec![1]), 3), (Itemset::new(vec![2]), 2)]);
        let customers = (0..5)
            .map(|i| TransformedCustomer {
                customer_id: i,
                elements: vec![vec![0], vec![0, 1]],
            })
            .collect();
        TransformedDatabase {
            customers,
            table,
            total_customers: 6,
        }
    }

    #[test]
    fn resident_backend_hands_out_subslices() {
        let db = tiny_db();
        let ds: &dyn Dataset = &db;
        assert_eq!(ds.num_rows(), 5);
        assert_eq!(ds.total_customers(), 6);
        assert_eq!(ds.table().len(), 2);
        assert!(ds.resident().is_some());
        let mut scratch = ShardScratch::new();
        let rows = ds.load_shard(1..4, &mut scratch);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].customer_id, 1);
        // The resident path never touches the scratch buffer.
        assert!(scratch.rows().is_empty());
    }

    #[test]
    fn shard_bytes_is_positive_and_monotone() {
        let db = tiny_db();
        let ds: &dyn Dataset = &db;
        let one = ds.shard_bytes(0..1);
        let all = ds.shard_bytes(0..5);
        assert!(one > 0);
        assert_eq!(all, one * 5);
    }

    #[test]
    fn shard_ranges_cover_exactly_once() {
        for rows in [0usize, 1, 5, 7, 64] {
            for shard in [None, Some(0), Some(1), Some(3), Some(7), Some(100)] {
                let ranges = shard_ranges(rows, shard);
                let mut expect = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, expect);
                    assert!(r.end > r.start || rows == 0);
                    expect = r.end;
                }
                assert_eq!(expect, rows);
            }
        }
    }

    #[test]
    fn shard_ranges_degenerate_to_single_range() {
        assert_eq!(shard_ranges(10, None), vec![0..10]);
        assert_eq!(shard_ranges(10, Some(0)), vec![0..10]);
        assert_eq!(shard_ranges(10, Some(10)), vec![0..10]);
        assert_eq!(shard_ranges(10, Some(11)), vec![0..10]);
        assert_eq!(shard_ranges(10, Some(4)), vec![0..4, 4..8, 8..10]);
    }
}
