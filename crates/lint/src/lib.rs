//! `seqpat-lint` — the workspace's own static-analysis gate.
//!
//! A dependency-free static analyzer: a hand-rolled lexer feeds both a
//! lexical rule engine and a recursive-descent item parser; the parser's
//! output forms a workspace symbol table and call graph; an SCC-condensed
//! fixpoint infers a per-fn effect set (panics, allocates, does-io,
//! wall-clock, spawns, locks) that drives the semantic rules (transitive
//! panic reachability, kernel purity for I/O / wall-clock / thread spawns,
//! hot-loop allocation discipline, exhaustive strategy dispatch,
//! stale-suppression hygiene). The rules enforce the invariants the
//! equivalence suites rely on: panic-free and cast-checked counting
//! kernels, order-normalized hash iteration, wall-clock confined to the
//! stats layer, and full `MiningStats` coverage in the CLI. See DESIGN.md
//! §"Correctness tooling" for the contracts and `rules::RULES` for the
//! registry.

pub mod callgraph;
pub mod effects;
pub mod engine;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod semantic;
