//! **E6 — PrefixSpan comparator** (extension beyond the 1995 paper; see
//! DESIGN.md §5).
//!
//! Runs the pattern-growth miner next to the three apriori-family
//! algorithms across the support grid. Expected shape: PrefixSpan's lead
//! grows as minsup drops (no candidate generation, no repeated full scans),
//! which is exactly the claim of the 2001/2004 PrefixSpan papers — the
//! historical resolution of the line of work the 1995 paper started.

use std::time::Instant;

use seqpat_bench::harness::{measure, paper_algorithms, paper_minsup_grid};
use seqpat_bench::table::fmt_secs;
use seqpat_bench::{Args, Table};
use seqpat_core::MinSupport;
use seqpat_datagen::{generate, GenParams};
use seqpat_prefixspan::{prefixspan_maximal, PrefixSpanConfig};

fn main() {
    let args = Args::parse();
    let minsups = paper_minsup_grid(args.quick);
    let dataset = "C10-T2.5-S4-I1.25";
    let params = GenParams::paper_dataset(dataset)
        .expect("paper dataset")
        .customers(args.customers);
    let db = generate(&params, args.seed);

    println!(
        "E6 (extension): PrefixSpan vs the 1995 algorithms on {dataset} (|D| = {})\n",
        args.customers
    );
    let mut table = Table::new(&["minsup", "algorithm", "time s", "maximal patterns"]);
    let mut rows = Vec::new();
    for &minsup in &minsups {
        for algorithm in paper_algorithms() {
            let m = measure(&db, dataset, minsup, algorithm);
            table.row(vec![
                format!("{:.2}%", minsup * 100.0),
                m.algorithm.clone(),
                fmt_secs(m.seconds),
                m.patterns.to_string(),
            ]);
            rows.push(format!(
                "{},{},{:.6},{}",
                minsup, m.algorithm, m.seconds, m.patterns
            ));
        }
        let start = Instant::now();
        let found = prefixspan_maximal(
            &db,
            MinSupport::Fraction(minsup),
            &PrefixSpanConfig::default(),
        );
        let secs = start.elapsed().as_secs_f64();
        table.row(vec![
            format!("{:.2}%", minsup * 100.0),
            "prefixspan".to_string(),
            fmt_secs(secs),
            found.len().to_string(),
        ]);
        rows.push(format!("{},prefixspan,{:.6},{}", minsup, secs, found.len()));
    }
    table.print();
    println!("\n(all rows at one threshold must report the same pattern count)");
    let path = args
        .write_csv("e6_prefixspan", "minsup,algorithm,seconds,patterns", &rows)
        .expect("write CSV");
    println!("wrote {}", path.display());
}
