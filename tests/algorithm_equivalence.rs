//! Property tests: on arbitrary small databases, every algorithm —
//! AprioriAll, AprioriSome, DynamicSome (several steps), PrefixSpan, and
//! the brute-force oracle — produces exactly the same answer.

use proptest::prelude::*;
use seqpat::core::naive::{naive_all_large, naive_maximal, NaiveLimits};
use seqpat::prefixspan::{prefixspan, prefixspan_maximal, PrefixSpanConfig};
use seqpat::{Algorithm, CountingStrategy, Database, MinSupport, Miner, MinerConfig};

/// Strategy: a small random transaction table (≤ 7 customers, ≤ 4
/// transactions each, items from a 6-item universe).
fn arb_database() -> impl Strategy<Value = Database> {
    let transaction = proptest::collection::vec(0u32..6, 1..=3);
    let customer = proptest::collection::vec(transaction, 1..=4);
    proptest::collection::vec(customer, 1..=7).prop_map(|customers| {
        let mut rows = Vec::new();
        for (c, transactions) in customers.into_iter().enumerate() {
            for (t, items) in transactions.into_iter().enumerate() {
                rows.push((c as u64, t as i64, items));
            }
        }
        Database::from_rows(rows)
    })
}

fn render_maximal(patterns: &[seqpat::Pattern]) -> Vec<String> {
    let mut v: Vec<String> = patterns
        .iter()
        .map(|p| format!("{}:{}", p, p.support))
        .collect();
    v.sort();
    v
}

fn limits() -> NaiveLimits {
    NaiveLimits {
        max_itemset_size: 4,
        max_sequence_length: 6,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_algorithms_agree_with_the_oracle(db in arb_database(), min_count in 1u64..=3) {
        let oracle: Vec<String> = naive_maximal(&db, MinSupport::Count(min_count), limits())
            .into_iter()
            .map(|(s, sup)| format!("{s}:{sup}"))
            .collect();
        let mut oracle_sorted = oracle.clone();
        oracle_sorted.sort();

        for algorithm in [
            Algorithm::AprioriAll,
            Algorithm::AprioriSome,
            Algorithm::DynamicSome { step: 1 },
            Algorithm::DynamicSome { step: 2 },
            Algorithm::DynamicSome { step: 3 },
        ] {
            let result = Miner::new(
                MinerConfig::new(MinSupport::Count(min_count)).algorithm(algorithm),
            )
            .mine(&db);
            prop_assert_eq!(
                render_maximal(&result.patterns),
                oracle_sorted.clone(),
                "{} disagrees with the oracle on {:?}",
                algorithm,
                db
            );
        }

        let ps = prefixspan_maximal(
            &db,
            MinSupport::Count(min_count),
            &PrefixSpanConfig::default(),
        );
        prop_assert_eq!(render_maximal(&ps), oracle_sorted, "prefixspan disagrees");
    }

    #[test]
    fn apriori_all_full_set_matches_oracle_and_prefixspan(
        db in arb_database(),
        min_count in 1u64..=3,
    ) {
        // Cap lengths so the oracle's exponential enumeration stays small.
        let all_oracle: Vec<String> = naive_all_large(&db, MinSupport::Count(min_count), limits())
            .into_iter()
            .filter(|(s, _)| s.len() <= 6)
            .map(|(s, sup)| format!("{s}:{sup}"))
            .collect();

        let result = Miner::new(
            MinerConfig::new(MinSupport::Count(min_count))
                .include_non_maximal(true)
                .max_length(6),
        )
        .mine(&db);
        let got: Vec<String> = result
            .patterns
            .iter()
            .map(|p| format!("{}:{}", p, p.support))
            .collect();
        prop_assert_eq!(&got, &all_oracle, "apriori-all full set mismatch");

        let ps = prefixspan(
            &db,
            MinSupport::Count(min_count),
            &PrefixSpanConfig {
                max_length: Some(6),
                ..Default::default()
            },
        );
        let ps_strs: Vec<String> = ps
            .iter()
            .map(|p| format!("{}:{}", p, p.support))
            .collect();
        prop_assert_eq!(ps_strs, all_oracle, "prefixspan full set mismatch");
    }

    #[test]
    fn counting_strategies_agree(db in arb_database(), min_count in 1u64..=3) {
        let direct = Miner::new(
            MinerConfig::new(MinSupport::Count(min_count)).counting(CountingStrategy::Direct),
        )
        .mine(&db);
        let tree = Miner::new(
            MinerConfig::new(MinSupport::Count(min_count)).counting(CountingStrategy::HashTree),
        )
        .mine(&db);
        prop_assert_eq!(
            render_maximal(&direct.patterns),
            render_maximal(&tree.patterns)
        );
        let vertical = Miner::new(
            MinerConfig::new(MinSupport::Count(min_count)).counting(CountingStrategy::Vertical),
        )
        .mine(&db);
        prop_assert_eq!(
            render_maximal(&direct.patterns),
            render_maximal(&vertical.patterns)
        );
        let bitmap = Miner::new(
            MinerConfig::new(MinSupport::Count(min_count)).counting(CountingStrategy::Bitmap),
        )
        .mine(&db);
        prop_assert_eq!(
            render_maximal(&direct.patterns),
            render_maximal(&bitmap.patterns)
        );
        let auto = Miner::new(
            MinerConfig::new(MinSupport::Count(min_count)).counting(CountingStrategy::Auto),
        )
        .mine(&db);
        prop_assert_eq!(
            render_maximal(&direct.patterns),
            render_maximal(&auto.patterns)
        );
    }

    #[test]
    fn maximal_answer_is_an_antichain(db in arb_database(), min_count in 1u64..=3) {
        let result =
            Miner::new(MinerConfig::new(MinSupport::Count(min_count))).mine(&db);
        for (i, a) in result.patterns.iter().enumerate() {
            for (j, b) in result.patterns.iter().enumerate() {
                if i != j {
                    prop_assert!(
                        !a.sequence.is_contained_in(&b.sequence),
                        "{} ⊑ {} — answer is not maximal",
                        a,
                        b
                    );
                }
            }
        }
    }

    #[test]
    fn reported_supports_are_exact(db in arb_database(), min_count in 1u64..=3) {
        let result =
            Miner::new(MinerConfig::new(MinSupport::Count(min_count))).mine(&db);
        for pattern in &result.patterns {
            let recount = db
                .customers()
                .iter()
                .filter(|c| {
                    let view: Vec<seqpat::Itemset> = c.itemsets().cloned().collect();
                    seqpat::core::contain::sequence_contains(&view, pattern.sequence.elements())
                })
                .count() as u64;
            prop_assert_eq!(pattern.support, recount, "support of {} wrong", pattern);
            prop_assert!(pattern.support >= min_count);
        }
    }
}
