//! Time-constrained patterns with the GSP extension: which purchase
//! sequences happen **within a bounded number of days**?
//!
//! ```sh
//! cargo run --example subscription_renewals
//! ```
//!
//! A streaming service logs per-account events (day-resolution times).
//! Unconstrained mining finds that trial users eventually subscribe — but
//! the product question is usually *"do they subscribe within 30 days of
//! the trial?"*. That is a **max-gap** constraint, one of the
//! generalizations the 1995 paper's conclusion proposes and the EDBT'96
//! follow-up formalizes (implemented here in `seqpat-gsp`).

use seqpat::gsp::{gsp, gsp_maximal, GspConfig};
use seqpat::{Database, MinSupport};

const TRIAL: u32 = 1;
const SUBSCRIBE: u32 = 2;
const UPGRADE: u32 = 3;
const CANCEL: u32 = 4;

fn name(e: u32) -> &'static str {
    match e {
        TRIAL => "trial",
        SUBSCRIBE => "subscribe",
        UPGRADE => "upgrade",
        CANCEL => "cancel",
        _ => "?",
    }
}

fn main() {
    // 100 accounts, three behaviours:
    //  * 40 "prompt" accounts: trial → subscribe within a week → upgrade.
    //  * 30 "lapsed" accounts: trial → subscribe, but only after ~90 days.
    //  * 30 churners: trial → cancel.
    let mut rows: Vec<(u64, i64, Vec<u32>)> = Vec::new();
    for account in 0..100u64 {
        match account % 10 {
            0..=3 => {
                rows.push((account, 0, vec![TRIAL]));
                rows.push((account, 5 + (account % 3) as i64, vec![SUBSCRIBE]));
                rows.push((account, 40, vec![UPGRADE]));
            }
            4..=6 => {
                rows.push((account, 0, vec![TRIAL]));
                rows.push((account, 90 + (account % 7) as i64, vec![SUBSCRIBE]));
            }
            _ => {
                rows.push((account, 0, vec![TRIAL]));
                rows.push((account, 12, vec![CANCEL]));
            }
        }
    }
    let db = Database::from_rows(rows);
    println!("{} accounts\n", db.num_customers());

    let render = |patterns: &[seqpat::Pattern]| {
        for p in patterns {
            let steps: Vec<&str> = p
                .sequence
                .elements()
                .iter()
                .map(|e| name(e.items()[0]))
                .collect();
            println!("  {}  — {} accounts", steps.join(" → "), p.support);
        }
    };

    // Unconstrained: both prompt and lapsed accounts support
    // trial → subscribe (70 accounts).
    let unconstrained = gsp_maximal(&db, MinSupport::Fraction(0.3), &GspConfig::default());
    println!("patterns at 30% support, no time constraint:");
    render(&unconstrained);
    // The maximal answer absorbs trial → subscribe into the longer
    // trial → subscribe → upgrade pathway; ask the full frequent set for
    // the 2-step pattern's own support.
    let trial_sub = |config: &GspConfig| {
        gsp(&db, MinSupport::Fraction(0.3), config)
            .iter()
            .find(|p| p.sequence.to_string() == format!("<({TRIAL})({SUBSCRIBE})>"))
            .map(|p| p.support)
    };
    assert_eq!(trial_sub(&GspConfig::default()), Some(70));

    // Within 30 days: only the prompt accounts qualify.
    let within_month = gsp_maximal(
        &db,
        MinSupport::Fraction(0.3),
        &GspConfig::default().max_gap(30),
    );
    println!("\npatterns at 30% support, max-gap 30 days:");
    render(&within_month);
    assert_eq!(trial_sub(&GspConfig::default().max_gap(30)), Some(40));

    println!("\nconversion: 70/100 eventually subscribe, but only 40/100 within 30 days ✓");
}
