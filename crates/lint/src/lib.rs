//! `seqpat-lint` — the workspace's own static-analysis gate.
//!
//! A dependency-free static analyzer: a hand-rolled lexer feeds both a
//! lexical rule engine and a recursive-descent item parser; the parser's
//! output forms a workspace symbol table and call graph; an SCC-condensed
//! fixpoint infers a per-fn effect set (panics, allocates, does-io,
//! wall-clock, spawns, locks) that drives the semantic rules (transitive
//! panic reachability, kernel purity for I/O / wall-clock / thread spawns,
//! hot-loop allocation discipline, exhaustive strategy dispatch,
//! stale-suppression hygiene). A determinism stage audits the parallel
//! paths: closure-capture analysis over fan-out sites
//! (`shared-mutable-capture-in-parallel`), a reducer audit
//! (`order-sensitive-reduction`), and intraprocedural taint tracking from
//! hash-iteration order to output sinks (`nondeterministic-iteration-flow`),
//! rendered into the `determinism.json` artifact. The rules enforce the
//! invariants the equivalence suites rely on: panic-free and cast-checked
//! counting kernels, bit-identical parallel reductions, wall-clock confined
//! to the stats layer, randomness confined to datagen, and full
//! `MiningStats` coverage in the CLI. See DESIGN.md §"Correctness tooling"
//! for the contracts and `rules::RULES` for the registry.

pub mod callgraph;
pub mod dataflow;
pub mod determinism;
pub mod effects;
pub mod engine;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod semantic;
