//! # seqpat-prefixspan — PrefixSpan pattern-growth miner (extension).
//!
//! **Not part of the ICDE 1995 paper.** PrefixSpan (Pei et al., 2001/2004)
//! is the pattern-growth successor the field eventually standardized on;
//! this crate implements it as a comparator so the experiment harness can
//! show where the 1995 apriori-family algorithms stand against a
//! generation-free miner (experiment E6 in DESIGN.md).
//!
//! The implementation is the full itemset-sequence variant with
//! **pseudo-projection**: a projected database is a list of
//! `(customer, earliest-embedding pointer)` pairs, never a copy of the
//! data. Support is customer-level, exactly matching the 1995 paper's
//! definition, so the set of frequent sequences found here equals
//! AprioriAll's large-sequence set (pinned by tests and by workspace
//! property tests).
//!
//! ```
//! use seqpat_prefixspan::{prefixspan, PrefixSpanConfig};
//! use seqpat_core::{Database, MinSupport};
//!
//! let db = Database::from_rows(vec![
//!     (1, 1, vec![30]), (1, 2, vec![90]),
//!     (2, 1, vec![30]), (2, 2, vec![40, 70]), (2, 3, vec![90]),
//! ]);
//! let found = prefixspan(&db, MinSupport::Count(2), &PrefixSpanConfig::default());
//! assert!(found.iter().any(|p| p.sequence.to_string() == "<(30)(90)>" && p.support == 2));
//! ```

use seqpat_core::contain::sequence_contains;
use seqpat_core::{Database, Item, Itemset, MinSupport, Pattern, Sequence};

pub mod projection;

use projection::{Pointer, ProjectedDb};

/// Tuning options for PrefixSpan.
#[derive(Debug, Clone, Default)]
pub struct PrefixSpanConfig {
    /// Optional cap on pattern length (number of elements).
    pub max_length: Option<usize>,
    /// Optional cap on total items in a pattern.
    pub max_items: Option<usize>,
}

/// Counters reported by [`prefixspan_with_stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrefixSpanStats {
    /// Number of projected databases materialized (= recursion nodes).
    pub projections: u64,
    /// Frequent patterns emitted.
    pub patterns: u64,
}

/// Mines **all** frequent sequences (the paper's "large sequences") with
/// customer-level support `>= min_support`. Patterns are returned sorted by
/// length, then lexicographically.
pub fn prefixspan(
    db: &Database,
    min_support: MinSupport,
    config: &PrefixSpanConfig,
) -> Vec<Pattern> {
    prefixspan_with_stats(db, min_support, config).0
}

/// Like [`prefixspan`], also returning search statistics.
pub fn prefixspan_with_stats(
    db: &Database,
    min_support: MinSupport,
    config: &PrefixSpanConfig,
) -> (Vec<Pattern>, PrefixSpanStats) {
    let min_count = min_support.to_count(db.num_customers());
    let customers: Vec<Vec<&[Item]>> = db
        .customers()
        .iter()
        .map(|c| {
            c.transactions
                .iter()
                .map(|t| t.items.items())
                .collect::<Vec<_>>()
        })
        .collect();

    let mut stats = PrefixSpanStats::default();
    let mut out: Vec<Pattern> = Vec::new();

    // Level 1: frequent single items anywhere.
    let mut item_counts: std::collections::BTreeMap<Item, u64> = std::collections::BTreeMap::new();
    for customer in &customers {
        let mut seen: Vec<Item> = customer.iter().flat_map(|t| t.iter().copied()).collect();
        seen.sort_unstable();
        seen.dedup();
        for item in seen {
            *item_counts.entry(item).or_insert(0) += 1;
        }
    }

    for (&item, &support) in item_counts.iter() {
        if support < min_count {
            continue;
        }
        // Build the projection for ⟨(item)⟩: earliest transaction holding it.
        let mut proj = ProjectedDb::default();
        for (ci, customer) in customers.iter().enumerate() {
            if let Some(t) = customer.iter().position(|trans| trans.contains(&item)) {
                proj.entries.push(Pointer {
                    customer: ci as u32,
                    transaction: t as u32,
                });
            }
        }
        let prefix = vec![vec![item]];
        grow(
            &customers, &prefix, support, &proj, min_count, config, &mut out, &mut stats,
        );
    }

    out.sort_by(|a, b| {
        (a.sequence.len(), a.sequence.elements()).cmp(&(b.sequence.len(), b.sequence.elements()))
    });
    (out, stats)
}

/// Mines only the **maximal** frequent sequences — the 1995 paper's answer
/// set — by post-pruning the full PrefixSpan output.
pub fn prefixspan_maximal(
    db: &Database,
    min_support: MinSupport,
    config: &PrefixSpanConfig,
) -> Vec<Pattern> {
    let mut all = prefixspan(db, min_support, config);
    all.sort_by(|a, b| {
        (b.sequence.len(), b.sequence.total_items())
            .cmp(&(a.sequence.len(), a.sequence.total_items()))
    });
    let mut kept: Vec<Pattern> = Vec::new();
    'outer: for pat in all {
        for k in &kept {
            if sequence_contains(k.sequence.elements(), pat.sequence.elements()) {
                continue 'outer;
            }
        }
        kept.push(pat);
    }
    kept.sort_by(|a, b| {
        (a.sequence.len(), a.sequence.elements()).cmp(&(b.sequence.len(), b.sequence.elements()))
    });
    kept
}

/// Recursive pattern growth. `prefix` is the current pattern (non-empty,
/// items of each element ascending), `support` its customer support, `proj`
/// the pseudo-projection (earliest-embedding pointers).
#[allow(clippy::too_many_arguments)]
fn grow(
    customers: &[Vec<&[Item]>],
    prefix: &[Vec<Item>],
    support: u64,
    proj: &ProjectedDb,
    min_count: u64,
    config: &PrefixSpanConfig,
    out: &mut Vec<Pattern>,
    stats: &mut PrefixSpanStats,
) {
    stats.projections += 1;
    stats.patterns += 1;
    out.push(Pattern {
        sequence: Sequence::new(
            prefix
                .iter()
                .cloned()
                .map(Itemset::from_sorted_vec)
                .collect(),
        ),
        support,
    });

    let total_items: usize = prefix.iter().map(|e| e.len()).sum();
    let length_capped = config.max_length.is_some_and(|cap| prefix.len() >= cap);
    let items_capped = config.max_items.is_some_and(|cap| total_items >= cap);
    if items_capped {
        return;
    }

    let last = prefix.last().expect("prefix is non-empty");
    let last_max = *last.last().expect("elements are non-empty");

    // Count candidate extensions, deduplicated per customer.
    let mut s_counts: std::collections::BTreeMap<Item, u64> = std::collections::BTreeMap::new();
    let mut i_counts: std::collections::BTreeMap<Item, u64> = std::collections::BTreeMap::new();
    let mut s_seen: Vec<Item> = Vec::new();
    let mut i_seen: Vec<Item> = Vec::new();
    for ptr in &proj.entries {
        let customer = &customers[ptr.customer as usize];
        s_seen.clear();
        i_seen.clear();
        if !length_capped {
            for trans in customer.iter().skip(ptr.transaction as usize + 1) {
                s_seen.extend_from_slice(trans);
            }
        }
        for trans in customer.iter().skip(ptr.transaction as usize) {
            if is_subset(last, trans) {
                i_seen.extend(trans.iter().copied().filter(|&x| x > last_max));
            }
        }
        s_seen.sort_unstable();
        s_seen.dedup();
        i_seen.sort_unstable();
        i_seen.dedup();
        for &x in &s_seen {
            *s_counts.entry(x).or_insert(0) += 1;
        }
        for &x in &i_seen {
            *i_counts.entry(x).or_insert(0) += 1;
        }
    }

    // i-extensions first (canonical order puts ⟨(a b)⟩ before ⟨(a)(b)⟩ —
    // cosmetic only; the final sort fixes presentation order).
    for (&x, &count) in i_counts.iter() {
        if count < min_count {
            continue;
        }
        let mut new_last = last.clone();
        new_last.push(x);
        let mut new_prefix = prefix.to_vec();
        *new_prefix.last_mut().expect("non-empty") = new_last.clone();
        let mut new_proj = ProjectedDb::default();
        for ptr in &proj.entries {
            let customer = &customers[ptr.customer as usize];
            let found = (ptr.transaction as usize..customer.len())
                .find(|&t| is_subset(&new_last, customer[t]));
            if let Some(t) = found {
                new_proj.entries.push(Pointer {
                    customer: ptr.customer,
                    transaction: t as u32,
                });
            }
        }
        grow(
            customers,
            &new_prefix,
            count,
            &new_proj,
            min_count,
            config,
            out,
            stats,
        );
    }

    if length_capped {
        return;
    }
    for (&x, &count) in s_counts.iter() {
        if count < min_count {
            continue;
        }
        let mut new_prefix = prefix.to_vec();
        new_prefix.push(vec![x]);
        let mut new_proj = ProjectedDb::default();
        for ptr in &proj.entries {
            let customer = &customers[ptr.customer as usize];
            let found =
                (ptr.transaction as usize + 1..customer.len()).find(|&t| customer[t].contains(&x));
            if let Some(t) = found {
                new_proj.entries.push(Pointer {
                    customer: ptr.customer,
                    transaction: t as u32,
                });
            }
        }
        grow(
            customers,
            &new_prefix,
            count,
            &new_proj,
            min_count,
            config,
            out,
            stats,
        );
    }
}

/// `a ⊆ b` for sorted slices.
fn is_subset(a: &[Item], b: &[Item]) -> bool {
    let mut bi = 0;
    'outer: for &x in a {
        while bi < b.len() {
            match b[bi].cmp(&x) {
                std::cmp::Ordering::Less => bi += 1,
                std::cmp::Ordering::Equal => {
                    bi += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Extension trait hook: `Itemset::from_sorted` has a debug-only invariant
/// check; this adapter converts the miner's already-sorted vectors.
trait FromSortedVec {
    fn from_sorted_vec(items: Vec<Item>) -> Itemset;
}

impl FromSortedVec for Itemset {
    fn from_sorted_vec(items: Vec<Item>) -> Itemset {
        Itemset::from_sorted(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_db() -> Database {
        Database::from_rows(vec![
            (1, 1, vec![30]),
            (1, 2, vec![90]),
            (2, 1, vec![10, 20]),
            (2, 2, vec![30]),
            (2, 3, vec![40, 60, 70]),
            (3, 1, vec![30, 50, 70]),
            (4, 1, vec![30]),
            (4, 2, vec![40, 70]),
            (4, 3, vec![90]),
            (5, 1, vec![90]),
        ])
    }

    fn strings(patterns: &[Pattern]) -> Vec<String> {
        patterns
            .iter()
            .map(|p| format!("{}:{}", p.sequence, p.support))
            .collect()
    }

    #[test]
    fn all_large_sequences_of_paper_example() {
        let found = prefixspan(
            &paper_db(),
            MinSupport::Fraction(0.25),
            &PrefixSpanConfig::default(),
        );
        assert_eq!(
            strings(&found),
            vec![
                "<(30)>:4",
                "<(40)>:2",
                "<(40 70)>:2",
                "<(70)>:3",
                "<(90)>:3",
                "<(30)(40)>:2",
                "<(30)(40 70)>:2",
                "<(30)(70)>:2",
                "<(30)(90)>:2",
            ]
        );
    }

    #[test]
    fn maximal_matches_paper_answer() {
        let found = prefixspan_maximal(
            &paper_db(),
            MinSupport::Fraction(0.25),
            &PrefixSpanConfig::default(),
        );
        assert_eq!(strings(&found), vec!["<(30)(40 70)>:2", "<(30)(90)>:2"]);
    }

    #[test]
    fn i_extension_looks_past_the_first_embedding() {
        // Pattern ⟨(1)⟩ points at transaction 0; the itemset (1 3) only
        // exists in transaction 1 — pseudo-projection must still find it.
        let db = Database::from_rows(vec![(1, 1, vec![1, 2]), (1, 2, vec![1, 3])]);
        let found = prefixspan(&db, MinSupport::Count(1), &PrefixSpanConfig::default());
        assert!(strings(&found).contains(&"<(1 3)>:1".to_string()));
    }

    #[test]
    fn max_length_config() {
        let found = prefixspan(
            &paper_db(),
            MinSupport::Fraction(0.25),
            &PrefixSpanConfig {
                max_length: Some(1),
                ..Default::default()
            },
        );
        assert!(found.iter().all(|p| p.sequence.len() == 1));
        // i-extensions within the single element still happen.
        assert!(strings(&found).contains(&"<(40 70)>:2".to_string()));
    }

    #[test]
    fn max_items_config() {
        let found = prefixspan(
            &paper_db(),
            MinSupport::Fraction(0.25),
            &PrefixSpanConfig {
                max_items: Some(1),
                ..Default::default()
            },
        );
        assert!(found.iter().all(|p| p.sequence.total_items() == 1));
    }

    #[test]
    fn stats_reported() {
        let (found, stats) = prefixspan_with_stats(
            &paper_db(),
            MinSupport::Fraction(0.25),
            &PrefixSpanConfig::default(),
        );
        assert_eq!(stats.patterns as usize, found.len());
        assert!(stats.projections >= stats.patterns);
    }

    #[test]
    fn empty_database() {
        let found = prefixspan(
            &Database::default(),
            MinSupport::Count(1),
            &PrefixSpanConfig::default(),
        );
        assert!(found.is_empty());
    }

    #[test]
    fn repeated_items_across_transactions() {
        // ⟨(7)(7)⟩ supported by both customers.
        let db = Database::from_rows(vec![
            (1, 1, vec![7]),
            (1, 2, vec![7]),
            (2, 1, vec![7]),
            (2, 2, vec![7]),
            (2, 3, vec![7]),
        ]);
        let found = prefixspan(&db, MinSupport::Count(2), &PrefixSpanConfig::default());
        assert!(strings(&found).contains(&"<(7)(7)>:2".to_string()));
        // ⟨(7)(7)(7)⟩ only customer 2.
        assert!(!strings(&found).contains(&"<(7)(7)(7)>:2".to_string()));
    }
}
