//! A brute-force reference miner — the testing oracle.
//!
//! Deliberately shares **no** machinery with the real pipeline: no litemset
//! ids, no transformation, no apriori join. Large itemsets are enumerated
//! straight from transaction subsets; sequences grow by appending every
//! large itemset and are counted with direct containment scans over the
//! original database. Exponential, so only usable on small databases —
//! which is exactly what the property tests feed it.

use crate::contain::sequence_contains;
use crate::fxhash::FxHashSet;
use crate::support::MinSupport;
use crate::types::database::Database;
use crate::types::itemset::{Item, Itemset};
use crate::types::sequence::Sequence;

/// Resource caps so a pathological random input cannot hang a test run.
#[derive(Debug, Clone, Copy)]
pub struct NaiveLimits {
    /// Maximum itemset size enumerated (subsets of transactions up to this
    /// cardinality).
    pub max_itemset_size: usize,
    /// Maximum sequence length explored.
    pub max_sequence_length: usize,
}

impl Default for NaiveLimits {
    fn default() -> Self {
        Self {
            max_itemset_size: 4,
            max_sequence_length: 6,
        }
    }
}

/// All large sequences (not only maximal), with supports, sorted by length
/// then lexicographically.
pub fn naive_all_large(
    db: &Database,
    min_support: MinSupport,
    limits: NaiveLimits,
) -> Vec<(Sequence, u64)> {
    let min_count = min_support.to_count(db.num_customers());
    let large_itemsets = large_itemsets(db, min_count, limits.max_itemset_size);
    if large_itemsets.is_empty() {
        return Vec::new();
    }

    // Pre-extract each customer's itemset view once.
    let customer_views: Vec<Vec<Itemset>> = db
        .customers()
        .iter()
        .map(|c| c.itemsets().cloned().collect())
        .collect();
    let count = |seq: &[Itemset]| -> u64 {
        customer_views
            .iter()
            .filter(|view| sequence_contains(view, seq))
            .count() as u64
    };

    let mut result: Vec<(Sequence, u64)> = Vec::new();
    let mut frontier: Vec<Vec<Itemset>> = large_itemsets.iter().map(|s| vec![s.clone()]).collect();
    // Supports of 1-sequences equal the itemset supports, but recount for
    // oracle independence anyway.
    let mut level = 1usize;
    while !frontier.is_empty() && level <= limits.max_sequence_length {
        let mut next: Vec<Vec<Itemset>> = Vec::new();
        for seq in frontier {
            let support = count(&seq);
            if support >= min_count {
                if level < limits.max_sequence_length {
                    for ext in &large_itemsets {
                        let mut longer = seq.clone();
                        longer.push(ext.clone());
                        next.push(longer);
                    }
                }
                result.push((Sequence::new(seq), support));
            }
        }
        frontier = next;
        level += 1;
    }
    result.sort_by(|a, b| (a.0.len(), a.0.elements()).cmp(&(b.0.len(), b.0.elements())));
    result
}

/// The maximal large sequences — the paper's answer set — computed from
/// [`naive_all_large`] by pairwise containment pruning.
pub fn naive_maximal(
    db: &Database,
    min_support: MinSupport,
    limits: NaiveLimits,
) -> Vec<(Sequence, u64)> {
    let mut all = naive_all_large(db, min_support, limits);
    // Containers first: by length, then total items (equal-length
    // containment implies element-wise subsets) — same argument as in
    // [`crate::phases::maximal`].
    all.sort_by_key(|a| std::cmp::Reverse((a.0.len(), a.0.total_items())));
    let mut kept: Vec<(Sequence, u64)> = Vec::new();
    'outer: for (seq, support) in all {
        for (k, _) in &kept {
            if seq.is_contained_in(k) {
                continue 'outer;
            }
        }
        kept.push((seq, support));
    }
    kept.sort_by(|a, b| (a.0.len(), a.0.elements()).cmp(&(b.0.len(), b.0.elements())));
    kept
}

/// Enumerates every itemset (size ≤ cap) appearing as a subset of some
/// transaction and returns those with customer support ≥ `min_count`,
/// lexicographically sorted.
fn large_itemsets(db: &Database, min_count: u64, max_size: usize) -> Vec<Itemset> {
    // Universe of candidate itemsets: subsets of individual transactions.
    let mut universe: FxHashSet<Vec<Item>> = FxHashSet::default();
    for customer in db.customers() {
        for transaction in &customer.transactions {
            let items = transaction.items.items();
            subsets_up_to(items, max_size, &mut |subset| {
                universe.insert(subset.to_vec());
            });
        }
    }
    let mut large: Vec<Itemset> = Vec::new();
    for items in universe {
        let candidate = Itemset::from_sorted(items);
        let support = db
            .customers()
            .iter()
            .filter(|c| {
                c.transactions
                    .iter()
                    .any(|t| candidate.is_subset_of(&t.items))
            })
            .count() as u64;
        if support >= min_count {
            large.push(candidate);
        }
    }
    large.sort();
    large
}

/// Calls `f` on every non-empty subset of `items` with size ≤ `max_size`.
fn subsets_up_to(items: &[Item], max_size: usize, f: &mut impl FnMut(&[Item])) {
    let mut current: Vec<Item> = Vec::new();
    fn recurse(
        items: &[Item],
        start: usize,
        max_size: usize,
        current: &mut Vec<Item>,
        f: &mut impl FnMut(&[Item]),
    ) {
        for i in start..items.len() {
            current.push(items[i]);
            f(current);
            if current.len() < max_size {
                recurse(items, i + 1, max_size, current, f);
            }
            current.pop();
        }
    }
    recurse(items, 0, max_size, &mut current, f);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_db() -> Database {
        Database::from_rows(vec![
            (1, 1, vec![30]),
            (1, 2, vec![90]),
            (2, 1, vec![10, 20]),
            (2, 2, vec![30]),
            (2, 3, vec![40, 60, 70]),
            (3, 1, vec![30, 50, 70]),
            (4, 1, vec![30]),
            (4, 2, vec![40, 70]),
            (4, 3, vec![90]),
            (5, 1, vec![90]),
        ])
    }

    #[test]
    fn oracle_reproduces_paper_answer() {
        let maximal = naive_maximal(
            &paper_db(),
            MinSupport::Fraction(0.25),
            NaiveLimits::default(),
        );
        let strs: Vec<String> = maximal
            .iter()
            .map(|(s, sup)| format!("{s}:{sup}"))
            .collect();
        assert_eq!(strs, vec!["<(30)(40 70)>:2", "<(30)(90)>:2"]);
    }

    #[test]
    fn all_large_includes_every_subsequence() {
        let all = naive_all_large(
            &paper_db(),
            MinSupport::Fraction(0.25),
            NaiveLimits::default(),
        );
        assert_eq!(all.len(), 9);
        // Downward closure: every subsequence of a large sequence is large.
        for (seq, _) in &all {
            if seq.len() == 2 {
                let prefix = Sequence::new(seq.elements()[..1].to_vec());
                assert!(all.iter().any(|(s, _)| *s == prefix));
            }
        }
    }

    #[test]
    fn subsets_enumeration_respects_cap() {
        let mut got: Vec<Vec<Item>> = Vec::new();
        subsets_up_to(&[1, 2, 3], 2, &mut |s| got.push(s.to_vec()));
        got.sort();
        assert_eq!(
            got,
            vec![
                vec![1],
                vec![1, 2],
                vec![1, 3],
                vec![2],
                vec![2, 3],
                vec![3]
            ]
        );
    }

    #[test]
    fn sequence_length_cap_respected() {
        let all = naive_all_large(
            &paper_db(),
            MinSupport::Fraction(0.25),
            NaiveLimits {
                max_itemset_size: 4,
                max_sequence_length: 1,
            },
        );
        assert!(all.iter().all(|(s, _)| s.len() == 1));
    }
}
