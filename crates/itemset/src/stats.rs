//! Phase timing for the mining pipelines.
//!
//! All wall-clock reads in the mining code go through [`Stopwatch`] so that
//! seqpat-lint's no-wall-clock-outside-stats rule can confine
//! `Instant`/`SystemTime` to the stats layer: timing lives here (and in the
//! bench/CLI crates), never inside algorithms or kernels.

use std::time::{Duration, Instant};

/// A started wall-clock timer. The only sanctioned way for mining code to
/// measure phase durations.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Self {
            started: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
    }
}
