//! Property tests for the serving layer: `predict` must agree exactly
//! with the naive linear-scan oracle for arbitrary prefixes (hits,
//! misses, empty prefixes, `k` larger than any fanout), and the
//! `SEQPATS1` on-disk form must round-trip byte-identically.

use std::path::PathBuf;

use proptest::prelude::*;
use seqpat_core::{Itemset, LargeIdSequence, LitemsetTable};
use seqpat_serve::{oracle_predict, PatternTrie};

const UNIVERSE: u32 = 8;

fn table() -> LitemsetTable {
    LitemsetTable::new(
        (0..UNIVERSE)
            .map(|i| (Itemset::new(vec![i + 1]), 5))
            .collect(),
    )
}

/// Pattern sets over a small id alphabet so prefixes collide often.
/// Duplicated id sequences (with different supports) are deliberately
/// possible: the builder must collapse them to the max.
fn patterns_strategy() -> impl Strategy<Value = Vec<LargeIdSequence>> {
    proptest::collection::vec(
        (proptest::collection::vec(0u32..UNIVERSE, 1..6), 1u64..50),
        0..30,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(ids, support)| LargeIdSequence { ids, support })
            .collect()
    })
}

/// Query prefixes range past the table (ids 8..10 can never match), and
/// include the empty prefix.
fn prefix_strategy() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..(UNIVERSE + 2), 0..6)
}

fn tmp(tag: u64) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "seqpat-serve-prop-{}-{tag}.seqpats",
        std::process::id()
    ));
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn predict_agrees_with_the_linear_scan_oracle(
        patterns in patterns_strategy(),
        prefix in prefix_strategy(),
        k in 0usize..12,
    ) {
        let trie = PatternTrie::build(&patterns, table(), 100).expect("build");
        prop_assert_eq!(
            trie.predict(&prefix, k),
            oracle_predict(&patterns, &prefix, k),
            "prefix {:?} k {}",
            prefix,
            k
        );
    }

    #[test]
    fn seqpats1_roundtrips_byte_identically(
        patterns in patterns_strategy(),
        tag in 0u64..u64::MAX,
    ) {
        let trie = PatternTrie::build(&patterns, table(), 100).expect("build");
        let bytes = trie.to_bytes().expect("serialize");

        let path = tmp(tag);
        trie.save(&path).expect("save");
        let loaded = PatternTrie::load(&path).expect("load");
        std::fs::remove_file(&path).ok();

        // Loading then re-serializing reproduces the exact bytes, and the
        // loaded index answers like the original.
        prop_assert_eq!(&loaded.to_bytes().expect("re-serialize"), &bytes);
        prop_assert_eq!(loaded.num_patterns(), trie.num_patterns());
        for prefix in [&[][..], &[0][..], &[0, 1][..], &[7, 7][..]] {
            prop_assert_eq!(loaded.predict(prefix, 8), trie.predict(prefix, 8));
        }

        // The layout is canonical: rebuilding from the recovered pattern
        // set (a different input order than the original draw) must
        // serialize to the same bytes.
        let rebuilt = PatternTrie::build(&loaded.patterns(), table(), 100).expect("rebuild");
        prop_assert_eq!(&rebuilt.to_bytes().expect("rebuilt serialize"), &bytes);
    }
}
