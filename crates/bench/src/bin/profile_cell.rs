//! Diagnostic: per-phase timing of one (minsup, dataset, |D|) cell.
//!
//! ```sh
//! profile_cell [minsup] [dataset] [customers]   # e.g. 0.005 C10-T5-S4-I2.5 2000
//! ```
//!
//! Prints litemset/transform/pass-2/sequence/maximal timings plus the full
//! pass log — the tool used to find the hot phases documented in DESIGN.md.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let minsup: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.002);
    let dataset = args.get(2).map(|s| s.as_str()).unwrap_or("C10-T5-S4-I2.5");
    let customers: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(10_000);
    let params = seqpat_datagen::GenParams::paper_dataset(dataset)
        .unwrap()
        .customers(customers);
    let db = seqpat_datagen::generate(&params, 42);
    let min_count = seqpat_core::MinSupport::Fraction(minsup).to_count(db.num_customers());
    println!("min_count {min_count}");
    let t = std::time::Instant::now();
    let lit = seqpat_core::phases::litemset::litemset_phase(
        &db,
        min_count,
        &seqpat_itemset::AprioriConfig::default(),
    );
    println!(
        "litemset: {:?}, {} litemsets, passes {:?}",
        t.elapsed(),
        lit.table.len(),
        lit.passes
    );
    let t = std::time::Instant::now();
    let tdb = seqpat_core::phases::transform::transform_phase(&db, lit.table);
    let avg_ids: f64 = tdb
        .customers
        .iter()
        .map(|c| c.elements.iter().map(|e| e.len()).sum::<usize>() as f64)
        .sum::<f64>()
        / tdb.customers.len() as f64;
    println!(
        "transform: {:?}, avg ids/customer {:.1}",
        t.elapsed(),
        avg_ids
    );
    let t = std::time::Instant::now();
    let mut stats = seqpat_core::MiningStats::default();
    let opts = seqpat_core::algorithms::apriori_all::SequencePhaseOptions::default();
    let (gen2, l2) = seqpat_core::counting::large_two_sequences(
        &tdb,
        min_count,
        seqpat_core::Parallelism::default(),
        &mut stats.containment_tests,
    );
    println!("pass2: {:?}, C2 {} L2 {}", t.elapsed(), gen2, l2.len());
    let t = std::time::Instant::now();
    let large = seqpat_core::algorithms::apriori_all(&tdb, min_count, &opts, &mut stats);
    println!(
        "full sequence phase: {:?}, {} large",
        t.elapsed(),
        large.len()
    );
    for p in &stats.sequence_passes {
        println!(
            "  k={} gen={} counted={} large={}",
            p.k, p.generated, p.counted, p.large
        );
    }
    let t = std::time::Instant::now();
    let maximal = seqpat_core::phases::maximal::maximal_phase(large, &tdb.table);
    println!("maximal: {:?}, {} maximal", t.elapsed(), maximal.len());
}
