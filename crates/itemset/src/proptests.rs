//! Property tests: the Apriori miner against a brute-force oracle on
//! arbitrary small inputs.

use proptest::prelude::*;

use crate::{mine_large_itemsets, AprioriConfig, CustomerTransactions, Item, LargeItemset};

/// Oracle: enumerate every subset (≤ 4 items) of every transaction and
/// count customer support directly.
fn oracle(customers: &[CustomerTransactions], min_count: u64) -> Vec<LargeItemset> {
    use std::collections::BTreeSet;
    let mut universe: BTreeSet<Vec<Item>> = BTreeSet::new();
    fn subsets(
        items: &[Item],
        cap: usize,
        current: &mut Vec<Item>,
        out: &mut BTreeSet<Vec<Item>>,
        start: usize,
    ) {
        for i in start..items.len() {
            current.push(items[i]);
            out.insert(current.clone());
            if current.len() < cap {
                subsets(items, cap, current, out, i + 1);
            }
            current.pop();
        }
    }
    for customer in customers {
        for t in customer {
            subsets(t, 4, &mut Vec::new(), &mut universe, 0);
        }
    }
    let mut large: Vec<LargeItemset> = Vec::new();
    for items in universe {
        let support = customers
            .iter()
            .filter(|c| {
                c.iter()
                    .any(|t| items.iter().all(|i| t.binary_search(i).is_ok()))
            })
            .count() as u64;
        if support >= min_count {
            large.push(LargeItemset { items, support });
        }
    }
    large.sort_by(|a, b| a.items.cmp(&b.items));
    large
}

fn arb_customers() -> impl Strategy<Value = Vec<CustomerTransactions>> {
    let transaction = proptest::collection::btree_set(0u32..8, 1..=4)
        .prop_map(|s| s.into_iter().collect::<Vec<_>>());
    let customer = proptest::collection::vec(transaction, 1..=4);
    proptest::collection::vec(customer, 0..=6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn apriori_matches_oracle(customers in arb_customers(), min_count in 1u64..=3) {
        let config = AprioriConfig {
            max_itemset_size: Some(4),
            ..AprioriConfig::default()
        };
        let mut mined = mine_large_itemsets(&customers, min_count, &config);
        mined.sort_by(|a, b| a.items.cmp(&b.items));
        prop_assert_eq!(mined, oracle(&customers, min_count));
    }

    #[test]
    fn hash_tree_and_direct_counting_agree(customers in arb_customers(), min_count in 1u64..=3) {
        let tree_heavy = AprioriConfig {
            direct_count_threshold: 0,
            hash_tree_fanout: 2,
            hash_tree_leaf_capacity: 1,
            ..AprioriConfig::default()
        };
        let direct_only = AprioriConfig {
            direct_count_threshold: usize::MAX,
            ..AprioriConfig::default()
        };
        let mut a = mine_large_itemsets(&customers, min_count, &tree_heavy);
        let mut b = mine_large_itemsets(&customers, min_count, &direct_only);
        a.sort_by(|x, y| x.items.cmp(&y.items));
        b.sort_by(|x, y| x.items.cmp(&y.items));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn downward_closure_holds(customers in arb_customers(), min_count in 1u64..=3) {
        let mined = mine_large_itemsets(&customers, min_count, &AprioriConfig::default());
        // Every subset of a large itemset is large (with ≥ the support).
        for l in &mined {
            if l.items.len() >= 2 {
                for drop in 0..l.items.len() {
                    let mut sub = l.items.clone();
                    sub.remove(drop);
                    let found = mined.iter().find(|x| x.items == sub);
                    prop_assert!(found.is_some(), "{sub:?} missing though {:?} is large", l.items);
                    prop_assert!(found.unwrap().support >= l.support);
                }
            }
        }
    }
}
