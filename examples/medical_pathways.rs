//! Mining care pathways from per-patient medical event histories.
//!
//! ```sh
//! cargo run --example medical_pathways
//! ```
//!
//! Each "customer" is a patient; each "transaction" is one encounter (which
//! may record several events at once — a diagnosis and a prescription in
//! the same visit form one itemset); the mined maximal sequences are the
//! common care pathways. The example also round-trips the cohort through
//! the SPMF on-disk format to show the I/O layer.

use seqpat::io::spmf;
use seqpat::{Algorithm, Database, MinSupport, Miner, MinerConfig};

// Event codes.
const VISIT_GP: u32 = 1;
const LAB_A1C: u32 = 2; // HbA1c test
const DX_DIABETES: u32 = 3;
const RX_METFORMIN: u32 = 4;
const VISIT_SPECIALIST: u32 = 5;
const RX_INSULIN: u32 = 6;
const LAB_LIPIDS: u32 = 7;
const RX_STATIN: u32 = 8;

fn name(code: u32) -> &'static str {
    match code {
        VISIT_GP => "gp-visit",
        LAB_A1C => "hba1c-test",
        DX_DIABETES => "dx-diabetes",
        RX_METFORMIN => "rx-metformin",
        VISIT_SPECIALIST => "specialist",
        RX_INSULIN => "rx-insulin",
        LAB_LIPIDS => "lipid-panel",
        RX_STATIN => "rx-statin",
        _ => "?",
    }
}

fn render(e: &seqpat::Itemset) -> String {
    let names: Vec<&str> = e.items().iter().map(|&i| name(i)).collect();
    format!("[{}]", names.join("+"))
}

fn main() {
    // 60 synthetic patients, deterministic mix of three pathway templates.
    let mut rows: Vec<(u64, i64, Vec<u32>)> = Vec::new();
    for patient in 0..60u64 {
        let history: Vec<Vec<u32>> = match patient % 5 {
            // Classic diabetes pathway: GP visit with lab, diagnosis +
            // first-line drug in one encounter, follow-up at specialist.
            0 | 1 => vec![
                vec![VISIT_GP, LAB_A1C],
                vec![DX_DIABETES, RX_METFORMIN],
                vec![VISIT_SPECIALIST],
            ],
            // Escalation pathway: ends with insulin.
            2 => vec![
                vec![VISIT_GP, LAB_A1C],
                vec![DX_DIABETES, RX_METFORMIN],
                vec![VISIT_SPECIALIST, RX_INSULIN],
            ],
            // Cardio-metabolic screening.
            3 => vec![vec![VISIT_GP, LAB_LIPIDS], vec![RX_STATIN]],
            // Sparse utilizers.
            _ => vec![vec![VISIT_GP]],
        };
        for (t, events) in history.into_iter().enumerate() {
            rows.push((patient, t as i64, events));
        }
    }
    let db = Database::from_rows(rows);

    // Round-trip through the SPMF format to demonstrate persistence.
    let path = std::env::temp_dir().join("seqpat_medical_cohort.spmf");
    spmf::write_file(&db, &path).expect("write cohort");
    let db = spmf::read_file(&path).expect("reload cohort");
    println!(
        "cohort: {} patients (via {})\n",
        db.num_customers(),
        path.display()
    );

    let result =
        Miner::new(MinerConfig::new(MinSupport::Fraction(0.30)).algorithm(Algorithm::AprioriAll))
            .mine(&db);

    println!("care pathways supported by ≥30% of patients:");
    for p in &result.patterns {
        let steps: Vec<String> = p.sequence.elements().iter().map(render).collect();
        println!(
            "  {}  ({} patients, {:.0}%)",
            steps.join(" → "),
            p.support,
            100.0 * result.support_fraction(p)
        );
    }

    // The diagnosis+metformin encounter must show up as one multi-event
    // element inside a longer pathway (itemsets within sequences — the
    // capability that separates this problem from plain episode mining).
    let combined = result.patterns.iter().any(|p| {
        p.sequence
            .elements()
            .iter()
            .any(|e| e.contains(DX_DIABETES) && e.contains(RX_METFORMIN))
            && p.sequence.len() >= 3
    });
    assert!(
        combined,
        "expected the 3-step pathway with a combined dx+rx encounter"
    );
    println!("\nfound the combined diagnosis+prescription encounter inside a 3-step pathway ✓");

    std::fs::remove_file(&path).ok();
}
