//! Support counting at customer granularity.
//!
//! The litemset phase of the ICDE'95 pipeline differs from market-basket
//! Apriori in exactly one way: an itemset's support is the number of
//! **customers** with at least one containing transaction, not the number of
//! containing transactions. Both counters here implement that semantic —
//! one by direct subset tests, one through the candidate [`HashTree`] — and
//! are interchangeable (a test in `lib.rs` pins their agreement).

use crate::cast::{id32, idx, w64};
use crate::hash_tree::{HashTree, VisitStamps};
use crate::parallel::{map_chunks, sum_partials};
use crate::{AprioriConfig, CustomerTransactions, Item, LargeItemset};

/// Counts every single item per customer and returns the large 1-itemsets,
/// sorted by item id (which is lexicographic order for singletons).
pub fn count_single_items(customers: &[CustomerTransactions], min_count: u64) -> Vec<LargeItemset> {
    // Item ids may be sparse; a map keeps this robust for arbitrary inputs.
    let mut counts: std::collections::HashMap<Item, u64> = std::collections::HashMap::new();
    let mut seen_this_customer: Vec<Item> = Vec::new();
    for customer in customers {
        seen_this_customer.clear();
        for transaction in customer {
            seen_this_customer.extend_from_slice(transaction);
        }
        seen_this_customer.sort_unstable();
        seen_this_customer.dedup();
        for &item in &seen_this_customer {
            *counts.entry(item).or_insert(0) += 1;
        }
    }
    let mut large: Vec<LargeItemset> = counts
        .into_iter()
        .filter(|&(_, support)| support >= min_count)
        .map(|(item, support)| LargeItemset {
            // seqpat-lint: allow(no-alloc-in-hot-loop) one owned items vec per emitted large itemset — output-proportional, not input-proportional
            items: vec![item],
            support,
        })
        .collect();
    large.sort_by(|a, b| a.items.cmp(&b.items));
    large
}

/// Number of distinct items across the database (the implicit candidate
/// count of pass 1).
pub fn distinct_item_count(customers: &[CustomerTransactions]) -> u64 {
    let mut items: Vec<Item> = customers
        .iter()
        .flat_map(|c| c.iter())
        .flat_map(|t| t.iter().copied())
        .collect();
    items.sort_unstable();
    items.dedup();
    w64(items.len())
}

/// Counts candidate supports by brute-force subset tests, sharding
/// customers over `threads` workers. Preferable for tiny candidate sets
/// where hash-tree construction does not pay off.
pub fn count_candidates_direct(
    customers: &[CustomerTransactions],
    candidates: &[Vec<Item>],
    threads: usize,
) -> Vec<u64> {
    let partials = map_chunks(customers, threads, |chunk| {
        let mut supports = vec![0u64; candidates.len()];
        let mut hit = vec![false; candidates.len()];
        debug_assert_eq!(supports.len(), hit.len(), "one slot per candidate");
        for customer in chunk {
            hit.iter_mut().for_each(|h| *h = false);
            for transaction in customer {
                for (slot, cand) in candidates.iter().enumerate() {
                    if !hit[slot] && sorted_subset(cand, transaction) {
                        hit[slot] = true;
                    }
                }
            }
            for (slot, &h) in hit.iter().enumerate() {
                if h {
                    supports[slot] += 1;
                }
            }
        }
        supports
    });
    sum_partials(partials, candidates.len())
}

/// Counts candidate supports through the hash tree, deduplicating per
/// customer with epoch stamps. The tree is built once and shared
/// immutably by all workers; the visit stamps are per-worker scratch.
pub fn count_candidates_hash_tree(
    customers: &[CustomerTransactions],
    candidates: &[Vec<Item>],
    config: &AprioriConfig,
) -> Vec<u64> {
    let tree = HashTree::build(
        candidates,
        config.hash_tree_fanout,
        config.hash_tree_leaf_capacity,
    );
    let threads = config.parallelism.resolved_threads();
    let partials = map_chunks(customers, threads, |chunk| {
        let mut supports = vec![0u64; candidates.len()];
        let mut stamps = VisitStamps::new(candidates.len());
        for customer in chunk {
            stamps.next_epoch();
            for transaction in customer {
                tree.for_each_contained(transaction, candidates, &mut |id| {
                    debug_assert!(
                        idx(id) < supports.len(),
                        "the tree only reports indices into the candidate slice"
                    );
                    if stamps.first_visit(id) {
                        supports[idx(id)] += 1;
                    }
                });
            }
        }
        supports
    });
    sum_partials(partials, candidates.len())
}

/// Pass-2 fast path: counts every co-occurring pair of large items
/// directly, one customer scan, no candidate materialization. Customers
/// are sharded over `threads` workers, each with a private triangular
/// count array, merged in chunk order. Returns the implicit candidate
/// count (`C(|L1|, 2)`, what `apriori_gen` would emit) and the large
/// 2-itemsets in lexicographic order.
pub fn count_pairs_direct(
    customers: &[CustomerTransactions],
    l1: &[LargeItemset],
    min_count: u64,
    threads: usize,
) -> (u64, Vec<LargeItemset>) {
    let n = l1.len();
    let n_candidates = w64(n) * w64(n.saturating_sub(1)) / 2;
    // Item → L1-index map: dense vector for compact universes (branch-free
    // inner loop), binary search over the sorted L1 for sparse/huge item
    // ids (a dense table over ids near u32::MAX would be gigabytes).
    const DENSE_UNIVERSE_LIMIT: usize = 1 << 22;
    let max_item = idx(l1.iter().map(|l| l.items[0]).max().unwrap_or(0));
    let dense: Option<Vec<u32>> = if max_item < DENSE_UNIVERSE_LIMIT {
        let mut index = vec![u32::MAX; max_item + 1];
        for (i, l) in l1.iter().enumerate() {
            index[idx(l.items[0])] = id32(i);
        }
        Some(index)
    } else {
        None
    };
    let lookup = |item: Item| -> Option<u32> {
        match &dense {
            Some(index) => index.get(idx(item)).copied().filter(|&i| i != u32::MAX),
            None => l1
                .binary_search_by(|l| l.items[0].cmp(&item))
                .ok()
                .map(id32),
        }
    };

    // Triangular count matrix for (i < j); one private copy per worker,
    // summed in chunk order afterwards.
    let tri = |i: usize, j: usize| -> usize {
        debug_assert!(i < j);
        j * (j - 1) / 2 + i
    };
    let tri_len = n * (n.saturating_sub(1)) / 2 + 1;
    let partials = map_chunks(customers, threads, |chunk| {
        let mut counts = vec![0u32; tri_len];
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut mapped: Vec<u32> = Vec::new();
        for customer in chunk {
            pairs.clear();
            for transaction in customer {
                mapped.clear();
                mapped.extend(transaction.iter().filter_map(|&it| lookup(it)));
                for (a, &i) in mapped.iter().enumerate() {
                    for &j in &mapped[a + 1..] {
                        // Items are sorted but L1 indices follow item order,
                        // so i < j holds; keep the debug check honest anyway.
                        pairs.push((i.min(j), i.max(j)));
                    }
                }
            }
            pairs.sort_unstable();
            pairs.dedup();
            for &(i, j) in &pairs {
                counts[tri(idx(i), idx(j))] += 1;
            }
        }
        counts
    });
    let counts = sum_partials(partials, tri_len);

    let mut large = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let support = u64::from(counts[tri(i, j)]);
            if support >= min_count {
                large.push(LargeItemset {
                    // seqpat-lint: allow(no-alloc-in-hot-loop) one owned items vec per emitted large pair — output-proportional, not input-proportional
                    items: vec![l1[i].items[0], l1[j].items[0]],
                    support,
                });
            }
        }
    }
    large.sort_by(|a, b| a.items.cmp(&b.items));
    (n_candidates, large)
}

/// `a ⊆ b` for sorted, duplicate-free slices.
pub fn sorted_subset(a: &[Item], b: &[Item]) -> bool {
    debug_assert!(
        a.windows(2).all(|w| w[0] < w[1]) && b.windows(2).all(|w| w[0] < w[1]),
        "both slices are sorted and duplicate-free"
    );
    let mut bi = 0;
    'outer: for &x in a {
        while bi < b.len() {
            match b[bi].cmp(&x) {
                std::cmp::Ordering::Less => bi += 1,
                std::cmp::Ordering::Equal => {
                    bi += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_subset_basics() {
        assert!(sorted_subset(&[], &[]));
        assert!(sorted_subset(&[], &[1]));
        assert!(sorted_subset(&[1], &[1]));
        assert!(sorted_subset(&[1, 3], &[1, 2, 3]));
        assert!(!sorted_subset(&[1, 4], &[1, 2, 3]));
        assert!(!sorted_subset(&[1], &[]));
        assert!(!sorted_subset(&[0], &[1, 2]));
    }

    #[test]
    fn single_items_sorted_and_thresholded() {
        let customers = vec![vec![vec![5, 9]], vec![vec![5], vec![9]], vec![vec![9]]];
        let large = count_single_items(&customers, 2);
        assert_eq!(large.len(), 2);
        assert_eq!(large[0].items, vec![5]);
        assert_eq!(large[0].support, 2);
        assert_eq!(large[1].items, vec![9]);
        assert_eq!(large[1].support, 3);
    }

    #[test]
    fn distinct_items() {
        let customers = vec![vec![vec![1, 2]], vec![vec![2, 3], vec![1]]];
        assert_eq!(distinct_item_count(&customers), 3);
    }

    #[test]
    fn direct_counting_dedupes_per_customer() {
        let customers = vec![vec![vec![1, 2], vec![1, 2], vec![1, 2]]];
        let supports = count_candidates_direct(&customers, &[vec![1, 2]], 1);
        assert_eq!(supports, vec![1]);
    }

    #[test]
    fn pair_fast_path_matches_generic_counting() {
        let customers: Vec<CustomerTransactions> = vec![
            vec![vec![1, 2, 3], vec![2, 5]],
            vec![vec![1, 2], vec![1, 2]],
            vec![vec![3, 5]],
        ];
        let l1: Vec<LargeItemset> = [1u32, 2, 3, 5]
            .iter()
            .map(|&i| LargeItemset {
                items: vec![i],
                support: 0,
            })
            .collect();
        let (n_candidates, l2) = count_pairs_direct(&customers, &l1, 1, 1);
        assert_eq!(n_candidates, 6);
        let all_pairs: Vec<Vec<Item>> = vec![
            vec![1, 2],
            vec![1, 3],
            vec![1, 5],
            vec![2, 3],
            vec![2, 5],
            vec![3, 5],
        ];
        let generic = count_candidates_direct(&customers, &all_pairs, 1);
        let expected: Vec<LargeItemset> = all_pairs
            .into_iter()
            .zip(generic)
            .filter(|&(_, s)| s >= 1)
            .map(|(items, support)| LargeItemset { items, support })
            .collect();
        assert_eq!(l2, expected);
    }

    #[test]
    fn pair_fast_path_dedupes_per_customer() {
        let customers: Vec<CustomerTransactions> = vec![vec![vec![1, 2], vec![1, 2], vec![1, 2]]];
        let l1: Vec<LargeItemset> = [1u32, 2]
            .iter()
            .map(|&i| LargeItemset {
                items: vec![i],
                support: 0,
            })
            .collect();
        let (_, l2) = count_pairs_direct(&customers, &l1, 1, 1);
        assert_eq!(l2.len(), 1);
        assert_eq!(l2[0].support, 1);
    }

    #[test]
    fn hash_tree_counting_matches_direct_on_random_input() {
        let mut customers: Vec<CustomerTransactions> = Vec::new();
        let mut x: u32 = 41;
        for _ in 0..25 {
            let mut txs = Vec::new();
            for _ in 0..4 {
                let mut t: Vec<Item> = Vec::new();
                for _ in 0..5 {
                    x = x.wrapping_mul(48271) % 0x7fffffff;
                    t.push(x % 15);
                }
                t.sort_unstable();
                t.dedup();
                txs.push(t);
            }
            customers.push(txs);
        }
        let mut candidates: Vec<Vec<Item>> = Vec::new();
        for a in 0..14u32 {
            for b in (a + 1)..15 {
                candidates.push(vec![a, b]);
            }
        }
        let direct = count_candidates_direct(&customers, &candidates, 1);
        let tree = count_candidates_hash_tree(&customers, &candidates, &AprioriConfig::default());
        assert_eq!(direct, tree);
    }

    #[test]
    fn thread_counts_do_not_change_results() {
        let customers: Vec<CustomerTransactions> = (0..33u32)
            .map(|c| vec![vec![c % 4, 4 + c % 3, 8 + c % 2], vec![c % 5, 4 + c % 3]])
            .map(|txs| {
                txs.into_iter()
                    .map(|mut t| {
                        t.sort_unstable();
                        t.dedup();
                        t
                    })
                    .collect()
            })
            .collect();
        let candidates: Vec<Vec<Item>> = (0..9u32)
            .flat_map(|a| ((a + 1)..10).map(move |b| vec![a, b]))
            .collect();
        let l1: Vec<LargeItemset> = (0..10u32)
            .map(|i| LargeItemset {
                items: vec![i],
                support: 0,
            })
            .collect();
        let serial_direct = count_candidates_direct(&customers, &candidates, 1);
        let serial_pairs = count_pairs_direct(&customers, &l1, 2, 1);
        for threads in [2, 3, 7, 64] {
            assert_eq!(
                count_candidates_direct(&customers, &candidates, threads),
                serial_direct
            );
            assert_eq!(
                count_pairs_direct(&customers, &l1, 2, threads),
                serial_pairs
            );
            let config = AprioriConfig {
                parallelism: crate::Parallelism::threads(threads),
                ..AprioriConfig::default()
            };
            assert_eq!(
                count_candidates_hash_tree(&customers, &candidates, &config),
                serial_direct
            );
        }
    }
}
