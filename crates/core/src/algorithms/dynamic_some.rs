//! **DynamicSome** (paper §4.3): jump by a fixed `step` with on-the-fly
//! candidate generation.
//!
//! Four phases:
//!
//! 1. **Initialization** — lengths `1..=step` are mined exactly as in
//!    AprioriAll.
//! 2. **Jump** — from exact `L_k` (k a multiple of `step`), the candidates
//!    of length `k + step` are generated *and counted in the same scan* by
//!    [`super::otf::otf_generate`] pairing `L_k` with `L_step`; thresholding gives
//!    exact `L_{k+step}`. Jumps continue while new large sequences appear.
//! 3. **Intermediate** — candidates for the skipped lengths between the
//!    multiples (and up to `step - 1` beyond the last jump) are generated
//!    with the ordinary apriori join, from `L_{k-1}` when known, else from
//!    `C_{k-1}`.
//! 4. **Backward** — shared with AprioriSome: prune candidates contained in
//!    longer large sequences, count the rest.

use super::apriori_all::{large_one_sequences, SequencePhaseOptions};
use super::backward::{backward, ForwardOutput};
use super::candidate;
use super::otf::otf_generate;
use crate::arena::CandidateArena;
use crate::dataset::Dataset;
use crate::phases::maximal::LargeIdSequence;
use crate::stats::Stopwatch;
use crate::stats::{MiningStats, SequencePassStats};

/// The ids of a counted level as a generation-ready arena.
fn ids_arena(level: &[LargeIdSequence], len: usize) -> CandidateArena {
    CandidateArena::from_rows(len, level.iter().map(|s| s.ids.as_slice()))
}

/// Runs DynamicSome with the given jump width (`step >= 1`; the paper's
/// experiments use small steps such as 2 or 3).
///
/// Returns a superset of the maximal large sequences, like AprioriSome.
pub fn dynamic_some(
    ds: &dyn Dataset,
    min_count: u64,
    step: usize,
    options: &SequencePhaseOptions,
    stats: &mut MiningStats,
) -> Vec<LargeIdSequence> {
    assert!(step >= 1, "DynamicSome requires step >= 1");
    let mut ctx = options.context(ds);
    let mut forward = ForwardOutput::default();

    // --- Initialization phase: exact L_1 ..= L_step. ---
    let pass_start = Stopwatch::start();
    let l1 = large_one_sequences(ds);
    stats.record_pass(SequencePassStats {
        k: 1,
        generated: l1.len() as u64,
        counted: 0,
        large: l1.len() as u64,
        backward: false,
        pruned_by_containment: 0,
        pass_time: pass_start.elapsed(),
    });
    forward.counted.insert(1, l1);

    for k in 2..=step.min(options.max_length.unwrap_or(usize::MAX)) {
        let pass_start = Stopwatch::start();
        // Pass 2 fast path (shared with the other algorithms).
        if k == 2 {
            let (generated, l2) = ctx.large_two(ds, min_count);
            stats.record_pass(SequencePassStats {
                k,
                generated,
                counted: generated,
                large: l2.len() as u64,
                backward: false,
                pruned_by_containment: 0,
                pass_time: pass_start.elapsed(),
            });
            let empty = l2.is_empty();
            forward.counted.insert(k, l2);
            if empty {
                break;
            }
            continue;
        }
        let prev = ids_arena(&forward.counted[&(k - 1)], k - 1);
        let candidates = candidate::generate(&prev);
        if candidates.is_empty() {
            forward.counted.insert(k, Vec::new());
            break;
        }
        let supports = ctx.count(ds, &candidates);
        let lk: Vec<LargeIdSequence> = candidates
            .iter()
            .zip(&supports)
            .filter(|&(_, &s)| s >= min_count)
            .map(|(ids, &support)| LargeIdSequence {
                ids: ids.to_vec(),
                support,
            })
            .collect();
        stats.record_pass(SequencePassStats {
            k,
            generated: candidates.num_candidates() as u64,
            counted: candidates.num_candidates() as u64,
            large: lk.len() as u64,
            backward: false,
            pruned_by_containment: 0,
            pass_time: pass_start.elapsed(),
        });
        let empty = lk.is_empty();
        forward.counted.insert(k, lk);
        if empty {
            break;
        }
    }

    // --- Jump phase: L_k × L_step → L_{k+step}. ---
    let l_step_ids = forward
        .counted
        .get(&step)
        .map(|l| ids_arena(l, step))
        .unwrap_or_default();
    if !l_step_ids.is_empty() {
        let mut k = step;
        loop {
            let target = k + step;
            if options.max_length.is_some_and(|cap| target > cap) {
                break;
            }
            let lk_ids = match forward.counted.get(&k) {
                Some(l) if !l.is_empty() => ids_arena(l, k),
                _ => break,
            };
            let pass_start = Stopwatch::start();
            // On-the-fly generation stays serial: it interleaves generation
            // with counting in one scan and is bound by |L_k|·|L_step|, not
            // by the customer scan (see DESIGN.md).
            let counted_pairs = otf_generate(ds, &lk_ids, &l_step_ids, &mut ctx);
            let generated = counted_pairs.len() as u64;
            let l_next: Vec<LargeIdSequence> = counted_pairs
                .into_iter()
                .filter(|&(_, s)| s >= min_count)
                .map(|(ids, support)| LargeIdSequence { ids, support })
                .collect();
            stats.record_pass(SequencePassStats {
                k: target,
                generated,
                counted: generated,
                large: l_next.len() as u64,
                backward: false,
                pruned_by_containment: 0,
                pass_time: pass_start.elapsed(),
            });
            let empty = l_next.is_empty();
            forward.counted.insert(target, l_next);
            if empty {
                break;
            }
            k = target;
        }
    }

    // --- Intermediate phase: candidates for the skipped lengths. ---
    let max_counted_nonempty = forward
        .counted
        .iter()
        .filter(|(_, v)| !v.is_empty())
        .map(|(&k, _)| k)
        .max()
        .unwrap_or(1);
    let horizon = (max_counted_nonempty + step - 1).min(options.max_length.unwrap_or(usize::MAX));
    for k in 2..=horizon {
        if forward.counted.contains_key(&k) {
            continue;
        }
        // Source: L_{k-1} when counted, else the C_{k-1} just stored.
        let source: CandidateArena = if let Some(l) = forward.counted.get(&(k - 1)) {
            ids_arena(l, k - 1)
        } else if let Some(c) = forward.skipped.get(&(k - 1)) {
            c.clone()
        } else {
            CandidateArena::default()
        };
        let pass_start = Stopwatch::start();
        let ck = if source.is_empty() {
            CandidateArena::new(k)
        } else {
            candidate::generate(&source)
        };
        stats.record_pass(SequencePassStats {
            k,
            generated: ck.num_candidates() as u64,
            counted: 0,
            large: 0,
            backward: false,
            pruned_by_containment: 0,
            pass_time: pass_start.elapsed(),
        });
        forward.skipped.insert(k, ck);
    }

    // Empty counted entries would shadow nothing useful in the backward
    // pass; drop them so only real large sets remain.
    forward.counted.retain(|_, v| !v.is_empty());
    forward.skipped.retain(|_, v| !v.is_empty());

    // --- Backward phase (shared). ---
    let kept = backward(ds, min_count, &mut ctx, stats, forward);
    ctx.flush_into(stats);
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::apriori_all::{apriori_all, tests::paper_tdb};
    use crate::algorithms::apriori_some::apriori_some;
    use crate::phases::maximal::maximal_phase;
    use crate::types::transformed::TransformedDatabase;

    fn maximal_ids(tdb: &TransformedDatabase, seqs: Vec<LargeIdSequence>) -> Vec<Vec<u32>> {
        let mut v: Vec<Vec<u32>> = maximal_phase(seqs, &tdb.table)
            .into_iter()
            .map(|s| s.ids)
            .collect();
        v.sort();
        v
    }

    #[test]
    fn agrees_with_apriori_all_on_paper_example() {
        let tdb = paper_tdb();
        let opts = SequencePhaseOptions::default();
        for step in 1..=4 {
            let mut s1 = MiningStats::default();
            let all = apriori_all(&tdb, 2, &opts, &mut s1);
            let mut s2 = MiningStats::default();
            let dyn_ = dynamic_some(&tdb, 2, step, &opts, &mut s2);
            assert_eq!(
                maximal_ids(&tdb, all),
                maximal_ids(&tdb, dyn_),
                "step {step}"
            );
        }
    }

    #[test]
    fn agrees_with_apriori_some() {
        let tdb = paper_tdb();
        let opts = SequencePhaseOptions::default();
        let mut s1 = MiningStats::default();
        let some = apriori_some(&tdb, 2, &opts, &mut s1);
        let mut s2 = MiningStats::default();
        let dyn_ = dynamic_some(&tdb, 2, 2, &opts, &mut s2);
        assert_eq!(maximal_ids(&tdb, some), maximal_ids(&tdb, dyn_));
    }

    #[test]
    fn index_strategies_agree_including_otf_jumps() {
        use crate::counting::CountingStrategy;
        let tdb = paper_tdb();
        for step in 1..=3 {
            let mut s1 = MiningStats::default();
            let base = dynamic_some(&tdb, 2, step, &SequencePhaseOptions::default(), &mut s1);
            let expected = maximal_ids(&tdb, base);
            for counting in [
                CountingStrategy::Vertical,
                CountingStrategy::Bitmap,
                CountingStrategy::Auto,
            ] {
                let mut s2 = MiningStats::default();
                let got = dynamic_some(
                    &tdb,
                    2,
                    step,
                    &SequencePhaseOptions {
                        counting,
                        ..Default::default()
                    },
                    &mut s2,
                );
                assert_eq!(expected, maximal_ids(&tdb, got), "step {step}, {counting}");
            }
        }
    }

    #[test]
    fn every_returned_sequence_is_large() {
        let tdb = paper_tdb();
        let mut stats = MiningStats::default();
        let out = dynamic_some(&tdb, 2, 2, &SequencePhaseOptions::default(), &mut stats);
        assert!(out.iter().all(|s| s.support >= 2));
    }

    #[test]
    #[should_panic(expected = "step >= 1")]
    fn zero_step_rejected() {
        let tdb = paper_tdb();
        let mut stats = MiningStats::default();
        let _ = dynamic_some(&tdb, 2, 0, &SequencePhaseOptions::default(), &mut stats);
    }

    #[test]
    fn max_length_respected() {
        let tdb = paper_tdb();
        let mut stats = MiningStats::default();
        let out = dynamic_some(
            &tdb,
            2,
            2,
            &SequencePhaseOptions {
                max_length: Some(1),
                ..Default::default()
            },
            &mut stats,
        );
        assert!(out.iter().all(|s| s.ids.len() == 1));
    }
}
