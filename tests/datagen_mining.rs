//! Integration tests on generated data: determinism, cross-algorithm
//! agreement at realistic scale, and sanity of the dataset statistics.

use seqpat::io::DatasetStats;
use seqpat::{generate, Algorithm, GenParams, MinSupport, Miner, MinerConfig};

fn small_paper_params() -> GenParams {
    // Small corpus and universe keep these tests quick under the dev
    // profile; release-scale runs live in the bench crate.
    GenParams::paper_dataset("C10-T2.5-S4-I1.25")
        .expect("known dataset")
        .customers(250)
        .corpus_size(100, 400)
        .items(500)
}

#[test]
fn generation_is_deterministic_and_seed_sensitive() {
    let p = small_paper_params();
    assert_eq!(generate(&p, 1), generate(&p, 1));
    assert_ne!(generate(&p, 1), generate(&p, 2));
}

#[test]
fn algorithms_agree_on_generated_data() {
    let db = generate(&small_paper_params(), 9);
    let reference =
        Miner::new(MinerConfig::new(MinSupport::Fraction(0.06)).algorithm(Algorithm::AprioriAll))
            .mine(&db);
    let reference_strs: Vec<String> = reference.patterns.iter().map(|p| p.to_string()).collect();
    assert!(
        !reference.patterns.is_empty(),
        "expected patterns at 6% support on generated data"
    );
    for algorithm in [
        Algorithm::AprioriSome,
        Algorithm::DynamicSome { step: 2 },
        Algorithm::DynamicSome { step: 3 },
    ] {
        let result =
            Miner::new(MinerConfig::new(MinSupport::Fraction(0.06)).algorithm(algorithm)).mine(&db);
        let strs: Vec<String> = result.patterns.iter().map(|p| p.to_string()).collect();
        assert_eq!(reference_strs, strs, "{algorithm}");
    }
}

#[test]
fn prefixspan_agrees_on_generated_data() {
    use seqpat::prefixspan::{prefixspan_maximal, PrefixSpanConfig};
    let db = generate(&small_paper_params(), 9);
    let apriori = Miner::new(MinerConfig::new(MinSupport::Fraction(0.06))).mine(&db);
    let ps = prefixspan_maximal(
        &db,
        MinSupport::Fraction(0.06),
        &PrefixSpanConfig::default(),
    );
    let a: Vec<String> = apriori.patterns.iter().map(|p| p.to_string()).collect();
    let b: Vec<String> = ps.iter().map(|p| p.to_string()).collect();
    assert_eq!(a, b);
}

#[test]
fn shape_parameters_show_up_in_statistics() {
    // |C| = 20 vs |C| = 10 should roughly double transactions per customer.
    let p10 = GenParams::shape(10.0, 2.5, 4.0, 1.25)
        .customers(300)
        .corpus_size(100, 500)
        .items(800);
    let p20 = GenParams::shape(20.0, 2.5, 4.0, 1.25)
        .customers(300)
        .corpus_size(100, 500)
        .items(800);
    let s10 = DatasetStats::compute(&generate(&p10, 3));
    let s20 = DatasetStats::compute(&generate(&p20, 3));
    let ratio = s20.avg_transactions_per_customer / s10.avg_transactions_per_customer;
    assert!(
        (ratio - 2.0).abs() < 0.3,
        "expected ~2x transactions, got {ratio:.2}x"
    );
}

#[test]
fn larger_itemsets_shape_increases_transaction_width() {
    let small = GenParams::shape(10.0, 2.5, 4.0, 1.25)
        .customers(300)
        .corpus_size(100, 500)
        .items(800);
    let big = GenParams::shape(10.0, 5.0, 4.0, 2.5)
        .customers(300)
        .corpus_size(100, 500)
        .items(800);
    let s_small = DatasetStats::compute(&generate(&small, 4));
    let s_big = DatasetStats::compute(&generate(&big, 4));
    assert!(
        s_big.avg_items_per_transaction > s_small.avg_items_per_transaction,
        "T5-I2.5 should be wider than T2.5-I1.25 ({} vs {})",
        s_big.avg_items_per_transaction,
        s_small.avg_items_per_transaction
    );
}

#[test]
fn mined_supports_meet_threshold_on_generated_data() {
    let db = generate(&small_paper_params(), 5);
    let result = Miner::new(MinerConfig::new(MinSupport::Fraction(0.03))).mine(&db);
    let min_count = result.min_support_count;
    for p in &result.patterns {
        assert!(p.support >= min_count);
    }
}

#[test]
fn scale_up_with_shared_corpus_keeps_pattern_structure() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use seqpat::datagen::corpus::Corpus;
    use seqpat::datagen::generator::generate_with_corpus;

    let shape = small_paper_params();
    let mut rng = StdRng::seed_from_u64(11);
    let corpus = Corpus::build(&shape, &mut rng);
    let small = generate_with_corpus(&shape.clone().customers(200), &corpus, &mut rng);
    let large = generate_with_corpus(&shape.customers(800), &corpus, &mut rng);
    assert_eq!(small.num_customers(), 200);
    assert_eq!(large.num_customers(), 800);

    // The same corpus drives both, so patterns that are CLEARLY frequent
    // in the small database (50% above threshold, away from sampling
    // noise at the boundary) must still be frequent — as sequences, not
    // necessarily maximal — in the large one.
    let strong = Miner::new(MinerConfig::new(MinSupport::Fraction(0.12)).include_non_maximal(true))
        .mine(&small);
    let wide = Miner::new(MinerConfig::new(MinSupport::Fraction(0.08)).include_non_maximal(true))
        .mine(&large);
    let wide_strs: Vec<String> = wide.patterns.iter().map(|p| p.to_string()).collect();
    let missing: Vec<String> = strong
        .patterns
        .iter()
        .map(|p| p.to_string())
        .filter(|s| !wide_strs.contains(s))
        .collect();
    assert!(
        missing.len() * 5 <= strong.patterns.len().max(1),
        "strong small-db patterns vanished at scale: {missing:?}"
    );
}
