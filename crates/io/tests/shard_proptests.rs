//! Property tests for shard-boundary correctness: splitting the customer
//! rows at any shard size must never double-count (or drop) a customer at
//! a shard boundary — supports and patterns are identical to the
//! unsharded run, through both backends.

use std::path::PathBuf;

use proptest::prelude::*;
use seqpat_core::{CountingStrategy, Database, MinSupport, Miner, MinerConfig, MiningResult};
use seqpat_io::colstore::ColstoreDataset;
use seqpat_io::stream::build_colstore;

fn rendered(result: &MiningResult) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = result
        .patterns
        .iter()
        .map(|p| (p.sequence.to_string(), p.support))
        .collect();
    v.sort();
    v
}

fn tmp(tag: u64) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("seqpat-prop-{}-{tag}.colstore", std::process::id()));
    p
}

/// Raw rows: up to 12 customers, small item alphabet so patterns repeat.
fn rows_strategy() -> impl Strategy<Value = Vec<(u64, i64, Vec<u32>)>> {
    proptest::collection::vec(
        (0u64..12, 0i64..6, proptest::collection::vec(1u32..9, 1..4)),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_mining_never_double_counts_boundary_customers(
        rows in rows_strategy(),
        shard in 1usize..14,
        seed in 0u64..u64::MAX,
    ) {
        let db = Database::from_rows(rows);
        let min_count = 2u64.min(db.num_customers() as u64).max(1);
        // Cap pattern length identically on every side: a degenerate draw
        // (one customer, many transactions) would otherwise make every
        // subsequence frequent and explode the dev-profile runtime.
        let baseline = Miner::new(
            MinerConfig::new(MinSupport::Count(min_count)).max_length(4),
        )
        .mine(&db);
        let expected = rendered(&baseline);

        // Resident backend, sharded: every strategy must agree.
        for strategy in [
            CountingStrategy::Direct,
            CountingStrategy::HashTree,
            CountingStrategy::Vertical,
            CountingStrategy::Bitmap,
        ] {
            let sharded = Miner::new(
                MinerConfig::new(MinSupport::Count(min_count))
                    .max_length(4)
                    .counting(strategy)
                    .shard_customers(shard),
            )
            .mine(&db);
            prop_assert_eq!(
                rendered(&sharded),
                expected.clone(),
                "resident sharded run diverged: {:?} shard {}",
                strategy,
                shard
            );
            // Any support exceeding the customer count proves a boundary
            // row was counted in two shards.
            for p in &sharded.patterns {
                prop_assert!(p.support <= db.num_customers() as u64);
            }
        }

        // On-disk backend, sharded.
        let path = tmp(seed);
        build_colstore(
            || db.customers().iter().cloned(),
            min_count,
            &Default::default(),
            3,
            &path,
        )
        .unwrap();
        let store = ColstoreDataset::open(&path).unwrap();
        let disk = Miner::new(
            MinerConfig::new(MinSupport::Count(min_count))
                .max_length(4)
                .shard_customers(shard),
        )
        .mine_dataset(&store);
        std::fs::remove_file(&path).unwrap();
        prop_assert_eq!(rendered(&disk), expected, "colstore sharded run diverged");
    }
}
