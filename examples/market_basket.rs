//! Market-basket analysis on a synthetic retail history — the workload the
//! paper's introduction motivates ("customers typically rent 'Star Wars',
//! then 'Empire Strikes Back', then 'Return of the Jedi'").
//!
//! ```sh
//! cargo run --release --example market_basket
//! ```
//!
//! Generates a C10-T2.5-S4-I1.25 dataset with the paper's generator, mines
//! maximal sequential patterns with all three algorithms, verifies they
//! agree, and prints the strongest cross-transaction patterns.

use seqpat::{generate, Algorithm, GenParams, MinSupport, Miner, MinerConfig};

fn main() {
    let params = GenParams::paper_dataset("C10-T2.5-S4-I1.25")
        .expect("known dataset")
        .customers(1_000);
    println!(
        "generating {} (|D| = {}) …",
        params.label(),
        params.num_customers
    );
    let db = generate(&params, 7);
    println!(
        "  {} transactions, avg {:.1} per customer\n",
        db.num_transactions(),
        db.num_transactions() as f64 / db.num_customers() as f64
    );

    let minsup = 0.01; // the paper's 1% operating point
    let mut answers = Vec::new();
    for algorithm in [
        Algorithm::AprioriAll,
        Algorithm::AprioriSome,
        Algorithm::DynamicSome { step: 2 },
    ] {
        let config = MinerConfig::new(MinSupport::Fraction(minsup)).algorithm(algorithm);
        // seqpat-lint: allow(no-wall-clock-outside-stats) the demo prints its own end-to-end timing for the README walkthrough
        let start = std::time::Instant::now();
        let result = Miner::new(config).mine(&db);
        println!(
            "{algorithm:<20} {:>4} maximal patterns in {:>7.3}s  ({} candidates counted)",
            result.patterns.len(),
            start.elapsed().as_secs_f64(),
            result.stats.candidates_counted,
        );
        answers.push(result);
    }

    // The three algorithms must return the same answer set.
    let reference: Vec<String> = answers[0].patterns.iter().map(|p| p.to_string()).collect();
    for other in &answers[1..] {
        let got: Vec<String> = other.patterns.iter().map(|p| p.to_string()).collect();
        assert_eq!(reference, got, "algorithms disagree!");
    }
    println!("\nall three algorithms agree ✓");

    // Show the strongest multi-transaction buying sequences.
    let result = &answers[0];
    let mut cross: Vec<_> = result
        .patterns
        .iter()
        .filter(|p| p.sequence.len() >= 2)
        .collect();
    cross.sort_by_key(|p| std::cmp::Reverse(p.support));
    println!("\ntop cross-transaction patterns (buy …, come back, buy …):");
    for pattern in cross.iter().take(10) {
        println!(
            "  {pattern}   {} customers ({:.1}%)",
            pattern.support,
            100.0 * result.support_fraction(pattern)
        );
    }
    if cross.is_empty() {
        println!("  (none at this threshold — lower minsup to see longer patterns)");
    }
}
