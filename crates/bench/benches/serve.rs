//! Criterion micro-benchmarks for the pattern-serving layer: index build
//! time and `predict_into` lookup latency at two index sizes.
//!
//! The lookup groups use a large sample count with a *single* query per
//! sample, so the JSON report's `p50_ns`/`p99_ns` are genuine per-lookup
//! order statistics (the hot path allocates nothing, so the spread is
//! probe depth + timer overhead, not allocator noise). The batch group
//! times 4096 queries per sample; queries-per-second is
//! `4096 × 1e9 / mean_ns`.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use seqpat_core::{Itemset, LargeIdSequence, LitemsetTable};
use seqpat_datagen::{query_workload, QueryWorkloadParams};
use seqpat_serve::{run_workload, PatternTrie, Prediction, WorkloadOptions};

fn pseudo_random(seed: u32) -> impl FnMut(u32) -> u32 {
    let mut x = seed | 1;
    move |m: u32| {
        x = x.wrapping_mul(48271) % 0x7fff_ffff;
        x % m
    }
}

/// Deterministic synthetic pattern set: `count` distinct sequences of
/// 2..=7 litemset ids over a `universe`-entry table, supports skewed so
/// the trie's rank ordering has real work to do.
fn synth(count: usize, universe: u32, seed: u32) -> (Vec<LargeIdSequence>, LitemsetTable) {
    let table = LitemsetTable::new(
        (0..universe)
            .map(|i| (Itemset::new(vec![i + 1]), 50))
            .collect(),
    );
    let mut rnd = pseudo_random(seed);
    let mut seen = std::collections::BTreeSet::new();
    let mut patterns = Vec::with_capacity(count);
    while patterns.len() < count {
        let len = 2 + rnd(6) as usize;
        let ids: Vec<u32> = (0..len).map(|_| rnd(universe)).collect();
        if seen.insert(ids.clone()) {
            let support = 1 + u64::from(rnd(1000));
            patterns.push(LargeIdSequence { ids, support });
        }
    }
    (patterns, table)
}

const SIZES: [(usize, &str); 2] = [(1_000, "1k"), (50_000, "50k")];

fn build_index(count: usize, seed: u32) -> (Arc<PatternTrie>, Vec<LargeIdSequence>) {
    let (patterns, table) = synth(count, 2_000, seed);
    let trie = PatternTrie::build(&patterns, table, 1_000_000).expect("bench trie");
    (Arc::new(trie), patterns)
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_build");
    group.sample_size(10);
    for (count, label) in SIZES {
        let (patterns, table) = synth(count, 2_000, 31);
        group.bench_with_input(BenchmarkId::from_parameter(label), &patterns, |b, ps| {
            b.iter(|| PatternTrie::build(black_box(ps), table.clone(), 1_000_000).expect("build"))
        });
    }
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_lookup");
    // One lookup per sample: the percentiles in the JSON are per-lookup.
    group.sample_size(4096);
    for (count, label) in SIZES {
        let (trie, patterns) = build_index(count, 31);
        let queries = query_workload(
            &patterns,
            &QueryWorkloadParams {
                count: 1024,
                skew: 1.0,
                miss_rate: 0.1,
            },
            7,
        );
        let mut out = [Prediction::default(); 5];
        let mut i = 0usize;
        group.bench_function(BenchmarkId::new(label, "mixed_k5"), |b| {
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i = i.wrapping_add(1);
                trie.predict_into(black_box(q), &mut out)
            })
        });
    }
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_batch");
    group.sample_size(20);
    for (count, label) in SIZES {
        let (trie, patterns) = build_index(count, 31);
        let queries = query_workload(
            &patterns,
            &QueryWorkloadParams {
                count: 4096,
                skew: 1.0,
                miss_rate: 0.1,
            },
            7,
        );
        let mut out = [Prediction::default(); 5];
        group.bench_function(BenchmarkId::new(label, "4096q_k5"), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for q in &queries {
                    if trie.predict_into(black_box(q), &mut out) > 0 {
                        hits += 1;
                    }
                }
                hits
            })
        });
    }
    group.finish();
}

fn bench_workload_runner(c: &mut Criterion) {
    // The full concurrent runner (Arc fan-out + per-query timing), to keep
    // its fixed overhead on the record next to the raw loop above.
    let mut group = c.benchmark_group("serve_workload");
    group.sample_size(10);
    let (trie, patterns) = build_index(50_000, 31);
    let queries = query_workload(
        &patterns,
        &QueryWorkloadParams {
            count: 4096,
            skew: 1.0,
            miss_rate: 0.1,
        },
        7,
    );
    let opts = WorkloadOptions {
        threads: 1,
        repeat: 1,
        k: 5,
    };
    group.bench_function("50k/4096q_instrumented", |b| {
        b.iter(|| run_workload(black_box(&trie), black_box(&queries), &opts).checksum)
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_lookup,
    bench_batch,
    bench_workload_runner
);
criterion_main!(benches);
