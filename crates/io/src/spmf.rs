//! The SPMF sequence-database text format.
//!
//! One customer sequence per line. Itemsets are runs of ascending positive
//! integers; `-1` closes an itemset; `-2` closes the line:
//!
//! ```text
//! 30 -1 90 -1 -2
//! 10 20 -1 30 -1 40 60 70 -1 -2
//! ```
//!
//! Lines starting with `#`, `%` or `@` are comments/metadata (SPMF uses
//! `@CONVERTED_FROM…` headers) and are skipped. Customer ids are assigned
//! sequentially from 0 in line order; transaction times are element
//! positions — the format does not carry either.

use std::io::{BufRead, Write};

use crate::error::IoError;
use seqpat_core::{Database, Item};

/// Reads a database from SPMF text.
pub fn read(reader: impl BufRead) -> Result<Database, IoError> {
    let mut rows: Vec<(u64, i64, Vec<Item>)> = Vec::new();
    let mut customer = 0u64;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with(['#', '%', '@']) {
            continue;
        }
        let mut time = 0i64;
        let mut current: Vec<Item> = Vec::new();
        let mut terminated = false;
        for token in trimmed.split_ascii_whitespace() {
            if terminated {
                return Err(IoError::parse(lineno + 1, "content after -2 terminator"));
            }
            match token {
                "-1" => {
                    if current.is_empty() {
                        return Err(IoError::parse(lineno + 1, "empty itemset before -1"));
                    }
                    rows.push((customer, time, std::mem::take(&mut current)));
                    time += 1;
                }
                "-2" => {
                    if !current.is_empty() {
                        return Err(IoError::parse(
                            lineno + 1,
                            "itemset not closed with -1 before -2",
                        ));
                    }
                    terminated = true;
                }
                item => {
                    let value: Item = item.parse().map_err(|_| {
                        IoError::parse(lineno + 1, format!("invalid item token {item:?}"))
                    })?;
                    current.push(value);
                }
            }
        }
        if !terminated {
            return Err(IoError::parse(lineno + 1, "missing -2 terminator"));
        }
        customer += 1;
    }
    Ok(Database::from_rows(rows))
}

/// Parses a database from an SPMF-format string.
pub fn read_str(content: &str) -> Result<Database, IoError> {
    read(content.as_bytes())
}

/// Reads a database from an SPMF file on disk.
pub fn read_file(path: impl AsRef<std::path::Path>) -> Result<Database, IoError> {
    let file = std::fs::File::open(path)?;
    read(std::io::BufReader::new(file))
}

/// Writes a database in SPMF format. Customer ids and times are not
/// preserved (the format has no room for them); order is.
pub fn write(db: &Database, mut writer: impl Write) -> Result<(), IoError> {
    for customer in db.customers() {
        let mut line = String::new();
        for transaction in &customer.transactions {
            for item in transaction.items.items() {
                line.push_str(&item.to_string());
                line.push(' ');
            }
            line.push_str("-1 ");
        }
        line.push_str("-2");
        writeln!(writer, "{line}")?;
    }
    Ok(())
}

/// Serializes a database to an SPMF-format string.
pub fn write_string(db: &Database) -> String {
    let mut buf = Vec::new();
    write(db, &mut buf).expect("writing to memory cannot fail");
    String::from_utf8(buf).expect("SPMF output is ASCII")
}

/// Writes a database to an SPMF file on disk.
pub fn write_file(db: &Database, path: impl AsRef<std::path::Path>) -> Result<(), IoError> {
    let file = std::fs::File::create(path)?;
    write(db, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# paper example
30 -1 90 -1 -2
10 20 -1 30 -1 40 60 70 -1 -2
30 50 70 -1 -2
30 -1 40 70 -1 90 -1 -2
90 -1 -2
";

    #[test]
    fn reads_paper_example() {
        let db = read_str(SAMPLE).unwrap();
        assert_eq!(db.num_customers(), 5);
        assert_eq!(db.num_transactions(), 10);
        let c2 = &db.customers()[1];
        assert_eq!(c2.transactions[0].items.items(), &[10, 20]);
        assert_eq!(c2.transactions[2].items.items(), &[40, 60, 70]);
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let db = read_str(SAMPLE).unwrap();
        let text = write_string(&db);
        let again = read_str(&text).unwrap();
        assert_eq!(db.num_customers(), again.num_customers());
        for (a, b) in db.customers().iter().zip(again.customers()) {
            let xs: Vec<_> = a.transactions.iter().map(|t| t.items.clone()).collect();
            let ys: Vec<_> = b.transactions.iter().map(|t| t.items.clone()).collect();
            assert_eq!(xs, ys);
        }
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let db = read_str("@META x\n% c\n\n1 -1 -2\n").unwrap();
        assert_eq!(db.num_customers(), 1);
    }

    #[test]
    fn missing_terminator_rejected() {
        let err = read_str("1 -1\n").unwrap_err();
        assert!(err.to_string().contains("missing -2"));
    }

    #[test]
    fn unclosed_itemset_rejected() {
        let err = read_str("1 2 -2\n").unwrap_err();
        assert!(err.to_string().contains("not closed"));
    }

    #[test]
    fn content_after_terminator_rejected() {
        let err = read_str("1 -1 -2 3 -1 -2\n").unwrap_err();
        assert!(err.to_string().contains("after -2"));
    }

    #[test]
    fn bad_token_rejected_with_line_number() {
        let err = read_str("1 -1 -2\nx -1 -2\n").unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn empty_itemset_rejected() {
        let err = read_str("-1 -2\n").unwrap_err();
        assert!(err.to_string().contains("empty itemset"));
    }

    #[test]
    fn file_roundtrip() {
        let db = read_str(SAMPLE).unwrap();
        let dir = std::env::temp_dir().join("seqpat_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.spmf");
        write_file(&db, &path).unwrap();
        let again = read_file(&path).unwrap();
        assert_eq!(db.num_transactions(), again.num_transactions());
        std::fs::remove_file(&path).ok();
    }
}
