#!/usr/bin/env bash
# Regenerates every experiment (E0-E8) sequentially. Results land in
# results/*.csv; console output mirrors the paper's tables.
#
#   ./scripts/run_all_experiments.sh [--customers N] [--quick]
#
# Budget note: the full default run is dominated by E1's dense cells
# (~20-30 min on one modern core); --quick finishes in ~1 min.
set -euo pipefail
cd "$(dirname "$0")/.."

ARGS=("$@")
cargo build --release -p seqpat-bench

for exp in exp_datasets exp_minsup_sweep exp_relative exp_scaleup_customers \
           exp_scaleup_ctrans exp_passes exp_prefixspan exp_ablation \
           exp_gsp_constraints; do
    echo "=============================================================="
    echo ">>> $exp ${ARGS[*]:-}"
    echo "=============================================================="
    ./target/release/"$exp" "${ARGS[@]}"
    echo
done
echo "all experiments done; CSVs in results/"
