//! Containment kernels — the paper's `⊑` relation in both spaces.
//!
//! All kernels use **greedy earliest-match** scanning, which is exact for
//! the subsequence relation: if any embedding of the needle into the hay
//! exists, the embedding that always picks the earliest feasible hay element
//! also exists (a straightforward exchange argument — moving a match left
//! never invalidates later matches).

use crate::types::itemset::Itemset;
use crate::types::transformed::{LitemsetId, LitemsetTable, TransformedCustomer};

/// `needle ⊑ hay` over itemset sequences (paper §2): indices
/// `i1 < … < in` must exist with `needle[j] ⊆ hay[i_j]`.
pub fn sequence_contains(hay: &[Itemset], needle: &[Itemset]) -> bool {
    // `any` consumes the iterator up to and including the first match, so
    // each needle element resumes scanning strictly after the previous
    // match — exactly the greedy earliest-match embedding.
    let mut hay_iter = hay.iter();
    needle.iter().all(|n| hay_iter.any(|h| n.is_subset_of(h)))
}

/// Plain subsequence over litemset ids with **equality** element matching.
/// This is the relation used while *growing* candidates in the transformed
/// space, where each sequence element is exactly one litemset.
pub fn id_subsequence(hay: &[LitemsetId], needle: &[LitemsetId]) -> bool {
    let mut hay_iter = hay.iter();
    needle.iter().all(|&n| hay_iter.any(|&h| h == n))
}

/// Subsequence over litemset ids with **subset-aware** element matching:
/// `needle[j]` matches `hay[i]` when `itemset(needle[j]) ⊆ itemset(hay[i])`.
/// This is the true `⊑` of the paper lifted to id space; the maximal phase
/// and the backward passes of AprioriSome/DynamicSome need it because e.g.
/// `⟨(30)(40)⟩ ⊑ ⟨(30)(40 70)⟩` even though the ids differ.
pub fn id_subsequence_with_subsets(
    hay: &[LitemsetId],
    needle: &[LitemsetId],
    table: &LitemsetTable,
) -> bool {
    let mut hay_iter = hay.iter();
    needle.iter().all(|&n| {
        let n_set = table.itemset(n);
        hay_iter.any(|&h| n_set.is_subset_of(table.itemset(h)))
    })
}

/// Element sizes up to this length are membership-tested with a linear
/// scan instead of a binary search: typical transformed transactions hold
/// a handful of litemset ids, where the scan's predictable forward walk
/// beats the binary search's data-dependent branches and lets the hash-tree
/// probe's leaf verification stay in one cache line.
const LINEAR_SCAN_MAX: usize = 8;

/// Membership of `id` in one ascending-sorted element: linear scan with
/// early exit for short elements, binary search past [`LINEAR_SCAN_MAX`].
/// Both arms are exact, so the hybrid is invisible to every caller.
#[inline]
fn element_contains(element: &[LitemsetId], id: LitemsetId) -> bool {
    debug_assert!(
        element.windows(2).all(|w| w[0] < w[1]),
        "transformed elements hold ascending unique litemset ids"
    );
    if element.len() <= LINEAR_SCAN_MAX {
        for &h in element {
            if h >= id {
                return h == id;
            }
        }
        false
    } else {
        element.binary_search(&id).is_ok()
    }
}

/// Is the candidate id-sequence contained in a transformed customer
/// sequence? `candidate[j]` must occur in some element (transaction) of the
/// customer, at strictly increasing transaction positions. Elements store
/// ascending ids, so membership is a hybrid scan (`element_contains`).
pub fn customer_contains(customer: &TransformedCustomer, candidate: &[LitemsetId]) -> bool {
    customer_contains_from(customer, candidate, 0).is_some()
}

/// Like [`customer_contains`] but starts matching at transaction index
/// `start` and returns the index of the transaction that matched the *last*
/// candidate element (earliest-match). Used by DynamicSome's on-the-fly
/// join, which needs split positions.
pub fn customer_contains_from(
    customer: &TransformedCustomer,
    candidate: &[LitemsetId],
    start: usize,
) -> Option<usize> {
    debug_assert!(
        start <= customer.elements.len(),
        "the scan cursor starts within the customer (the while guard keeps it there)"
    );
    let mut pos = start;
    let mut last = None;
    'outer: for &id in candidate {
        while pos < customer.elements.len() {
            let element = &customer.elements[pos];
            pos += 1;
            if element_contains(element, id) {
                last = Some(pos - 1);
                continue 'outer;
            }
        }
        return None;
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::itemset::Itemset;

    fn isets(v: Vec<Vec<u32>>) -> Vec<Itemset> {
        v.into_iter().map(Itemset::new).collect()
    }

    #[test]
    fn sequence_contains_with_subsets() {
        let hay = isets(vec![vec![7], vec![3, 8], vec![9], vec![4, 5, 6], vec![8]]);
        let needle = isets(vec![vec![3], vec![4, 5], vec![8]]);
        assert!(sequence_contains(&hay, &needle));
        let bad = isets(vec![vec![3], vec![5], vec![9]]);
        assert!(!sequence_contains(&hay, &bad)); // 9 occurs before the 5-match? 9 at idx 2, 5 at idx 3 → fails
    }

    #[test]
    fn sequence_contains_empty_needle_is_true() {
        let hay = isets(vec![vec![1]]);
        assert!(sequence_contains(&hay, &[]));
    }

    #[test]
    fn greedy_does_not_miss_later_embeddings() {
        // Needle ⟨(1)(1 2)⟩ in hay ⟨(1 2)(1 2)⟩: greedy matches (1)→hay[0],
        // then (1 2)→hay[1]. A naive non-greedy matcher could bind (1 2) to
        // hay[0] and fail.
        let hay = isets(vec![vec![1, 2], vec![1, 2]]);
        let needle = isets(vec![vec![1], vec![1, 2]]);
        assert!(sequence_contains(&hay, &needle));
    }

    #[test]
    fn id_subsequence_basic() {
        assert!(id_subsequence(&[1, 2, 3, 4], &[2, 4]));
        assert!(!id_subsequence(&[1, 2, 3, 4], &[4, 2]));
        assert!(id_subsequence(&[1, 1, 2], &[1, 1]));
        assert!(!id_subsequence(&[1, 2], &[1, 1]));
        assert!(id_subsequence(&[], &[]));
        assert!(!id_subsequence(&[], &[1]));
    }

    #[test]
    fn id_subsequence_with_subsets_uses_table() {
        // ids: 0={1}, 1={2}, 2={1,2}
        let table = LitemsetTable::new(vec![
            (Itemset::new(vec![1]), 3),
            (Itemset::new(vec![2]), 3),
            (Itemset::new(vec![1, 2]), 2),
        ]);
        // ⟨{1}⟩ ⊑ ⟨{1,2}⟩
        assert!(id_subsequence_with_subsets(&[2], &[0], &table));
        // ⟨{1}{2}⟩ ⊑ ⟨{1,2}{1,2}⟩
        assert!(id_subsequence_with_subsets(&[2, 2], &[0, 1], &table));
        // ⟨{1,2}⟩ ⋢ ⟨{1}⟩
        assert!(!id_subsequence_with_subsets(&[0], &[2], &table));
        // order matters
        assert!(!id_subsequence_with_subsets(&[1, 0], &[0, 1], &table));
    }

    #[test]
    fn element_contains_agrees_with_binary_search_on_both_arms() {
        // Short (linear-scan) arm, including early exit past the id.
        let short: Vec<LitemsetId> = vec![2, 5, 9];
        for id in 0..12 {
            assert_eq!(
                element_contains(&short, id),
                short.binary_search(&id).is_ok(),
                "short element, id {id}"
            );
        }
        // Long (binary-search) arm: strictly more than LINEAR_SCAN_MAX ids.
        let long: Vec<LitemsetId> = (0..=2 * LINEAR_SCAN_MAX as u32).map(|i| 2 * i).collect();
        assert!(long.len() > LINEAR_SCAN_MAX);
        for id in 0..4 * LINEAR_SCAN_MAX as u32 {
            assert_eq!(
                element_contains(&long, id),
                long.binary_search(&id).is_ok(),
                "long element, id {id}"
            );
        }
        assert!(!element_contains(&[], 0));
    }

    #[test]
    fn customer_contains_strictly_increasing_transactions() {
        let c = TransformedCustomer {
            customer_id: 1,
            elements: vec![vec![0, 1], vec![2], vec![0]],
        };
        assert!(customer_contains(&c, &[0, 2]));
        assert!(customer_contains(&c, &[1, 2, 0]));
        assert!(customer_contains(&c, &[0, 0])); // elements 0 and 2
        assert!(!customer_contains(&c, &[2, 1])); // wrong order
        assert!(!customer_contains(&c, &[0, 1])); // 0 and 1 share one transaction
    }

    #[test]
    fn customer_contains_from_reports_end_position() {
        let c = TransformedCustomer {
            customer_id: 1,
            elements: vec![vec![5], vec![6], vec![5], vec![7]],
        };
        assert_eq!(customer_contains_from(&c, &[5], 0), Some(0));
        assert_eq!(customer_contains_from(&c, &[5], 1), Some(2));
        assert_eq!(customer_contains_from(&c, &[5, 7], 0), Some(3));
        assert_eq!(customer_contains_from(&c, &[7, 5], 0), None);
        assert_eq!(customer_contains_from(&c, &[5], 3), None);
    }
}
