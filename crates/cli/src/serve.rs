//! The serving-side subcommands: `queries`, `query`, and `serve`.
//!
//! All three operate on a `SEQPATS1` index file written by
//! `mine --index-out` (see `seqpat_serve::format`). Queries travel in a
//! small SPMF-flavoured text format, one query per line:
//!
//! ```text
//! 10 20 -1 30 -1 -2      # two elements: itemset (10 20), then (30)
//! ? -1 30 -2             # `?` is a guaranteed-miss element
//! ```
//!
//! Elements are separated by `-1` and a line ends at `-2` (trailing `-2`
//! optional on `--prefix`). Each element is resolved against the index's
//! litemset table; an unknown itemset — including the explicit `?` — maps
//! to the miss sentinel, so the trie and the `--oracle` reference agree
//! that it matches nothing.

use std::sync::Arc;

use seqpat_core::{Item, LitemsetId};
use seqpat_datagen::{query_workload, QueryWorkloadParams, MISS_ID};
use seqpat_serve::{oracle_predict, run_workload, PatternTrie, Prediction, WorkloadOptions};

use crate::Flags;

pub(crate) fn load_index(path: &str) -> Result<Arc<PatternTrie>, String> {
    PatternTrie::load(path)
        .map(Arc::new)
        .map_err(|e| format!("loading index {path}: {e}"))
}

/// Parses one query line (`items -1 items -1 -2`, `?` = miss element)
/// into litemset-id space against the index's table.
fn parse_query(line: &str, trie: &PatternTrie) -> Result<Vec<LitemsetId>, String> {
    let mut ids = Vec::new();
    let mut items: Vec<Item> = Vec::new();
    let mut miss = false;
    let mut flush = |items: &mut Vec<Item>, miss: &mut bool| {
        if *miss || !items.is_empty() {
            let id = if *miss {
                MISS_ID
            } else {
                items.sort_unstable();
                items.dedup();
                trie.table().id_of(items).unwrap_or(MISS_ID)
            };
            ids.push(id);
            items.clear();
            *miss = false;
        }
    };
    for token in line.split_whitespace() {
        match token {
            "-2" => break,
            "-1" => flush(&mut items, &mut miss),
            "?" => miss = true,
            t => items.push(
                t.parse::<Item>()
                    .map_err(|_| format!("bad item {t:?} in query {line:?}"))?,
            ),
        }
    }
    flush(&mut items, &mut miss);
    Ok(ids)
}

/// Reads a query file: one query per line, `#` comments and blanks skipped.
fn read_queries(path: &str, trie: &PatternTrie) -> Result<Vec<Vec<LitemsetId>>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let q = parse_query(line, trie).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        if !q.is_empty() {
            out.push(q);
        }
    }
    Ok(out)
}

/// Renders one id-space query back into the text format.
fn render_query(trie: &PatternTrie, ids: &[LitemsetId]) -> String {
    let mut s = String::new();
    for &id in ids {
        if id == MISS_ID || (id as usize) >= trie.table().len() {
            s.push_str("? -1 ");
        } else {
            for item in trie.table().itemset(id).items() {
                s.push_str(&format!("{item} "));
            }
            s.push_str("-1 ");
        }
    }
    s.push_str("-2");
    s
}

/// Renders a prediction list in the stable form the CI smoke diffs.
fn render_predictions(trie: &PatternTrie, preds: &[Prediction]) -> String {
    if preds.is_empty() {
        return "-".to_string();
    }
    preds
        .iter()
        .map(|p| format!("{} #SUP: {}", trie.table().itemset(p.id), p.support))
        .collect::<Vec<_>>()
        .join(" | ")
}

/// `seqmine queries` — sample a reproducible prefix-query workload from
/// the patterns stored in an index.
pub(crate) fn cmd_queries(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &[])?;
    let index = flags.require("index")?;
    let out = flags.require("out")?;
    let defaults = QueryWorkloadParams::default();
    let params = QueryWorkloadParams {
        count: flags.get_parsed("count")?.unwrap_or(defaults.count),
        skew: flags.get_parsed("skew")?.unwrap_or(defaults.skew),
        miss_rate: flags.get_parsed("miss-rate")?.unwrap_or(defaults.miss_rate),
    };
    if !(0.0..=1.0).contains(&params.miss_rate) {
        return Err("--miss-rate must be in [0, 1]".into());
    }
    let seed = flags.get_parsed::<u64>("seed")?.unwrap_or(42);
    let trie = load_index(index)?;
    let patterns = trie.patterns();
    let workload = query_workload(&patterns, &params, seed);
    let mut text = String::new();
    for q in &workload {
        text.push_str(&render_query(&trie, q));
        text.push('\n');
    }
    std::fs::write(out, text).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {} queries → {out} (from {} patterns, skew {}, miss-rate {}, seed {seed})",
        workload.len(),
        patterns.len(),
        params.skew,
        params.miss_rate
    );
    Ok(())
}

/// `seqmine query` — answer one prefix (`--prefix`) or a whole file
/// (`--queries`), printing one line per query. `--oracle` answers from a
/// linear scan of the stored patterns instead of the trie; the output
/// format is identical, so the two modes can be diffed.
pub(crate) fn cmd_query(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["oracle", "stats"])?;
    let index = flags.require("index")?;
    let k = flags.get_parsed::<usize>("k")?.unwrap_or(5);
    let trie = load_index(index)?;
    let queries = match (flags.get("prefix"), flags.get("queries")) {
        (Some(_), Some(_)) => return Err("--prefix and --queries are mutually exclusive".into()),
        (Some(p), None) => vec![parse_query(p, &trie)?],
        (None, Some(path)) => read_queries(path, &trie)?,
        (None, None) => return Err("one of --prefix or --queries is required".into()),
    };
    let oracle_patterns = if flags.has("oracle") {
        Some(trie.patterns())
    } else {
        None
    };
    let mut hits = 0usize;
    for q in &queries {
        let preds = match &oracle_patterns {
            Some(patterns) => oracle_predict(patterns, q, k),
            None => trie.predict(q, k),
        };
        if !preds.is_empty() {
            hits += 1;
        }
        println!(
            "{} => {}",
            render_query(&trie, q),
            render_predictions(&trie, &preds)
        );
    }
    if flags.has("stats") {
        eprintln!(
            "{} queries, {} hits ({:.1}%), k={k}, mode={} [index: {} nodes, {} patterns]",
            queries.len(),
            hits,
            if queries.is_empty() {
                0.0
            } else {
                100.0 * hits as f64 / queries.len() as f64
            },
            if oracle_patterns.is_some() {
                "oracle"
            } else {
                "trie"
            },
            trie.num_nodes(),
            trie.num_patterns()
        );
    }
    Ok(())
}

/// `seqmine serve` — replay a query file through the concurrent workload
/// runner and report throughput and latency order statistics.
pub(crate) fn cmd_serve(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &[])?;
    let index = flags.require("index")?;
    let queries_path = flags.require("queries")?;
    let opts = WorkloadOptions {
        threads: flags.get_parsed("threads")?.unwrap_or(1),
        repeat: flags.get_parsed("repeat")?.unwrap_or(1),
        k: flags.get_parsed("k")?.unwrap_or(5),
    };
    let trie = load_index(index)?;
    let queries = read_queries(queries_path, &trie)?;
    if queries.is_empty() {
        return Err(format!("{queries_path}: no queries"));
    }
    let report = run_workload(&trie, &queries, &opts);
    println!(
        "index: {} nodes, {} children, {} patterns, {} heap bytes",
        trie.num_nodes(),
        trie.num_children(),
        trie.num_patterns(),
        trie.heap_bytes()
    );
    println!(
        "served {} queries × {} repeat(s) on {} thread(s), k={}: {} hits ({:.1}%), {} predictions, checksum {:016x}",
        report.queries,
        opts.repeat.max(1),
        opts.threads.max(1),
        opts.k,
        report.hits,
        100.0 * report.hit_rate(),
        report.predictions,
        report.checksum
    );
    println!(
        "latency: mean {} ns  p50 {} ns  p99 {} ns  max {} ns   throughput: {:.0} qps",
        report.latency.mean_ns,
        report.latency.p50_ns,
        report.latency.p99_ns,
        report.latency.max_ns,
        report.qps()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqpat_core::{Itemset, LargeIdSequence, LitemsetTable};

    fn index() -> Arc<PatternTrie> {
        let table = LitemsetTable::new(vec![
            (Itemset::new(vec![10, 20]), 8),
            (Itemset::new(vec![30]), 6),
            (Itemset::new(vec![40]), 5),
        ]);
        let patterns = vec![
            LargeIdSequence {
                ids: vec![0, 1],
                support: 4,
            },
            LargeIdSequence {
                ids: vec![0, 2],
                support: 6,
            },
        ];
        Arc::new(PatternTrie::build(&patterns, table, 10).unwrap())
    }

    #[test]
    fn parse_resolves_items_misses_and_sentinels() {
        let trie = index();
        assert_eq!(parse_query("10 20 -1 30 -1 -2", &trie).unwrap(), vec![0, 1]);
        // Order and duplicates inside an element do not matter.
        assert_eq!(parse_query("20 10 10 -1", &trie).unwrap(), vec![0]);
        // Unknown itemsets and `?` both become the miss sentinel.
        assert_eq!(parse_query("99 -1 -2", &trie).unwrap(), vec![MISS_ID]);
        assert_eq!(parse_query("? -1 30 -2", &trie).unwrap(), vec![MISS_ID, 1]);
        assert!(parse_query("abc -1", &trie).is_err());
        assert!(parse_query("-2", &trie).unwrap().is_empty());
    }

    #[test]
    fn render_roundtrips_through_parse() {
        let trie = index();
        for q in [vec![0, 1], vec![2], vec![MISS_ID, 0]] {
            let text = render_query(&trie, &q);
            assert_eq!(parse_query(&text, &trie).unwrap(), q, "{text}");
        }
    }

    #[test]
    fn end_to_end_index_queries_serve() {
        let dir = std::env::temp_dir().join("seqmine_cli_serve_test");
        std::fs::create_dir_all(&dir).unwrap();
        let idx = dir.join("t.seqpats").to_string_lossy().into_owned();
        index().save(&idx).unwrap();

        let qfile = dir.join("q.txt").to_string_lossy().into_owned();
        cmd_queries(&[
            "--index".into(),
            idx.clone(),
            "--out".into(),
            qfile.clone(),
            "--count".into(),
            "20".into(),
            "--seed".into(),
            "1".into(),
        ])
        .expect("queries");
        let trie = load_index(&idx).unwrap();
        assert_eq!(read_queries(&qfile, &trie).unwrap().len(), 20);

        cmd_query(&[
            "--index".into(),
            idx.clone(),
            "--prefix".into(),
            "10 20 -1".into(),
            "--stats".into(),
        ])
        .expect("query prefix");
        cmd_query(&[
            "--index".into(),
            idx.clone(),
            "--queries".into(),
            qfile.clone(),
            "--oracle".into(),
        ])
        .expect("query oracle");
        cmd_serve(&[
            "--index".into(),
            idx.clone(),
            "--queries".into(),
            qfile,
            "--threads".into(),
            "2".into(),
            "--repeat".into(),
            "3".into(),
        ])
        .expect("serve");

        // Error surface.
        assert!(cmd_query(&["--index".into(), idx.clone()]).is_err());
        assert!(cmd_query(&[
            "--index".into(),
            idx.clone(),
            "--prefix".into(),
            "30 -1".into(),
            "--queries".into(),
            "x".into(),
        ])
        .is_err());
        assert!(cmd_queries(&[
            "--index".into(),
            idx.clone(),
            "--out".into(),
            "/tmp/q".into(),
            "--miss-rate".into(),
            "1.5".into(),
        ])
        .is_err());
        assert!(cmd_serve(&[
            "--index".into(),
            idx,
            "--queries".into(),
            "/nonexistent".into()
        ])
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
