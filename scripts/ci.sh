#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> seqpat-lint (lexical + effect-inference + determinism rules; fails on deny severity)"
mkdir -p target/ci-results
# Emit all report formats before gating so the artifacts exist even when
# the lint fails; the exit code is nonzero iff a deny-severity rule fired
# (warn-severity findings are recorded but do not break the build). The
# json run also writes the per-fn inferred-effect table and the
# determinism audit (every parallel fan-out site with its capture
# verdicts, every chunk-merge reducer with its order-sensitivity
# verdict) — deny rules like no-io-in-kernels and
# shared-mutable-capture-in-parallel are queries against these tables,
# so the artifacts are the audit trail for why the gate passed.
lint_status=0
cargo run -q -p seqpat-lint -- --format json \
  --effects-out target/ci-results/effects.json \
  --determinism-out target/ci-results/determinism.json \
  > target/ci-results/lint.json || lint_status=$?
cargo run -q -p seqpat-lint -- --format sarif > target/ci-results/lint.sarif || lint_status=$?
[ -s target/ci-results/effects.json ] || {
  echo "seqpat-lint: effects.json missing or empty" >&2; exit 1;
}
[ -s target/ci-results/determinism.json ] || {
  echo "seqpat-lint: determinism.json missing or empty" >&2; exit 1;
}
if [ "$lint_status" -ne 0 ]; then
  echo "seqpat-lint: deny-severity violations (see target/ci-results/lint.json)" >&2
  exit "$lint_status"
fi

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (deny rustdoc warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> shard smoke (mmap backend, 3-customer shards, diff vs mem backend)"
# End-to-end out-of-core check through the CLI: generate a tiny dataset,
# build its colstore, and require the sharded mmap-backend mine to print
# byte-identical output to the in-memory mine.
smoke=target/ci-results/shard-smoke
mkdir -p "$smoke"
cargo run --release -q -p seqpat-cli -- gen \
  --out "$smoke/tiny.spmf" --customers 40 --seed 11
cargo run --release -q -p seqpat-cli -- convert \
  --in "$smoke/tiny.spmf" --out "$smoke/tiny.colstore" --minsup 0.05
cargo run --release -q -p seqpat-cli -- mine \
  --in "$smoke/tiny.spmf" --minsup 0.05 --max-length 4 \
  > "$smoke/mem.txt" 2> /dev/null
cargo run --release -q -p seqpat-cli -- mine \
  --in "$smoke/tiny.colstore" --minsup 0.05 --max-length 4 \
  --backend mmap --shard-customers 3 \
  > "$smoke/mmap.txt" 2> /dev/null
# Guard against a vacuous pass: an empty pattern list would diff clean.
[ -s "$smoke/mem.txt" ] || { echo "shard smoke: no patterns mined" >&2; exit 1; }
diff "$smoke/mem.txt" "$smoke/mmap.txt"
echo "shard smoke: mem and mmap outputs identical ($(wc -l < "$smoke/mem.txt") patterns)"

echo "==> serve smoke (gen → mine → index → query, trie vs oracle diff)"
# End-to-end serving check through the CLI: mine an index, sample a query
# workload from it, and require the trie's answers to be byte-identical to
# the linear-scan oracle's over the same file (plus one fixed guaranteed
# miss). Fails loud on an empty index or a hit-free workload — either
# would make the diff vacuous.
ssmoke=target/ci-results/serve-smoke
mkdir -p "$ssmoke"
cargo run --release -q -p seqpat-cli -- gen \
  --out "$ssmoke/data.spmf" --customers 40 --seed 11
cargo run --release -q -p seqpat-cli -- mine \
  --in "$ssmoke/data.spmf" --minsup 0.05 --max-length 4 \
  --index-out "$ssmoke/idx.seqpats" > "$ssmoke/patterns.txt" 2> /dev/null
[ -s "$ssmoke/patterns.txt" ] || { echo "serve smoke: no patterns mined" >&2; exit 1; }
cargo run --release -q -p seqpat-cli -- queries \
  --index "$ssmoke/idx.seqpats" --out "$ssmoke/q.txt" --count 200 --seed 5
[ -s "$ssmoke/q.txt" ] || { echo "serve smoke: empty index produced no queries" >&2; exit 1; }
printf '? -1 -2\n' >> "$ssmoke/q.txt"
cargo run --release -q -p seqpat-cli -- query \
  --index "$ssmoke/idx.seqpats" --queries "$ssmoke/q.txt" --k 5 > "$ssmoke/trie.txt"
cargo run --release -q -p seqpat-cli -- query \
  --index "$ssmoke/idx.seqpats" --queries "$ssmoke/q.txt" --k 5 --oracle > "$ssmoke/oracle.txt"
diff "$ssmoke/trie.txt" "$ssmoke/oracle.txt"
hits=$(grep -cv ' => -$' "$ssmoke/trie.txt" || true)
[ "$hits" -gt 0 ] || { echo "serve smoke: workload produced zero hits" >&2; exit 1; }
cargo run --release -q -p seqpat-cli -- serve \
  --index "$ssmoke/idx.seqpats" --queries "$ssmoke/q.txt" --threads 2 --repeat 5
echo "serve smoke: trie and oracle answers identical ($hits hit lines)"

echo "==> equivalence suites with debug assertions in release"
# The kernels' debug_assert!s mirror the lint contract (CSR monotonicity,
# word-span consistency, arena run boundaries); exercise them against the
# optimized code paths. A separate target dir keeps the cache warm.
CARGO_TARGET_DIR=target/ci-debug-assert RUSTFLAGS="-C debug-assertions" \
  cargo test --release -q -p seqpat-core -p seqpat-itemset

echo "==> bench smoke (one tiny ablation cell for all four strategies + auto)"
cargo run --release -p seqpat-bench --bin exp_ablation -- \
  --quick --customers 150 --out target/ci-results

echo "==> bench smoke (bitmap crossover, one dense + one sparse cell)"
cargo run --release -p seqpat-bench --bin exp_bitmap -- \
  --quick --customers 150 --out target/ci-results

echo "==> kernels bench smoke (one fast cell per kernel family, JSON report)"
# Substring filters keep this under the wall-time budget: one cell each for
# the bitmap lanes, the vertical join (incl. the galloping cell), and the
# hash-tree probe. The JSON lands next to the other CI artifacts so
# bench_compare can diff it against the committed baseline.
# Absolute path: cargo runs bench binaries from the package dir, not the
# workspace root.
cargo bench -p seqpat-bench --bench kernels -- \
  --json "$PWD/target/ci-results/bench_kernels.json" \
  bitmap_lanes vertical_count sequence_hash_tree/probe

echo "==> kernel regression gate (skip with BENCH_COMPARE_SKIP=1)"
# Shared CI boxes are noisy; the threshold is generous and the gate only
# compares labels present in both files.
./scripts/bench_compare.sh target/ci-results/bench_kernels.json

echo "==> snapshot kernel bench report (perf trajectory)"
# Top-level BENCH_kernels.json is committed each PR so git history records
# the kernel-performance trajectory across the stack (results/ keeps the
# regression-gate baseline; this file is the per-PR measurement).
cp target/ci-results/bench_kernels.json BENCH_kernels.json

echo "==> serve bench (index build + per-lookup latency at two sizes, JSON report)"
# The full serve bench is cheap enough to run unfiltered; the lookup cells
# use one query per sample so the JSON's p50/p99 are per-lookup latencies.
cargo bench -p seqpat-bench --bench serve -- \
  --json "$PWD/target/ci-results/bench_serve.json"

echo "==> serve regression gate (same knobs: BENCH_COMPARE_SKIP / BENCH_COMPARE_THRESHOLD)"
./scripts/bench_compare.sh target/ci-results/bench_serve.json results/bench_serve.json

echo "==> snapshot serve bench report (perf trajectory)"
cp target/ci-results/bench_serve.json BENCH_serve.json

echo "==> CI green"
