//! Support counting for candidate sequences over the transformed database.
//!
//! Two interchangeable strategies (an ablation bench in `seqpat-bench`
//! compares them):
//!
//! * [`CountingStrategy::Direct`] — for each customer, test every candidate
//!   with the greedy containment scan, prefiltered by a litemset-presence
//!   bitmap (a candidate using an id the customer never bought cannot
//!   match).
//! * [`CountingStrategy::HashTree`] — the paper's approach: put the
//!   candidates in a [`SequenceHashTree`] and let each customer walk it,
//!   touching only candidates whose prefix ids actually occur.
//!
//! Both produce identical counts (pinned by tests here and by property
//! tests at the workspace level) and both report the number of exact
//! containment tests performed, which the harness uses as a
//! machine-independent cost measure.
//!
//! ## Parallel counting
//!
//! Support is counted per customer, each customer at most once, so both
//! strategies shard `tdb.customers` into contiguous chunks via
//! [`seqpat_itemset::parallel::map_chunks`]: every worker owns a private
//! support array plus private scratch (the presence bitmap for `Direct`,
//! a [`VisitSet`] for `HashTree` — the [`SequenceHashTree`] itself is
//! built once and shared immutably), and the per-chunk arrays and test
//! counters are reduced in chunk order. Since the per-candidate counts
//! are exact `u64` sums, parallel runs are **bit-identical** to serial
//! runs — supports, large-sequence sets, and `containment_tests` all
//! match regardless of thread count or OS scheduling.

use crate::contain::customer_contains;
use crate::hash_tree::{SequenceHashTree, VisitSet};
use crate::types::transformed::{LitemsetId, TransformedDatabase};
use seqpat_itemset::parallel::map_chunks;
use seqpat_itemset::Parallelism;

/// Strategy for counting candidate supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CountingStrategy {
    /// Per-candidate greedy scans with a presence-bitmap prefilter.
    Direct,
    /// The paper's candidate hash tree.
    #[default]
    HashTree,
}

/// Hash-tree shape parameters (shared with the litemset phase defaults).
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Interior fanout.
    pub fanout: usize,
    /// Leaf capacity before splitting.
    pub leaf_capacity: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            fanout: 16,
            leaf_capacity: 32,
        }
    }
}

/// Counts the support of every candidate, sharding customers over the
/// workers `parallelism` resolves to. Returns per-candidate customer
/// counts and adds the number of exact containment tests to
/// `containment_tests`; both are bit-identical across thread counts.
///
/// All candidates must share one length (the per-pass invariant of every
/// algorithm in this crate).
pub fn count_supports(
    tdb: &TransformedDatabase,
    candidates: &[Vec<LitemsetId>],
    strategy: CountingStrategy,
    tree_params: TreeParams,
    parallelism: Parallelism,
    containment_tests: &mut u64,
) -> Vec<u64> {
    let threads = parallelism.resolved_threads();
    match strategy {
        CountingStrategy::Direct => count_direct(tdb, candidates, threads, containment_tests),
        CountingStrategy::HashTree => {
            count_hash_tree(tdb, candidates, tree_params, threads, containment_tests)
        }
    }
}

/// Sums per-chunk `(supports, tests)` results in chunk order; exact `u64`
/// addition makes the totals independent of the chunking.
fn merge_counts(
    partials: Vec<(Vec<u64>, u64)>,
    num_candidates: usize,
    containment_tests: &mut u64,
) -> Vec<u64> {
    let mut supports = vec![0u64; num_candidates];
    for (partial, tests) in partials {
        for (total, v) in supports.iter_mut().zip(partial) {
            *total += v;
        }
        *containment_tests += tests;
    }
    supports
}

fn count_direct(
    tdb: &TransformedDatabase,
    candidates: &[Vec<LitemsetId>],
    threads: usize,
    containment_tests: &mut u64,
) -> Vec<u64> {
    let num_litemsets = tdb.table.len();
    let partials = map_chunks(&tdb.customers, threads, |chunk| {
        let mut supports = vec![0u64; candidates.len()];
        let mut tests = 0u64;
        let mut bitmap = vec![false; num_litemsets];
        for customer in chunk {
            if customer.elements.is_empty() {
                continue;
            }
            bitmap.iter_mut().for_each(|b| *b = false);
            for element in &customer.elements {
                for &id in element {
                    bitmap[id as usize] = true;
                }
            }
            for (idx, cand) in candidates.iter().enumerate() {
                if cand.len() > customer.elements.len() {
                    continue;
                }
                if !cand.iter().all(|&id| bitmap[id as usize]) {
                    continue;
                }
                tests += 1;
                if customer_contains(customer, cand) {
                    supports[idx] += 1;
                }
            }
        }
        (supports, tests)
    });
    merge_counts(partials, candidates.len(), containment_tests)
}

/// Fast path for pass 2 (the candidate set is always **all** `|L1|²`
/// ordered litemset pairs — the join over 1-sequences is total and the
/// prune vacuous): count every pair `⟨a b⟩` directly while scanning each
/// customer once, instead of probing millions of candidates through the
/// hash tree. This mirrors the special-cased second pass of the original
/// Apriori implementations (a count array instead of a tree).
///
/// Returns `(number_of_candidate_pairs, large_two_sequences)` with the
/// large sequences in lexicographic id order. `containment_tests` is
/// incremented once per distinct `(a, b)` pair observed per customer.
///
/// Customers are sharded over the workers `parallelism` resolves to, each
/// with a private [`PairCounts`] (dense workers cost `n²` u32 apiece —
/// bounded by `DENSE_LIMIT` at 64 MiB per worker), merged in chunk order.
pub fn large_two_sequences(
    tdb: &TransformedDatabase,
    min_count: u64,
    parallelism: Parallelism,
    containment_tests: &mut u64,
) -> (u64, Vec<crate::phases::maximal::LargeIdSequence>) {
    let n = tdb.table.len();
    let candidates = (n as u64) * (n as u64);
    let threads = parallelism.resolved_threads();
    let partials = map_chunks(&tdb.customers, threads, |chunk| {
        let mut counts = PairCounts::new(n);
        let mut tests = 0u64;
        // Per-customer pair set: collect, sort, dedup, then bump counts.
        let mut pairs: Vec<(LitemsetId, LitemsetId)> = Vec::new();
        let mut seen_before: Vec<LitemsetId> = Vec::new();
        for customer in chunk {
            if customer.elements.len() < 2 {
                continue;
            }
            pairs.clear();
            seen_before.clear();
            for element in &customer.elements {
                if !seen_before.is_empty() {
                    for &b in element {
                        for &a in &seen_before {
                            pairs.push((a, b));
                        }
                    }
                }
                seen_before.extend_from_slice(element);
                seen_before.sort_unstable();
                seen_before.dedup();
            }
            pairs.sort_unstable();
            pairs.dedup();
            tests += pairs.len() as u64;
            for &(a, b) in &pairs {
                counts.bump(a, b);
            }
        }
        (counts, tests)
    });
    let mut counts = PairCounts::new(n);
    for (partial, tests) in partials {
        counts.merge(partial);
        *containment_tests += tests;
    }
    (candidates, counts.into_large(min_count))
}

/// Pair-count storage: dense `n×n` matrix for small alphabets, hash map
/// beyond (a 4096-litemset alphabet already needs 64 MiB dense).
enum PairCounts {
    Dense { n: usize, counts: Vec<u32> },
    Sparse(crate::fxhash::FxHashMap<(LitemsetId, LitemsetId), u32>),
}

impl PairCounts {
    const DENSE_LIMIT: usize = 4096;

    fn new(n: usize) -> Self {
        if n <= Self::DENSE_LIMIT {
            PairCounts::Dense {
                n,
                counts: vec![0; n * n],
            }
        } else {
            PairCounts::Sparse(crate::fxhash::FxHashMap::default())
        }
    }

    fn bump(&mut self, a: LitemsetId, b: LitemsetId) {
        match self {
            PairCounts::Dense { n, counts } => counts[a as usize * *n + b as usize] += 1,
            PairCounts::Sparse(map) => *map.entry((a, b)).or_insert(0) += 1,
        }
    }

    /// Adds another worker's counts into this one. The variant is a pure
    /// function of `n`, so chunks always agree on the storage shape.
    fn merge(&mut self, other: PairCounts) {
        match (self, other) {
            (PairCounts::Dense { counts, .. }, PairCounts::Dense { counts: o, .. }) => {
                for (total, v) in counts.iter_mut().zip(o) {
                    *total += v;
                }
            }
            (PairCounts::Sparse(map), PairCounts::Sparse(o)) => {
                for (pair, v) in o {
                    *map.entry(pair).or_insert(0) += v;
                }
            }
            _ => unreachable!("PairCounts variants diverged for one alphabet size"),
        }
    }

    fn into_large(self, min_count: u64) -> Vec<crate::phases::maximal::LargeIdSequence> {
        use crate::phases::maximal::LargeIdSequence;
        let mut out = Vec::new();
        match self {
            PairCounts::Dense { n, counts } => {
                for a in 0..n {
                    for b in 0..n {
                        let c = counts[a * n + b] as u64;
                        if c >= min_count {
                            out.push(LargeIdSequence {
                                ids: vec![a as LitemsetId, b as LitemsetId],
                                support: c,
                            });
                        }
                    }
                }
            }
            PairCounts::Sparse(map) => {
                let mut entries: Vec<_> = map
                    .into_iter()
                    .filter(|&(_, c)| c as u64 >= min_count)
                    .collect();
                entries.sort_unstable_by_key(|&((a, b), _)| (a, b));
                out.extend(entries.into_iter().map(|((a, b), c)| LargeIdSequence {
                    ids: vec![a, b],
                    support: c as u64,
                }));
            }
        }
        out
    }
}

fn count_hash_tree(
    tdb: &TransformedDatabase,
    candidates: &[Vec<LitemsetId>],
    params: TreeParams,
    threads: usize,
    containment_tests: &mut u64,
) -> Vec<u64> {
    // Built once, shared immutably by every worker.
    let tree = SequenceHashTree::build(candidates, params.fanout, params.leaf_capacity);
    let partials = map_chunks(&tdb.customers, threads, |chunk| {
        let mut supports = vec![0u64; candidates.len()];
        let mut tests = 0u64;
        let mut seen = VisitSet::new(candidates.len());
        for customer in chunk {
            tree.for_each_contained(customer, candidates, &mut seen, &mut tests, &mut |id| {
                supports[id as usize] += 1;
            });
        }
        (supports, tests)
    });
    merge_counts(partials, candidates.len(), containment_tests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::itemset::Itemset;
    use crate::types::transformed::{LitemsetTable, TransformedCustomer};

    fn tdb() -> TransformedDatabase {
        let table = LitemsetTable::new(
            (0..5u32)
                .map(|i| (Itemset::new(vec![i + 1]), 3))
                .collect::<Vec<_>>(),
        );
        let mk = |id: u64, elements: Vec<Vec<LitemsetId>>| TransformedCustomer {
            customer_id: id,
            elements,
        };
        TransformedDatabase {
            customers: vec![
                mk(1, vec![vec![0], vec![4]]),
                mk(2, vec![vec![0], vec![1, 2, 3]]),
                mk(3, vec![vec![0, 3]]),
                mk(4, vec![vec![0], vec![1, 2, 3], vec![4]]),
                mk(5, vec![vec![4]]),
                mk(6, vec![]), // empty after transformation
            ],
            table,
            total_customers: 6,
        }
    }

    #[test]
    fn strategies_agree_and_count_correctly() {
        let db = tdb();
        let candidates: Vec<Vec<LitemsetId>> = vec![
            vec![0, 4], // customers 1 and 4
            vec![0, 1], // customers 2 and 4
            vec![4, 0], // nobody
            vec![0, 3], // customers 2, 4 (not 3: same transaction)
        ];
        let mut t1 = 0;
        let direct = count_supports(
            &db,
            &candidates,
            CountingStrategy::Direct,
            TreeParams::default(),
            Parallelism::Serial,
            &mut t1,
        );
        let mut t2 = 0;
        let tree = count_supports(
            &db,
            &candidates,
            CountingStrategy::HashTree,
            TreeParams::default(),
            Parallelism::Serial,
            &mut t2,
        );
        assert_eq!(direct, vec![2, 2, 0, 2]);
        assert_eq!(tree, direct);
        assert!(t1 > 0);
        assert!(t2 > 0);
    }

    #[test]
    fn bitmap_prefilter_skips_impossible_candidates() {
        let db = tdb();
        // Candidate needs ids {2, 4}; only customer 4 has both, so exactly
        // one exact containment test may run.
        let mut tests = 0;
        let supports = count_supports(
            &db,
            &[vec![2, 4]],
            CountingStrategy::Direct,
            TreeParams::default(),
            Parallelism::Serial,
            &mut tests,
        );
        assert_eq!(supports, vec![1]); // only customer 4
        assert_eq!(tests, 1);
    }

    #[test]
    fn empty_candidate_list() {
        let db = tdb();
        let mut tests = 0;
        let supports = count_supports(
            &db,
            &[],
            CountingStrategy::HashTree,
            TreeParams::default(),
            Parallelism::Serial,
            &mut tests,
        );
        assert!(supports.is_empty());
        assert_eq!(tests, 0);
    }

    #[test]
    fn fast_pair_counting_matches_generic_counting() {
        let db = tdb();
        let mut t = 0;
        let (n_candidates, l2) = large_two_sequences(&db, 2, Parallelism::Serial, &mut t);
        assert_eq!(n_candidates, 25);
        // Cross-check against generic counting of all ordered pairs.
        let all_pairs: Vec<Vec<LitemsetId>> = (0..5)
            .flat_map(|a| (0..5).map(move |b| vec![a, b]))
            .collect();
        let mut t2 = 0;
        let generic = count_supports(
            &db,
            &all_pairs,
            CountingStrategy::Direct,
            TreeParams::default(),
            Parallelism::Serial,
            &mut t2,
        );
        let expected: Vec<(Vec<LitemsetId>, u64)> = all_pairs
            .into_iter()
            .zip(generic)
            .filter(|&(_, c)| c >= 2)
            .collect();
        let got: Vec<(Vec<LitemsetId>, u64)> = l2.into_iter().map(|s| (s.ids, s.support)).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn fast_pair_counting_handles_repeats_within_customer() {
        // One customer with id 0 in three transactions: pair (0,0) counted
        // once for the customer.
        use crate::types::itemset::Itemset;
        use crate::types::transformed::{LitemsetTable, TransformedCustomer};
        let table = LitemsetTable::new(vec![(Itemset::new(vec![1]), 1)]);
        let db = TransformedDatabase {
            customers: vec![TransformedCustomer {
                customer_id: 1,
                elements: vec![vec![0], vec![0], vec![0]],
            }],
            table,
            total_customers: 1,
        };
        let mut t = 0;
        let (_, l2) = large_two_sequences(&db, 1, Parallelism::Serial, &mut t);
        assert_eq!(l2.len(), 1);
        assert_eq!(l2[0].ids, vec![0, 0]);
        assert_eq!(l2[0].support, 1);
        assert_eq!(t, 1);
    }

    #[test]
    fn small_fanout_and_leaf_capacity_still_agree() {
        let db = tdb();
        let candidates: Vec<Vec<LitemsetId>> =
            vec![vec![0, 1], vec![0, 2], vec![0, 3], vec![0, 4], vec![1, 4]];
        let mut t = 0;
        let a = count_supports(
            &db,
            &candidates,
            CountingStrategy::HashTree,
            TreeParams {
                fanout: 2,
                leaf_capacity: 1,
            },
            Parallelism::Serial,
            &mut t,
        );
        let mut t2 = 0;
        let b = count_supports(
            &db,
            &candidates,
            CountingStrategy::Direct,
            TreeParams::default(),
            Parallelism::Serial,
            &mut t2,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_counting_matches_serial_on_fixture() {
        let db = tdb();
        let candidates: Vec<Vec<LitemsetId>> =
            vec![vec![0, 1], vec![0, 2], vec![0, 3], vec![0, 4], vec![4, 0]];
        for strategy in [CountingStrategy::Direct, CountingStrategy::HashTree] {
            let mut serial_tests = 0;
            let serial = count_supports(
                &db,
                &candidates,
                strategy,
                TreeParams::default(),
                Parallelism::Serial,
                &mut serial_tests,
            );
            for threads in [2, 3, 7, 64] {
                let mut tests = 0;
                let parallel = count_supports(
                    &db,
                    &candidates,
                    strategy,
                    TreeParams::default(),
                    Parallelism::threads(threads),
                    &mut tests,
                );
                assert_eq!(parallel, serial, "{strategy:?} with {threads} threads");
                assert_eq!(tests, serial_tests, "{strategy:?} with {threads} threads");
            }
        }
        let mut serial_tests = 0;
        let serial = large_two_sequences(&db, 2, Parallelism::Serial, &mut serial_tests);
        for threads in [2, 3, 7, 64] {
            let mut tests = 0;
            let parallel = large_two_sequences(&db, 2, Parallelism::threads(threads), &mut tests);
            assert_eq!(parallel, serial);
            assert_eq!(tests, serial_tests);
        }
    }
}

/// Property tests pinning the tentpole guarantee: for any generated
/// database and candidate set, every thread count produces supports and
/// containment-test counters bit-identical to the serial run, for both
/// counting strategies.
#[cfg(test)]
mod proptests {
    use super::*;
    use crate::types::itemset::Itemset;
    use crate::types::transformed::{LitemsetTable, TransformedCustomer};
    use proptest::prelude::*;

    const NUM_LITEMSETS: usize = 6;

    /// Builds a transformed database from generated raw shape data. The
    /// customer list may be empty, and individual customers may have no
    /// elements at all.
    fn build_tdb(raw: Vec<Vec<Vec<u8>>>) -> TransformedDatabase {
        let table = LitemsetTable::new(
            (0..NUM_LITEMSETS as u32)
                .map(|i| (Itemset::new(vec![i + 1]), 1))
                .collect::<Vec<_>>(),
        );
        let total = raw.len();
        let customers = raw
            .into_iter()
            .enumerate()
            .map(|(cid, elements)| TransformedCustomer {
                customer_id: cid as u64 + 1,
                elements: elements
                    .into_iter()
                    .map(|element| {
                        let mut ids: Vec<LitemsetId> = element
                            .into_iter()
                            .map(|x| (x as usize % NUM_LITEMSETS) as LitemsetId)
                            .collect();
                        ids.sort_unstable();
                        ids.dedup();
                        ids
                    })
                    .filter(|ids| !ids.is_empty())
                    .collect(),
            })
            .collect();
        TransformedDatabase {
            customers,
            table,
            total_customers: total,
        }
    }

    fn build_candidates(raw: Vec<(u8, u8, u8)>, len: usize) -> Vec<Vec<LitemsetId>> {
        let mut candidates: Vec<Vec<LitemsetId>> = raw
            .into_iter()
            .map(|(a, b, c)| {
                [a, b, c][..len]
                    .iter()
                    .map(|&x| (x as usize % NUM_LITEMSETS) as LitemsetId)
                    .collect()
            })
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        candidates
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn thread_count_never_changes_counting_results(
            raw_db in proptest::collection::vec(
                proptest::collection::vec(
                    proptest::collection::vec(0u8..12, 1..4),
                    0..6,
                ),
                0..9,
            ),
            raw_cands in proptest::collection::vec((0u8..12, 0u8..12, 0u8..12), 0..12),
            cand_len in 2usize..4,
        ) {
            let db = build_tdb(raw_db);
            let candidates = build_candidates(raw_cands, cand_len);
            for strategy in [CountingStrategy::Direct, CountingStrategy::HashTree] {
                let mut serial_tests = 0u64;
                let serial = count_supports(
                    &db,
                    &candidates,
                    strategy,
                    TreeParams::default(),
                    Parallelism::Serial,
                    &mut serial_tests,
                );
                for threads in [1usize, 2, 3, 7] {
                    let mut tests = 0u64;
                    let parallel = count_supports(
                        &db,
                        &candidates,
                        strategy,
                        TreeParams::default(),
                        Parallelism::threads(threads),
                        &mut tests,
                    );
                    prop_assert_eq!(&parallel, &serial);
                    prop_assert_eq!(tests, serial_tests);
                }
            }
        }

        #[test]
        fn thread_count_never_changes_pair_counting(
            raw_db in proptest::collection::vec(
                proptest::collection::vec(
                    proptest::collection::vec(0u8..12, 1..4),
                    0..6,
                ),
                0..9,
            ),
            min_count in 1u64..4,
        ) {
            let db = build_tdb(raw_db);
            let mut serial_tests = 0u64;
            let serial = large_two_sequences(&db, min_count, Parallelism::Serial, &mut serial_tests);
            for threads in [1usize, 2, 3, 7] {
                let mut tests = 0u64;
                let parallel =
                    large_two_sequences(&db, min_count, Parallelism::threads(threads), &mut tests);
                prop_assert_eq!(&parallel.1, &serial.1);
                prop_assert_eq!(parallel.0, serial.0);
                prop_assert_eq!(tests, serial_tests);
            }
        }
    }
}
