//! Helpers outside the kernel basenames: the lexical panic rule never
//! looks here, so the seeded `unwrap` is reachable-kernel-panic or nothing.

pub fn resolve_support(xs: &[u32]) -> u64 {
    deep_lookup(xs)
}

fn deep_lookup(xs: &[u32]) -> u64 {
    u64::from(*xs.first().unwrap())
}
