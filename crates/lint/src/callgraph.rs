//! Workspace symbol table and call graph over [`crate::parser`] output.
//!
//! Resolution is name-based and deliberately over-approximate: a call edge
//! is added to every workspace `fn` the call site could plausibly name.
//! That direction of error is safe for reachability-style rules (a spurious
//! edge can only make the analysis more conservative, never hide a real
//! kernel→helper→panic chain), and it makes `pub use` re-exports work
//! without tracking module trees — the re-exported name resolves to its one
//! real definition wherever it lives. `use … as …` renames are expanded
//! through each file's alias map before lookup.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::parser::ParsedFile;
use crate::rules;

/// Call graph over every non-test `fn` in the parsed workspace.
pub struct CallGraph {
    /// `(file index, fn index)` per node, in deterministic source order.
    pub nodes: Vec<(usize, usize)>,
    /// Sorted, deduped adjacency lists (indices into `nodes`).
    edges: Vec<Vec<usize>>,
    /// Per node, per call site (same order as `FnDef::calls`): the node IDs
    /// the call resolved to, ascending. Empty = unresolved in the workspace.
    resolved: Vec<Vec<Vec<usize>>>,
}

impl CallGraph {
    /// Builds the graph from parsed files (test fns are excluded).
    pub fn build(files: &[ParsedFile]) -> CallGraph {
        let mut nodes: Vec<(usize, usize)> = Vec::new();
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, g) in file.fns.iter().enumerate() {
                if g.is_test {
                    continue;
                }
                by_name
                    .entry(g.name.as_str())
                    .or_default()
                    .push(nodes.len());
                nodes.push((fi, gi));
            }
        }
        let aliases: Vec<BTreeMap<&str, &str>> = files
            .iter()
            .map(|f| {
                f.aliases
                    .iter()
                    .map(|(a, t)| (a.as_str(), t.as_str()))
                    .collect()
            })
            .collect();
        let mut edges = vec![Vec::new(); nodes.len()];
        let mut resolved = vec![Vec::new(); nodes.len()];
        for (id, &(fi, gi)) in nodes.iter().enumerate() {
            let caller = &files[fi].fns[gi];
            let mut outs: BTreeSet<usize> = BTreeSet::new();
            for c in &caller.calls {
                let mut targets: Vec<usize> = Vec::new();
                let name = aliases[fi]
                    .get(c.name.as_str())
                    .copied()
                    .unwrap_or(c.name.as_str());
                let Some(cands) = by_name.get(name) else {
                    resolved[id].push(targets);
                    continue;
                };
                for &t in cands {
                    let (tfi, tgi) = nodes[t];
                    let target = &files[tfi].fns[tgi];
                    // A self-contained crate (linter, vendored shims) is
                    // never a resolution target from outside itself.
                    if let Some(prefix) = rules::self_contained_crate(&files[tfi].path) {
                        if !files[fi].path.starts_with(prefix) {
                            continue;
                        }
                    }
                    let ok = if c.is_method {
                        // `.name(…)` can only land on an impl/trait method.
                        target.impl_type.is_some()
                    } else if let Some(last) = c.path.last() {
                        if last == "Self" {
                            caller.impl_type.is_some() && target.impl_type == caller.impl_type
                        } else if last.starts_with(|ch: char| ch.is_ascii_uppercase()) {
                            // `Type::name(…)` — the qualifier names the type.
                            target.impl_type.as_deref() == Some(last.as_str())
                        } else {
                            // `module::name(…)` — a free fn.
                            target.impl_type.is_none()
                        }
                    } else {
                        // Bare `name(…)`: any free fn, or anything in-file.
                        target.impl_type.is_none() || tfi == fi
                    };
                    if ok {
                        targets.push(t);
                        outs.insert(t);
                    }
                }
                resolved[id].push(targets);
            }
            edges[id] = outs.into_iter().collect();
        }
        CallGraph {
            nodes,
            edges,
            resolved,
        }
    }

    /// Out-edges of `node`, ascending.
    pub fn edges_of(&self, node: usize) -> &[usize] {
        &self.edges[node]
    }

    /// Resolved targets of call site `call_idx` of `node` (parallel to the
    /// fn's `calls` vector), ascending; empty when unresolved.
    pub fn resolved_targets(&self, node: usize, call_idx: usize) -> &[usize] {
        &self.resolved[node][call_idx]
    }

    /// Node IDs whose `(file, fn)` satisfy `pred`, in node order.
    pub fn nodes_where(&self, mut pred: impl FnMut(usize, usize) -> bool) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, &(fi, gi))| pred(fi, gi))
            .map(|(id, _)| id)
            .collect()
    }

    /// Deterministic BFS from `starts`; the returned map sends every
    /// reachable node to its BFS parent (start nodes map to themselves).
    pub fn reachable_with_parents(&self, starts: &[usize]) -> BTreeMap<usize, usize> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut starts: Vec<usize> = starts.to_vec();
        starts.sort_unstable();
        starts.dedup();
        for s in starts {
            parent.insert(s, s);
            queue.push_back(s);
        }
        while let Some(n) = queue.pop_front() {
            for &m in &self.edges[n] {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(m) {
                    e.insert(n);
                    queue.push_back(m);
                }
            }
        }
        parent
    }

    /// The chain `entry → … → node` implied by a BFS parent map, rendered
    /// as fn names joined with arrows.
    pub fn chain(
        &self,
        files: &[ParsedFile],
        parents: &BTreeMap<usize, usize>,
        node: usize,
    ) -> String {
        let mut names: Vec<&str> = Vec::new();
        let mut n = node;
        loop {
            let (fi, gi) = self.nodes[n];
            names.push(files[fi].fns[gi].name.as_str());
            let Some(&p) = parents.get(&n) else { break };
            if p == n {
                break;
            }
            n = p;
        }
        names.reverse();
        names.join(" -> ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn graph(sources: &[(&str, &str)]) -> (Vec<ParsedFile>, CallGraph) {
        let files: Vec<ParsedFile> = sources.iter().map(|(p, s)| parse_file(p, s)).collect();
        let g = CallGraph::build(&files);
        (files, g)
    }

    fn id_of(files: &[ParsedFile], g: &CallGraph, name: &str) -> usize {
        g.nodes
            .iter()
            .position(|&(fi, gi)| files[fi].fns[gi].name == name)
            .unwrap()
    }

    #[test]
    fn cross_file_chains_resolve_through_reexports() {
        let (files, g) = graph(&[
            (
                "crates/a/src/kernel.rs",
                "fn entry() { crate::helpers::run_chunks(); }\n",
            ),
            (
                "crates/a/src/helpers.rs",
                "pub use crate::chunk::run_chunks;\n",
            ),
            (
                "crates/a/src/chunk.rs",
                "pub fn run_chunks() { inner() }\nfn inner() { x.unwrap(); }\n",
            ),
        ]);
        let entry = id_of(&files, &g, "entry");
        let inner = id_of(&files, &g, "inner");
        let reach = g.reachable_with_parents(&[entry]);
        assert!(reach.contains_key(&inner));
        assert_eq!(
            g.chain(&files, &reach, inner),
            "entry -> run_chunks -> inner"
        );
    }

    #[test]
    fn method_calls_only_reach_impl_fns() {
        let (files, g) = graph(&[
            (
                "a.rs",
                "fn caller(t: T) { t.work(); }\nfn work() { free_only(); }\n",
            ),
            (
                "b.rs",
                "impl T { pub fn work(&self) { self.deep(); } fn deep(&self) {} }\n",
            ),
        ]);
        let caller = id_of(&files, &g, "caller");
        let deep = id_of(&files, &g, "deep");
        let reach = g.reachable_with_parents(&[caller]);
        // `.work()` resolves to the impl method (and conservatively also
        // to nothing else impl-less), so `deep` is reachable.
        assert!(reach.contains_key(&deep));
    }

    #[test]
    fn use_as_aliases_expand_before_lookup() {
        let (files, g) = graph(&[
            (
                "a.rs",
                "use crate::b::real_name as alias;\nfn caller() { alias(); }\n",
            ),
            ("b.rs", "pub fn real_name() {}\n"),
        ]);
        let caller = id_of(&files, &g, "caller");
        let real = id_of(&files, &g, "real_name");
        let reach = g.reachable_with_parents(&[caller]);
        assert!(reach.contains_key(&real));
    }

    #[test]
    fn test_fns_are_not_nodes() {
        let (files, g) = graph(&[(
            "a.rs",
            "#[cfg(test)]\nmod tests { fn t() {} }\nfn live() {}\n",
        )]);
        assert_eq!(g.nodes.len(), 1);
        assert_eq!(id_of(&files, &g, "live"), 0);
    }
}
