//! Seeds for `nondeterministic-iteration-flow`: hash-iteration order
//! escaping into fn results, next to the sorted and reduced flows the
//! retired lexical rule used to flag as false positives.

use std::collections::HashMap;

/// Seeded: pushes in hash order straight into the returned Vec — callers
/// observe a different row order on every run.
pub fn export_bad(m: &HashMap<u32, u64>) -> Vec<(u32, u64)> {
    let mut out = Vec::new();
    for (k, v) in m.iter() {
        out.push((*k, *v));
    }
    out
}

/// Seeded: hash order baked into rendered text — no later sort can fix a
/// concatenated string.
pub fn render_bad(m: &HashMap<u32, u64>) -> String {
    let mut s = String::new();
    for (k, v) in m.iter() {
        s.push_str(&format!("{}={};", k, v));
    }
    s
}

/// Clean: collect-then-sort normalizes the order before it escapes. The
/// lexical rule needed a 150-token window to see the sort; the dataflow
/// version tracks the binding itself.
pub fn export_good(m: &HashMap<u32, u64>) -> Vec<(u32, u64)> {
    let mut rows: Vec<(u32, u64)> = m.iter().map(|(k, v)| (*k, *v)).collect();
    rows.sort_unstable();
    rows
}

/// Clean: an order-insensitive reduction — iteration order cannot change a
/// sum of u64s.
pub fn total(m: &HashMap<u32, u64>) -> u64 {
    m.values().sum()
}
