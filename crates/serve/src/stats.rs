//! The concurrent read-mostly query loop, with latency accounting.
//!
//! Serving is embarrassingly parallel: the index is immutable after
//! build/load, so [`run_workload`] shares it across worker threads behind
//! an `Arc` (no locks, no copies) and fans the query list out in
//! contiguous chunks — the same deterministic split as
//! `seqpat_itemset::parallel::map_chunks`. Each worker owns its scratch
//! [`Prediction`] buffer, so the per-query hot path stays allocation-free;
//! per-query wall time is sampled with `Instant` (this file is the
//! crate's one wall-clock site, per the workspace lint).
//!
//! The report's `hits`/`predictions`/`checksum` are thread-count
//! invariant (the checksum folds per-query and combines by XOR), so two
//! runs over the same index and workload can be diffed regardless of
//! `--threads`.

use std::sync::Arc;
use std::time::Instant;

use seqpat_core::LitemsetId;

use crate::lookup::Prediction;
use crate::trie::PatternTrie;

/// Knobs for [`run_workload`].
#[derive(Debug, Clone, Copy)]
pub struct WorkloadOptions {
    /// Worker threads (0 and 1 both mean single-threaded).
    pub threads: usize,
    /// How many times to replay the whole query list.
    pub repeat: usize,
    /// Top-k width requested per query.
    pub k: usize,
}

impl Default for WorkloadOptions {
    fn default() -> Self {
        Self {
            threads: 1,
            repeat: 1,
            k: 5,
        }
    }
}

/// Order statistics over per-query latencies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples summarized.
    pub samples: usize,
    /// Arithmetic mean, nanoseconds.
    pub mean_ns: u64,
    /// Median, nanoseconds.
    pub p50_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// Maximum, nanoseconds.
    pub max_ns: u64,
}

/// Summarizes latency samples; sorts `samples` in place.
pub fn summarize(samples: &mut [u64]) -> LatencySummary {
    if samples.is_empty() {
        return LatencySummary::default();
    }
    samples.sort_unstable();
    let total: u64 = samples.iter().sum();
    let n = samples.len();
    let at = |q_num: usize, q_den: usize| -> u64 {
        // Nearest-rank percentile: ceil(n * q) clamped into the samples.
        let rank = (n * q_num).div_ceil(q_den).max(1);
        samples[rank - 1]
    };
    LatencySummary {
        samples: n,
        mean_ns: total / n as u64,
        p50_ns: at(50, 100),
        p99_ns: at(99, 100),
        max_ns: samples[n - 1],
    }
}

/// What [`run_workload`] measured.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Distinct queries in the workload.
    pub queries: usize,
    /// Total lookups performed (`queries × repeat`).
    pub answered: u64,
    /// Lookups that produced at least one prediction.
    pub hits: u64,
    /// Total predictions written across all lookups.
    pub predictions: u64,
    /// Order-insensitive digest of every (id, support) answered on the
    /// first replay of the workload; equal digests mean equal answers
    /// regardless of thread count. (Only the first replay folds in —
    /// XORing identical digests once per repeat would cancel them out on
    /// even repeat counts.)
    pub checksum: u64,
    /// Wall time of the whole fan-out, nanoseconds.
    pub wall_ns: u64,
    /// Per-query latency order statistics.
    pub latency: LatencySummary,
}

impl WorkloadReport {
    /// Aggregate throughput in queries per second.
    pub fn qps(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.answered as f64 * 1e9 / self.wall_ns as f64
    }

    /// Fraction of lookups that hit a stored prefix.
    pub fn hit_rate(&self) -> f64 {
        if self.answered == 0 {
            return 0.0;
        }
        self.hits as f64 / self.answered as f64
    }
}

/// FNV-style fold of one prediction list into a per-query digest.
fn digest(out: &[Prediction]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for p in out {
        h = (h ^ u64::from(p.id)).wrapping_mul(0x0000_0100_0000_01b3);
        h = (h ^ p.support).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `queries` against the shared index and returns aggregate
/// throughput plus per-query latency statistics. Queries are split into
/// one contiguous chunk per worker; each worker clones the `Arc`, owns a
/// reusable scratch buffer, and times each `predict_into` call.
pub fn run_workload(
    index: &Arc<PatternTrie>,
    queries: &[Vec<LitemsetId>],
    opts: &WorkloadOptions,
) -> WorkloadReport {
    let threads = opts.threads.max(1).min(queries.len().max(1));
    let repeat = opts.repeat.max(1);
    let chunk_len = queries.len().div_ceil(threads).max(1);

    struct WorkerResult {
        latencies: Vec<u64>,
        hits: u64,
        predictions: u64,
        checksum: u64,
    }

    let run_chunk = |chunk: &[Vec<LitemsetId>]| -> WorkerResult {
        let idx = Arc::clone(index);
        let mut out = vec![Prediction::default(); opts.k];
        let mut latencies = Vec::with_capacity(chunk.len() * repeat);
        let mut hits = 0u64;
        let mut predictions = 0u64;
        let mut checksum = 0u64;
        for rep in 0..repeat {
            for q in chunk {
                let started = Instant::now();
                let n = idx.predict_into(q, &mut out);
                let elapsed = started.elapsed().as_nanos();
                latencies.push(u64::try_from(elapsed).unwrap_or(u64::MAX));
                if n > 0 {
                    hits += 1;
                    predictions += n as u64;
                    if rep == 0 {
                        checksum ^= digest(&out[..n]);
                    }
                }
            }
        }
        WorkerResult {
            latencies,
            hits,
            predictions,
            checksum,
        }
    };

    let started = Instant::now();
    let results: Vec<WorkerResult> = if threads <= 1 {
        vec![run_chunk(queries)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .chunks(chunk_len)
                .map(|chunk| scope.spawn(|| run_chunk(chunk)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("serve worker panicked"))
                .collect()
        })
    };
    let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);

    let mut latencies = Vec::with_capacity(queries.len() * repeat);
    let mut hits = 0u64;
    let mut predictions = 0u64;
    let mut checksum = 0u64;
    for r in results {
        latencies.extend_from_slice(&r.latencies);
        hits += r.hits;
        predictions += r.predictions;
        checksum ^= r.checksum;
    }
    let latency = summarize(&mut latencies);
    WorkloadReport {
        queries: queries.len(),
        answered: (queries.len() as u64) * (repeat as u64),
        hits,
        predictions,
        checksum,
        wall_ns,
        latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqpat_core::{Itemset, LargeIdSequence, LitemsetTable};

    fn index() -> Arc<PatternTrie> {
        let table = LitemsetTable::new((0..4u32).map(|i| (Itemset::new(vec![i + 1]), 5)).collect());
        let patterns = vec![
            LargeIdSequence {
                ids: vec![0, 1],
                support: 3,
            },
            LargeIdSequence {
                ids: vec![0, 2],
                support: 7,
            },
            LargeIdSequence {
                ids: vec![3],
                support: 2,
            },
        ];
        Arc::new(PatternTrie::build(&patterns, table, 10).unwrap())
    }

    #[test]
    fn summarize_order_statistics() {
        let mut samples = vec![5, 1, 3, 2, 4];
        let s = summarize(&mut samples);
        assert_eq!(s.samples, 5);
        assert_eq!(s.mean_ns, 3);
        assert_eq!(s.p50_ns, 3);
        assert_eq!(s.p99_ns, 5);
        assert_eq!(s.max_ns, 5);
        assert_eq!(summarize(&mut []), LatencySummary::default());
    }

    #[test]
    fn report_counts_hits_and_misses() {
        let idx = index();
        let queries = vec![vec![0], vec![3], vec![2], vec![0, 1]];
        let opts = WorkloadOptions {
            threads: 1,
            repeat: 2,
            k: 4,
        };
        let report = run_workload(&idx, &queries, &opts);
        assert_eq!(report.queries, 4);
        assert_eq!(report.answered, 8);
        // [0] hits (2 children); [3] and [2] and [0,1] have no extension.
        assert_eq!(report.hits, 2);
        assert_eq!(report.predictions, 4);
        // An even repeat count must not cancel the checksum to zero.
        assert_ne!(report.checksum, 0);
        assert_eq!(report.latency.samples, 8);
        assert!(report.qps() > 0.0);
        assert!((report.hit_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn answers_are_thread_count_invariant() {
        let idx = index();
        let queries: Vec<Vec<u32>> = (0..40)
            .map(|i| match i % 4 {
                0 => vec![0],
                1 => vec![3],
                2 => vec![0, 1],
                _ => vec![2, 2],
            })
            .collect();
        let base = run_workload(
            &idx,
            &queries,
            &WorkloadOptions {
                threads: 1,
                repeat: 1,
                k: 3,
            },
        );
        for threads in [2, 3, 8, 64] {
            let got = run_workload(
                &idx,
                &queries,
                &WorkloadOptions {
                    threads,
                    repeat: 1,
                    k: 3,
                },
            );
            assert_eq!(got.hits, base.hits, "threads {threads}");
            assert_eq!(got.predictions, base.predictions, "threads {threads}");
            assert_eq!(got.checksum, base.checksum, "threads {threads}");
        }
    }

    #[test]
    fn empty_workload_reports_zeroes() {
        let idx = index();
        let report = run_workload(&idx, &[], &WorkloadOptions::default());
        assert_eq!(report.answered, 0);
        assert_eq!(report.hits, 0);
        assert_eq!(report.qps(), 0.0);
    }
}
