//! Bitmap (SPAM-style) support counting — [`CountingStrategy::Bitmap`].
//!
//! The vertical id-list strategy ([`crate::vertical`]) already touches only
//! the customers where a candidate's parts occur, but its merge-joins are
//! branch-heavy pointer walks over `(customer, position)` pairs. The
//! SPAM-family bitmap layout makes the same temporal join *word-parallel*:
//! every litemset id gets one packed bitmap over all transaction slots, and
//! extending a sequence by one litemset is a shift-AND over `u64` words.
//!
//! ## Word layout
//!
//! The whole index is **two allocations**:
//!
//! * `word_offsets` — a per-customer CSR table: customer `c`'s transactions
//!   occupy bit positions `0..len(c)` within the word span
//!   `word_offsets[c]..word_offsets[c+1]` (spans are `ceil(len(c)/64)`
//!   words; transaction `t` is bit `t % 64` of word `t / 64` of the span).
//! * `bits` — a flat id-major `Vec<u64>` arena of `num_ids × total_words`
//!   words: litemset `x`'s bitmap is the contiguous slice
//!   `bits[x·W .. (x+1)·W]`, bit set iff the transaction contains `x`.
//!
//! Both are built once after the transformation phase, are cache-linear by
//! construction, and are reused across every pass of the sequence phase.
//!
//! ## The S-step kernel
//!
//! For a sequence `s`, define `frontier(s)`: bit `(c, t)` set iff customer
//! `c` has an embedding of `s` whose **earliest-match** end is transaction
//! `t` — by the exchange argument behind [`crate::contain`], at most one
//! bit per customer, and it is exactly the `Occurrence.pos` the vertical
//! strategy computes. Extension is SPAM's S-step:
//!
//! ```text
//! frontier(s · ⟨x⟩) = sstep(frontier(s)) & bits(x)
//! ```
//!
//! where [`sstep`] transforms each customer span so that every bit
//! *strictly after* the first set bit becomes 1 (first-occurrence
//! propagation — "everything later than the earliest end is a legal start
//! for the next element").
//!
//! ## Kernel micro-architecture (see DESIGN.md "Kernel micro-architecture")
//!
//! The span walkers (`smear_and_spans`, `smear_spans`,
//! `support_spans`) split every customer window into **uniform batches**
//! (maximal runs of customers whose span is exactly one word) and
//! **multi-word spans** (customers longer than 64 transactions):
//!
//! * Uniform batches run through the manually 4×-unrolled lane kernels
//!   ([`smear_and_words`], [`smear_words`], [`support_hits_words`]) — one
//!   word is one whole customer, so the smear/AND/non-zero test is pure
//!   elementwise ALU work with no carry logic and no data-dependent
//!   branches. Words processed this way feed the `lane_words` counter.
//! * A multi-word span gets a **single carry fix-up pass**: scan to the
//!   first non-zero word `w` (words before it hold no match and smear to
//!   zero, so they are left untouched), smear `w` alone, and saturate every
//!   later word of the span (fused with the AND: those words become
//!   `bits(x)` verbatim). Saturated words feed the `carry_fixups` counter.
//!
//! [`BitmapState::count`] additionally processes each worker's customers in
//! **cache-blocked id-major tiles** of at most [`BLOCK_WORDS`] words per
//! customer block, iterating every prefix run inside the block before
//! moving on — the block's frontier and the id bitmaps it ANDs against stay
//! cache-resident across the whole candidate set. Within a block,
//! consecutive runs that share their length-`k-2` prefix reuse the folded
//! **parent frontier** instead of re-folding it from scratch (prefix-run
//! batching). The reuse is gated to pass 4 and later: at pass 3 the
//! "parent fold" of a one-id prefix is a plain copy, so caching it would
//! only add copies. Runs holding a single candidate — the common case in
//! sparse passes — skip frontier materialization entirely and go through
//! a read-only fused smear+AND+test kernel (at pass 2
//! the prefix bitmap is borrowed straight from the arena, no copy at all).
//!
//! A customer supports the candidate iff its final span is non-zero, so
//! counting is **popcount-free**: one `!= 0` test per span, with the AND
//! against the last litemset's bitmap fused into the test.
//!
//! ## Parallelism and determinism
//!
//! [`BitmapState::count`] shards **customers** into contiguous chunks via
//! [`map_chunks`]; each worker folds every prefix run over its own word
//! range only. Because the chunk word ranges partition the database and
//! every counter below is a per-span function of the data (never of batch
//! or block boundaries), the per-candidate supports and the
//! [`BitmapState::sstep_ops`] / `lane_words` / `carry_fixups` counters are
//! bit-identical for any thread count — the workspace-wide determinism
//! guarantee the other strategies pin.
//!
//! [`CountingStrategy::Bitmap`]: crate::counting::CountingStrategy

use crate::arena::CandidateArena;
use crate::cast::{id32, idx, w64};
use crate::stats::Stopwatch;
use crate::types::transformed::{LitemsetId, TransformedCustomer, TransformedDatabase};
use crate::vertical::Occurrence;
use seqpat_itemset::parallel::{map_chunks, sum_partials};
use std::time::Duration;

/// Word budget of one cache-blocked customer tile in [`BitmapState::count`]
/// (16 KiB of frontier per block): the block's frontier, parent frontier,
/// and the id bitmaps streamed against them stay cache-resident across all
/// prefix runs of a pass. Blocks are customer-aligned, so a single customer
/// longer than the budget still forms a (one-customer) block.
pub const BLOCK_WORDS: usize = 2048;

/// Single-word S-step: returns the word with every bit **strictly above**
/// the lowest set bit of `w` set, and all others clear (`0` maps to `0`).
///
/// `l = w & w.wrapping_neg()` isolates the lowest set bit; `l - 1` is the
/// mask of bits strictly below it, so `!(l | (l - 1))` is the mask of bits
/// strictly above it. For `w == 0`, `l == 0` and `l - 1` wraps to all-ones,
/// giving `0` — no match yet means nothing may start.
#[inline]
pub fn sstep(w: u64) -> u64 {
    let l = w & w.wrapping_neg();
    !(l | l.wrapping_sub(1))
}

/// Per-chunk counters of the bitmap kernels, summed across workers into
/// [`BitmapState`] (each is a per-span function of the data, so the sums
/// are thread-invariant).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct KernelCounters {
    /// Words logically passed through the S-step (one per span word per
    /// smear application) — continuity with the pre-lane `sstep_ops`.
    sstep_ops: u64,
    /// Words processed by the 4×-unrolled single-word-span lane kernels.
    lane_words: u64,
    /// Words saturated by the multi-word carry fix-up pass.
    carry_fixups: u64,
}

impl KernelCounters {
    fn add(&mut self, other: KernelCounters) {
        self.sstep_ops += other.sstep_ops;
        self.lane_words += other.lane_words;
        self.carry_fixups += other.carry_fixups;
    }
}

/// Elementwise fused S-step + AND over a uniform batch (every word is one
/// whole customer span): `f[i] = sstep(f[i]) & bits[i]`, manually unrolled
/// over 4×u64 lanes.
#[inline]
pub fn smear_and_words(frontier: &mut [u64], bits: &[u64]) {
    debug_assert_eq!(
        frontier.len(),
        bits.len(),
        "a uniform batch ANDs equal-length word windows"
    );
    let mut f = frontier.chunks_exact_mut(4);
    let mut b = bits.chunks_exact(4);
    for (fw, bw) in (&mut f).zip(&mut b) {
        fw[0] = sstep(fw[0]) & bw[0];
        fw[1] = sstep(fw[1]) & bw[1];
        fw[2] = sstep(fw[2]) & bw[2];
        fw[3] = sstep(fw[3]) & bw[3];
    }
    for (fw, &bw) in f.into_remainder().iter_mut().zip(b.remainder()) {
        *fw = sstep(*fw) & bw;
    }
}

/// Elementwise S-step over a uniform batch, manually unrolled over 4×u64
/// lanes: `f[i] = sstep(f[i])`.
#[inline]
pub fn smear_words(frontier: &mut [u64]) {
    debug_assert!(
        frontier.chunks_exact(4).all(|lane| lane.len() == 4),
        "chunks_exact yields whole 4-word lanes, so lane[0..=3] are in bounds"
    );
    let mut f = frontier.chunks_exact_mut(4);
    for fw in &mut f {
        fw[0] = sstep(fw[0]);
        fw[1] = sstep(fw[1]);
        fw[2] = sstep(fw[2]);
        fw[3] = sstep(fw[3]);
    }
    for fw in f.into_remainder() {
        *fw = sstep(*fw);
    }
}

/// Branchless support test over a uniform batch: the number of words `i`
/// with `f[i] & l[i] != 0` (each word is one customer span, so this is the
/// batch's supporting-customer count), manually unrolled over 4×u64 lanes.
#[inline]
pub fn support_hits_words(frontier: &[u64], last_bits: &[u64]) -> u64 {
    debug_assert_eq!(
        frontier.len(),
        last_bits.len(),
        "a uniform batch tests equal-length word windows"
    );
    let mut hits = 0u64;
    let mut f = frontier.chunks_exact(4);
    let mut l = last_bits.chunks_exact(4);
    for (fw, lw) in (&mut f).zip(&mut l) {
        hits += u64::from(fw[0] & lw[0] != 0)
            + u64::from(fw[1] & lw[1] != 0)
            + u64::from(fw[2] & lw[2] != 0)
            + u64::from(fw[3] & lw[3] != 0);
    }
    for (&fw, &lw) in f.remainder().iter().zip(l.remainder()) {
        hits += u64::from(fw & lw != 0);
    }
    hits
}

/// Walks the customer spans of one offsets window, invoking `visit(a, b,
/// is_multi)` once per maximal uniform batch (`is_multi == false`: a run of
/// single-word spans; zero-word spans of empty customers extend a batch
/// without contributing) and once per multi-word span (`is_multi == true`:
/// one customer longer than 64 transactions). `offsets[0]` maps to relative
/// word 0 of the window.
#[inline]
fn walk_spans(offsets: &[u32], mut visit: impl FnMut(usize, usize, bool)) {
    debug_assert!(
        !offsets.is_empty() && offsets.windows(2).all(|s| s[0] <= s[1]),
        "CSR word offsets are monotone"
    );
    let base = offsets[0];
    let mut batch_start = 0usize;
    for span in offsets.windows(2) {
        let (a, b) = (idx(span[0] - base), idx(span[1] - base));
        if b - a <= 1 {
            continue; // single-word (or empty) span: stays in the batch
        }
        if a > batch_start {
            visit(batch_start, a, false);
        }
        visit(a, b, true);
        batch_start = b;
    }
    let end = idx(offsets[offsets.len() - 1] - base);
    if end > batch_start {
        visit(batch_start, end, false);
    }
}

/// Fused S-step + AND over every customer span of `frontier`
/// (`frontier(s·⟨x⟩) = sstep(frontier(s)) & bits(x)` per the module docs):
/// uniform batches go through the unrolled lanes, multi-word spans through
/// the single carry fix-up pass (words before the first match smear to zero
/// and are already zero; the first-match word is smeared in place; all
/// later words saturate, which the fused AND collapses to `bits` verbatim).
///
/// `offsets` is the window of the CSR table covering exactly the customers
/// whose words `frontier` (and `bits`) hold.
fn smear_and_spans(offsets: &[u32], frontier: &mut [u64], bits: &[u64], st: &mut KernelCounters) {
    debug_assert!(
        frontier.len() == bits.len()
            && offsets
                .last()
                .zip(offsets.first())
                .is_some_and(|(&e, &s)| idx(e - s) <= frontier.len()),
        "the frontier and bits windows cover the offsets span"
    );
    st.sstep_ops += offsets
        .last()
        .zip(offsets.first())
        .map_or(0, |(&e, &s)| w64(idx(e - s)));
    walk_spans(offsets, |a, b, is_multi| {
        if !is_multi {
            st.lane_words += w64(b - a);
            smear_and_words(&mut frontier[a..b], &bits[a..b]);
        } else {
            // Branchless carry: `carry` is all-ones from the first matched
            // word on, saturating every later word (the fused AND then
            // collapses them to `bits` verbatim).
            let mut carry = 0u64;
            for (f, &bw) in frontier[a..b].iter_mut().zip(&bits[a..b]) {
                st.carry_fixups += carry & 1;
                let w = *f;
                *f = (sstep(w) | carry) & bw;
                carry |= 0u64.wrapping_sub(u64::from(w != 0));
            }
        }
    });
}

/// Out-of-place fused S-step + AND over a uniform batch:
/// `out[i] = sstep(src[i]) & bits[i]`, manually unrolled over 4×u64 lanes.
/// Fuses the per-run frontier copy of [`BitmapState::count`] into the first
/// smear pass (the source is the parent frontier or an id bitmap borrowed
/// straight from the arena).
#[inline]
pub fn smear_and_from_words(out: &mut [u64], src: &[u64], bits: &[u64]) {
    debug_assert!(
        out.len() == src.len() && out.len() == bits.len(),
        "a uniform batch maps equal-length word windows"
    );
    let mut o = out.chunks_exact_mut(4);
    let mut s = src.chunks_exact(4);
    let mut b = bits.chunks_exact(4);
    for ((ow, sw), bw) in (&mut o).zip(&mut s).zip(&mut b) {
        ow[0] = sstep(sw[0]) & bw[0];
        ow[1] = sstep(sw[1]) & bw[1];
        ow[2] = sstep(sw[2]) & bw[2];
        ow[3] = sstep(sw[3]) & bw[3];
    }
    for ((ow, &sw), &bw) in o
        .into_remainder()
        .iter_mut()
        .zip(s.remainder())
        .zip(b.remainder())
    {
        *ow = sstep(sw) & bw;
    }
}

/// Out-of-place [`smear_and_spans`]: `out(c) = sstep(src(c)) & bits(c)` per
/// customer span, never reading `out`. This fuses the frontier copy that
/// would otherwise precede the first in-place smear of a prefix run —
/// `src` stays borrowed (parent frontier or arena bitmap) and is written
/// exactly once into `out`.
fn smear_and_from_spans(
    offsets: &[u32],
    out: &mut [u64],
    src: &[u64],
    bits: &[u64],
    st: &mut KernelCounters,
) {
    debug_assert!(
        out.len() == src.len()
            && out.len() == bits.len()
            && offsets
                .last()
                .zip(offsets.first())
                .is_some_and(|(&e, &s)| idx(e - s) <= out.len()),
        "the out, src, and bits windows cover the offsets span"
    );
    st.sstep_ops += offsets
        .last()
        .zip(offsets.first())
        .map_or(0, |(&e, &s)| w64(idx(e - s)));
    walk_spans(offsets, |a, b, is_multi| {
        if !is_multi {
            st.lane_words += w64(b - a);
            smear_and_from_words(&mut out[a..b], &src[a..b], &bits[a..b]);
        } else {
            let mut carry = 0u64;
            for ((o, &sw), &bw) in out[a..b].iter_mut().zip(&src[a..b]).zip(&bits[a..b]) {
                st.carry_fixups += carry & 1;
                *o = (sstep(sw) | carry) & bw;
                carry |= 0u64.wrapping_sub(u64::from(sw != 0));
            }
        }
    });
}

/// S-step (no AND) over every customer span of `frontier` — the shared
/// "ready" smear applied once per prefix run before the per-candidate
/// support tests. Same batching and carry fix-up as [`smear_and_spans`],
/// with later words of a matched multi-word span saturating to all-ones.
fn smear_spans(offsets: &[u32], frontier: &mut [u64], st: &mut KernelCounters) {
    debug_assert!(
        offsets
            .last()
            .zip(offsets.first())
            .is_some_and(|(&e, &s)| idx(e - s) <= frontier.len()),
        "the frontier covers the offsets span"
    );
    st.sstep_ops += offsets
        .last()
        .zip(offsets.first())
        .map_or(0, |(&e, &s)| w64(idx(e - s)));
    walk_spans(offsets, |a, b, is_multi| {
        if !is_multi {
            st.lane_words += w64(b - a);
            smear_words(&mut frontier[a..b]);
        } else {
            let mut carry = 0u64;
            for f in &mut frontier[a..b] {
                st.carry_fixups += carry & 1;
                let w = *f;
                *f = sstep(w) | carry;
                carry |= 0u64.wrapping_sub(u64::from(w != 0));
            }
        }
    });
}

/// Fused smear + AND + support test over a uniform batch: the number of
/// words `i` with `sstep(f[i]) & l[i] != 0`, manually unrolled over 4×u64
/// lanes. Read-only — the single-candidate-run fast path of
/// [`BitmapState::count`] never materializes the smeared frontier.
#[inline]
pub fn smear_and_hits_words(frontier: &[u64], last_bits: &[u64]) -> u64 {
    debug_assert_eq!(
        frontier.len(),
        last_bits.len(),
        "a uniform batch tests equal-length word windows"
    );
    let mut hits = 0u64;
    let mut f = frontier.chunks_exact(4);
    let mut l = last_bits.chunks_exact(4);
    for (fw, lw) in (&mut f).zip(&mut l) {
        hits += u64::from(sstep(fw[0]) & lw[0] != 0)
            + u64::from(sstep(fw[1]) & lw[1] != 0)
            + u64::from(sstep(fw[2]) & lw[2] != 0)
            + u64::from(sstep(fw[3]) & lw[3] != 0);
    }
    for (&fw, &lw) in f.remainder().iter().zip(l.remainder()) {
        hits += u64::from(sstep(fw) & lw != 0);
    }
    hits
}

/// Fused S-step + AND + support count over every customer span, **without
/// writing the frontier**: the support of `s · ⟨x⟩` given the *unsmeared*
/// frontier of `s` (which for length-2 candidates is just the prefix id's
/// bitmap, borrowed straight from the arena). Multi-word spans need no
/// materialized carry either: the words after the first match saturate, so
/// the span supports iff the first-match word passes the fused test or any
/// later `last_bits` word is non-zero.
fn support_fused_spans(
    offsets: &[u32],
    frontier: &[u64],
    last_bits: &[u64],
    st: &mut KernelCounters,
) -> u64 {
    debug_assert!(
        frontier.len() == last_bits.len()
            && offsets
                .last()
                .zip(offsets.first())
                .is_some_and(|(&e, &s)| idx(e - s) <= frontier.len()),
        "the frontier and bits windows cover the offsets span"
    );
    st.sstep_ops += offsets
        .last()
        .zip(offsets.first())
        .map_or(0, |(&e, &s)| w64(idx(e - s)));
    let mut hits = 0u64;
    walk_spans(offsets, |a, b, is_multi| {
        if !is_multi {
            st.lane_words += w64(b - a);
            hits += smear_and_hits_words(&frontier[a..b], &last_bits[a..b]);
        } else {
            let mut carry = 0u64;
            let mut hit = 0u64;
            for (&fw, &lw) in frontier[a..b].iter().zip(&last_bits[a..b]) {
                st.carry_fixups += carry & 1;
                hit |= (sstep(fw) | carry) & lw;
                carry |= 0u64.wrapping_sub(u64::from(fw != 0));
            }
            hits += u64::from(hit != 0);
        }
    });
    hits
}

/// Popcount-free support count over every customer span: the number of
/// spans whose `frontier & last_bits` (or `last_bits` alone when `frontier`
/// is `None` — the length-1 candidate case) is non-zero. Uniform batches go
/// through the unrolled branchless lanes; multi-word spans early-exit on
/// the first non-zero word.
fn support_spans(offsets: &[u32], frontier: Option<&[u64]>, last_bits: &[u64]) -> u64 {
    debug_assert!(
        offsets
            .last()
            .zip(offsets.first())
            .is_some_and(|(&e, &s)| idx(e - s) <= last_bits.len())
            && frontier.is_none_or(|f| f.len() == last_bits.len()),
        "the frontier and bits windows cover the offsets span"
    );
    let mut hits = 0u64;
    match frontier {
        Some(f) => walk_spans(offsets, |a, b, is_multi| {
            if !is_multi {
                hits += support_hits_words(&f[a..b], &last_bits[a..b]);
            } else {
                hits += u64::from(
                    f[a..b]
                        .iter()
                        .zip(&last_bits[a..b])
                        .any(|(&fw, &lw)| fw & lw != 0),
                );
            }
        }),
        None => walk_spans(offsets, |a, b, is_multi| {
            if !is_multi {
                let mut lanes = last_bits[a..b].chunks_exact(4);
                for lw in &mut lanes {
                    hits += u64::from(lw[0] != 0)
                        + u64::from(lw[1] != 0)
                        + u64::from(lw[2] != 0)
                        + u64::from(lw[3] != 0);
                }
                for &lw in lanes.remainder() {
                    hits += u64::from(lw != 0);
                }
            } else {
                hits += u64::from(last_bits[a..b].iter().any(|&w| w != 0));
            }
        }),
    }
    hits
}

/// Packed per-litemset bitmaps over a flat arena with a per-customer CSR
/// word-offset table. See the module docs for the exact layout.
#[derive(Debug)]
pub struct BitmapIndex {
    /// `customers + 1` entries; customer `c` owns words
    /// `word_offsets[c]..word_offsets[c+1]` of each id's bitmap.
    word_offsets: Vec<u32>,
    /// Id-major arena: `num_ids × total_words` words.
    bits: Vec<u64>,
    total_words: usize,
    num_ids: usize,
}

impl BitmapIndex {
    /// Builds the index in one scan of the transformed database.
    pub fn build(tdb: &TransformedDatabase) -> Self {
        Self::build_slice(&tdb.customers, tdb.table.len())
    }

    /// Like [`BitmapIndex::build`], but over any contiguous row slice — a
    /// whole database or one shard of it. Customer indices are relative to
    /// `customers`, so per-shard indexes are self-contained (supports are
    /// additive across shards).
    pub fn build_slice(customers: &[TransformedCustomer], num_ids: usize) -> Self {
        let mut word_offsets = Vec::with_capacity(customers.len() + 1);
        word_offsets.push(0u32);
        let mut total = 0u32;
        for customer in customers {
            total += id32(customer.elements.len().div_ceil(64));
            word_offsets.push(total);
        }
        let total_words = idx(total);
        let mut bits = vec![0u64; num_ids * total_words];
        debug_assert_eq!(
            word_offsets.len(),
            customers.len() + 1,
            "one CSR word offset per customer plus the terminator"
        );
        for (c, customer) in customers.iter().enumerate() {
            let base = idx(word_offsets[c]);
            for (t, element) in customer.elements.iter().enumerate() {
                let word = base + t / 64;
                let bit = 1u64 << (t % 64);
                for &id in element {
                    bits[idx(id) * total_words + word] |= bit;
                }
            }
        }
        Self {
            word_offsets,
            bits,
            total_words,
            num_ids,
        }
    }

    /// Number of customers covered.
    pub fn num_customers(&self) -> usize {
        self.word_offsets.len() - 1
    }

    /// Number of litemset ids covered.
    pub fn num_ids(&self) -> usize {
        self.num_ids
    }

    /// Total `u64` words in the bitmap arena (`num_ids × words-per-id`).
    pub fn words(&self) -> u64 {
        w64(self.bits.len())
    }

    /// Heap bytes held by the index (arena + offset table).
    pub fn bytes(&self) -> u64 {
        w64(self.bits.len() * std::mem::size_of::<u64>()
            + self.word_offsets.len() * std::mem::size_of::<u32>())
    }

    /// Words `w0..w1` of litemset `id`'s bitmap.
    fn id_words(&self, id: LitemsetId, w0: usize, w1: usize) -> &[u64] {
        debug_assert!(
            idx(id) < self.num_ids && w0 <= w1 && w1 <= self.total_words,
            "id in alphabet and word range within one bitmap"
        );
        let base = idx(id) * self.total_words;
        &self.bits[base + w0..base + w1]
    }
}

/// Per-mining-run state of the bitmap strategy: the index plus the
/// counters that feed [`crate::stats::MiningStats`]. Unlike the vertical
/// strategy there is nothing to cache between passes — the frontier fold
/// is cheap enough to redo per prefix run, and the index itself never
/// changes.
#[derive(Debug)]
pub struct BitmapState {
    index: BitmapIndex,
    /// Customer indices `0..num_customers`, precomputed once so every
    /// [`BitmapState::count`] call can shard without rebuilding the list.
    customers: Vec<u32>,
    /// Whole-database frontier scratch reused across
    /// [`BitmapState::occurrences_of`] calls.
    frontier: Vec<u64>,
    /// Wall time spent building the index.
    pub index_build_time: Duration,
    /// Words processed by the smear kernel so far (the bitmap analogue of
    /// an exact containment test / merge-join; thread-invariant).
    pub sstep_ops: u64,
    /// Words processed by the 4×-unrolled single-word-span lane kernels
    /// (thread-invariant: a per-span function of the data).
    pub lane_words: u64,
    /// Words saturated by the multi-word carry fix-up pass
    /// (thread-invariant: a per-span function of the data).
    pub carry_fixups: u64,
}

impl BitmapState {
    /// Builds the bitmap index for `tdb`.
    pub fn build(tdb: &TransformedDatabase) -> Self {
        Self::build_slice(&tdb.customers, tdb.table.len())
    }

    /// Like [`BitmapState::build`], but over any contiguous row slice — a
    /// whole database or one shard of it.
    pub fn build_slice(customers: &[TransformedCustomer], num_ids: usize) -> Self {
        // seqpat-lint: allow(no-wall-clock-in-kernels) index build is timed once per pass for MiningStats, never in the counting loops
        let watch = Stopwatch::start();
        let index = BitmapIndex::build_slice(customers, num_ids);
        // seqpat-lint: allow(no-wall-clock-in-kernels) one elapsed() read per index build, reported through MiningStats
        let index_build_time = watch.elapsed();
        let customers: Vec<u32> = (0..id32(index.num_customers())).collect();
        Self {
            index,
            customers,
            frontier: Vec::new(),
            index_build_time,
            sstep_ops: 0,
            lane_words: 0,
            carry_fixups: 0,
        }
    }

    /// The underlying index.
    pub fn index(&self) -> &BitmapIndex {
        &self.index
    }

    /// Counts the support of every candidate in `candidates` (sorted,
    /// equal-length rows) with S-step folds, sharding customers over
    /// `threads` workers and walking each worker's customers in
    /// cache-blocked tiles of at most [`BLOCK_WORDS`] words. Supports and
    /// the kernel counters are bit-identical across thread counts.
    pub fn count(&mut self, candidates: &CandidateArena, threads: usize) -> Vec<u64> {
        let n = candidates.num_candidates();
        if n == 0 {
            return Vec::new();
        }
        let len = candidates.candidate_len();

        debug_assert!(
            candidates
                .iter()
                .flatten()
                .all(|&id| idx(id) < self.index.num_ids),
            "every candidate id is within the index alphabet"
        );

        // Maximal blocks of candidates sharing the length-(len-1) prefix
        // (contiguous because arenas are sorted): the prefix frontier is
        // folded once per run per tile, then each candidate in the run
        // costs one fused AND + non-zero test per customer span.
        let runs = candidates.prefix_runs();

        let index = &self.index;
        let partials = map_chunks(&self.customers, threads, |chunk| {
            if chunk.is_empty() {
                return (vec![0u64; n], KernelCounters::default());
            }
            let first = idx(chunk[0]);
            let chunk_offsets = &index.word_offsets[first..first + chunk.len() + 1];
            let mut supports = vec![0u64; n];
            let mut st = KernelCounters::default();
            let mut frontier: Vec<u64> = Vec::new();
            let mut parent: Vec<u64> = Vec::new();
            // Cache-blocked tiles: [c0, c1) customer windows of at most
            // BLOCK_WORDS words (always at least one customer), so the
            // frontier, parent frontier, and the id-bitmap words they
            // stream against stay cache-resident across every prefix run.
            let mut c0 = 0usize;
            while c0 < chunk.len() {
                let mut c1 = c0 + 1;
                while c1 < chunk.len()
                    && idx(chunk_offsets[c1 + 1] - chunk_offsets[c0]) <= BLOCK_WORDS
                {
                    c1 += 1;
                }
                let offsets = &chunk_offsets[c0..c1 + 1];
                let (w0, w1) = (idx(offsets[0]), idx(offsets[offsets.len() - 1]));
                debug_assert!(
                    w0 <= w1 && offsets.len() == c1 - c0 + 1,
                    "a tile owns a contiguous word range, one offset per customer plus terminator"
                );
                frontier.resize(w1 - w0, 0);
                // The folded frontier of the previous run's length-(len-2)
                // prefix, reused while consecutive runs share it.
                let mut parent_of: Option<&[LitemsetId]> = None;
                for &(start, end) in &runs {
                    let row = candidates.get(start);
                    // Materialize the *unsmeared* prefix frontier for
                    // length ≥ 3. Length 2 borrows the prefix id's bitmap
                    // straight from the arena (no copy); length ≥ 4 reuses
                    // the parent frontier across runs sharing the
                    // length-(len-2) prefix — at length 3 the parent fold
                    // is itself a plain copy, so caching it saves nothing.
                    if len >= 3 {
                        let prefix = &row[..len - 1];
                        let src: &[u64] = if len >= 4 {
                            let pids = &prefix[..len - 2];
                            if parent_of != Some(pids) {
                                parent.resize(w1 - w0, 0);
                                if let [pid] = pids {
                                    parent.copy_from_slice(index.id_words(*pid, w0, w1));
                                } else {
                                    smear_and_from_spans(
                                        offsets,
                                        &mut parent,
                                        index.id_words(pids[0], w0, w1),
                                        index.id_words(pids[1], w0, w1),
                                        &mut st,
                                    );
                                    for &id in &pids[2..] {
                                        smear_and_spans(
                                            offsets,
                                            &mut parent,
                                            index.id_words(id, w0, w1),
                                            &mut st,
                                        );
                                    }
                                }
                                parent_of = Some(pids);
                            }
                            &parent
                        } else {
                            index.id_words(prefix[0], w0, w1)
                        };
                        // Fused copy + smear + AND: `src` (parent frontier
                        // or arena bitmap) is read in place and written
                        // into the frontier exactly once.
                        smear_and_from_spans(
                            offsets,
                            &mut frontier,
                            src,
                            index.id_words(prefix[len - 2], w0, w1),
                            &mut st,
                        );
                    }
                    if len >= 2 && end - start == 1 {
                        // Single-candidate run: fuse the "ready" smear into
                        // the support test — one read-only pass, nothing
                        // written back.
                        let last_bits = index.id_words(row[len - 1], w0, w1);
                        let fbits: &[u64] = if len == 2 {
                            index.id_words(row[0], w0, w1)
                        } else {
                            &frontier
                        };
                        supports[start] += support_fused_spans(offsets, fbits, last_bits, &mut st);
                        continue;
                    }
                    if len == 2 {
                        frontier.copy_from_slice(index.id_words(row[0], w0, w1));
                    }
                    if len >= 2 {
                        // Smear once per run; every candidate then pays
                        // only the fused AND + non-zero test.
                        smear_spans(offsets, &mut frontier, &mut st);
                    }
                    for (i, support) in supports[start..end].iter_mut().enumerate() {
                        let last_id = candidates.get(start + i)[len - 1];
                        let last_bits = index.id_words(last_id, w0, w1);
                        let ready = if len == 1 { None } else { Some(&frontier[..]) };
                        *support += support_spans(offsets, ready, last_bits);
                    }
                }
                c0 = c1;
            }
            (supports, st)
        });

        let mut totals = KernelCounters::default();
        let supports = sum_partials(
            partials.into_iter().map(|(partial, st)| {
                totals.add(st);
                partial
            }),
            n,
        );
        self.sstep_ops += totals.sstep_ops;
        self.lane_words += totals.lane_words;
        self.carry_fixups += totals.carry_fixups;
        supports
    }

    /// The earliest-match end of `ids` per supporting customer, written
    /// into `out` (cleared first) as `(customer, pos)` occurrences —
    /// identical to [`crate::vertical::VerticalState::occurrences_of`].
    /// Used by DynamicSome's on-the-fly pass: fold the whole-database
    /// frontier (into scratch retained on the state), then take the first
    /// set bit of each non-zero span.
    pub fn occurrences_of(&mut self, ids: &[LitemsetId], out: &mut Vec<Occurrence>) {
        out.clear();
        if ids.is_empty() {
            return;
        }
        debug_assert!(
            ids.iter().all(|&id| idx(id) < self.index.num_ids),
            "every id is within the index alphabet"
        );
        let tw = self.index.total_words;
        let offsets = &self.index.word_offsets;
        let mut st = KernelCounters::default();
        let frontier = &mut self.frontier;
        frontier.clear();
        frontier.extend_from_slice(self.index.id_words(ids[0], 0, tw));
        for &id in &ids[1..] {
            smear_and_spans(offsets, frontier, self.index.id_words(id, 0, tw), &mut st);
        }
        self.sstep_ops += st.sstep_ops;
        self.lane_words += st.lane_words;
        self.carry_fixups += st.carry_fixups;
        for (c, span) in offsets.windows(2).enumerate() {
            let (a, b) = (idx(span[0]), idx(span[1]));
            for (wi, &w) in frontier[a..b].iter().enumerate() {
                if w != 0 {
                    out.push(Occurrence {
                        customer: id32(c),
                        pos: id32(wi * 64 + idx(w.trailing_zeros())),
                    });
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contain::customer_contains_from;
    use crate::types::itemset::Itemset;
    use crate::types::transformed::{LitemsetTable, TransformedCustomer};

    fn tdb(customers: Vec<Vec<Vec<LitemsetId>>>, num_ids: u32) -> TransformedDatabase {
        let table = LitemsetTable::new(
            (0..num_ids)
                .map(|i| (Itemset::new(vec![i + 1]), 1))
                .collect::<Vec<_>>(),
        );
        let total = customers.len();
        TransformedDatabase {
            customers: customers
                .into_iter()
                .enumerate()
                .map(|(i, elements)| TransformedCustomer {
                    customer_id: i as u64 + 1,
                    elements,
                })
                .collect(),
            table,
            total_customers: total,
        }
    }

    fn occ(customer: u32, pos: u32) -> Occurrence {
        Occurrence { customer, pos }
    }

    fn occs(state: &mut BitmapState, ids: &[LitemsetId]) -> Vec<Occurrence> {
        let mut out = vec![occ(9, 9)]; // stale content must be cleared
        state.occurrences_of(ids, &mut out);
        out
    }

    #[test]
    fn sstep_sets_exactly_the_bits_above_the_lowest_set_bit() {
        assert_eq!(sstep(0), 0);
        assert_eq!(sstep(0b1), !0b1u64);
        assert_eq!(sstep(0b1000), !0b1111u64);
        // Higher set bits are irrelevant — only the lowest matters.
        assert_eq!(sstep(0b1010_1000), !0b1111u64);
        // A match at the top bit leaves nothing strictly after it.
        assert_eq!(sstep(1u64 << 63), 0);
        assert_eq!(sstep(u64::MAX), !0b1u64);
    }

    #[test]
    fn unrolled_lane_kernels_match_the_scalar_sstep() {
        // 11 words: two full 4-lanes plus a 3-word remainder.
        let frontier: Vec<u64> = (0..11u64)
            .map(|i| i.wrapping_mul(0x9e3779b9) << (i % 7))
            .collect();
        let bits: Vec<u64> = (0..11u64).map(|i| !i.wrapping_mul(0x85ebca6b)).collect();
        let mut lanes = frontier.clone();
        smear_and_words(&mut lanes, &bits);
        let scalar: Vec<u64> = frontier
            .iter()
            .zip(&bits)
            .map(|(&f, &b)| sstep(f) & b)
            .collect();
        assert_eq!(lanes, scalar);

        let mut lanes = frontier.clone();
        smear_words(&mut lanes);
        let scalar: Vec<u64> = frontier.iter().map(|&f| sstep(f)).collect();
        assert_eq!(lanes, scalar);

        let expected: u64 = frontier
            .iter()
            .zip(&bits)
            .map(|(&f, &b)| u64::from(f & b != 0))
            .sum();
        assert_eq!(support_hits_words(&frontier, &bits), expected);
    }

    #[test]
    fn index_layout_spans_and_bits() {
        let db = tdb(
            vec![
                vec![vec![0], vec![1, 2], vec![0]],
                vec![],
                vec![vec![2], vec![0, 2]],
            ],
            3,
        );
        let index = BitmapIndex::build(&db);
        // Customer spans: 1 word, 0 words (empty), 1 word.
        assert_eq!(index.word_offsets, vec![0, 1, 1, 2]);
        assert_eq!(index.total_words, 2);
        assert_eq!(index.words(), 6); // 3 ids × 2 words
        assert!(index.bytes() > 0);
        // id 0: customer 0 transactions {0, 2}, customer 2 transaction {1}.
        assert_eq!(index.id_words(0, 0, 2), &[0b101, 0b10]);
        // id 1: customer 0 transaction {1} only.
        assert_eq!(index.id_words(1, 0, 2), &[0b010, 0b00]);
        // id 2: customer 0 transaction {1}, customer 2 transactions {0, 1}.
        assert_eq!(index.id_words(2, 0, 2), &[0b010, 0b11]);
    }

    #[test]
    fn multi_word_customers_get_multi_word_spans() {
        // 70 transactions → 2 words for customer 0; 1 word for customer 1.
        let mut long = vec![vec![9u32]; 70];
        long[0] = vec![0];
        long[69] = vec![1];
        let db = tdb(vec![long, vec![vec![0], vec![1]]], 10);
        let index = BitmapIndex::build(&db);
        assert_eq!(index.word_offsets, vec![0, 2, 3]);
        assert_eq!(index.id_words(0, 0, 3), &[1, 0, 0b01]);
        assert_eq!(index.id_words(1, 0, 3), &[0, 1 << 5, 0b10]); // 69 = 64 + 5
    }

    /// Brute-force oracle: count + earliest ends via the containment kernel.
    fn oracle(db: &TransformedDatabase, cand: &[LitemsetId]) -> Vec<Occurrence> {
        db.customers
            .iter()
            .enumerate()
            .filter_map(|(c, customer)| {
                customer_contains_from(customer, cand, 0).map(|end| occ(c as u32, end as u32))
            })
            .collect()
    }

    #[test]
    fn counting_matches_containment_oracle() {
        let db = tdb(
            vec![
                vec![vec![0], vec![1], vec![0, 1], vec![2]],
                vec![vec![1, 2], vec![0], vec![0]],
                vec![vec![2], vec![2], vec![1]],
                vec![vec![0, 1, 2]],
                vec![],
            ],
            3,
        );
        // All 27 ordered triples over {0,1,2}; sorted by construction.
        let mut triples = CandidateArena::new(3);
        for a in 0..3u32 {
            for b in 0..3u32 {
                for c in 0..3u32 {
                    triples.push(&[a, b, c]);
                }
            }
        }
        let mut state = BitmapState::build(&db);
        for threads in [1usize, 2, 4] {
            let supports = state.count(&triples, threads);
            for (i, cand) in triples.iter().enumerate() {
                let expected = oracle(&db, cand);
                assert_eq!(
                    supports[i],
                    expected.len() as u64,
                    "threads {threads}, candidate {cand:?}"
                );
            }
        }
    }

    #[test]
    fn multi_word_carry_crosses_the_64_transaction_boundary() {
        // Customer 0: id 0 at transaction 3, id 1 only at transaction 69 —
        // the S-step carry must propagate the match across the word seam.
        // Customer 1: id 1 at transaction 69 but id 0 only at 69 too (not
        // strictly earlier) — must NOT support ⟨0 1⟩.
        let mut c0 = vec![vec![9u32]; 70];
        c0[3] = vec![0];
        c0[69] = vec![1];
        let mut c1 = vec![vec![9u32]; 70];
        c1[69] = vec![0, 1];
        let db = tdb(vec![c0, c1], 10);
        let mut state = BitmapState::build(&db);
        let pairs = CandidateArena::from_rows(2, [&[0u32, 1][..], &[1, 0]]);
        for threads in [1usize, 2, 4] {
            assert_eq!(
                state.count(&pairs, threads),
                vec![1, 0],
                "{threads} threads"
            );
        }
        assert!(state.carry_fixups > 0);
        assert_eq!(occs(&mut state, &[0, 1]), vec![occ(0, 69)]);
    }

    #[test]
    fn three_and_four_word_frontiers_cross_every_seam() {
        // Customer 0: 130 transactions (3 words) with the match chain
        // 3 → 67 → 129 crossing both word seams. Customer 1: 200
        // transactions (4 words), chain 0 → 70 → 195 (word 0 → 1 → 3,
        // skipping word 2 entirely). Customer 2: a 190-transaction decoy
        // whose ids appear in non-matching order.
        let mut c0 = vec![vec![9u32]; 130];
        c0[3] = vec![0];
        c0[67] = vec![1];
        c0[129] = vec![2];
        let mut c1 = vec![vec![9u32]; 200];
        c1[0] = vec![0];
        c1[70] = vec![1];
        c1[195] = vec![2];
        let mut c2 = vec![vec![9u32]; 190];
        c2[10] = vec![2];
        c2[80] = vec![1];
        c2[150] = vec![0];
        let db = tdb(vec![c0, c1, c2], 10);
        let mut state = BitmapState::build(&db);
        let triples = CandidateArena::from_rows(3, [&[0u32, 1, 2][..], &[2, 1, 0]]);
        for threads in [1usize, 2, 4] {
            assert_eq!(
                state.count(&triples, threads),
                vec![2, 1],
                "{threads} threads"
            );
        }
        assert_eq!(occs(&mut state, &[0, 1, 2]), vec![occ(0, 129), occ(1, 195)]);
        assert_eq!(occs(&mut state, &[2, 1, 0]), vec![occ(2, 150)]);
        assert!(state.carry_fixups > 0);
    }

    #[test]
    fn length_one_candidates_count_distinct_customers() {
        let db = tdb(
            vec![vec![vec![0], vec![0]], vec![vec![0]], vec![vec![1]]],
            2,
        );
        let mut state = BitmapState::build(&db);
        let singles = CandidateArena::from_rows(1, [&[0u32][..], &[1]]);
        assert_eq!(state.count(&singles, 1), vec![2, 1]);
        assert_eq!(state.sstep_ops, 0); // length 1 needs no smear
        assert_eq!(state.lane_words, 0);
    }

    #[test]
    fn occurrences_of_matches_earliest_match_ends() {
        let db = tdb(
            vec![
                vec![vec![0], vec![0, 1], vec![1]],
                vec![vec![1], vec![0]],
                vec![vec![0], vec![1]],
            ],
            2,
        );
        let mut state = BitmapState::build(&db);
        assert_eq!(occs(&mut state, &[0, 1]), vec![occ(0, 1), occ(2, 1)]);
        assert_eq!(occs(&mut state, &[1, 0]), vec![occ(1, 1)]);
        assert_eq!(
            occs(&mut state, &[0]),
            vec![occ(0, 0), occ(1, 1), occ(2, 0)]
        );
        assert!(occs(&mut state, &[]).is_empty());
    }

    #[test]
    fn supports_and_kernel_counters_are_thread_invariant() {
        let db = tdb(
            vec![
                vec![vec![0], vec![1], vec![0], vec![1]],
                vec![vec![1], vec![0], vec![1]],
                vec![vec![0], vec![0], vec![1]],
                vec![vec![1], vec![1]],
            ],
            2,
        );
        let mut pairs = CandidateArena::new(2);
        for a in 0..2u32 {
            for b in 0..2u32 {
                pairs.push(&[a, b]);
            }
        }
        let run = |threads: usize| {
            let mut state = BitmapState::build(&db);
            let supports = state.count(&pairs, threads);
            (
                supports,
                state.sstep_ops,
                state.lane_words,
                state.carry_fixups,
            )
        };
        let serial = run(1);
        assert!(serial.1 > 0);
        assert!(serial.2 > 0); // all customers here are single-word lanes
        assert_eq!(serial.3, 0); // no multi-word spans, no fix-ups
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), serial, "{threads} threads");
        }
    }

    #[test]
    fn parent_frontier_reuse_preserves_triple_counts() {
        // Every length-3 candidate over a 3-id alphabet: pass 3 takes the
        // ungated path (the parent cache only engages from pass 4 on), and
        // the all-pairs arena mixes single-candidate runs (fused read-only
        // kernel) with multi-candidate runs (materialized frontier).
        let db = tdb(
            vec![
                vec![vec![0], vec![1], vec![2], vec![0]],
                vec![vec![0], vec![2], vec![1]],
                vec![vec![1], vec![0], vec![2]],
            ],
            3,
        );
        let mut triples = CandidateArena::new(3);
        for a in 0..3u32 {
            for b in 0..3u32 {
                for c in 0..3u32 {
                    triples.push(&[a, b, c]);
                }
            }
        }
        let mut state = BitmapState::build(&db);
        let supports = state.count(&triples, 1);
        for (i, cand) in triples.iter().enumerate() {
            assert_eq!(
                supports[i],
                oracle(&db, cand).len() as u64,
                "candidate {cand:?}"
            );
        }
    }

    #[test]
    fn parent_frontier_reuse_preserves_quad_counts() {
        // Every length-4 candidate over a 3-id alphabet: runs sharing a
        // length-2 parent prefix hit the cached parent frontier, and the
        // cache must refold exactly when the parent changes without
        // altering any support.
        let db = tdb(
            vec![
                vec![vec![0], vec![1], vec![2], vec![0], vec![1]],
                vec![vec![0], vec![2], vec![1], vec![2]],
                vec![vec![1], vec![0], vec![2], vec![0]],
                vec![vec![2], vec![1], vec![0], vec![1], vec![2]],
            ],
            3,
        );
        let mut quads = CandidateArena::new(4);
        for a in 0..3u32 {
            for b in 0..3u32 {
                for c in 0..3u32 {
                    for d in 0..3u32 {
                        quads.push(&[a, b, c, d]);
                    }
                }
            }
        }
        let mut state = BitmapState::build(&db);
        let supports = state.count(&quads, 1);
        for (i, cand) in quads.iter().enumerate() {
            assert_eq!(
                supports[i],
                oracle(&db, cand).len() as u64,
                "candidate {cand:?}"
            );
        }
    }
}
