//! **E1 — execution time vs minimum support** (the paper's per-dataset
//! execution-time figures).
//!
//! For each of the five synthetic datasets and each support threshold of
//! the paper's grid (1%, 0.75%, 0.5%, 0.33%, 0.25%, 0.2%), runs all three
//! algorithms end to end and reports wall time plus the
//! machine-independent counters. The shapes to expect (paper §5.2):
//!
//! * AprioriSome ≲ AprioriAll everywhere, with the gap opening as minsup
//!   drops (more long patterns → more non-maximal counting avoided);
//! * DynamicSome competitive at high minsup, then blowing up as
//!   otf-generate floods candidates at low minsup.

use seqpat_bench::harness::{measure, paper_algorithms, paper_minsup_grid, CSV_HEADER};
use seqpat_bench::table::fmt_secs;
use seqpat_bench::{Args, Table};
use seqpat_datagen::{generate, GenParams};

fn main() {
    let args = Args::parse();
    let minsups = paper_minsup_grid(args.quick);
    let datasets: Vec<&str> = if args.quick {
        vec!["C10-T2.5-S4-I1.25"]
    } else {
        GenParams::paper_dataset_names().to_vec()
    };

    let mut rows: Vec<String> = Vec::new();
    for name in datasets {
        // Per-dataset grid floors. The dense datasets (|T| = 5, |C| = 20)
        // climb 2-3 orders of magnitude as minsup drops — the paper's own
        // lowest-threshold cells there are its ~10^3-10^4-second points —
        // and the bottom cells dominate total harness time. The floors
        // below keep the default run around ten minutes on one core; lower
        // them (or raise --customers) when you have the hours to spend,
        // exactly as the authors did.
        let floor = match name {
            "C10-T2.5-S4-I1.25" => 0.0, // full paper grid
            "C10-T5-S4-I1.25" => 0.005, // ≥ 0.5%
            "C10-T5-S4-I2.5" => 0.0075, // ≥ 0.75% (densest itemsets)
            _ => 0.005,                 // C20 datasets: ≥ 0.5%
        };
        let minsups: Vec<f64> = minsups.iter().copied().filter(|&m| m >= floor).collect();
        let params = GenParams::paper_dataset(name)
            .expect("paper dataset")
            .customers(args.customers);
        let db = generate(&params, args.seed);
        println!("\nE1: {} (|D| = {})", name, args.customers);
        let mut table = Table::new(&[
            "minsup",
            "algorithm",
            "time s",
            "patterns",
            "cand gen",
            "cand counted",
        ]);
        for &minsup in &minsups {
            for algorithm in paper_algorithms() {
                let m = measure(&db, name, minsup, algorithm);
                table.row(vec![
                    format!("{:.2}%", minsup * 100.0),
                    m.algorithm.clone(),
                    fmt_secs(m.seconds),
                    m.patterns.to_string(),
                    m.candidates_generated.to_string(),
                    m.candidates_counted.to_string(),
                ]);
                rows.push(m.csv_row());
            }
        }
        table.print();
    }
    let path = args
        .write_csv("e1_minsup_sweep", CSV_HEADER, &rows)
        .expect("write CSV");
    println!("\nwrote {}", path.display());
}
