//! Hash tree over candidate **sequences** (paper §4, implementation).
//!
//! The sequence-phase analogue of the Apriori itemset hash tree: interior
//! nodes hash on the litemset id at the node's depth; leaves hold candidate
//! indices. To find the candidates contained in a transformed customer
//! sequence, the probe explores, at each interior node, every `(transaction,
//! id)` pair that could match the next candidate position — advancing the
//! transaction cursor strictly, because consecutive sequence elements must
//! come from distinct, later transactions. Leaf hits are verified with the
//! exact containment test against the full customer sequence (hash
//! collisions make path information insufficient, exactly as in the itemset
//! tree).
//!
//! ## Probe micro-architecture (see DESIGN.md "Kernel micro-architecture")
//!
//! The tree is **built** as a pointer tree (simple recursive inserts with
//! leaf splitting — build runs once per pass, cold) and then **flattened**
//! into three flat arrays in depth-first pre-order (`FlatNode`): a node
//! table, a child-index table (`fanout` slots per interior node), and a
//! concatenated leaf-candidate pool. The probe is an **iterative** loop
//! over an explicit work stack (scratch retained in [`VisitSet`], so a
//! customer probe allocates nothing in the steady state): popping a node is
//! one table load instead of a pointer chase through heap-scattered enum
//! nodes, subtrees are depth-first contiguous so a descent walks forward
//! through one cache stream, and there is no call overhead per visited
//! node. The multiset of visited `(node, cursor)` states is identical to
//! the recursive walk's — only the visit *order* changes, which the
//! epoch-deduplication already makes unobservable — so matches, support
//! counts, and the `verify_calls` counter are bit-identical. Visits are
//! counted in `probe_nodes` (a per-customer pure function of the data,
//! hence thread-invariant under customer sharding).

use crate::arena::CandidateArena;
use crate::cast::{id32, idx};
use crate::contain::customer_contains;
use crate::types::transformed::{LitemsetId, TransformedCustomer};

/// Tag in [`FlatNode::len`] marking an interior node (a leaf can never
/// reach it: candidate slots are `u32` indices, so a leaf holds fewer than
/// `u32::MAX` entries).
const INTERIOR: u32 = u32::MAX;

/// One node of the flattened tree. Interior: `children[start..start+fanout]`
/// are the child node indices, `len == INTERIOR`. Leaf:
/// `leaf_ids[start..start+len]` are the candidate slots.
#[derive(Debug, Clone, Copy)]
struct FlatNode {
    start: u32,
    len: u32,
}

/// Hash tree over equal-length candidate id-sequences, stored flat in
/// depth-first pre-order (node 0 is the root).
#[derive(Debug)]
pub struct SequenceHashTree {
    nodes: Vec<FlatNode>,
    children: Vec<u32>,
    leaf_ids: Vec<u32>,
    fanout: usize,
    candidate_len: usize,
    len: usize,
}

/// Build-time pointer tree, flattened into [`SequenceHashTree`] before any
/// probe runs.
#[derive(Debug)]
enum Node {
    Leaf(Vec<u32>),
    Interior(Vec<Node>),
}

impl SequenceHashTree {
    /// Builds a tree over the candidates of one arena (equal length ≥ 1
    /// by construction).
    pub fn build(candidates: &CandidateArena, fanout: usize, leaf_capacity: usize) -> Self {
        assert!(fanout >= 2, "fanout must be at least 2");
        assert!(leaf_capacity >= 1, "leaf capacity must be at least 1");
        let candidate_len = if candidates.is_empty() {
            0
        } else {
            candidates.candidate_len()
        };
        let mut root = Node::Leaf(Vec::new());
        for (i, cand) in candidates.iter().enumerate() {
            // seqpat-lint: allow(no-alloc-in-hot-loop) tree construction allocates per split; the probe path is allocation-free
            insert(
                &mut root,
                cand,
                id32(i),
                0,
                fanout,
                leaf_capacity,
                candidates,
            );
        }
        let mut tree = Self {
            nodes: Vec::new(),
            children: Vec::new(),
            leaf_ids: Vec::new(),
            fanout,
            candidate_len,
            len: candidates.num_candidates(),
        };
        tree.flatten(root);
        tree
    }

    /// Flattens the pointer tree depth-first pre-order into the three flat
    /// arrays (cold: once per build; recursion depth ≤ candidate length).
    fn flatten(&mut self, node: Node) -> u32 {
        let my = id32(self.nodes.len());
        match node {
            Node::Leaf(ids) => {
                self.nodes.push(FlatNode {
                    start: id32(self.leaf_ids.len()),
                    len: id32(ids.len()),
                });
                self.leaf_ids.extend(ids);
            }
            Node::Interior(kids) => {
                debug_assert_eq!(
                    kids.len(),
                    self.fanout,
                    "interior nodes always carry exactly fanout children"
                );
                let cstart = self.children.len();
                self.nodes.push(FlatNode {
                    start: id32(cstart),
                    len: INTERIOR,
                });
                self.children.resize(cstart + self.fanout, 0);
                for (b, kid) in kids.into_iter().enumerate() {
                    let child = self.flatten(kid);
                    self.children[cstart + b] = child;
                }
            }
        }
        my
    }

    /// Number of candidates stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Calls `on_match(candidate_index)` for every candidate contained in
    /// `customer`. Each contained candidate is reported **exactly once**
    /// (deduplication is internal); `verify_calls` is incremented once per
    /// exact containment test executed and `probe_nodes` once per flat node
    /// visited, feeding the harness's machine-independent counters.
    pub fn for_each_contained(
        &self,
        customer: &TransformedCustomer,
        candidates: &CandidateArena,
        seen: &mut VisitSet,
        verify_calls: &mut u64,
        probe_nodes: &mut u64,
        on_match: &mut impl FnMut(u32),
    ) {
        if self.len == 0 || customer.elements.len() < self.candidate_len {
            return;
        }
        debug_assert!(
            !self.nodes.is_empty(),
            "a flattened tree always has a root at node 0"
        );
        seen.next_epoch();
        // Move the scratch out so the loop can stamp `seen` while pushing;
        // moved back below — the buffer (and its capacity) survives across
        // customers either way.
        let mut stack = std::mem::take(&mut seen.stack);
        stack.clear();
        stack.push((0u32, 0u32));
        while let Some((ni, cursor)) = stack.pop() {
            *probe_nodes += 1;
            debug_assert!(
                idx(ni) < self.nodes.len() && idx(cursor) <= customer.elements.len(),
                "stack entries hold valid node indices and in-range transaction cursors"
            );
            let node = self.nodes[idx(ni)];
            if node.len != INTERIOR {
                for &id in &self.leaf_ids[idx(node.start)..idx(node.start) + idx(node.len)] {
                    if seen.first_visit(id) {
                        *verify_calls += 1;
                        if customer_contains(customer, candidates.get(idx(id))) {
                            on_match(id);
                        }
                    }
                }
            } else {
                let kids = &self.children[idx(node.start)..idx(node.start) + self.fanout];
                for t in idx(cursor)..customer.elements.len() {
                    for &lid in &customer.elements[t] {
                        stack.push((kids[bucket(lid, self.fanout)], id32(t + 1)));
                    }
                }
            }
        }
        seen.stack = stack;
    }
}

fn bucket(id: LitemsetId, fanout: usize) -> usize {
    idx(id.wrapping_mul(2654435761)) % fanout
}

#[allow(clippy::too_many_arguments)]
fn insert(
    node: &mut Node,
    cand: &[LitemsetId],
    slot: u32,
    depth: usize,
    fanout: usize,
    leaf_capacity: usize,
    candidates: &CandidateArena,
) {
    debug_assert!(
        depth <= cand.len(),
        "interior nodes only exist above the candidate length, so the depth cursor stays in range"
    );
    match node {
        Node::Interior(children) => {
            let b = bucket(cand[depth], fanout);
            insert(
                &mut children[b],
                cand,
                slot,
                depth + 1,
                fanout,
                leaf_capacity,
                candidates,
            );
        }
        Node::Leaf(ids) => {
            ids.push(slot);
            if ids.len() > leaf_capacity && depth < cand.len() {
                let old = std::mem::take(ids);
                // seqpat-lint: allow(no-alloc-in-hot-loop) Vec::new() is capacity-0 (no heap allocation) and the split path is cold — it runs once per overflowing leaf, not per insert
                let mut children: Vec<Node> = (0..fanout).map(|_| Node::Leaf(Vec::new())).collect();
                for id in old {
                    match &mut children[bucket(candidates.get(idx(id))[depth], fanout)] {
                        Node::Leaf(v) => v.push(id),
                        // seqpat-lint: allow(no-panic-in-kernels) every child was created as a leaf two lines up and nothing re-splits them before this loop ends
                        Node::Interior(_) => unreachable!(),
                    }
                }
                *node = Node::Interior(children);
            }
        }
    }
}

/// Epoch-stamped visited set over candidate indices (one epoch per
/// customer), so a candidate reachable along many tree paths is verified
/// once per customer. Also owns the probe's work-stack scratch, so the
/// iterative walk reuses one buffer across every customer of a pass.
#[derive(Debug)]
pub struct VisitSet {
    stamps: Vec<u64>,
    epoch: u64,
    /// `(node index, transaction cursor)` work stack of the flat probe.
    stack: Vec<(u32, u32)>,
}

impl VisitSet {
    /// Creates a set for `n` candidates.
    pub fn new(n: usize) -> Self {
        Self {
            stamps: vec![0; n],
            epoch: 0,
            stack: Vec::new(),
        }
    }

    fn next_epoch(&mut self) {
        self.epoch += 1;
    }

    fn first_visit(&mut self, cand: u32) -> bool {
        debug_assert!(idx(cand) < self.stamps.len(), "one stamp per candidate");
        let slot = &mut self.stamps[idx(cand)];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn customer(elements: Vec<Vec<LitemsetId>>) -> TransformedCustomer {
        TransformedCustomer {
            customer_id: 0,
            elements,
        }
    }

    fn arena(rows: &[Vec<LitemsetId>]) -> CandidateArena {
        CandidateArena::from_rows(
            rows.first().map_or(0, |r| r.len()),
            rows.iter().map(|r| r.as_slice()),
        )
    }

    fn matched(
        tree: &SequenceHashTree,
        cands: &CandidateArena,
        c: &TransformedCustomer,
    ) -> Vec<u32> {
        let mut seen = VisitSet::new(cands.num_candidates());
        let mut verify = 0;
        let mut probes = 0;
        let mut out = Vec::new();
        tree.for_each_contained(c, cands, &mut seen, &mut verify, &mut probes, &mut |id| {
            out.push(id)
        });
        out.sort_unstable();
        out.dedup();
        out
    }

    #[test]
    fn finds_contained_sequences() {
        let cands = arena(&[
            vec![0, 4], // contained
            vec![4, 0], // wrong order
            vec![0, 0], // needs two transactions with 0
            vec![0, 1], // 1 absent
        ]);
        let tree = SequenceHashTree::build(&cands, 4, 1);
        let c = customer(vec![vec![0], vec![0, 4]]);
        assert_eq!(matched(&tree, &cands, &c), vec![0, 2]);
    }

    #[test]
    fn same_transaction_does_not_satisfy_order() {
        let cands = arena(&[vec![1, 2]]);
        let tree = SequenceHashTree::build(&cands, 4, 2);
        // Both ids in ONE transaction: ⟨1 2⟩ needs two transactions.
        assert!(matched(&tree, &cands, &customer(vec![vec![1, 2]])).is_empty());
        assert_eq!(
            matched(&tree, &cands, &customer(vec![vec![1], vec![2]])),
            vec![0]
        );
    }

    #[test]
    fn flat_layout_is_preorder_with_fanout_children_per_interior() {
        // Force splits: 80 random triples with leaf capacity 1.
        let mut x: u32 = 99;
        let mut rnd = move |m: u32| {
            x = x.wrapping_mul(48271) % 0x7fffffff;
            x % m
        };
        let mut cands: Vec<Vec<LitemsetId>> = Vec::new();
        for _ in 0..80 {
            cands.push(vec![rnd(8), rnd(8), rnd(8)]);
        }
        cands.sort();
        cands.dedup();
        let cands = arena(&cands);
        let tree = SequenceHashTree::build(&cands, 4, 1);
        let interior = tree.nodes.iter().filter(|n| n.len == INTERIOR).count();
        assert!(interior > 0, "capacity 1 must split the root");
        assert_eq!(tree.children.len(), interior * 4);
        // Every candidate slot appears in exactly one leaf.
        let mut slots: Vec<u32> = tree.leaf_ids.clone();
        slots.sort_unstable();
        let expected: Vec<u32> = (0..cands.num_candidates() as u32).collect();
        assert_eq!(slots, expected);
        // Every child index points at a later node (pre-order: children
        // come after their parent).
        for (ni, node) in tree.nodes.iter().enumerate() {
            if node.len == INTERIOR {
                for &c in &tree.children[idx(node.start)..idx(node.start) + 4] {
                    assert!(idx(c) > ni, "pre-order child {c} of node {ni}");
                    assert!(idx(c) < tree.nodes.len());
                }
            }
        }
    }

    #[test]
    fn agrees_with_linear_scan_on_random_input() {
        // Deterministic pseudo-random databases and candidates.
        let mut x: u32 = 1234;
        let mut rnd = move |m: u32| {
            x = x.wrapping_mul(48271) % 0x7fffffff;
            x % m
        };
        let mut cands: Vec<Vec<LitemsetId>> = Vec::new();
        for _ in 0..80 {
            cands.push(vec![rnd(8), rnd(8), rnd(8)]);
        }
        cands.sort();
        cands.dedup();
        let cands = arena(&cands);
        let tree = SequenceHashTree::build(&cands, 4, 2);
        for _ in 0..30 {
            let n_trans = 2 + rnd(6) as usize;
            let elements: Vec<Vec<LitemsetId>> = (0..n_trans)
                .map(|_| {
                    let mut e: Vec<LitemsetId> = (0..1 + rnd(4)).map(|_| rnd(8)).collect();
                    e.sort_unstable();
                    e.dedup();
                    e
                })
                .collect();
            let c = customer(elements);
            let brute: Vec<u32> = cands
                .iter()
                .enumerate()
                .filter(|&(_, cand)| customer_contains(&c, cand))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(matched(&tree, &cands, &c), brute);
        }
    }

    #[test]
    fn short_customer_prefiltered() {
        let cands = arena(&[vec![0, 1, 2]]);
        let tree = SequenceHashTree::build(&cands, 4, 2);
        let mut seen = VisitSet::new(1);
        let mut verify = 0;
        let mut probes = 0;
        let c = customer(vec![vec![0, 1, 2]]); // 1 transaction < candidate len 3
        tree.for_each_contained(&c, &cands, &mut seen, &mut verify, &mut probes, &mut |_| {
            panic!("nothing can match")
        });
        assert_eq!(verify, 0);
        assert_eq!(probes, 0, "the length prefilter skips the probe entirely");
    }

    #[test]
    fn each_candidate_verified_at_most_once_per_customer() {
        let cands = arena(&[vec![3, 3]]);
        let tree = SequenceHashTree::build(&cands, 4, 1);
        // Id 3 occurs in four transactions → many tree paths.
        let c = customer(vec![vec![3], vec![3], vec![3], vec![3]]);
        let mut seen = VisitSet::new(1);
        let mut verify = 0;
        let mut probes = 0;
        let mut hits = 0;
        tree.for_each_contained(&c, &cands, &mut seen, &mut verify, &mut probes, &mut |_| {
            hits += 1
        });
        assert_eq!(hits, 1);
        assert_eq!(verify, 1);
        assert!(probes >= 1, "the probe visits at least the root");
    }
}
