//! Re-export surface: the kernel calls `crate::prelude::resolve_support`
//! and `crate::prelude::via`, so those chains are only visible through
//! these `pub use`s.

pub use crate::hop::via;
pub use crate::support::resolve_support;
