//! Litemset phase (paper §3, phase 2): find all large itemsets and assign
//! them contiguous integer ids.
//!
//! Support here is *customer* support — the number of customers with at
//! least one transaction containing the itemset — so the reason every
//! element of a large sequence must itself be a large itemset carries over:
//! if `s = ⟨s1 … sn⟩` is large, each `si` is contained in at least
//! `support(s)` customer sequences.
//!
//! The heavy lifting (Apriori with candidate hash trees) is done by the
//! `seqpat-itemset` substrate crate; this module adapts the database view,
//! orders the result deterministically, and builds the [`LitemsetTable`].

use crate::types::database::Database;
use crate::types::itemset::Itemset;
use crate::types::transformed::LitemsetTable;
use seqpat_itemset::{AprioriConfig, AprioriResult};

/// Output of the litemset phase.
#[derive(Debug, Clone)]
pub struct LitemsetPhaseOutput {
    /// Large itemsets with dense ids, in lexicographic itemset order.
    pub table: LitemsetTable,
    /// Per-pass counters from the Apriori run.
    pub passes: Vec<seqpat_itemset::AprioriPassStats>,
}

/// Runs the litemset phase: all itemsets with customer support
/// `>= min_count` get an id.
pub fn litemset_phase(
    db: &Database,
    min_count: u64,
    config: &AprioriConfig,
) -> LitemsetPhaseOutput {
    let matrix = db.as_item_matrix();
    let AprioriResult { mut large, passes } =
        seqpat_itemset::mine_large_itemsets_with_stats(&matrix, min_count, config);

    // Deterministic id assignment: lexicographic order over item vectors.
    // (The substrate returns pass order: all 1-itemsets, then 2-itemsets, …
    // each pass internally sorted; a global sort makes ids independent of
    // pass boundaries.)
    large.sort_by(|a, b| a.items.cmp(&b.items));

    let table = LitemsetTable::new(
        large
            .into_iter()
            .map(|l| (Itemset::from_sorted(l.items), l.support))
            .collect(),
    );
    LitemsetPhaseOutput { table, passes }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// The paper's running example database (§2 Figure 1/2).
    pub(crate) fn paper_db() -> Database {
        Database::from_rows(vec![
            (1, 1, vec![30]),
            (1, 2, vec![90]),
            (2, 1, vec![10, 20]),
            (2, 2, vec![30]),
            (2, 3, vec![40, 60, 70]),
            (3, 1, vec![30, 50, 70]),
            (4, 1, vec![30]),
            (4, 2, vec![40, 70]),
            (4, 3, vec![90]),
            (5, 1, vec![90]),
        ])
    }

    #[test]
    fn paper_litemsets_at_25_percent() {
        // minsup 25% of 5 customers → 2 customers. The paper's Figure 4
        // lists the large itemsets: (30), (40), (70), (40 70), (90).
        let out = litemset_phase(&paper_db(), 2, &AprioriConfig::default());
        let sets: Vec<String> = out.table.iter().map(|(_, s, _)| s.to_string()).collect();
        assert_eq!(sets, vec!["(30)", "(40)", "(40 70)", "(70)", "(90)"]);
    }

    #[test]
    fn paper_litemset_supports() {
        let out = litemset_phase(&paper_db(), 2, &AprioriConfig::default());
        let support_of = |items: &[u32]| {
            let id = out.table.id_of(items).unwrap();
            out.table.support(id)
        };
        assert_eq!(support_of(&[30]), 4);
        assert_eq!(support_of(&[40]), 2);
        assert_eq!(support_of(&[70]), 3);
        assert_eq!(support_of(&[40, 70]), 2);
        assert_eq!(support_of(&[90]), 3);
    }

    #[test]
    fn ids_are_lexicographic_and_dense() {
        let out = litemset_phase(&paper_db(), 2, &AprioriConfig::default());
        assert_eq!(out.table.id_of(&[30]), Some(0));
        assert_eq!(out.table.id_of(&[40]), Some(1));
        assert_eq!(out.table.id_of(&[40, 70]), Some(2));
        assert_eq!(out.table.id_of(&[70]), Some(3));
        assert_eq!(out.table.id_of(&[90]), Some(4));
    }

    #[test]
    fn high_threshold_empties_the_table() {
        let out = litemset_phase(&paper_db(), 6, &AprioriConfig::default());
        assert!(out.table.is_empty());
    }
}
