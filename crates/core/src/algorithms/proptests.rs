//! Property tests for the sequence candidate generation — soundness and
//! completeness of `apriori-generate` (the anti-monotonicity backbone) —
//! and end-to-end mining equivalence of every counting strategy at every
//! thread count.

use proptest::prelude::*;

use super::candidate::{generate, IdSeq};
use crate::arena::CandidateArena;
use crate::{Algorithm, CountingStrategy, Database, MinSupport, Miner, MinerConfig, Parallelism};

fn arb_prev(k: usize) -> impl Strategy<Value = CandidateArena> {
    proptest::collection::btree_set(proptest::collection::vec(0u32..5, k), 1..=25)
        .prop_map(move |s| CandidateArena::from_rows(k, s.iter().map(|row| row.as_slice())))
}

/// All delete-one-element subsequences of `seq`.
fn delete_one(seq: &[u32]) -> Vec<IdSeq> {
    (0..seq.len())
        .map(|drop| {
            let mut sub = seq.to_vec();
            sub.remove(drop);
            sub
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn soundness_every_candidate_survives_its_own_prune(prev in arb_prev(2)) {
        for cand in generate(&prev).iter() {
            prop_assert_eq!(cand.len(), 3);
            for sub in delete_one(cand) {
                prop_assert!(
                    prev.binary_search(&sub).is_ok(),
                    "candidate {:?} emitted though subsequence {:?} is not in prev",
                    cand,
                    sub
                );
            }
        }
    }

    #[test]
    fn completeness_all_fully_supported_extensions_are_generated(prev in arb_prev(2)) {
        // Enumerate every 3-sequence over the alphabet; those whose
        // delete-one subsequences are all in prev MUST be generated.
        let out = generate(&prev);
        for a in 0u32..5 {
            for b in 0u32..5 {
                for c in 0u32..5 {
                    let cand = [a, b, c];
                    let supported = delete_one(&cand)
                        .into_iter()
                        .all(|s| prev.binary_search(&s).is_ok());
                    prop_assert_eq!(
                        out.binary_search(&cand).is_ok(),
                        supported,
                        "mismatch for {:?}",
                        cand
                    );
                }
            }
        }
    }

    #[test]
    fn output_sorted_and_unique(prev in arb_prev(3)) {
        prop_assert!(generate(&prev).is_sorted_unique());
    }

    #[test]
    fn k2_is_the_full_ordered_square(prev in arb_prev(1)) {
        let out = generate(&prev);
        prop_assert_eq!(
            out.num_candidates(),
            prev.num_candidates() * prev.num_candidates()
        );
    }
}

/// Generated raw databases: up to 8 customers, each with up to 6
/// transactions of 1–3 items over an 8-item alphabet.
fn arb_database() -> impl Strategy<Value = Database> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::collection::vec(1u32..=8, 1..4), 0..6),
        0..8,
    )
    .prop_map(|customers| {
        let mut rows = Vec::new();
        for (c, transactions) in customers.into_iter().enumerate() {
            for (t, items) in transactions.into_iter().enumerate() {
                rows.push((c as u64 + 1, t as i64, items));
            }
        }
        Database::from_rows(rows)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole pin: every algorithm × every counting strategy
    /// (including Bitmap and Auto) × threads 1/2/4 produces the exact same
    /// maximal pattern set with the exact same supports.
    #[test]
    fn all_strategies_and_thread_counts_mine_identical_patterns(
        db in arb_database(),
        min_count in 1u64..4,
    ) {
        let mut baseline: Option<Vec<String>> = None;
        for algorithm in [
            Algorithm::AprioriAll,
            Algorithm::AprioriSome,
            Algorithm::DynamicSome { step: 2 },
        ] {
            for strategy in [
                CountingStrategy::Direct,
                CountingStrategy::HashTree,
                CountingStrategy::Vertical,
                CountingStrategy::Bitmap,
                CountingStrategy::Auto,
            ] {
                for threads in [1usize, 2, 4] {
                    let config = MinerConfig::new(MinSupport::Count(min_count))
                        .algorithm(algorithm)
                        .counting(strategy)
                        .parallelism(Parallelism::threads(threads));
                    let result = Miner::new(config).mine(&db);
                    let rendered: Vec<String> = result
                        .patterns
                        .iter()
                        .map(|p| format!("{}:{}", p, p.support))
                        .collect();
                    if let Some(expected) = &baseline {
                        prop_assert_eq!(
                            &rendered, expected,
                            "{} / {} / {} threads", algorithm, strategy, threads
                        );
                    } else {
                        baseline = Some(rendered);
                    }
                }
            }
        }
    }
}
