//! Sort phase (paper §3, phase 1): raw transaction rows → customer sequences.
//!
//! The paper sorts the transaction table with customer-id as the major key
//! and transaction-time as the minor key, implicitly converting it into a
//! database of customer sequences. Rows with identical `(customer, time)`
//! are merged into one transaction: items bought at the same moment form a
//! single itemset (this matches the paper's data model, where a transaction
//! is *the set of items bought at one time*).

use crate::types::database::{CustomerSequence, Database, Transaction};
use crate::types::itemset::{Item, Itemset};

/// Runs the sort phase over raw `(customer_id, time, items)` rows.
///
/// Rows may arrive in any order; items within a row may be unsorted and may
/// contain duplicates. Rows with an empty item list are dropped (they carry
/// no information for mining). Customers appear in ascending id order in
/// the output.
pub fn sort_phase(rows: Vec<(u64, i64, Vec<Item>)>) -> Database {
    sort_phase_windowed(rows, 0)
}

/// Sort phase with a **sliding time window** — the extension the paper's
/// conclusion proposes ("the elements of a sequential pattern need not come
/// from a single transaction; a time window could define them instead").
///
/// Transactions of one customer whose times differ by at most `window` are
/// merged into a single itemset: with `window = 0` only simultaneous rows
/// merge (the paper's base model); with e.g. `window = 7` (days), purchases
/// within a week act as one element, so patterns tolerate jitter in when
/// items of one "shopping mission" were actually bought. Merging is greedy
/// from the earliest transaction: a window opens at the first uncovered
/// transaction time `t` and absorbs every transaction with time `≤ t +
/// window` (the merged transaction keeps the opening time).
pub fn sort_phase_windowed(mut rows: Vec<(u64, i64, Vec<Item>)>, window: i64) -> Database {
    assert!(window >= 0, "window must be non-negative");
    // Major key customer, minor key time; stable so that equal (customer,
    // time) rows keep input order before merging.
    rows.sort_by_key(|&(customer, time, _)| (customer, time));

    let mut customers: Vec<CustomerSequence> = Vec::new();
    for (customer_id, time, items) in rows {
        if items.is_empty() {
            continue;
        }
        let need_new_customer = customers
            .last()
            .is_none_or(|c| c.customer_id != customer_id);
        if need_new_customer {
            customers.push(CustomerSequence {
                customer_id,
                transactions: Vec::new(),
            });
        }
        let customer = customers.last_mut().expect("just ensured non-empty");
        match customer.transactions.last_mut() {
            // Within the open window (or the same instant when window = 0):
            // merge into one itemset; the window anchor time is kept.
            Some(last) if time - last.time <= window => {
                let mut merged = last.items.items().to_vec();
                merged.extend(items);
                last.items = Itemset::new(merged);
            }
            _ => customer.transactions.push(Transaction {
                time,
                items: Itemset::new(items),
            }),
        }
    }
    Database::new(customers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_customers_and_times() {
        let db = sort_phase(vec![
            (9, 2, vec![5]),
            (1, 7, vec![2]),
            (9, 1, vec![4]),
            (1, 3, vec![1]),
        ]);
        let ids: Vec<u64> = db.customers().iter().map(|c| c.customer_id).collect();
        assert_eq!(ids, vec![1, 9]);
        let times: Vec<i64> = db.customers()[0]
            .transactions
            .iter()
            .map(|t| t.time)
            .collect();
        assert_eq!(times, vec![3, 7]);
    }

    #[test]
    fn merges_same_instant_rows() {
        let db = sort_phase(vec![(1, 5, vec![3]), (1, 5, vec![1, 3]), (1, 6, vec![2])]);
        let c = &db.customers()[0];
        assert_eq!(c.transactions.len(), 2);
        assert_eq!(c.transactions[0].items.items(), &[1, 3]);
        assert_eq!(c.transactions[1].items.items(), &[2]);
    }

    #[test]
    fn drops_empty_rows() {
        let db = sort_phase(vec![(1, 1, vec![]), (1, 2, vec![4])]);
        assert_eq!(db.num_transactions(), 1);
    }

    #[test]
    fn empty_input_gives_empty_database() {
        let db = sort_phase(vec![]);
        assert_eq!(db.num_customers(), 0);
    }

    #[test]
    fn window_merges_nearby_transactions() {
        // Times 0, 3, 5, 20 with window 5: {0,3,5} merge (3 ≤ 0+5 extends
        // nothing — the anchor stays 0, and 5 ≤ 0+5), 20 starts fresh.
        let db = sort_phase_windowed(
            vec![
                (1, 0, vec![1]),
                (1, 3, vec![2]),
                (1, 5, vec![3]),
                (1, 20, vec![4]),
            ],
            5,
        );
        let c = &db.customers()[0];
        assert_eq!(c.transactions.len(), 2);
        assert_eq!(c.transactions[0].time, 0);
        assert_eq!(c.transactions[0].items.items(), &[1, 2, 3]);
        assert_eq!(c.transactions[1].items.items(), &[4]);
    }

    #[test]
    fn window_zero_matches_plain_sort_phase() {
        let rows = vec![
            (1, 1, vec![1]),
            (1, 2, vec![2]),
            (2, 1, vec![3]),
            (2, 1, vec![4]),
        ];
        assert_eq!(sort_phase(rows.clone()), sort_phase_windowed(rows, 0));
    }

    #[test]
    fn window_changes_mined_patterns() {
        // Two customers buy 1 then 2 a day apart. Without a window the
        // pattern is ⟨(1)(2)⟩; with a 1-day window it becomes ⟨(1 2)⟩.
        use crate::{MinSupport, Miner, MinerConfig};
        let rows = vec![
            (1, 0, vec![1]),
            (1, 1, vec![2]),
            (2, 0, vec![1]),
            (2, 1, vec![2]),
        ];
        let plain =
            Miner::new(MinerConfig::new(MinSupport::Count(2))).mine(&sort_phase(rows.clone()));
        let windowed =
            Miner::new(MinerConfig::new(MinSupport::Count(2))).mine(&sort_phase_windowed(rows, 1));
        let strs =
            |r: &crate::MiningResult| r.patterns.iter().map(|p| p.to_string()).collect::<Vec<_>>();
        assert_eq!(strs(&plain), vec!["<(1)(2)>"]);
        assert_eq!(strs(&windowed), vec!["<(1 2)>"]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_window_rejected() {
        let _ = sort_phase_windowed(vec![], -1);
    }

    #[test]
    fn negative_times_sort_correctly() {
        let db = sort_phase(vec![(1, 0, vec![2]), (1, -5, vec![1])]);
        let items: Vec<&[Item]> = db.customers()[0]
            .transactions
            .iter()
            .map(|t| t.items.items())
            .collect();
        assert_eq!(items, vec![&[1][..], &[2][..]]);
    }
}
