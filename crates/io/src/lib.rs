//! # seqpat-io — dataset input/output.
//!
//! Two text formats, one binary store, plus dataset statistics:
//!
//! * [`spmf`] — the de-facto standard sequence-database format of the SPMF
//!   library (the repository the paper's successors are benchmarked
//!   against): one customer sequence per line, itemsets separated by `-1`,
//!   line terminated by `-2`.
//! * [`csv`] — raw transaction rows `customer,time,items…`, the shape the
//!   paper's sort phase consumes.
//! * [`colstore`] — the on-disk columnar (CSR) store of the *transformed*
//!   database; opens as a [`seqpat_core::Dataset`] so mining can run
//!   shard-by-shard without the database resident.
//! * [`stream`] — streaming colstore construction (litemset + transform
//!   phases over a replayable customer stream, bounded memory).
//! * [`stats`] — summary statistics used by the experiment harness's
//!   dataset table (experiment E0).
//! * [`readat`] — the positioned-read shim (`pread` on Unix, mutex-seek
//!   elsewhere) shared by the binary stores.

pub mod colstore;
pub mod csv;
pub mod error;
pub mod readat;
pub mod spmf;
pub mod stats;
pub mod stream;

pub use colstore::{ColstoreDataset, ColstoreWriter};
pub use error::IoError;
pub use readat::ReadAt;
pub use stats::DatasetStats;
pub use stream::{build_colstore, BuildSummary};
