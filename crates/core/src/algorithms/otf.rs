//! `otf-generate` — DynamicSome's on-the-fly candidate generation
//! (paper §4.3).
//!
//! Given the large `k`-sequences `Lk` and large `j`-sequences `Lj`,
//! candidates of length `k + j` are generated *while scanning each
//! customer*: for every `x ∈ Lk` contained in the customer (earliest match
//! ending at transaction `e`) and every `y ∈ Lj` contained strictly after
//! `e`, the concatenation `x·y` is contained in the customer, and its
//! support counter is bumped. A customer bumps each `x·y` at most once
//! (each pair is probed once per customer), so the resulting counts are
//! exact supports.
//!
//! Completeness: a large `(k+j)`-sequence decomposes into its length-`k`
//! prefix (∈ `Lk` by anti-monotonicity) and length-`j` suffix (∈ `Lj`), and
//! every supporting customer exhibits the split — with the earliest-match
//! end for the prefix, by the usual exchange argument. The flip side is the
//! candidate *explosion*: up to `|Lk| × |Lj|` pairs per customer, which is
//! exactly why the paper's experiments see DynamicSome degrade at low
//! minimum support.
//!
//! With the vertical strategy, the outer loop runs over `occ(x)` from the
//! occurrence index instead of scanning customers: each `x ∈ Lk` resolves
//! its occurrence list (cache hit or fold — joins are counted), and only
//! the customers actually supporting `x` are probed for suffixes. The
//! suffix probes remain exact containment tests, so the counters differ
//! from the horizontal path (fewer `x` probes, no bitmap prefilter on `y`)
//! but the supports are identical.
//!
//! The bitmap strategy takes the same shape: `occ(x)` is recovered from a
//! whole-database S-step fold ([`crate::bitmap::BitmapState::occurrences_of`]
//! — first set bit per customer span), then suffixes are probed exactly as
//! in the vertical path. `Auto` resolves before dispatching, so whichever
//! index the run built is the one otf-generate reuses.

use super::candidate::IdSeq;
use crate::arena::CandidateArena;
use crate::contain::customer_contains_from;
use crate::counting::{CountingContext, CountingStrategy, SCAN_SHARD_ROWS};
use crate::dataset::{shard_ranges, Dataset, ShardScratch};
use crate::fxhash::FxHashMap;
use crate::types::transformed::TransformedCustomer;

/// Runs otf-generate over the whole database. Returns `(candidate, support)`
/// pairs sorted by candidate; containment probes (and, vertically, joins)
/// are recorded on `ctx`. Stays serial: it interleaves generation with
/// counting in one scan and is bound by `|Lk|·|Lj|`, not the customer scan.
///
/// Non-resident backends stream the horizontal scan shard by shard (the
/// per-customer probe is self-contained, so the counts are additive across
/// shards and the supports identical; the index-based paths need the whole
/// database resident, which is exactly what streaming avoids).
pub fn otf_generate(
    ds: &dyn Dataset,
    lk: &CandidateArena,
    lj: &CandidateArena,
    ctx: &mut CountingContext,
) -> Vec<(IdSeq, u64)> {
    if lk.is_empty() || lj.is_empty() {
        return Vec::new();
    }
    let counts = match ds.resident() {
        // `Auto` never reaches the dispatch (resolved_strategy resolves it
        // to a concrete strategy), but it is named rather than wildcarded
        // so a new strategy fails lint here until it gets an otf path.
        Some(rows) => match ctx.resolved_strategy(ds) {
            CountingStrategy::Vertical => otf_vertical(ds, rows, lk, lj, ctx),
            CountingStrategy::Bitmap => otf_bitmap(ds, rows, lk, lj, ctx),
            CountingStrategy::Direct | CountingStrategy::HashTree | CountingStrategy::Auto => {
                let mut counts = FxHashMap::default();
                otf_horizontal(
                    rows,
                    ds.table().len(),
                    lk,
                    lj,
                    &mut ctx.containment_tests,
                    &mut counts,
                );
                counts
            }
        },
        None => otf_streaming(ds, lk, lj, ctx),
    };
    let mut out: Vec<(IdSeq, u64)> = counts.into_iter().collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Shard-by-shard horizontal otf over a non-resident backend: per-customer
/// counts are added into one map across shards, so the result matches the
/// resident horizontal scan exactly while holding one shard at a time.
fn otf_streaming(
    ds: &dyn Dataset,
    lk: &CandidateArena,
    lj: &CandidateArena,
    ctx: &mut CountingContext,
) -> FxHashMap<IdSeq, u64> {
    let mut counts: FxHashMap<IdSeq, u64> = FxHashMap::default();
    let num_litemsets = ds.table().len();
    let shard = ctx.shard_customers().or(Some(SCAN_SHARD_ROWS));
    let mut scratch = ShardScratch::new();
    let mut tests = 0u64;
    for range in shard_ranges(ds.num_rows(), shard) {
        ctx.shards_processed += 1;
        ctx.shard_bytes += ds.shard_bytes(range.clone());
        let rows = ds.load_shard(range, &mut scratch);
        otf_horizontal(rows, num_litemsets, lk, lj, &mut tests, &mut counts);
    }
    ctx.containment_tests += tests;
    counts
}

fn otf_horizontal(
    customers: &[TransformedCustomer],
    num_litemsets: usize,
    lk: &CandidateArena,
    lj: &CandidateArena,
    containment_tests: &mut u64,
    counts: &mut FxHashMap<IdSeq, u64>,
) {
    let mut bitmap = vec![false; num_litemsets];
    for customer in customers {
        if customer.elements.is_empty() {
            continue;
        }
        bitmap.iter_mut().for_each(|b| *b = false);
        for element in &customer.elements {
            for &id in element {
                bitmap[id as usize] = true;
            }
        }
        for x in lk.iter() {
            if !x.iter().all(|&id| bitmap[id as usize]) {
                continue;
            }
            *containment_tests += 1;
            let Some(end) = customer_contains_from(customer, x, 0) else {
                continue;
            };
            for y in lj.iter() {
                if !y.iter().all(|&id| bitmap[id as usize]) {
                    continue;
                }
                *containment_tests += 1;
                if customer_contains_from(customer, y, end + 1).is_some() {
                    bump(counts, x, y);
                }
            }
        }
    }
}

/// Vertical variant: occurrence lists give each `x`'s supporting customers
/// with earliest ends directly, replacing the prefix scan with cache
/// lookups/folds over the index. `rows` is the resident row slice of `ds`.
fn otf_vertical(
    ds: &dyn Dataset,
    rows: &[TransformedCustomer],
    lk: &CandidateArena,
    lj: &CandidateArena,
    ctx: &mut CountingContext,
) -> FxHashMap<IdSeq, u64> {
    let mut counts: FxHashMap<IdSeq, u64> = FxHashMap::default();
    let mut tests = 0u64;
    // One occurrence buffer for the whole Lk loop; the state borrow ends
    // with each fill, freeing `ctx` for the counter update below.
    let mut occ = Vec::new();
    for x in lk.iter() {
        ctx.vertical_state(ds).occurrences_of(x, &mut occ);
        for o in &occ {
            let customer = &rows[o.customer as usize];
            for y in lj.iter() {
                tests += 1;
                if customer_contains_from(customer, y, o.pos as usize + 1).is_some() {
                    bump(&mut counts, x, y);
                }
            }
        }
    }
    ctx.containment_tests += tests;
    counts
}

/// Bitmap variant: identical structure to [`otf_vertical`], with `occ(x)`
/// computed by an S-step fold over the packed index (smeared words are
/// counted on the state).
fn otf_bitmap(
    ds: &dyn Dataset,
    rows: &[TransformedCustomer],
    lk: &CandidateArena,
    lj: &CandidateArena,
    ctx: &mut CountingContext,
) -> FxHashMap<IdSeq, u64> {
    let mut counts: FxHashMap<IdSeq, u64> = FxHashMap::default();
    let mut tests = 0u64;
    let mut occ = Vec::new();
    for x in lk.iter() {
        ctx.bitmap_state(ds).occurrences_of(x, &mut occ);
        for o in &occ {
            let customer = &rows[o.customer as usize];
            for y in lj.iter() {
                tests += 1;
                if customer_contains_from(customer, y, o.pos as usize + 1).is_some() {
                    bump(&mut counts, x, y);
                }
            }
        }
    }
    ctx.containment_tests += tests;
    counts
}

fn bump(counts: &mut FxHashMap<IdSeq, u64>, x: &[u32], y: &[u32]) {
    let mut cand = Vec::with_capacity(x.len() + y.len());
    cand.extend_from_slice(x);
    cand.extend_from_slice(y);
    *counts.entry(cand).or_insert(0) += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::apriori_all::tests::paper_tdb;
    use crate::algorithms::apriori_all::SequencePhaseOptions;
    use crate::types::transformed::TransformedDatabase;

    fn arena(rows: &[Vec<u32>]) -> CandidateArena {
        CandidateArena::from_rows(
            rows.first().map_or(0, |r| r.len()),
            rows.iter().map(|r| r.as_slice()),
        )
    }

    fn ctx_for(counting: CountingStrategy, tdb: &TransformedDatabase) -> CountingContext {
        SequencePhaseOptions {
            counting,
            ..Default::default()
        }
        .context(tdb)
    }

    #[test]
    fn paper_example_pairs_from_singletons() {
        // Lk = Lj = the five 1-sequences; otf-generate must discover the
        // four large 2-sequences with exact supports (plus smaller ones).
        let tdb = paper_tdb();
        let l1 = arena(&(0..5).map(|i| vec![i]).collect::<Vec<_>>());
        let mut ctx = ctx_for(CountingStrategy::default(), &tdb);
        let pairs = otf_generate(&tdb, &l1, &l1, &mut ctx);
        let get = |ids: &[u32]| {
            pairs
                .iter()
                .find(|(c, _)| c.as_slice() == ids)
                .map(|&(_, s)| s)
                .unwrap_or(0)
        };
        assert_eq!(get(&[0, 1]), 2); // ⟨(30)(40)⟩
        assert_eq!(get(&[0, 2]), 2); // ⟨(30)(40 70)⟩
        assert_eq!(get(&[0, 3]), 2); // ⟨(30)(70)⟩
        assert_eq!(get(&[0, 4]), 2); // ⟨(30)(90)⟩
        assert_eq!(get(&[4, 0]), 0); // wrong order never counted
        assert!(ctx.containment_tests > 0);
    }

    #[test]
    fn vertical_and_bitmap_paths_count_identical_supports() {
        let tdb = paper_tdb();
        let l1 = arena(&(0..5).map(|i| vec![i]).collect::<Vec<_>>());
        let mut hctx = ctx_for(CountingStrategy::HashTree, &tdb);
        let horizontal = otf_generate(&tdb, &l1, &l1, &mut hctx);
        let mut vctx = ctx_for(CountingStrategy::Vertical, &tdb);
        let vertical = otf_generate(&tdb, &l1, &l1, &mut vctx);
        assert_eq!(horizontal, vertical);
        let mut bctx = ctx_for(CountingStrategy::Bitmap, &tdb);
        let bitmap = otf_generate(&tdb, &l1, &l1, &mut bctx);
        assert_eq!(horizontal, bitmap);
        let mut actx = ctx_for(CountingStrategy::Auto, &tdb);
        let auto = otf_generate(&tdb, &l1, &l1, &mut actx);
        assert_eq!(horizontal, auto);
    }

    #[test]
    fn earliest_match_split_finds_late_suffixes() {
        // Customer: [{5}] [{6}] [{5}] — x = ⟨5⟩ ends earliest at 0, so
        // y = ⟨6⟩ (position 1) and y = ⟨5⟩ (position 2) are both found.
        use crate::types::itemset::Itemset;
        use crate::types::transformed::{LitemsetTable, TransformedCustomer};
        let table = LitemsetTable::new(vec![
            (Itemset::new(vec![1]), 1),
            (Itemset::new(vec![2]), 1),
            (Itemset::new(vec![3]), 1),
            (Itemset::new(vec![4]), 1),
            (Itemset::new(vec![5]), 1),
            (Itemset::new(vec![6]), 1),
        ]);
        let tdb = TransformedDatabase {
            customers: vec![TransformedCustomer {
                customer_id: 1,
                elements: vec![vec![4], vec![5], vec![4]],
            }],
            table,
            total_customers: 1,
        };
        let mut ctx = ctx_for(CountingStrategy::default(), &tdb);
        let pairs = otf_generate(
            &tdb,
            &arena(&[vec![4]]),
            &arena(&[vec![4], vec![5]]),
            &mut ctx,
        );
        assert_eq!(pairs, vec![(vec![4, 4], 1), (vec![4, 5], 1)]);
    }

    #[test]
    fn empty_inputs_yield_nothing() {
        let tdb = paper_tdb();
        let mut ctx = ctx_for(CountingStrategy::default(), &tdb);
        let l1 = arena(&[vec![0]]);
        assert!(otf_generate(&tdb, &CandidateArena::default(), &l1, &mut ctx).is_empty());
        assert!(otf_generate(&tdb, &l1, &CandidateArena::default(), &mut ctx).is_empty());
        assert_eq!(ctx.containment_tests, 0);
    }

    #[test]
    fn supports_are_per_customer_exact() {
        // Two customers both containing ⟨0 4⟩; support must be 2, not more,
        // even though customer 4 has several embeddings.
        let tdb = paper_tdb();
        let mut ctx = ctx_for(CountingStrategy::default(), &tdb);
        let pairs = otf_generate(&tdb, &arena(&[vec![0]]), &arena(&[vec![4]]), &mut ctx);
        assert_eq!(pairs, vec![(vec![0, 4], 2)]);
    }
}
