//! Edge-case integration tests: degenerate databases, extreme thresholds,
//! and unusual algorithm settings.

use seqpat::{Algorithm, Database, MinSupport, Miner, MinerConfig};

fn all_algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::AprioriAll,
        Algorithm::AprioriSome,
        Algorithm::DynamicSome { step: 1 },
        Algorithm::DynamicSome { step: 2 },
        Algorithm::DynamicSome { step: 5 },
    ]
}

fn mine(db: &Database, minsup: MinSupport, algorithm: Algorithm) -> Vec<String> {
    Miner::new(MinerConfig::new(minsup).algorithm(algorithm))
        .mine(db)
        .patterns
        .iter()
        .map(|p| format!("{}:{}", p, p.support))
        .collect()
}

#[test]
fn empty_database_yields_nothing_everywhere() {
    for algorithm in all_algorithms() {
        assert!(mine(&Database::default(), MinSupport::Fraction(0.5), algorithm).is_empty());
    }
}

#[test]
fn single_customer_single_transaction() {
    let db = Database::from_rows(vec![(1, 1, vec![5, 7])]);
    for algorithm in all_algorithms() {
        // With one customer everything it bought is a pattern; the maximal
        // one is the whole transaction as a 1-sequence.
        assert_eq!(
            mine(&db, MinSupport::Fraction(1.0), algorithm),
            vec!["<(5 7)>:1"]
        );
    }
}

#[test]
fn single_customer_long_history() {
    let db = Database::from_rows(vec![
        (1, 1, vec![1]),
        (1, 2, vec![2]),
        (1, 3, vec![3]),
        (1, 4, vec![4]),
    ]);
    for algorithm in all_algorithms() {
        // The full history is the unique maximal pattern.
        assert_eq!(
            mine(&db, MinSupport::Count(1), algorithm),
            vec!["<(1)(2)(3)(4)>:1"],
            "{algorithm}"
        );
    }
}

#[test]
fn identical_customers_support_everything_equally() {
    let rows: Vec<(u64, i64, Vec<u32>)> = (0..4)
        .flat_map(|c| vec![(c, 1, vec![1, 2]), (c, 2, vec![3])])
        .collect();
    let db = Database::from_rows(rows);
    for algorithm in all_algorithms() {
        assert_eq!(
            mine(&db, MinSupport::Fraction(1.0), algorithm),
            vec!["<(1 2)(3)>:4"],
            "{algorithm}"
        );
    }
}

#[test]
fn threshold_of_full_support_prunes_partial_patterns() {
    let db = Database::from_rows(vec![(1, 1, vec![1]), (1, 2, vec![2]), (2, 1, vec![1])]);
    for algorithm in all_algorithms() {
        // ⟨(1)(2)⟩ has support 1 < 2; only ⟨(1)⟩ survives at 100%.
        assert_eq!(
            mine(&db, MinSupport::Fraction(1.0), algorithm),
            vec!["<(1)>:2"],
            "{algorithm}"
        );
    }
}

#[test]
fn repeated_items_across_transactions_form_patterns() {
    // Two customers buy item 9 three times each.
    let rows: Vec<(u64, i64, Vec<u32>)> = (0..2)
        .flat_map(|c| (0..3).map(move |t| (c, t, vec![9])))
        .collect();
    let db = Database::from_rows(rows);
    for algorithm in all_algorithms() {
        assert_eq!(
            mine(&db, MinSupport::Count(2), algorithm),
            vec!["<(9)(9)(9)>:2"],
            "{algorithm}"
        );
    }
}

#[test]
fn duplicate_customer_rows_merge_per_sort_phase() {
    // Same (customer, time) rows merge into one transaction, so ⟨(1 2)⟩ is
    // a pattern but ⟨(1)(2)⟩ is not.
    let db = Database::from_rows(vec![(1, 5, vec![1]), (1, 5, vec![2])]);
    assert_eq!(
        mine(&db, MinSupport::Count(1), Algorithm::AprioriAll),
        vec!["<(1 2)>:1"]
    );
}

#[test]
fn dynamic_some_with_step_beyond_max_length() {
    // Step 5 with patterns of length ≤ 2: jump phase never fires, the
    // init + backward phases must still deliver the full answer.
    let db = Database::from_rows(vec![
        (1, 1, vec![1]),
        (1, 2, vec![2]),
        (2, 1, vec![1]),
        (2, 2, vec![2]),
    ]);
    assert_eq!(
        mine(
            &db,
            MinSupport::Count(2),
            Algorithm::DynamicSome { step: 5 }
        ),
        vec!["<(1)(2)>:2"]
    );
}

#[test]
fn wide_transactions_with_deep_itemset_lattice() {
    // Three customers share a 5-item transaction: the maximal pattern is
    // the full 5-itemset; none of its 30 proper sub-itemsets may leak into
    // the answer.
    let rows: Vec<(u64, i64, Vec<u32>)> = (0..3).map(|c| (c, 1, vec![1, 2, 3, 4, 5])).collect();
    let db = Database::from_rows(rows);
    for algorithm in all_algorithms() {
        assert_eq!(
            mine(&db, MinSupport::Count(3), algorithm),
            vec!["<(1 2 3 4 5)>:3"],
            "{algorithm}"
        );
    }
}

#[test]
fn min_support_count_above_database_size() {
    let db = Database::from_rows(vec![(1, 1, vec![1])]);
    for algorithm in all_algorithms() {
        assert!(mine(&db, MinSupport::Count(10), algorithm).is_empty());
    }
}

#[test]
fn interleaved_pattern_with_distractors() {
    // The pattern ⟨(1)(2)(3)⟩ is embedded with unrelated transactions in
    // between for both customers — gaps must not break containment.
    let db = Database::from_rows(vec![
        (1, 1, vec![1]),
        (1, 2, vec![50]),
        (1, 3, vec![2]),
        (1, 4, vec![60]),
        (1, 5, vec![3]),
        (2, 1, vec![70]),
        (2, 2, vec![1]),
        (2, 3, vec![2]),
        (2, 4, vec![3]),
    ]);
    for algorithm in all_algorithms() {
        let got = mine(&db, MinSupport::Count(2), algorithm);
        assert_eq!(got, vec!["<(1)(2)(3)>:2"], "{algorithm}");
    }
}

#[test]
fn max_length_truncates_but_keeps_maximality_within_cap() {
    let db = Database::from_rows(vec![
        (1, 1, vec![1]),
        (1, 2, vec![2]),
        (1, 3, vec![3]),
        (2, 1, vec![1]),
        (2, 2, vec![2]),
        (2, 3, vec![3]),
    ]);
    let result = Miner::new(MinerConfig::new(MinSupport::Count(2)).max_length(2)).mine(&db);
    let got: Vec<String> = result.patterns.iter().map(|p| p.to_string()).collect();
    // All 2-sequences are maximal within the cap.
    assert_eq!(got, vec!["<(1)(2)>", "<(1)(3)>", "<(2)(3)>"]);
}

#[test]
fn large_item_ids_near_u32_max() {
    let big = u32::MAX - 1;
    let db = Database::from_rows(vec![
        (1, 1, vec![big]),
        (1, 2, vec![u32::MAX]),
        (2, 1, vec![big]),
        (2, 2, vec![u32::MAX]),
    ]);
    for algorithm in all_algorithms() {
        let got = mine(&db, MinSupport::Count(2), algorithm);
        assert_eq!(got.len(), 1);
        assert!(got[0].contains(&big.to_string()));
    }
}
