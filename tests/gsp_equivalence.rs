//! Property tests for the GSP extension: with no time constraints its
//! frequent-sequence set must equal the 1995 definition (AprioriAll,
//! PrefixSpan and the brute-force oracle); with constraints, supports must
//! match a direct re-count under the constrained containment relation.

use proptest::prelude::*;
use seqpat::gsp::contains::{contains_with_constraints, DataSequence};
use seqpat::gsp::{gsp, gsp_maximal, GspConfig};
use seqpat::prefixspan::{prefixspan, PrefixSpanConfig};
use seqpat::{Database, MinSupport, Miner, MinerConfig};

fn arb_database() -> impl Strategy<Value = Database> {
    let transaction = proptest::collection::vec(0u32..6, 1..=3);
    let customer = proptest::collection::vec(transaction, 1..=4);
    proptest::collection::vec(customer, 1..=6).prop_map(|customers| {
        let mut rows = Vec::new();
        for (c, transactions) in customers.into_iter().enumerate() {
            for (t, items) in transactions.into_iter().enumerate() {
                // Irregular but increasing times, so gap constraints bite.
                rows.push((c as u64, (t * t + t) as i64, items));
            }
        }
        Database::from_rows(rows)
    })
}

fn strings(patterns: &[seqpat::Pattern]) -> Vec<String> {
    patterns
        .iter()
        .map(|p| format!("{}:{}", p.sequence, p.support))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn unconstrained_gsp_equals_apriori_all_and_prefixspan(
        db in arb_database(),
        min_count in 1u64..=3,
    ) {
        let g = gsp(&db, MinSupport::Count(min_count), &GspConfig::default());
        let ps = prefixspan(&db, MinSupport::Count(min_count), &PrefixSpanConfig::default());
        prop_assert_eq!(strings(&g), strings(&ps), "gsp vs prefixspan");

        let aa = Miner::new(
            MinerConfig::new(MinSupport::Count(min_count)).include_non_maximal(true),
        )
        .mine(&db);
        prop_assert_eq!(strings(&g), strings(&aa.patterns), "gsp vs apriori-all");
    }

    #[test]
    fn unconstrained_gsp_maximal_equals_the_1995_answer(
        db in arb_database(),
        min_count in 1u64..=3,
    ) {
        let g = gsp_maximal(&db, MinSupport::Count(min_count), &GspConfig::default());
        let answer = Miner::new(MinerConfig::new(MinSupport::Count(min_count))).mine(&db);
        prop_assert_eq!(strings(&g), strings(&answer.patterns));
    }

    #[test]
    fn constrained_supports_match_direct_recount(
        db in arb_database(),
        min_count in 1u64..=3,
        max_gap in 1i64..=6,
        window in 0i64..=2,
    ) {
        let config = GspConfig::default().max_gap(max_gap * 2).window(window);
        let found = gsp(&db, MinSupport::Count(min_count), &config);
        let data: Vec<DataSequence> = db.customers().iter().map(DataSequence::from).collect();
        for p in &found {
            let pattern: Vec<Vec<u32>> = p
                .sequence
                .elements()
                .iter()
                .map(|e| e.items().to_vec())
                .collect();
            let recount = data
                .iter()
                .filter(|d| contains_with_constraints(d, &pattern, &config))
                .count() as u64;
            prop_assert_eq!(p.support, recount, "support mismatch for {}", p.sequence);
            prop_assert!(p.support >= min_count);
        }
    }

    #[test]
    fn tighter_constraints_never_add_patterns(
        db in arb_database(),
        min_count in 1u64..=3,
    ) {
        // Patterns frequent under max_gap = 2 must be frequent with the
        // constraint relaxed to 100 (≈ unconstrained on these times).
        let tight = gsp(&db, MinSupport::Count(min_count), &GspConfig::default().max_gap(2));
        let loose = gsp(&db, MinSupport::Count(min_count), &GspConfig::default().max_gap(100));
        let loose_keys: Vec<String> =
            loose.iter().map(|p| p.sequence.to_string()).collect();
        for p in &tight {
            prop_assert!(
                loose_keys.contains(&p.sequence.to_string()),
                "{} frequent under tight max-gap but not loose",
                p.sequence
            );
        }
    }

    #[test]
    fn windowed_mining_is_a_superset_of_plain_single_element_patterns(
        db in arb_database(),
        min_count in 1u64..=3,
    ) {
        // Growing the window can only help an element find a home.
        let plain = gsp(&db, MinSupport::Count(min_count), &GspConfig::default());
        let windowed = gsp(
            &db,
            MinSupport::Count(min_count),
            &GspConfig::default().window(3),
        );
        let windowed_keys: Vec<String> =
            windowed.iter().map(|p| p.sequence.to_string()).collect();
        for p in &plain {
            prop_assert!(
                windowed_keys.contains(&p.sequence.to_string()),
                "{} lost by widening the window",
                p.sequence
            );
        }
    }
}
