//! End-to-end semantic-rule runs over the fixture mini-workspace in
//! `tests/fixture_ws/`. Its files sit under a `/tests/` path, so real
//! workspace lint runs skip them wholesale; here they are linted directly
//! by pointing [`engine::run`] at the fixture root.

use std::path::{Path, PathBuf};

use seqpat_lint::engine::{self, to_sarif, Report};
use seqpat_lint::rules;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixture_ws")
}

fn fixture_report() -> Report {
    engine::run(&fixture_root()).expect("fixture workspace is readable")
}

/// 1-based line of the first occurrence of `needle` in a fixture file, so
/// assertions track the fixture source instead of hard-coding line numbers.
fn line_of(rel: &str, needle: &str) -> u32 {
    let src = std::fs::read_to_string(fixture_root().join(rel)).expect("fixture file exists");
    let line = src
        .lines()
        .position(|l| l.contains(needle))
        .unwrap_or_else(|| panic!("{needle:?} not found in {rel}"));
    u32::try_from(line).expect("fixture files are small") + 1
}

fn rule_hits<'r>(report: &'r Report, rule: &str) -> Vec<&'r rules::Violation> {
    report
        .violations
        .iter()
        .filter(|v| v.rule == rule)
        .collect()
}

#[test]
fn transitive_panic_fires_through_reexport_and_alias_chain() {
    let report = fixture_report();
    let hits = rule_hits(&report, rules::TRANSITIVE_PANIC_REACHABILITY);
    assert_eq!(
        hits.len(),
        2,
        "two seeded panic sites: {:?}",
        report.violations
    );
    let support = hits
        .iter()
        .find(|v| v.path == "crates/engine/src/support.rs")
        .expect("seeded support.rs unwrap fires");
    assert_eq!(
        support.line,
        line_of("crates/engine/src/support.rs", ".unwrap()")
    );
    // The chain crosses the `pub use` in prelude.rs (or the `use … as …`
    // alias — both routes land on the same helper pair).
    assert!(
        support.message.contains("resolve_support -> deep_lookup"),
        "chain names the route: {}",
        support.message
    );
    // The second seed hides behind the prelude re-export of `via` plus a
    // method-call hop: the chain must cross both.
    let hop = hits
        .iter()
        .find(|v| v.path == "crates/engine/src/hop.rs")
        .expect("seeded hop.rs unwrap fires");
    assert_eq!(hop.line, line_of("crates/engine/src/hop.rs", ".unwrap()"));
    assert!(
        hop.message.contains("via -> finish"),
        "chain crosses the method hop: {}",
        hop.message
    );
    assert_eq!(hop.chain.as_deref(), Some("count_hopped -> via -> finish"));
    // The unwraps are NOT in kernel files, so the lexical rule stays
    // silent: only the call graph can see these findings.
    assert!(rule_hits(&report, rules::NO_PANIC_IN_KERNELS).is_empty());
}

#[test]
fn mutual_recursion_converges_and_the_alias_keeps_the_io_chain() {
    let report = fixture_report();
    let hits = rule_hits(&report, rules::NO_IO_IN_KERNELS);
    assert_eq!(hits.len(), 1, "{:?}", report.violations);
    let v = hits[0];
    // The `println!` sits inside the ping/pong SCC; the kernel reaches it
    // through `use crate::recurse::ping as trace_ping`. The finding lands
    // at the source site with the minimal entry→site witness chain.
    assert_eq!(v.path, "crates/engine/src/recurse.rs");
    assert_eq!(
        v.line,
        line_of("crates/engine/src/recurse.rs", "trace floor")
    );
    assert_eq!(v.chain.as_deref(), Some("count_traced -> ping"));
    // The other purity rules have nothing to find in the fixture.
    assert!(rule_hits(&report, rules::NO_WALL_CLOCK_IN_KERNELS).is_empty());
    assert!(rule_hits(&report, rules::NO_SPAWN_IN_KERNELS).is_empty());
}

#[test]
fn alloc_rule_fires_in_innermost_loop_and_spares_hoisted_buffers() {
    let report = fixture_report();
    let hits = rule_hits(&report, rules::NO_ALLOC_IN_HOT_LOOP);
    assert!(
        !hits.is_empty(),
        "seeded alloc found: {:?}",
        report.violations
    );
    assert!(hits
        .iter()
        .all(|v| v.path == "crates/engine/src/counting.rs"));
    let seeded = line_of("crates/engine/src/counting.rs", "seeded: fresh alloc");
    assert!(
        hits.iter().any(|v| v.line == seeded),
        "the per-iteration Vec::new fires: {hits:?}"
    );
    // The hoisted buffer and its in-loop pushes stay silent.
    let hoisted_push = line_of("crates/engine/src/counting.rs", "out.push(x)");
    assert!(hits.iter().all(|v| v.line != hoisted_push));
    assert!(hits.iter().all(|v| v.line >= seeded));
}

#[test]
fn exhaustive_match_catches_wildcard_and_missing_variant() {
    let report = fixture_report();
    let hits = rule_hits(&report, rules::EXHAUSTIVE_STRATEGY_MATCH);
    assert_eq!(hits.len(), 2, "two seeded matches: {:?}", report.violations);
    assert!(hits
        .iter()
        .all(|v| v.path == "crates/engine/src/strategy.rs"));
    assert!(hits.iter().any(|v| v.message.contains("catch-all")));
    assert!(hits.iter().any(|v| v.message.contains("`Auto`")));
    // The match in counting.rs names every variant and stays silent.
    assert!(hits
        .iter()
        .all(|v| v.path != "crates/engine/src/counting.rs"));
}

#[test]
fn stale_suppression_is_reported_at_the_allow_comment() {
    let report = fixture_report();
    let hits = rule_hits(&report, rules::STALE_SUPPRESSION);
    assert_eq!(hits.len(), 1, "{:?}", report.violations);
    let v = hits[0];
    assert_eq!(v.path, "crates/engine/src/stale.rs");
    assert_eq!(
        v.line,
        line_of("crates/engine/src/stale.rs", "seqpat-lint: allow")
    );
    assert!(v.message.contains("nondeterministic-iteration-flow"));
}

#[test]
fn tricky_parse_files_stay_silent() {
    let report = fixture_report();
    for quiet in ["tricky.rs", "prelude.rs", "lib.rs"] {
        assert!(
            report.violations.iter().all(|v| !v.path.ends_with(quiet)),
            "{quiet} must lint clean: {:?}",
            report.violations
        );
    }
}

#[test]
fn fixture_report_covers_every_file_and_renders_to_sarif() {
    let report = fixture_report();
    assert_eq!(report.files_scanned, 13);
    assert!(report.has_deny(), "deny-severity seeds are present");
    let sarif = to_sarif(&report);
    // The driver advertises every rule; results carry the seeded findings.
    for info in rules::RULES {
        assert!(sarif.contains(info.name), "driver lists {}", info.name);
    }
    assert!(sarif.contains("\"level\": \"error\""));
    assert!(sarif.contains("crates/engine/src/support.rs"));
}
