//! `apriori-generate` for sequences (paper §4.1.1).
//!
//! Differences from the itemset version worth spelling out:
//!
//! * Order matters, so the join pairs are **ordered**: any two sequences
//!   `p, q` (possibly `p == q`) sharing their first `k-2` elements produce
//!   the candidate `p · ⟨q_last⟩`. At `k = 2` the shared prefix is empty and
//!   all `|L1|²` ordered pairs arise, including `⟨x x⟩`.
//! * Elements may repeat within a sequence (`⟨1 2 1⟩` is legal), so there is
//!   no `p.last < q.last` restriction.
//! * The prune step drops a candidate when any of its `(k-1)`-subsequences
//!   (obtained by deleting one element) is missing from the generation
//!   source.
//!
//! Candidate sets flow in and out as [`CandidateArena`]s: the join reads
//! prefix blocks straight off the flat buffer and the prune's binary
//! searches hit contiguous rows, with no per-candidate allocation anywhere.

use crate::arena::CandidateArena;
use crate::types::transformed::LitemsetId;

/// One large or candidate sequence in id space.
pub type IdSeq = Vec<LitemsetId>;

/// Generates length-`k` candidates from the length-`k-1` source (large
/// sequences in AprioriAll; possibly candidates in the Some variants'
/// forward phases).
///
/// `prev` must be lexicographically sorted and duplicate-free; rows share
/// one length ≥ 1. Output is lexicographically sorted and duplicate-free.
pub fn generate(prev: &CandidateArena) -> CandidateArena {
    if prev.is_empty() {
        return CandidateArena::default();
    }
    let k_minus_1 = prev.candidate_len();
    debug_assert!(prev.is_sorted_unique(), "prev must be sorted+dedup");

    let n = prev.num_candidates();
    let mut out = CandidateArena::new(k_minus_1 + 1);
    let mut cand: IdSeq = Vec::with_capacity(k_minus_1 + 1);
    let mut sub: IdSeq = Vec::with_capacity(k_minus_1);
    let mut block_start = 0;
    while block_start < n {
        let prefix = &prev.get(block_start)[..k_minus_1 - 1];
        let mut block_end = block_start + 1;
        while block_end < n && &prev.get(block_end)[..k_minus_1 - 1] == prefix {
            block_end += 1;
        }
        // Ordered pairs within the block, p == q included.
        for p in block_start..block_end {
            for q in block_start..block_end {
                cand.clear();
                cand.extend_from_slice(prev.get(p));
                cand.push(prev.get(q)[k_minus_1 - 1]);
                if survives_prune(&cand, prev, &mut sub) {
                    out.push(&cand);
                }
            }
        }
        block_start = block_end;
    }
    debug_assert!(out.is_sorted_unique());
    out
}

/// Every delete-one-element subsequence of `cand` must be present in `prev`.
fn survives_prune(cand: &[LitemsetId], prev: &CandidateArena, sub: &mut IdSeq) -> bool {
    for drop in 0..cand.len() {
        sub.clear();
        sub.extend_from_slice(&cand[..drop]);
        sub.extend_from_slice(&cand[drop + 1..]);
        if prev.binary_search(sub).is_err() {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena(rows: &[&[LitemsetId]]) -> CandidateArena {
        CandidateArena::from_rows(rows.first().map_or(0, |r| r.len()), rows.iter().copied())
    }

    fn rows(a: &CandidateArena) -> Vec<IdSeq> {
        a.iter().map(|r| r.to_vec()).collect()
    }

    #[test]
    fn k2_from_singletons_is_all_ordered_pairs() {
        let got = generate(&arena(&[&[0], &[1]]));
        assert_eq!(
            rows(&got),
            vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]
        );
    }

    #[test]
    fn paper_style_join_and_prune() {
        // L3 = {⟨1 2 3⟩ ⟨1 2 4⟩ ⟨1 3 4⟩ ⟨1 3 5⟩ ⟨2 3 4⟩}. The join over the
        // prefix blocks yields (paper §4.1.1's example adapted to order):
        // ⟨1 2 3 4⟩ survives (all 3-subseqs present); the mirror candidates
        // like ⟨1 2 4 3⟩ die because ⟨1 4 3⟩ or ⟨2 4 3⟩ are absent.
        let prev = arena(&[&[1, 2, 3], &[1, 2, 4], &[1, 3, 4], &[1, 3, 5], &[2, 3, 4]]);
        assert_eq!(rows(&generate(&prev)), vec![vec![1, 2, 3, 4]]);
    }

    #[test]
    fn repeated_elements_are_legal() {
        // ⟨7 7⟩ is generated from L1 = {⟨7⟩} and survives (both delete-one
        // subsequences equal ⟨7⟩).
        assert_eq!(rows(&generate(&arena(&[&[7]]))), vec![vec![7, 7]]);
    }

    #[test]
    fn triple_with_repeats_needs_its_subsequences() {
        // From L2 = {⟨7 7⟩} the join gives ⟨7 7 7⟩, whose subsequences are
        // all ⟨7 7⟩ — present, so it survives.
        assert_eq!(rows(&generate(&arena(&[&[7, 7]]))), vec![vec![7, 7, 7]]);
    }

    #[test]
    fn prune_blocks_missing_subsequence() {
        // L2 = {⟨0 1⟩, ⟨1 1⟩}: join block prefixes are [0] and [1];
        // candidates ⟨0 1 1⟩ (from ⟨0 1⟩+⟨0 1⟩.last) needs ⟨0 1⟩ (ok, drop
        // middle and last give ⟨0 1⟩) and ⟨1 1⟩ (drop first) — present, so
        // it survives. ⟨1 1 1⟩ survives likewise. But with L2 = {⟨0 1⟩}
        // alone nothing survives because ⟨1 1⟩ is missing.
        let got = generate(&arena(&[&[0, 1], &[1, 1]]));
        assert_eq!(rows(&got), vec![vec![0, 1, 1], vec![1, 1, 1]]);
        assert!(generate(&arena(&[&[0, 1]])).is_empty());
    }

    #[test]
    fn empty_input() {
        assert!(generate(&CandidateArena::default()).is_empty());
        assert!(generate(&CandidateArena::new(2)).is_empty());
    }

    #[test]
    fn completeness_every_large_superset_is_generated() {
        // Anti-monotonicity completeness check: if every (k-1)-subsequence
        // of a k-sequence is in prev, the k-sequence must be generated.
        let mut prev: Vec<IdSeq> = vec![vec![0, 1], vec![1, 0], vec![0, 0], vec![1, 1]];
        prev.sort();
        let got = generate(&arena(
            &prev.iter().map(|r| r.as_slice()).collect::<Vec<_>>(),
        ));
        // ⟨0 1 0⟩: subsequences ⟨1 0⟩, ⟨0 0⟩, ⟨0 1⟩ all present → must appear.
        assert!(got.binary_search(&[0, 1, 0]).is_ok());
        // All 8 ternary sequences over {0,1} qualify here.
        assert_eq!(got.num_candidates(), 8);
    }
}
