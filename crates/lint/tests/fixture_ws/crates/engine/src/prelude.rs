//! Re-export surface: the kernel calls `crate::prelude::resolve_support`,
//! so the panic chain is only visible through this `pub use`.

pub use crate::support::resolve_support;
