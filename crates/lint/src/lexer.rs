//! A small hand-rolled Rust lexer — just enough token structure for the
//! rule engine to reason about real code without being fooled by comments,
//! string literals, char literals, raw strings, or lifetimes.
//!
//! The lexer is lossless for the rule engine's purposes: every byte of the
//! input is covered by whitespace or exactly one token, tokens carry byte
//! spans and 1-based line numbers, and comments are kept as tokens (the
//! suppression scanner reads them; the rules skip them).

/// Kind of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers `r#ident`).
    Ident,
    /// Integer or float literal (suffix included, e.g. `0u64`).
    Number,
    /// String literal of any flavor: `"…"`, `r"…"`, `r#"…"#`, `b"…"`,
    /// `br#"…"#`, `c"…"`.
    Str,
    /// Char or byte-char literal: `'a'`, `'\n'`, `b'x'`.
    Char,
    /// Lifetime token: `'a`, `'static`, `'_`.
    Lifetime,
    /// `// …` comment (doc comments included).
    LineComment,
    /// `/* … */` comment, nesting handled.
    BlockComment,
    /// Any other single byte of punctuation.
    Punct,
}

/// One token: kind plus byte span plus the 1-based line it starts on.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: u32,
}

impl Token {
    /// The token's source text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens. Unterminated literals are closed at end of
/// input rather than reported — the linter lints code that `rustc` already
/// accepts, so error recovery only needs to be non-catastrophic.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.src[self.pos];
            let kind = match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                    continue;
                }
                _ if b.is_ascii_whitespace() => {
                    self.pos += 1;
                    continue;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                _ if b.is_ascii_digit() => self.number(),
                _ if is_ident_start(b) => self.ident_or_prefixed_literal(),
                _ => {
                    self.pos += 1;
                    TokenKind::Punct
                }
            };
            self.tokens.push(Token {
                kind,
                start,
                end: self.pos,
                line,
            });
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied();
        if let Some(b) = b {
            if b == b'\n' {
                self.line += 1;
            }
            self.pos += 1;
        }
        b
    }

    fn line_comment(&mut self) -> TokenKind {
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
        TokenKind::LineComment
    }

    fn block_comment(&mut self) -> TokenKind {
        self.pos += 2; // consume `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        TokenKind::BlockComment
    }

    /// Lexes a `"…"` string (escapes honored) with the opening quote at the
    /// current position.
    fn string(&mut self) -> TokenKind {
        self.pos += 1; // opening quote
        while let Some(b) = self.bump() {
            match b {
                b'\\' => {
                    self.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
        TokenKind::Str
    }

    /// Lexes a raw string `r"…"` / `r#"…"#` with the current position at
    /// the first `#` or `"` (the `r` prefix already consumed).
    fn raw_string(&mut self) -> TokenKind {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        'scan: while let Some(b) = self.bump() {
            if b == b'"' {
                for k in 0..hashes {
                    if self.peek(k) != Some(b'#') {
                        continue 'scan;
                    }
                }
                self.pos += hashes;
                break;
            }
        }
        TokenKind::Str
    }

    /// `'a` (lifetime) vs `'x'` / `'\n'` (char literal), with the quote at
    /// the current position.
    fn char_or_lifetime(&mut self) -> TokenKind {
        // `'` followed by an escape is always a char literal.
        if self.peek(1) == Some(b'\\') {
            self.pos += 1;
            return self.char_rest();
        }
        // `'x'` — ident-looking but closed right after one character.
        if self
            .peek(1)
            .is_some_and(|b| b != b'\'' && self.peek(2) == Some(b'\''))
        {
            self.pos += 3;
            return TokenKind::Char;
        }
        // `'ident` — a lifetime.
        if self.peek(1).is_some_and(is_ident_start) {
            self.pos += 1;
            while self.peek(0).is_some_and(is_ident_continue) {
                self.pos += 1;
            }
            return TokenKind::Lifetime;
        }
        // Anything else (`'"'`-style punctuation chars): char literal.
        self.pos += 1;
        self.char_rest()
    }

    /// Consumes the body and closing quote of a char literal whose opening
    /// quote was already consumed.
    fn char_rest(&mut self) -> TokenKind {
        while let Some(b) = self.bump() {
            match b {
                b'\\' => {
                    self.bump();
                }
                b'\'' => break,
                _ => {}
            }
        }
        TokenKind::Char
    }

    fn number(&mut self) -> TokenKind {
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        // Fractional part — but never eat `..` (range) or `.method()`.
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
            while self.peek(0).is_some_and(is_ident_continue) {
                self.pos += 1;
            }
        }
        TokenKind::Number
    }

    /// An identifier, or one of the literal prefixes (`r"`, `r#"`, `b"`,
    /// `br"`, `b'`, `c"`, `r#ident`).
    fn ident_or_prefixed_literal(&mut self) -> TokenKind {
        let b = self.src[self.pos];
        let next = self.peek(1);
        match (b, next) {
            (b'r', Some(b'"')) => {
                self.pos += 1;
                return self.raw_string();
            }
            (b'r', Some(b'#')) => {
                // `r#"…"#` raw string vs `r#ident` raw identifier.
                if self.peek(2) == Some(b'"') || self.peek(2) == Some(b'#') {
                    self.pos += 1;
                    return self.raw_string();
                }
                self.pos += 2; // `r#` then fall through to the ident loop
            }
            (b'b', Some(b'"')) | (b'c', Some(b'"')) => {
                self.pos += 1;
                return self.string();
            }
            (b'b', Some(b'\'')) => {
                self.pos += 2;
                return self.char_rest();
            }
            (b'b', Some(b'r')) if self.peek(2) == Some(b'"') || self.peek(2) == Some(b'#') => {
                self.pos += 2;
                return self.raw_string();
            }
            _ => {}
        }
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        TokenKind::Ident
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        let toks = kinds("let x = 42u64 + 1.25;");
        assert_eq!(toks[0], (TokenKind::Ident, "let".into()));
        assert_eq!(toks[1], (TokenKind::Ident, "x".into()));
        assert_eq!(toks[3], (TokenKind::Number, "42u64".into()));
        assert_eq!(toks[5], (TokenKind::Number, "1.25".into()));
    }

    #[test]
    fn ranges_do_not_eat_dots() {
        let toks = kinds("0..n");
        assert_eq!(toks[0], (TokenKind::Number, "0".into()));
        assert_eq!(toks[1], (TokenKind::Punct, ".".into()));
        assert_eq!(toks[2], (TokenKind::Punct, ".".into()));
        assert_eq!(toks[3], (TokenKind::Ident, "n".into()));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "panic! // not a comment";"#);
        assert!(toks.iter().all(|(k, _)| *k != TokenKind::LineComment));
        assert_eq!(toks[3].0, TokenKind::Str);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"quote " inside"#; x"###;
        let toks = kinds(src);
        assert_eq!(
            toks[3],
            (TokenKind::Str, r###"r#"quote " inside"#"###.into())
        );
        assert_eq!(toks.last().map(|t| t.1.clone()), Some("x".into()));
    }

    #[test]
    fn byte_and_c_strings() {
        let toks = kinds(r##"b"bytes" br#"raw"# c"cstr" b'x'"##);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[1].0, TokenKind::Str);
        assert_eq!(toks[2].0, TokenKind::Str);
        assert_eq!(toks[3].0, TokenKind::Char);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; let s = '\"'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(chars.len(), 3);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still-comment */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert_eq!(toks[2], (TokenKind::Ident, "b".into()));
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("r#type r#match");
        assert_eq!(toks[0], (TokenKind::Ident, "r#type".into()));
        assert_eq!(toks[1], (TokenKind::Ident, "r#match".into()));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nline\"\n/* c\nc */\nb";
        let toks = lex(src);
        let b = toks.last().expect("tokens");
        assert_eq!(b.text(src), "b");
        assert_eq!(b.line, 6);
    }
}
