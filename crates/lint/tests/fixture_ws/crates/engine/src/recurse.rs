//! Seeded mutual recursion: `ping` and `pong` form a two-node SCC, so the
//! effect fixpoint must converge via the SCC-level join instead of looping
//! forever. The `println!` in `ping` is the SCC's only intrinsic effect:
//! inference has to surface it on both fns and on every kernel caller.

pub fn ping(n: u32) -> u64 {
    if n == 0 {
        println!("trace floor");
        return 0;
    }
    pong(n - 1) + 1
}

pub fn pong(n: u32) -> u64 {
    if n == 0 {
        return 0;
    }
    ping(n - 1) + 1
}
