//! # seqpat-itemset — Apriori large-itemset mining substrate
//!
//! This crate implements the *litemset phase* substrate of Agrawal &
//! Srikant's "Mining Sequential Patterns" (ICDE 1995): finding all **large
//! itemsets** in a customer-transaction database, where support is counted
//! at **customer** granularity — a customer supports an itemset if the
//! itemset is contained in *at least one* of that customer's transactions,
//! and each customer contributes at most one unit of support.
//!
//! The miner is the classic Apriori algorithm (Agrawal & Srikant, VLDB
//! 1994) — the paper the ICDE'95 work builds on — with its two signature
//! components rebuilt from scratch:
//!
//! * [`candidate::apriori_gen`] — the join + prune candidate generation, and
//! * [`hash_tree::HashTree`] — the candidate hash tree used to find, for a
//!   transaction `t`, all candidates contained in `t` without scanning the
//!   whole candidate list.
//!
//! Items are plain `u32`s; itemsets are sorted, duplicate-free `Vec<u32>`s.
//! The crate is deliberately free of dependencies so it can serve as a
//! standalone substrate.
//!
//! ```
//! use seqpat_itemset::{mine_large_itemsets, AprioriConfig};
//!
//! // Two customers; items 1 and 2 co-occur for both of them.
//! let customers: Vec<Vec<Vec<u32>>> = vec![
//!     vec![vec![1, 2, 3]],
//!     vec![vec![1, 2], vec![4]],
//! ];
//! let found = mine_large_itemsets(&customers, 2, &AprioriConfig::default());
//! assert!(found.iter().any(|l| l.items == vec![1, 2] && l.support == 2));
//! ```

pub mod candidate;
pub mod cast;
pub mod counting;
pub mod hash_tree;
pub mod parallel;
pub mod stats;

#[cfg(test)]
mod proptests;

pub use candidate::apriori_gen;
pub use hash_tree::HashTree;
pub use parallel::Parallelism;
pub use stats::Stopwatch;

/// A raw item identifier.
///
/// The ICDE'95 paper models items as opaque integers; `u32` comfortably
/// covers the paper's `N = 10,000`-item universes and keeps itemsets compact.
pub type Item = u32;

/// A transaction: the items bought together, sorted ascending, no duplicates.
pub type Transaction = Vec<Item>;

/// One customer's transactions in time order.
pub type CustomerTransactions = Vec<Transaction>;

/// A large itemset discovered by the miner, together with its support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LargeItemset {
    /// The items, sorted ascending.
    pub items: Vec<Item>,
    /// Number of customers supporting the itemset (each counted once).
    pub support: u64,
}

/// Tuning knobs for the Apriori run.
#[derive(Debug, Clone)]
pub struct AprioriConfig {
    /// Leaf capacity of the candidate hash tree before it splits.
    pub hash_tree_leaf_capacity: usize,
    /// Branching factor (number of hash buckets) of interior nodes.
    pub hash_tree_fanout: usize,
    /// Below this many candidates a linear scan beats the hash tree; the
    /// counter falls back to direct subset tests.
    pub direct_count_threshold: usize,
    /// Hard cap on itemset size, `None` for unbounded. Useful to bound
    /// degenerate inputs; the paper leaves it unbounded.
    pub max_itemset_size: Option<usize>,
    /// Worker threads for candidate counting (passes 2 and up; pass 1 is a
    /// single cheap scan and stays serial). Parallel runs produce
    /// bit-identical results to serial ones.
    pub parallelism: Parallelism,
}

impl Default for AprioriConfig {
    fn default() -> Self {
        Self {
            hash_tree_leaf_capacity: 32,
            hash_tree_fanout: 16,
            direct_count_threshold: 64,
            max_itemset_size: None,
            parallelism: Parallelism::default(),
        }
    }
}

/// Per-pass counters, for the experiment harness and for tests that pin the
/// pruning behaviour.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AprioriPassStats {
    /// Itemset size counted in this pass (1-based).
    pub k: usize,
    /// Candidates generated for this pass (after the prune step).
    pub candidates: u64,
    /// Candidates that turned out large.
    pub large: u64,
    /// Wall time of the pass (generation + counting).
    pub duration: std::time::Duration,
}

/// Full mining result: the large itemsets of every size plus per-pass stats.
#[derive(Debug, Clone, Default)]
pub struct AprioriResult {
    /// All large itemsets, every size, in pass order (size 1 first).
    pub large: Vec<LargeItemset>,
    /// One entry per executed pass.
    pub passes: Vec<AprioriPassStats>,
}

/// Mines all large itemsets with customer-level support `>= min_count`.
///
/// `customers[c]` holds the transactions of customer `c`; each transaction
/// must be sorted ascending without duplicates (the sort phase of the
/// pipeline guarantees this). `min_count` is an absolute customer count — the
/// caller converts a fractional `minsup` via its database size.
///
/// Returns only the itemsets; use [`mine_large_itemsets_with_stats`] when the
/// per-pass counters are needed.
pub fn mine_large_itemsets(
    customers: &[CustomerTransactions],
    min_count: u64,
    config: &AprioriConfig,
) -> Vec<LargeItemset> {
    mine_large_itemsets_with_stats(customers, min_count, config).large
}

/// Like [`mine_large_itemsets`] but also returns per-pass statistics.
pub fn mine_large_itemsets_with_stats(
    customers: &[CustomerTransactions],
    min_count: u64,
    config: &AprioriConfig,
) -> AprioriResult {
    let min_count = min_count.max(1);
    let threads = config.parallelism.resolved_threads();
    let mut result = AprioriResult::default();

    // Pass 1: direct count of single items per customer.
    let pass_start = crate::stats::Stopwatch::start();
    let l1 = counting::count_single_items(customers, min_count);
    result.passes.push(AprioriPassStats {
        k: 1,
        // Every distinct item is implicitly a candidate in pass 1.
        candidates: counting::distinct_item_count(customers),
        large: l1.len() as u64,
        duration: pass_start.elapsed(),
    });
    if l1.is_empty() {
        return result;
    }

    let mut current: Vec<LargeItemset> = l1;
    let mut k = 2usize;
    loop {
        if let Some(cap) = config.max_itemset_size {
            if k > cap {
                result.large.append(&mut current);
                return result;
            }
        }
        // Pass 2 fast path: the join over L1 yields every item pair and the
        // prune is vacuous, so count co-occurring pairs directly per
        // customer instead of probing |L1|²/2 candidates through the tree
        // (the classic special-cased second pass of Apriori).
        if k == 2 {
            let pass_start = crate::stats::Stopwatch::start();
            let (n_candidates, l2) =
                counting::count_pairs_direct(customers, &current, min_count, threads);
            result.large.append(&mut current);
            result.passes.push(AprioriPassStats {
                k,
                candidates: n_candidates,
                large: l2.len() as u64,
                duration: pass_start.elapsed(),
            });
            if l2.is_empty() {
                return result;
            }
            current = l2;
            k = 3;
            continue;
        }
        let pass_start = crate::stats::Stopwatch::start();
        let prev_sets: Vec<&[Item]> = current.iter().map(|l| l.items.as_slice()).collect();
        let candidates = candidate::apriori_gen(&prev_sets);
        let n_candidates = candidates.len() as u64;
        result.large.append(&mut current);
        if candidates.is_empty() {
            return result;
        }

        let supports = if candidates.len() < config.direct_count_threshold {
            counting::count_candidates_direct(customers, &candidates, threads)
        } else {
            counting::count_candidates_hash_tree(customers, &candidates, config)
        };

        let mut next: Vec<LargeItemset> = Vec::new();
        for (items, support) in candidates.into_iter().zip(supports) {
            if support >= min_count {
                next.push(LargeItemset { items, support });
            }
        }
        result.passes.push(AprioriPassStats {
            k,
            candidates: n_candidates,
            large: next.len() as u64,
            duration: pass_start.elapsed(),
        });
        if next.is_empty() {
            return result;
        }
        current = next;
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Vec<CustomerTransactions> {
        // Four customers. {1,2} supported by 3 customers, {1,2,3} by 2.
        vec![
            vec![vec![1, 2, 3]],
            vec![vec![1, 2], vec![3]],
            vec![vec![1, 2, 3], vec![1, 2, 3]], // counted once per customer
            vec![vec![4]],
        ]
    }

    fn items_of(result: &[LargeItemset]) -> Vec<Vec<Item>> {
        result.iter().map(|l| l.items.clone()).collect()
    }

    #[test]
    fn single_items_counted_per_customer() {
        let found = mine_large_itemsets(&db(), 3, &AprioriConfig::default());
        let singles: Vec<_> = found.iter().filter(|l| l.items.len() == 1).collect();
        // 1 and 2 appear for customers 0,1,2; 3 for 0,1,2; 4 only for 3.
        assert_eq!(singles.len(), 3);
        for s in singles {
            assert_eq!(s.support, 3);
        }
    }

    #[test]
    fn pairs_and_triples() {
        let found = mine_large_itemsets(&db(), 2, &AprioriConfig::default());
        let sets = items_of(&found);
        assert!(sets.contains(&vec![1, 2]));
        assert!(sets.contains(&vec![1, 3]));
        assert!(sets.contains(&vec![2, 3]));
        assert!(sets.contains(&vec![1, 2, 3]));
        assert!(!sets.contains(&vec![4]));
    }

    #[test]
    fn customer_counted_once_even_with_repeat_transactions() {
        let customers = vec![vec![vec![7, 8], vec![7, 8], vec![7, 8]]];
        let found = mine_large_itemsets(&customers, 1, &AprioriConfig::default());
        let pair = found.iter().find(|l| l.items == vec![7, 8]).unwrap();
        assert_eq!(pair.support, 1);
    }

    #[test]
    fn empty_database_yields_nothing() {
        let found = mine_large_itemsets(&[], 1, &AprioriConfig::default());
        assert!(found.is_empty());
    }

    #[test]
    fn min_count_zero_treated_as_one() {
        let customers = vec![vec![vec![1]]];
        let found = mine_large_itemsets(&customers, 0, &AprioriConfig::default());
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn max_itemset_size_caps_passes() {
        let config = AprioriConfig {
            max_itemset_size: Some(2),
            ..AprioriConfig::default()
        };
        let found = mine_large_itemsets(&db(), 2, &config);
        assert!(found.iter().all(|l| l.items.len() <= 2));
    }

    #[test]
    fn pass_stats_reflect_pruning() {
        let result = mine_large_itemsets_with_stats(&db(), 2, &AprioriConfig::default());
        assert_eq!(result.passes[0].k, 1);
        // Pass 2 candidates = C(3,2) = 3 pairs over {1,2,3}.
        assert_eq!(result.passes[1].candidates, 3);
        assert_eq!(result.passes[1].large, 3);
        // Pass 3: only {1,2,3} survives the join.
        assert_eq!(result.passes[2].candidates, 1);
        assert_eq!(result.passes[2].large, 1);
    }

    #[test]
    fn direct_and_hash_tree_counting_agree() {
        // Force each strategy via the threshold and compare.
        let customers: Vec<CustomerTransactions> = (0..20)
            .map(|c: u32| vec![vec![c % 3, 10 + c % 4, 20 + c % 2], vec![c % 5, 10 + c % 4]])
            .map(|txs| {
                txs.into_iter()
                    .map(|mut t| {
                        t.sort_unstable();
                        t.dedup();
                        t
                    })
                    .collect()
            })
            .collect();
        let direct = mine_large_itemsets(
            &customers,
            3,
            &AprioriConfig {
                direct_count_threshold: usize::MAX,
                ..AprioriConfig::default()
            },
        );
        let tree = mine_large_itemsets(
            &customers,
            3,
            &AprioriConfig {
                direct_count_threshold: 0,
                hash_tree_leaf_capacity: 1,
                hash_tree_fanout: 2,
                ..AprioriConfig::default()
            },
        );
        assert_eq!(direct, tree);
    }
}
