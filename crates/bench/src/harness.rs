//! Shared measurement plumbing: run one miner configuration over one
//! database, collect wall time plus the machine-independent counters.

use std::time::Instant;

use seqpat_core::{Algorithm, Database, MinSupport, Miner, MinerConfig};

/// One measured mining run.
#[derive(Debug, Clone)]
pub struct MiningMeasurement {
    /// Algorithm display name.
    pub algorithm: String,
    /// Dataset label (e.g. `C10-T2.5-S4-I1.25`).
    pub dataset: String,
    /// Minimum support as a fraction.
    pub minsup: f64,
    /// End-to-end wall time in seconds (all five phases).
    pub seconds: f64,
    /// Maximal patterns found.
    pub patterns: usize,
    /// Candidate sequences generated.
    pub candidates_generated: u64,
    /// Candidate sequences counted against the database.
    pub candidates_counted: u64,
    /// Exact containment tests executed.
    pub containment_tests: u64,
    /// Large sequences retained by the sequence phase.
    pub large_sequences: u64,
    /// Large itemsets (the transformed alphabet size).
    pub litemsets: u64,
    /// Worker threads the counting passes used (resolved value).
    pub threads: usize,
    /// Occurrence-list joins executed (vertical strategy only; 0 otherwise).
    pub join_ops: u64,
    /// Peak bytes of the vertical index + cached occurrence lists (0 for
    /// horizontal strategies). Not part of the CSV row — experiments that
    /// need it (E10) report it in their own output format.
    pub vertical_peak_bytes: u64,
    /// Seconds spent building the vertical occurrence index (0 otherwise).
    pub vertical_index_seconds: f64,
    /// S-step smear words processed (bitmap strategy only; 0 otherwise).
    pub sstep_ops: u64,
    /// Words in the bitmap arena (bitmap strategy only; 0 otherwise). Like
    /// `vertical_peak_bytes`, reported by experiments in their own format
    /// rather than the CSV row.
    pub bitmap_words: u64,
    /// Seconds spent building the bitmap index (0 otherwise).
    pub bitmap_index_seconds: f64,
}

impl MiningMeasurement {
    /// CSV row matching [`CSV_HEADER`].
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{:.6},{},{},{},{},{},{},{}",
            self.dataset,
            self.algorithm,
            self.minsup,
            self.seconds,
            self.patterns,
            self.candidates_generated,
            self.candidates_counted,
            self.containment_tests,
            self.large_sequences,
            self.litemsets,
            self.threads,
        )
    }
}

/// Header for [`MiningMeasurement::csv_row`].
pub const CSV_HEADER: &str = "dataset,algorithm,minsup,seconds,patterns,candidates_generated,candidates_counted,containment_tests,large_sequences,litemsets,threads";

/// Runs `algorithm` on `db` at `minsup` and measures it.
pub fn measure(
    db: &Database,
    dataset: &str,
    minsup: f64,
    algorithm: Algorithm,
) -> MiningMeasurement {
    measure_config(
        db,
        dataset,
        minsup,
        MinerConfig::new(MinSupport::Fraction(minsup)).algorithm(algorithm),
    )
}

/// Runs an arbitrary configuration on `db` and measures it.
pub fn measure_config(
    db: &Database,
    dataset: &str,
    minsup: f64,
    config: MinerConfig,
) -> MiningMeasurement {
    let name = config.algorithm.to_string();
    let start = Instant::now();
    let result = Miner::new(config).mine(db);
    let seconds = start.elapsed().as_secs_f64();
    MiningMeasurement {
        algorithm: name,
        dataset: dataset.to_string(),
        minsup,
        seconds,
        patterns: result.patterns.len(),
        candidates_generated: result.stats.candidates_generated,
        candidates_counted: result.stats.candidates_counted,
        containment_tests: result.stats.containment_tests,
        large_sequences: result.stats.large_sequences,
        litemsets: result.stats.num_litemsets,
        threads: result.stats.threads_used,
        join_ops: result.stats.join_ops,
        vertical_peak_bytes: result.stats.vertical_peak_bytes,
        vertical_index_seconds: result.stats.vertical_index_time.as_secs_f64(),
        sstep_ops: result.stats.sstep_ops,
        bitmap_words: result.stats.bitmap_words,
        bitmap_index_seconds: result.stats.bitmap_index_time.as_secs_f64(),
    }
}

/// The three algorithms of the paper, in its presentation order.
/// DynamicSome runs with step 2, the setting the paper's plots use.
pub fn paper_algorithms() -> [Algorithm; 3] {
    [
        Algorithm::AprioriAll,
        Algorithm::AprioriSome,
        Algorithm::DynamicSome { step: 2 },
    ]
}

/// The minimum-support grid of the paper's execution-time figures.
pub fn paper_minsup_grid(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.01, 0.005]
    } else {
        vec![0.01, 0.0075, 0.005, 0.0033, 0.0025, 0.002]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_db() -> Database {
        Database::from_rows(vec![
            (1, 1, vec![1]),
            (1, 2, vec![2]),
            (2, 1, vec![1]),
            (2, 2, vec![2]),
            (3, 1, vec![3]),
        ])
    }

    #[test]
    fn measure_collects_counters() {
        let m = measure(&tiny_db(), "tiny", 0.5, Algorithm::AprioriAll);
        assert_eq!(m.dataset, "tiny");
        assert_eq!(m.algorithm, "apriori-all");
        assert_eq!(m.patterns, 1); // ⟨(1)(2)⟩
        assert!(m.seconds >= 0.0);
        assert!(m.candidates_generated > 0);
        assert_eq!(m.litemsets, 2);
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let m = measure(&tiny_db(), "tiny", 0.5, Algorithm::AprioriSome);
        assert_eq!(
            m.csv_row().split(',').count(),
            CSV_HEADER.split(',').count()
        );
    }

    #[test]
    fn grids() {
        assert_eq!(paper_minsup_grid(false).len(), 6);
        assert_eq!(paper_minsup_grid(true).len(), 2);
        assert_eq!(paper_algorithms().len(), 3);
    }
}
