//! `otf-generate` — DynamicSome's on-the-fly candidate generation
//! (paper §4.3).
//!
//! Given the large `k`-sequences `Lk` and large `j`-sequences `Lj`,
//! candidates of length `k + j` are generated *while scanning each
//! customer*: for every `x ∈ Lk` contained in the customer (earliest match
//! ending at transaction `e`) and every `y ∈ Lj` contained strictly after
//! `e`, the concatenation `x·y` is contained in the customer, and its
//! support counter is bumped. A customer bumps each `x·y` at most once
//! (each pair is probed once per customer), so the resulting counts are
//! exact supports.
//!
//! Completeness: a large `(k+j)`-sequence decomposes into its length-`k`
//! prefix (∈ `Lk` by anti-monotonicity) and length-`j` suffix (∈ `Lj`), and
//! every supporting customer exhibits the split — with the earliest-match
//! end for the prefix, by the usual exchange argument. The flip side is the
//! candidate *explosion*: up to `|Lk| × |Lj|` pairs per customer, which is
//! exactly why the paper's experiments see DynamicSome degrade at low
//! minimum support.

use super::candidate::IdSeq;
use crate::contain::customer_contains_from;
use crate::fxhash::FxHashMap;
use crate::types::transformed::TransformedDatabase;

/// Runs otf-generate over the whole database. Returns `(candidate, support)`
/// pairs sorted by candidate, and adds every containment probe to
/// `containment_tests`.
pub fn otf_generate(
    tdb: &TransformedDatabase,
    lk: &[IdSeq],
    lj: &[IdSeq],
    containment_tests: &mut u64,
) -> Vec<(IdSeq, u64)> {
    let mut counts: FxHashMap<IdSeq, u64> = FxHashMap::default();
    if lk.is_empty() || lj.is_empty() {
        return Vec::new();
    }
    let num_litemsets = tdb.table.len();
    let mut bitmap = vec![false; num_litemsets];
    for customer in &tdb.customers {
        if customer.elements.is_empty() {
            continue;
        }
        bitmap.iter_mut().for_each(|b| *b = false);
        for element in &customer.elements {
            for &id in element {
                bitmap[id as usize] = true;
            }
        }
        for x in lk {
            if !x.iter().all(|&id| bitmap[id as usize]) {
                continue;
            }
            *containment_tests += 1;
            let Some(end) = customer_contains_from(customer, x, 0) else {
                continue;
            };
            for y in lj {
                if !y.iter().all(|&id| bitmap[id as usize]) {
                    continue;
                }
                *containment_tests += 1;
                if customer_contains_from(customer, y, end + 1).is_some() {
                    let mut cand = Vec::with_capacity(x.len() + y.len());
                    cand.extend_from_slice(x);
                    cand.extend_from_slice(y);
                    *counts.entry(cand).or_insert(0) += 1;
                }
            }
        }
    }
    let mut out: Vec<(IdSeq, u64)> = counts.into_iter().collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::apriori_all::tests::paper_tdb;

    #[test]
    fn paper_example_pairs_from_singletons() {
        // Lk = Lj = the five 1-sequences; otf-generate must discover the
        // four large 2-sequences with exact supports (plus smaller ones).
        let tdb = paper_tdb();
        let l1: Vec<IdSeq> = (0..5).map(|i| vec![i]).collect();
        let mut tests = 0;
        let pairs = otf_generate(&tdb, &l1, &l1, &mut tests);
        let get = |ids: &[u32]| {
            pairs
                .iter()
                .find(|(c, _)| c.as_slice() == ids)
                .map(|&(_, s)| s)
                .unwrap_or(0)
        };
        assert_eq!(get(&[0, 1]), 2); // ⟨(30)(40)⟩
        assert_eq!(get(&[0, 2]), 2); // ⟨(30)(40 70)⟩
        assert_eq!(get(&[0, 3]), 2); // ⟨(30)(70)⟩
        assert_eq!(get(&[0, 4]), 2); // ⟨(30)(90)⟩
        assert_eq!(get(&[4, 0]), 0); // wrong order never counted
        assert!(tests > 0);
    }

    #[test]
    fn earliest_match_split_finds_late_suffixes() {
        // Customer: [{5}] [{6}] [{5}] — x = ⟨5⟩ ends earliest at 0, so
        // y = ⟨6⟩ (position 1) and y = ⟨5⟩ (position 2) are both found.
        use crate::types::itemset::Itemset;
        use crate::types::transformed::{LitemsetTable, TransformedCustomer};
        let table = LitemsetTable::new(vec![
            (Itemset::new(vec![1]), 1),
            (Itemset::new(vec![2]), 1),
            (Itemset::new(vec![3]), 1),
            (Itemset::new(vec![4]), 1),
            (Itemset::new(vec![5]), 1),
            (Itemset::new(vec![6]), 1),
        ]);
        let tdb = TransformedDatabase {
            customers: vec![TransformedCustomer {
                customer_id: 1,
                elements: vec![vec![4], vec![5], vec![4]],
            }],
            table,
            total_customers: 1,
        };
        let mut tests = 0;
        let pairs = otf_generate(&tdb, &[vec![4]], &[vec![4], vec![5]], &mut tests);
        assert_eq!(pairs, vec![(vec![4, 4], 1), (vec![4, 5], 1)]);
    }

    #[test]
    fn empty_inputs_yield_nothing() {
        let tdb = paper_tdb();
        let mut tests = 0;
        assert!(otf_generate(&tdb, &[], &[vec![0]], &mut tests).is_empty());
        assert!(otf_generate(&tdb, &[vec![0]], &[], &mut tests).is_empty());
        assert_eq!(tests, 0);
    }

    #[test]
    fn supports_are_per_customer_exact() {
        // Two customers both containing ⟨0 4⟩; support must be 2, not more,
        // even though customer 4 has several embeddings.
        let tdb = paper_tdb();
        let mut tests = 0;
        let pairs = otf_generate(&tdb, &[vec![0]], &[vec![4]], &mut tests);
        assert_eq!(pairs, vec![(vec![0, 4], 2)]);
    }
}
