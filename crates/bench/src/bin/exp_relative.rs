//! **E2 — relative execution times** (the paper's relative-time figure):
//! AprioriSome and DynamicSome normalized to AprioriAll = 1.0 at each
//! support threshold.
//!
//! The headline shape: AprioriSome's relative time drops below 1.0 as
//! minsup decreases; DynamicSome's rises past it and then explodes.

use seqpat_bench::harness::{measure, paper_algorithms, paper_minsup_grid};
use seqpat_bench::{Args, Table};
use seqpat_datagen::{generate, GenParams};

fn main() {
    let args = Args::parse();
    let minsups = paper_minsup_grid(args.quick);
    let dataset = "C10-T2.5-S4-I1.25";
    let params = GenParams::paper_dataset(dataset)
        .expect("paper dataset")
        .customers(args.customers);
    let db = generate(&params, args.seed);

    println!("E2: relative execution time on {dataset} (AprioriAll = 1.0)\n");
    let mut table = Table::new(&["minsup", "apriori-all", "apriori-some", "dynamic-some(2)"]);
    let mut rows = Vec::new();
    for &minsup in &minsups {
        let times: Vec<f64> = paper_algorithms()
            .into_iter()
            .map(|alg| measure(&db, dataset, minsup, alg).seconds)
            .collect();
        let base = times[0].max(1e-9);
        table.row(vec![
            format!("{:.2}%", minsup * 100.0),
            "1.00".to_string(),
            format!("{:.2}", times[1] / base),
            format!("{:.2}", times[2] / base),
        ]);
        rows.push(format!(
            "{},{:.6},{:.6},{:.6}",
            minsup,
            1.0,
            times[1] / base,
            times[2] / base
        ));
    }
    table.print();
    let path = args
        .write_csv(
            "e2_relative",
            "minsup,apriori_all,apriori_some,dynamic_some",
            &rows,
        )
        .expect("write CSV");
    println!("\nwrote {}", path.display());
}
