//! The transformed database (paper §3, transformation phase).
//!
//! After the litemset phase every large itemset gets a dense integer id
//! ([`LitemsetId`]); the transformation phase replaces each transaction with
//! the **set of litemset ids contained in it**. Containment of a candidate
//! sequence in a customer sequence then reduces to matching ids against
//! per-transaction id sets — no itemset subset tests in the inner loop.

use crate::fxhash::FxHashMap;
use crate::types::itemset::{Item, Itemset};

/// Dense identifier of a large itemset, assigned by the litemset phase.
pub type LitemsetId = u32;

/// The mapping between large itemsets and their dense ids, plus supports.
#[derive(Debug, Clone, Default)]
pub struct LitemsetTable {
    sets: Vec<Itemset>,
    supports: Vec<u64>,
    by_items: FxHashMap<Vec<Item>, LitemsetId>,
}

impl LitemsetTable {
    /// Builds the table from the litemset-phase output. Ids are assigned in
    /// the given order (the phase provides lexicographic order, which makes
    /// ids deterministic run to run).
    pub fn new(large: Vec<(Itemset, u64)>) -> Self {
        let mut table = Self::default();
        for (set, support) in large {
            let id = table.sets.len() as LitemsetId;
            table.by_items.insert(set.items().to_vec(), id);
            table.sets.push(set);
            table.supports.push(support);
        }
        table
    }

    /// Number of large itemsets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True when no itemset was large.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The itemset behind `id`.
    pub fn itemset(&self, id: LitemsetId) -> &Itemset {
        &self.sets[id as usize]
    }

    /// Customer support of the itemset behind `id`.
    pub fn support(&self, id: LitemsetId) -> u64 {
        self.supports[id as usize]
    }

    /// Looks up the id of an exact itemset, if it is large.
    pub fn id_of(&self, items: &[Item]) -> Option<LitemsetId> {
        self.by_items.get(items).copied()
    }

    /// Iterates `(id, itemset, support)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (LitemsetId, &Itemset, u64)> {
        self.sets
            .iter()
            .zip(&self.supports)
            .enumerate()
            .map(|(i, (s, &sup))| (i as LitemsetId, s, sup))
    }

    /// Maps an id-sequence back to the original itemset sequence.
    pub fn to_sequence(&self, ids: &[LitemsetId]) -> crate::types::sequence::Sequence {
        crate::types::sequence::Sequence::new(
            ids.iter().map(|&id| self.itemset(id).clone()).collect(),
        )
    }

    /// All ids whose itemset is a **subset** of the given id's itemset
    /// (including the id itself). Used by subset-aware containment.
    pub fn subset_ids(&self, id: LitemsetId) -> Vec<LitemsetId> {
        let target = self.itemset(id);
        self.iter()
            .filter(|(_, s, _)| s.is_subset_of(target))
            .map(|(i, _, _)| i)
            .collect()
    }
}

/// One customer after transformation: per transaction, the sorted set of
/// litemset ids contained in it. Transactions containing no large itemset
/// are dropped (the paper drops them too); customers may end up with an
/// empty element list but still count toward the support denominator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformedCustomer {
    /// The originating customer id.
    pub customer_id: u64,
    /// Per retained transaction, the ascending litemset ids it contains.
    pub elements: Vec<Vec<LitemsetId>>,
}

impl TransformedCustomer {
    /// Presence bitmap over all litemset ids: `bitmap[id] == true` iff the
    /// id occurs in any element. Used as a cheap prefilter before the
    /// containment scan.
    pub fn presence_bitmap(&self, num_litemsets: usize) -> Vec<bool> {
        let mut bitmap = vec![false; num_litemsets];
        for element in &self.elements {
            for &id in element {
                bitmap[id as usize] = true;
            }
        }
        bitmap
    }
}

/// The full transformed database.
#[derive(Debug, Clone)]
pub struct TransformedDatabase {
    /// Customers (possibly with empty `elements`), in original order.
    pub customers: Vec<TransformedCustomer>,
    /// The litemset id table.
    pub table: LitemsetTable,
    /// Total customers in the *original* database — the support denominator.
    pub total_customers: usize,
}

impl TransformedDatabase {
    /// Maps an id-sequence back to the original itemset sequence.
    pub fn to_sequence(&self, ids: &[LitemsetId]) -> crate::types::sequence::Sequence {
        self.table.to_sequence(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> LitemsetTable {
        LitemsetTable::new(vec![
            (Itemset::new(vec![1]), 4),
            (Itemset::new(vec![2]), 3),
            (Itemset::new(vec![1, 2]), 2),
        ])
    }

    #[test]
    fn lookup_roundtrip() {
        let t = table();
        assert_eq!(t.len(), 3);
        assert_eq!(t.id_of(&[1]), Some(0));
        assert_eq!(t.id_of(&[1, 2]), Some(2));
        assert_eq!(t.id_of(&[3]), None);
        assert_eq!(t.itemset(2).items(), &[1, 2]);
        assert_eq!(t.support(1), 3);
    }

    #[test]
    fn subset_ids_include_self_and_true_subsets() {
        let t = table();
        let mut ids = t.subset_ids(2); // subsets of {1,2}
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(t.subset_ids(0), vec![0]);
    }

    #[test]
    fn presence_bitmap() {
        let c = TransformedCustomer {
            customer_id: 1,
            elements: vec![vec![0, 2], vec![1]],
        };
        assert_eq!(c.presence_bitmap(4), vec![true, true, true, false]);
    }
}
