//! Streaming colstore construction: the litemset and transformation phases
//! over a *replayable* customer stream, with peak memory bounded by one
//! batch of customers plus the candidate tables — never the database.
//!
//! The in-memory pipeline ([`seqpat_core::phases::litemset::litemset_phase`]
//! then [`seqpat_core::phases::transform::transform_phase`]) needs the whole
//! [`seqpat_core::Database`] resident. This module reruns the same Apriori
//! passes by
//! streaming the customers once per pass: per-batch candidate supports are
//! exact counts, and supports are additive across disjoint customer batches,
//! so the summed totals — and therefore the large itemsets, their ids, and
//! every transformed row — are identical to the in-memory build.
//!
//! The source must yield the *same customers in the same order on every
//! replay* (the contract `seqpat-datagen`'s `stream(params, seed)` and
//! re-reading a file both satisfy).

use std::path::Path;

use crate::colstore::ColstoreWriter;
use crate::error::IoError;
use seqpat_core::phases::transform::TransformContext;
use seqpat_core::{CustomerSequence, Item, Itemset, LitemsetTable, MinSupport};
use seqpat_itemset::{apriori_gen, counting, AprioriConfig, CustomerTransactions, LargeItemset};

/// What a finished streaming build produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildSummary {
    /// Customers streamed (rows written and support denominator alike).
    pub total_customers: u64,
    /// Large itemsets in the table.
    pub litemsets: usize,
    /// Apriori passes run over the stream (pass 1 included).
    pub passes: usize,
}

/// Builds a colstore file at `path` from a replayable customer stream.
///
/// `replay` is called once per Apriori pass plus once for the final
/// transform pass; each call must yield the same customers in the same
/// order. `batch_customers` bounds how many customers are resident at a
/// time (clamped to at least 1). The produced file opens to a dataset
/// whose litemset table and rows are identical to running the in-memory
/// litemset + transform phases on the collected stream.
pub fn build_colstore<I, F>(
    replay: F,
    min_count: u64,
    config: &AprioriConfig,
    batch_customers: usize,
    path: impl AsRef<Path>,
) -> Result<BuildSummary, IoError>
where
    F: Fn() -> I,
    I: Iterator<Item = CustomerSequence>,
{
    let batch = batch_customers.max(1);
    let min_count = min_count.max(1);
    let threads = config.parallelism.resolved_threads();

    // --- Pass 1: single-item customer supports (and the denominator). ---
    // A BTreeMap keeps the item order deterministic without a sort pass.
    let mut item_counts: std::collections::BTreeMap<Item, u64> = std::collections::BTreeMap::new();
    let mut total_customers = 0u64;
    for customer in replay() {
        total_customers += 1;
        let mut distinct: Vec<Item> = customer
            .itemsets()
            .flat_map(|set| set.items().iter().copied())
            .collect();
        distinct.sort_unstable();
        distinct.dedup();
        for item in distinct {
            *item_counts.entry(item).or_insert(0) += 1;
        }
    }
    let mut passes = 1usize;
    let mut all_large: Vec<LargeItemset> = Vec::new();
    let mut current: Vec<LargeItemset> = item_counts
        .into_iter()
        .filter(|&(_, support)| support >= min_count)
        .map(|(item, support)| LargeItemset {
            // seqpat-lint: allow(no-alloc-in-hot-loop) one allocation per surviving large item, not per scanned row
            items: vec![item],
            support,
        })
        .collect();

    // --- Pass 2 fast path (the classic special-cased second pass): count
    // co-occurring L1 pairs in a per-batch triangular grid instead of
    // probing |L1|²/2 materialized candidates — per-batch pair counts are
    // exact, so summing them and thresholding afterwards reproduces the
    // in-memory pass exactly. Dominates build time on large streams.
    if current.len() >= 2 {
        passes += 1;
        let l1 = std::mem::take(&mut current);
        let mut pair_supports: std::collections::BTreeMap<(Item, Item), u64> =
            std::collections::BTreeMap::new();
        for_each_batch(replay(), batch, |matrix| {
            let (_, batch_pairs) = counting::count_pairs_direct(matrix, &l1, 1, threads);
            for pair in batch_pairs {
                debug_assert!(
                    pair.items.len() == 2,
                    "count_pairs_direct yields 2-itemsets"
                );
                *pair_supports
                    .entry((pair.items[0], pair.items[1]))
                    .or_insert(0) += pair.support;
            }
        });
        all_large.extend(l1);
        current = pair_supports
            .into_iter()
            .filter(|&(_, support)| support >= min_count)
            .map(|((a, b), support)| LargeItemset {
                // seqpat-lint: allow(no-alloc-in-hot-loop) one allocation per surviving large pair, not per scanned row
                items: vec![a, b],
                support,
            })
            .collect();
    }

    // --- Passes 3..: apriori_gen candidates, supports summed per batch. ---
    while !current.is_empty() {
        let prev_sets: Vec<&[Item]> = current.iter().map(|l| l.items.as_slice()).collect();
        let candidates = apriori_gen(&prev_sets);
        all_large.append(&mut current);
        if candidates.is_empty() {
            break;
        }
        passes += 1;
        let mut supports = vec![0u64; candidates.len()];
        for_each_batch(replay(), batch, |matrix| {
            let partial = if candidates.len() < config.direct_count_threshold {
                counting::count_candidates_direct(matrix, &candidates, threads)
            } else {
                counting::count_candidates_hash_tree(matrix, &candidates, config)
            };
            for (total, part) in supports.iter_mut().zip(partial) {
                *total += part;
            }
        });
        current = candidates
            .into_iter()
            .zip(supports)
            .filter(|&(_, support)| support >= min_count)
            .map(|(items, support)| LargeItemset { items, support })
            .collect();
    }

    // Same global order as the in-memory litemset phase: lexicographic by
    // items, which makes litemset ids identical across backends.
    all_large.sort_by(|a, b| a.items.cmp(&b.items));
    let table = LitemsetTable::new(
        all_large
            .into_iter()
            .map(|l| (Itemset::from_sorted(l.items), l.support))
            .collect(),
    );

    // --- Final pass: transform each customer and spill it to the store. ---
    let ctx = TransformContext::new(&table);
    let mut writer = ColstoreWriter::create(path)?;
    for customer in replay() {
        writer.push_row(&ctx.transform_customer(&customer))?;
    }
    let rows = writer.rows_written();
    if rows != total_customers {
        return Err(IoError::parse(
            0,
            format!("stream replay yielded {rows} customers, pass 1 saw {total_customers}"),
        ));
    }
    let litemsets = table.len();
    writer.finish(&table, total_customers)?;
    Ok(BuildSummary {
        total_customers,
        litemsets,
        passes,
    })
}

/// Feeds `f` batches of at most `batch` customers, as the item-matrix view
/// the `seqpat-itemset` counters consume.
fn for_each_batch<I>(stream: I, batch: usize, mut f: impl FnMut(&[CustomerTransactions]))
where
    I: Iterator<Item = CustomerSequence>,
{
    let mut matrix: Vec<CustomerTransactions> = Vec::with_capacity(batch);
    for customer in stream {
        matrix.push(
            customer
                .itemsets()
                // seqpat-lint: allow(no-alloc-in-hot-loop) batch materialization — the counters consume owned rows and the batch spine is reused across batches
                .map(|set| set.items().to_vec())
                .collect(),
        );
        if matrix.len() == batch {
            f(&matrix);
            matrix.clear();
        }
    }
    if !matrix.is_empty() {
        f(&matrix);
    }
}

/// Convenience: the denominator-aware minimum count for a fractional
/// support over `total_customers` customers — exactly
/// [`MinSupport::Fraction`]'s rounding, so streamed and in-memory runs
/// resolve the same threshold.
pub fn min_count_for(total_customers: u64, fraction: f64) -> u64 {
    MinSupport::Fraction(fraction).to_count(usize::try_from(total_customers).unwrap_or(usize::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colstore::ColstoreDataset;
    use seqpat_core::phases::litemset::litemset_phase;
    use seqpat_core::phases::transform::transform_phase;
    use seqpat_core::{Database, Dataset, ShardScratch};

    fn paper_db() -> Database {
        Database::from_rows(vec![
            (1, 1, vec![30]),
            (1, 2, vec![90]),
            (2, 1, vec![10, 20]),
            (2, 2, vec![30]),
            (2, 3, vec![40, 60, 70]),
            (3, 1, vec![30, 50, 70]),
            (4, 1, vec![30]),
            (4, 2, vec![40, 70]),
            (4, 3, vec![90]),
            (5, 1, vec![90]),
        ])
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("seqpat-stream-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn streamed_build_matches_in_memory_phases() {
        let db = paper_db();
        let config = AprioriConfig::default();
        for batch in [1usize, 2, 3, 100] {
            let path = tmp_path(&format!("paper-{batch}.colstore"));
            let summary =
                build_colstore(|| db.customers().iter().cloned(), 2, &config, batch, &path)
                    .unwrap();
            assert_eq!(summary.total_customers, 5);

            let expected = transform_phase(&db, litemset_phase(&db, 2, &config).table);
            let ds = ColstoreDataset::open(&path).unwrap();
            assert_eq!(ds.total_customers(), expected.total_customers);
            assert_eq!(ds.table().len(), expected.table.len());
            for id in 0..expected.table.len() as u32 {
                assert_eq!(ds.table().itemset(id), expected.table.itemset(id));
                assert_eq!(ds.table().support(id), expected.table.support(id));
            }
            let mut scratch = ShardScratch::new();
            let rows = ds.load_shard(0..ds.num_rows(), &mut scratch);
            assert_eq!(rows, &expected.customers[..], "batch {batch}");
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn min_count_for_matches_fraction_semantics() {
        assert_eq!(min_count_for(5, 0.25), 2);
        assert_eq!(min_count_for(100, 0.01), 1);
        assert_eq!(min_count_for(0, 0.5), 1);
        assert_eq!(min_count_for(1000, 0.005), 5);
    }
}
