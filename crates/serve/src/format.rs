//! `SEQPATS1` — the on-disk form of a [`PatternTrie`].
//!
//! Mirrors the `SEQPATC1` colstore discipline (`seqpat-io`): a fixed
//! little-endian header whose magic+version pair versions the format and
//! whose endianness tag rejects byte-swapped files, followed by contiguous
//! sections at offsets that are both *stored* and *recomputed* from the
//! counts — any disagreement, or a file length mismatch, fails the open.
//! Loading uses positioned reads ([`seqpat_io::ReadAt`]; the workspace
//! forbids `unsafe`, so there is no mmap) and re-validates every
//! structural invariant the lookup path leans on before the index answers
//! a single query. Serialization is canonical: equal tries produce
//! byte-identical files, which the round-trip property tests assert.
//!
//! # File layout (all integers little-endian)
//!
//! | offset | field |
//! |---|---|
//! | 0   | magic `b"SEQPATS1"` |
//! | 8   | `u32` version (currently 1) |
//! | 12  | `u32` endianness tag `0x1A2B3C4D` |
//! | 16  | `u64` num_nodes |
//! | 24  | `u64` num_children (= num_nodes − 1) |
//! | 32  | `u64` num_patterns (terminal nodes) |
//! | 40  | `u64` num_litemsets |
//! | 48  | `u64` num_table_items (items across all litemsets) |
//! | 56  | `u64` total_customers (support denominator) |
//! | 64  | `u64` ×8 section offsets: child_offsets, best_support, terminal_support, child_ids, child_nodes, rank_order, table, file_len |
//! | 128 | sections, contiguous, in that order |
//!
//! Sections:
//!
//! * `child_offsets` — `u32` × (num_nodes + 1), the CSR offsets.
//! * `best_support` — `u64` × num_nodes.
//! * `terminal_support` — `u64` × num_nodes.
//! * `child_ids` — `u32` × num_children, ascending within each node.
//! * `child_nodes` — `u32` × num_children, preorder child indices.
//! * `rank_order` — `u32` × num_children, per-node rank permutations.
//! * `table` — the litemset table, exactly the colstore shape: supports
//!   (`u64` × L), item offsets (`u64` × (L+1)), items (`u32` × T).
//!
//! # Failure model
//!
//! [`PatternTrie::load`] fails closed with [`IoError`] on any structural
//! problem. After a successful load the index is fully resident and
//! immutable, so queries cannot fail — unlike the colstore there is no
//! post-open disk access to defend.

use std::fs::File;
use std::path::Path;

use seqpat_core::{Itemset, LitemsetTable};
use seqpat_io::readat::{u32s_from, u64s_from, ReadAt};
use seqpat_io::IoError;

use crate::trie::PatternTrie;

/// First eight bytes of every index file.
pub const MAGIC: [u8; 8] = *b"SEQPATS1";
/// Format version written (and the only one read).
pub const VERSION: u32 = 1;
/// Endianness tag: reads back byte-swapped if the file is foreign-endian.
const ENDIAN_TAG: u32 = 0x1A2B_3C4D;
/// Fixed header size in bytes (sections start here).
const HEADER_LEN: u64 = 128;

/// The header's six counts; section offsets are derived from them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Header {
    num_nodes: u64,
    num_children: u64,
    num_patterns: u64,
    num_litemsets: u64,
    num_table_items: u64,
    total_customers: u64,
}

/// Absolute byte offsets of each section (and the expected file length).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Sections {
    child_offsets: u64,
    best_support: u64,
    terminal_support: u64,
    child_ids: u64,
    child_nodes: u64,
    rank_order: u64,
    table: u64,
    file_len: u64,
}

impl Header {
    /// Section offsets, or `None` when the counts overflow u64 byte
    /// arithmetic (only possible for a corrupt header).
    fn sections(&self) -> Option<Sections> {
        let child_offsets = HEADER_LEN;
        let best_support =
            child_offsets.checked_add(self.num_nodes.checked_add(1)?.checked_mul(4)?)?;
        let terminal_support = best_support.checked_add(self.num_nodes.checked_mul(8)?)?;
        let child_ids = terminal_support.checked_add(self.num_nodes.checked_mul(8)?)?;
        let child_nodes = child_ids.checked_add(self.num_children.checked_mul(4)?)?;
        let rank_order = child_nodes.checked_add(self.num_children.checked_mul(4)?)?;
        let table = rank_order.checked_add(self.num_children.checked_mul(4)?)?;
        let table_len = self
            .num_litemsets
            .checked_mul(8)?
            .checked_add(self.num_litemsets.checked_add(1)?.checked_mul(8)?)?
            .checked_add(self.num_table_items.checked_mul(4)?)?;
        let file_len = table.checked_add(table_len)?;
        Some(Sections {
            child_offsets,
            best_support,
            terminal_support,
            child_ids,
            child_nodes,
            rank_order,
            table,
            file_len,
        })
    }
}

fn corrupt(msg: impl Into<String>) -> IoError {
    IoError::Parse {
        line: 0,
        message: msg.into(),
    }
}

/// Narrows a validated `u64` count/offset to `usize`. Loading rejects
/// files whose length overflows `usize` before any value reaches here.
fn uz(v: u64) -> usize {
    debug_assert!(usize::try_from(v).is_ok(), "count {v} overflows usize");
    v as usize
}

impl PatternTrie {
    fn header(&self) -> Header {
        let num_table_items: u64 = self
            .table
            .iter()
            .map(|(_, set, _)| set.items().len() as u64)
            .sum();
        Header {
            num_nodes: self.best_support.len() as u64,
            num_children: self.child_ids.len() as u64,
            num_patterns: self.num_patterns,
            num_litemsets: self.table.len() as u64,
            num_table_items,
            total_customers: self.total_customers,
        }
    }

    /// Exact size in bytes of the serialized index.
    pub fn serialized_len(&self) -> u64 {
        // A built trie's counts are bounded by u32 node indices, far below
        // u64 byte-arithmetic overflow.
        self.header().sections().map_or(u64::MAX, |s| s.file_len)
    }

    /// Serializes the index into the canonical `SEQPATS1` byte image.
    pub fn to_bytes(&self) -> Result<Vec<u8>, IoError> {
        let header = self.header();
        let sections = header
            .sections()
            .ok_or_else(|| corrupt("index too large for the SEQPATS1 format"))?;
        let mut out = Vec::with_capacity(uz(sections.file_len));
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&ENDIAN_TAG.to_le_bytes());
        for count in [
            header.num_nodes,
            header.num_children,
            header.num_patterns,
            header.num_litemsets,
            header.num_table_items,
            header.total_customers,
        ] {
            out.extend_from_slice(&count.to_le_bytes());
        }
        for off in [
            sections.child_offsets,
            sections.best_support,
            sections.terminal_support,
            sections.child_ids,
            sections.child_nodes,
            sections.rank_order,
            sections.table,
            sections.file_len,
        ] {
            out.extend_from_slice(&off.to_le_bytes());
        }
        for &v in &self.child_offsets {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for &v in &self.best_support {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for &v in &self.terminal_support {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for &v in &self.child_ids {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for &v in &self.child_nodes {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for &v in &self.rank_order {
            out.extend_from_slice(&v.to_le_bytes());
        }
        // Litemset table: supports, item offsets, items (colstore shape).
        for (_, _, support) in self.table.iter() {
            out.extend_from_slice(&support.to_le_bytes());
        }
        let mut item_off = 0u64;
        out.extend_from_slice(&item_off.to_le_bytes());
        for (_, set, _) in self.table.iter() {
            item_off += set.items().len() as u64;
            out.extend_from_slice(&item_off.to_le_bytes());
        }
        for (_, set, _) in self.table.iter() {
            for &item in set.items() {
                out.extend_from_slice(&item.to_le_bytes());
            }
        }
        if out.len() as u64 != sections.file_len {
            return Err(corrupt(format!(
                "serializer produced {} bytes, expected {}",
                out.len(),
                sections.file_len
            )));
        }
        Ok(out)
    }

    /// Writes the index to `path` (atomically enough for a build artifact:
    /// full image in memory, single `write`).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), IoError> {
        let bytes = self.to_bytes()?;
        std::fs::write(path, bytes)?;
        Ok(())
    }

    /// Opens and fully validates a `SEQPATS1` file: magic / version /
    /// endianness, section geometry against the real file length, and
    /// every structural invariant the lookup path indexes by (CSR bounds,
    /// ascending child ids, preorder tree shape, rank permutations,
    /// subtree-max consistency, and the whole litemset table). Fails
    /// closed — a loaded index never panics at query time.
    pub fn load(path: impl AsRef<Path>) -> Result<PatternTrie, IoError> {
        let raw = File::open(path.as_ref())?;
        let actual_len = raw.metadata()?.len();
        let file = ReadAt::new(raw);

        if actual_len < HEADER_LEN {
            return Err(corrupt(format!(
                "file is {actual_len} bytes, shorter than the {HEADER_LEN}-byte header"
            )));
        }
        let mut head = [0u8; 128];
        file.read_exact_at(&mut head, 0)?;
        if head[0..8] != MAGIC {
            return Err(corrupt("bad magic: not a SEQPATS1 index"));
        }
        let head_u32 = |at: usize| -> u32 {
            let mut b = [0u8; 4];
            b.copy_from_slice(&head[at..at + 4]);
            u32::from_le_bytes(b)
        };
        let head_u64 = |at: usize| -> u64 {
            let mut b = [0u8; 8];
            b.copy_from_slice(&head[at..at + 8]);
            u64::from_le_bytes(b)
        };
        let version = head_u32(8);
        if version != VERSION {
            return Err(corrupt(format!(
                "unsupported SEQPATS1 version {version} (reader supports {VERSION})"
            )));
        }
        let endian = head_u32(12);
        if endian != ENDIAN_TAG {
            return Err(corrupt(if endian == ENDIAN_TAG.swap_bytes() {
                "endianness mismatch: file written with byte-swapped integers".to_string()
            } else {
                format!("bad endianness tag {endian:#010x}")
            }));
        }
        let header = Header {
            num_nodes: head_u64(16),
            num_children: head_u64(24),
            num_patterns: head_u64(32),
            num_litemsets: head_u64(40),
            num_table_items: head_u64(48),
            total_customers: head_u64(56),
        };
        let sections = header
            .sections()
            .ok_or_else(|| corrupt("header counts overflow the section layout"))?;
        let stored = Sections {
            child_offsets: head_u64(64),
            best_support: head_u64(72),
            terminal_support: head_u64(80),
            child_ids: head_u64(88),
            child_nodes: head_u64(96),
            rank_order: head_u64(104),
            table: head_u64(112),
            file_len: head_u64(120),
        };
        if stored != sections {
            return Err(corrupt(
                "stored section offsets disagree with the header counts",
            ));
        }
        if actual_len != sections.file_len {
            return Err(corrupt(format!(
                "file is {actual_len} bytes, header says {}",
                sections.file_len
            )));
        }
        if usize::try_from(actual_len).is_err() {
            return Err(corrupt("file too large for this platform's usize"));
        }
        if header.num_nodes == 0 {
            return Err(corrupt(
                "index has no nodes (even an empty trie has a root)",
            ));
        }
        if header.num_children != header.num_nodes - 1 {
            return Err(corrupt(format!(
                "{} children for {} nodes; a trie has exactly num_nodes - 1 edges",
                header.num_children, header.num_nodes
            )));
        }

        let read_u32s = |off: u64, count: u64| -> Result<Vec<u32>, IoError> {
            let mut buf = vec![0u8; uz(count) * 4];
            file.read_exact_at(&mut buf, off)?;
            Ok(u32s_from(&buf))
        };
        let read_u64s = |off: u64, count: u64| -> Result<Vec<u64>, IoError> {
            let mut buf = vec![0u8; uz(count) * 8];
            file.read_exact_at(&mut buf, off)?;
            Ok(u64s_from(&buf))
        };
        let child_offsets = read_u32s(sections.child_offsets, header.num_nodes + 1)?;
        let best_support = read_u64s(sections.best_support, header.num_nodes)?;
        let terminal_support = read_u64s(sections.terminal_support, header.num_nodes)?;
        let child_ids = read_u32s(sections.child_ids, header.num_children)?;
        let child_nodes = read_u32s(sections.child_nodes, header.num_children)?;
        let rank_order = read_u32s(sections.rank_order, header.num_children)?;
        let table = read_table(&file, &header, &sections)?;

        let trie = PatternTrie {
            child_offsets,
            best_support,
            terminal_support,
            child_ids,
            child_nodes,
            rank_order,
            table,
            total_customers: header.total_customers,
            num_patterns: header.num_patterns,
        };
        validate(&trie)?;
        Ok(trie)
    }
}

/// Reads and validates the litemset table section (colstore shape).
fn read_table(
    file: &ReadAt,
    header: &Header,
    sections: &Sections,
) -> Result<LitemsetTable, IoError> {
    let n = uz(header.num_litemsets);
    let mut supports_buf = vec![0u8; n * 8];
    file.read_exact_at(&mut supports_buf, sections.table)?;
    let supports = u64s_from(&supports_buf);
    let mut offs_buf = vec![0u8; (n + 1) * 8];
    file.read_exact_at(&mut offs_buf, sections.table + 8 * header.num_litemsets)?;
    let offs = u64s_from(&offs_buf);
    let mut items_buf = vec![0u8; uz(header.num_table_items) * 4];
    file.read_exact_at(
        &mut items_buf,
        sections.table + 8 * header.num_litemsets + 8 * (header.num_litemsets + 1),
    )?;
    let items = u32s_from(&items_buf);

    if offs.first() != Some(&0) || offs.last() != Some(&header.num_table_items) {
        return Err(corrupt("litemset item offsets do not span the item column"));
    }
    let mut large = Vec::with_capacity(n);
    for i in 0..n {
        let (start, end) = (offs[i], offs[i + 1]);
        if start > end || end > header.num_table_items {
            return Err(corrupt("litemset item offsets are not monotone"));
        }
        let set = &items[uz(start)..uz(end)];
        if set.is_empty() || set.windows(2).any(|w| w[0] >= w[1]) {
            return Err(corrupt("litemset items are not strictly ascending"));
        }
        large.push((Itemset::from_sorted(set.to_vec()), supports[i]));
    }
    Ok(LitemsetTable::new(large))
}

/// Re-establishes every invariant `build` guarantees, over untrusted
/// arrays. The lookup hot path indexes without bound checks in release
/// builds on the strength of this pass.
fn validate(trie: &PatternTrie) -> Result<(), IoError> {
    let nodes = trie.best_support.len();
    let children = trie.child_ids.len();
    let offs = &trie.child_offsets;
    if offs.first() != Some(&0) || offs.last().copied().map(|v| v as usize) != Some(children) {
        return Err(corrupt("child offsets do not span the child arrays"));
    }
    let mut reached = vec![false; nodes];
    let mut scratch: Vec<u32> = Vec::new();
    for n in 0..nodes {
        let (lo, hi) = (offs[n] as usize, offs[n + 1] as usize);
        if lo > hi || hi > children {
            return Err(corrupt("child offsets are not monotone"));
        }
        let mut expected_best = trie.terminal_support[n];
        for slot in lo..hi {
            let child = trie.child_nodes[slot] as usize;
            if child <= n || child >= nodes {
                return Err(corrupt(
                    "child node index breaks the preorder invariant (child > parent)",
                ));
            }
            if reached[child] {
                return Err(corrupt("node has two parents; not a trie"));
            }
            reached[child] = true;
            if slot > lo && trie.child_ids[slot - 1] >= trie.child_ids[slot] {
                return Err(corrupt(
                    "child ids are not strictly ascending within a node",
                ));
            }
            if (trie.child_ids[slot] as usize) >= trie.table.len() {
                return Err(corrupt("child id outside the litemset table"));
            }
            expected_best = expected_best.max(trie.best_support[child]);
        }
        if trie.best_support[n] != expected_best {
            return Err(corrupt(
                "best_support is not the subtree maximum the ranking relies on",
            ));
        }
        // rank_order[lo..hi] must be a permutation of lo..hi sorted by
        // (child best support desc, id asc).
        scratch.clear();
        scratch.extend_from_slice(&trie.rank_order[lo..hi]);
        scratch.sort_unstable();
        if !scratch.iter().zip(lo..hi).all(|(&s, i)| s as usize == i) {
            return Err(corrupt(
                "rank_order is not a permutation of the node's slots",
            ));
        }
        let rank_key = |slot: u32| -> (std::cmp::Reverse<u64>, u32) {
            let s = slot as usize;
            (
                std::cmp::Reverse(trie.best_support[trie.child_nodes[s] as usize]),
                trie.child_ids[s],
            )
        };
        for pair in trie.rank_order[lo..hi].windows(2) {
            if rank_key(pair[0]) >= rank_key(pair[1]) {
                return Err(corrupt(
                    "rank_order is not sorted by (best support desc, id asc)",
                ));
            }
        }
    }
    if trie.terminal_support.first() != Some(&0) && nodes > 0 {
        return Err(corrupt("root carries a terminal support (empty pattern)"));
    }
    let terminals = trie.terminal_support.iter().filter(|&&s| s > 0).count() as u64;
    if trie.num_patterns != terminals {
        return Err(corrupt(format!(
            "header says {} patterns, trie stores {terminals}",
            trie.num_patterns
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqpat_core::LargeIdSequence;
    use std::path::PathBuf;

    fn sample_trie() -> PatternTrie {
        let table = LitemsetTable::new(vec![
            (Itemset::new(vec![30]), 4),
            (Itemset::new(vec![40, 70]), 2),
            (Itemset::new(vec![90]), 3),
        ]);
        let patterns = vec![
            LargeIdSequence {
                ids: vec![0, 1],
                support: 2,
            },
            LargeIdSequence {
                ids: vec![0, 2],
                support: 3,
            },
            LargeIdSequence {
                ids: vec![2],
                support: 3,
            },
        ];
        PatternTrie::build(&patterns, table, 5).unwrap()
    }

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("seqpat-serve-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let trie = sample_trie();
        let path = tmp_path("roundtrip.seqpats");
        trie.save(&path).unwrap();
        let written = std::fs::read(&path).unwrap();
        assert_eq!(written, trie.to_bytes().unwrap());
        assert_eq!(written.len() as u64, trie.serialized_len());
        let loaded = PatternTrie::load(&path).unwrap();
        assert_eq!(loaded.to_bytes().unwrap(), written);
        assert_eq!(loaded.num_patterns(), trie.num_patterns());
        assert_eq!(loaded.total_customers(), trie.total_customers());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn built_tries_pass_the_loader_validation() {
        validate(&sample_trie()).unwrap();
    }

    #[test]
    fn load_rejects_bad_magic_version_endianness_and_truncation() {
        let trie = sample_trie();
        let path = tmp_path("reject.seqpats");
        trie.save(&path).unwrap();
        let good = std::fs::read(&path).unwrap();

        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(PatternTrie::load(&path).is_err());

        let mut bad = good.clone();
        bad[8] = 99; // version
        std::fs::write(&path, &bad).unwrap();
        assert!(PatternTrie::load(&path).is_err());

        let mut bad = good.clone();
        bad[12..16].reverse(); // endianness tag
        std::fs::write(&path, &bad).unwrap();
        let err = PatternTrie::load(&path).unwrap_err();
        assert!(err.to_string().contains("endianness"));

        std::fs::write(&path, &good[..good.len() - 3]).unwrap();
        assert!(PatternTrie::load(&path).is_err());

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_structural_corruption() {
        let trie = sample_trie();
        let path = tmp_path("structure.seqpats");
        let good = trie.to_bytes().unwrap();

        // Corrupt one rank_order entry: swap the two rank slots of the
        // node for prefix [0] (ranked (90) before (40 70)).
        let zero_node = trie.lookup(&[0]).unwrap() as usize;
        let lo = trie.child_offsets[zero_node] as usize;
        let rank_off = 128
            + 4 * (trie.child_offsets.len())
            + 16 * trie.best_support.len()
            + 8 * trie.child_ids.len();
        let a = rank_off + 4 * lo;
        let mut bad = good.clone();
        bad.swap(a, a + 4); // byte-level swap breaks the permutation order
        std::fs::write(&path, &bad).unwrap();
        assert!(PatternTrie::load(&path).is_err());

        // Corrupt best_support[0] (the global subtree max).
        let best_off = 128 + 4 * trie.child_offsets.len();
        let mut bad = good.clone();
        bad[best_off] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(PatternTrie::load(&path).is_err());

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_trie_roundtrips() {
        let trie = PatternTrie::build(&[], LitemsetTable::default(), 0).unwrap();
        let path = tmp_path("empty.seqpats");
        trie.save(&path).unwrap();
        let loaded = PatternTrie::load(&path).unwrap();
        assert_eq!(loaded.num_nodes(), 1);
        assert_eq!(loaded.num_patterns(), 0);
        assert!(loaded.predict(&[], 4).is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
