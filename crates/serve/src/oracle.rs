//! Naive reference answerer, and pattern extraction from a built trie.
//!
//! [`oracle_predict`] answers a prefix query by linearly scanning the
//! pattern list — the obviously-correct O(patterns × prefix) formulation
//! of what the trie computes in O(prefix + k). Property tests and the CI
//! smoke hold [`PatternTrie::predict_into`] to exact agreement with it,
//! including tie-breaks: both rank by (support descending, id ascending).

use std::collections::BTreeMap;

use seqpat_core::{LargeIdSequence, LitemsetId};

use crate::lookup::Prediction;
use crate::trie::PatternTrie;

/// Top-k next litemsets after `prefix`, computed by scanning `patterns`.
/// A pattern votes for its element right after the prefix with its own
/// support; per candidate id the maximum support wins — exactly the
/// trie's per-child subtree best.
pub fn oracle_predict(
    patterns: &[LargeIdSequence],
    prefix: &[LitemsetId],
    k: usize,
) -> Vec<Prediction> {
    let mut best: BTreeMap<LitemsetId, u64> = BTreeMap::new();
    for p in patterns {
        if p.ids.len() > prefix.len() && p.ids.starts_with(prefix) {
            let id = p.ids[prefix.len()];
            let entry = best.entry(id).or_insert(0);
            *entry = (*entry).max(p.support);
        }
    }
    let mut out: Vec<Prediction> = best
        .into_iter()
        .map(|(id, support)| Prediction { id, support })
        .collect();
    out.sort_by(|a, b| b.support.cmp(&a.support).then(a.id.cmp(&b.id)));
    out.truncate(k);
    out
}

impl PatternTrie {
    /// Recovers the stored pattern set, in lexicographic id order. The
    /// inverse of [`PatternTrie::build`] up to duplicate collapsing; the
    /// CLI's `--oracle` mode answers queries from this list.
    pub fn patterns(&self) -> Vec<LargeIdSequence> {
        let mut out = Vec::new();
        let mut path = Vec::new();
        self.collect_patterns(0, &mut path, &mut out);
        out
    }

    fn collect_patterns(
        &self,
        node: u32,
        path: &mut Vec<LitemsetId>,
        out: &mut Vec<LargeIdSequence>,
    ) {
        let n = node as usize;
        let terminal = self.terminal_support[n];
        if terminal > 0 {
            out.push(LargeIdSequence {
                ids: path.clone(),
                support: terminal,
            });
        }
        let (lo, hi) = (
            self.child_offsets[n] as usize,
            self.child_offsets[n + 1] as usize,
        );
        for slot in lo..hi {
            path.push(self.child_ids[slot]);
            self.collect_patterns(self.child_nodes[slot], path, out);
            path.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqpat_core::{Itemset, LitemsetTable};

    fn seqs(raw: &[(&[u32], u64)]) -> Vec<LargeIdSequence> {
        raw.iter()
            .map(|&(ids, support)| LargeIdSequence {
                ids: ids.to_vec(),
                support,
            })
            .collect()
    }

    fn table(n: u32) -> LitemsetTable {
        LitemsetTable::new((0..n).map(|i| (Itemset::new(vec![i + 1]), 5)).collect())
    }

    #[test]
    fn oracle_takes_max_support_per_candidate() {
        let patterns = seqs(&[(&[0, 1], 3), (&[0, 1, 2], 6), (&[0, 2], 2)]);
        let got = oracle_predict(&patterns, &[0], 10);
        assert_eq!(
            got,
            vec![
                Prediction { id: 1, support: 6 },
                Prediction { id: 2, support: 2 },
            ]
        );
    }

    #[test]
    fn trie_agrees_with_oracle_on_a_worked_example() {
        let patterns = seqs(&[
            (&[0, 1], 3),
            (&[0, 1, 2], 6),
            (&[0, 2], 2),
            (&[1], 9),
            (&[2, 0], 4),
        ]);
        let trie = PatternTrie::build(&patterns, table(3), 20).unwrap();
        for prefix in [
            &[][..],
            &[0][..],
            &[0, 1][..],
            &[1][..],
            &[2][..],
            &[2, 1][..],
        ] {
            for k in [0usize, 1, 2, 8] {
                assert_eq!(
                    trie.predict(prefix, k),
                    oracle_predict(&patterns, prefix, k),
                    "prefix {prefix:?} k {k}"
                );
            }
        }
    }

    #[test]
    fn patterns_roundtrip_through_the_trie() {
        let mut patterns = seqs(&[(&[0, 1], 3), (&[0, 2], 2), (&[1], 9), (&[2, 0, 1], 4)]);
        let trie = PatternTrie::build(&patterns, table(3), 20).unwrap();
        let mut got = trie.patterns();
        let key = |p: &LargeIdSequence| p.ids.clone();
        patterns.sort_by_key(key);
        got.sort_by_key(key);
        assert_eq!(got, patterns);
    }
}
