//! Tricky-parse fixtures: trait impls, macro bodies, closures, raw strings
//! that look like code, and nested generics. Everything here lints clean.

pub trait Visit {
    fn visit(&self) -> usize;
}

pub struct Walker {
    pub depth: usize,
}

impl Visit for Walker {
    fn visit(&self) -> usize {
        self.depth
    }
}

macro_rules! make_getter {
    ($name:ident, $field:ident) => {
        pub fn $name(w: &Walker) -> usize {
            w.$field
        }
    };
}

make_getter!(walker_depth, depth);

/// Raw strings containing `match`/`unwrap` text must not be parsed as code.
pub fn raw_strings() -> (&'static str, &'static str) {
    (
        r#"match CountingStrategy::Direct { _ => "not code" }"#,
        r"fn fake() { let v: Vec<u32> = broken.unwrap(); }",
    )
}

/// Nested generics close with `>>`; the closure body is not a hot loop
/// because this file is not a kernel basename.
pub fn nested_generics(rows: Vec<Vec<u32>>) -> usize {
    let mapper = |row: &Vec<u32>| row.len();
    rows.iter().map(mapper).sum()
}
