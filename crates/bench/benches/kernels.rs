//! Criterion micro-benchmarks for the hot kernels: containment tests,
//! candidate generation, the two hash trees, and the bitmap strategy's
//! S-step / AND-extension word kernels.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use seqpat_core::bitmap::{smear_and_words, sstep, support_hits_words};
use seqpat_core::contain::{customer_contains, id_subsequence, sequence_contains};
use seqpat_core::hash_tree::{SequenceHashTree, VisitSet};
use seqpat_core::types::transformed::{LitemsetTable, TransformedCustomer, TransformedDatabase};
use seqpat_core::vertical::VerticalState;
use seqpat_core::{BitmapState, CandidateArena, Itemset, VerticalParams};

fn pseudo_random(seed: u32) -> impl FnMut(u32) -> u32 {
    let mut x = seed | 1;
    move |m: u32| {
        x = x.wrapping_mul(48271) % 0x7fffffff;
        x % m
    }
}

fn bench_sequence_contains(c: &mut Criterion) {
    let mut rnd = pseudo_random(11);
    let hay: Vec<Itemset> = (0..50)
        .map(|_| Itemset::new((0..3).map(|_| rnd(100)).collect()))
        .collect();
    let needle: Vec<Itemset> = (0..5).map(|_| Itemset::new(vec![rnd(100)])).collect();
    c.bench_function("sequence_contains/50x5", |b| {
        b.iter(|| sequence_contains(black_box(&hay), black_box(&needle)))
    });
}

fn bench_id_subsequence(c: &mut Criterion) {
    let mut rnd = pseudo_random(13);
    let hay: Vec<u32> = (0..200).map(|_| rnd(50)).collect();
    let needle: Vec<u32> = (0..8).map(|_| rnd(50)).collect();
    c.bench_function("id_subsequence/200x8", |b| {
        b.iter(|| id_subsequence(black_box(&hay), black_box(&needle)))
    });
}

fn make_customer(n_trans: usize, ids_per_trans: usize, universe: u32) -> TransformedCustomer {
    let mut rnd = pseudo_random(17);
    TransformedCustomer {
        customer_id: 0,
        elements: (0..n_trans)
            .map(|_| {
                let mut e: Vec<u32> = (0..ids_per_trans).map(|_| rnd(universe)).collect();
                e.sort_unstable();
                e.dedup();
                e
            })
            .collect(),
    }
}

fn bench_customer_contains(c: &mut Criterion) {
    let customer = make_customer(20, 5, 64);
    let mut rnd = pseudo_random(19);
    let candidates: Vec<Vec<u32>> = (0..64).map(|_| (0..3).map(|_| rnd(64)).collect()).collect();
    c.bench_function("customer_contains/20x5/64cands", |b| {
        b.iter(|| {
            let mut hits = 0;
            for cand in &candidates {
                if customer_contains(black_box(&customer), black_box(cand)) {
                    hits += 1;
                }
            }
            hits
        })
    });
}

fn bench_sequence_hash_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequence_hash_tree");
    for n_candidates in [256usize, 2048] {
        let mut rnd = pseudo_random(23);
        let mut candidates: Vec<Vec<u32>> = (0..n_candidates)
            .map(|_| (0..3).map(|_| rnd(128)).collect())
            .collect();
        candidates.sort();
        candidates.dedup();
        let candidates = CandidateArena::from_rows(3, candidates.iter().map(|c| c.as_slice()));
        let customer = make_customer(15, 4, 128);
        group.bench_with_input(
            BenchmarkId::new("build", n_candidates),
            &candidates,
            |b, cands| b.iter(|| SequenceHashTree::build(black_box(cands), 16, 32)),
        );
        let tree = SequenceHashTree::build(&candidates, 16, 32);
        group.bench_with_input(
            BenchmarkId::new("probe", n_candidates),
            &candidates,
            |b, cands| {
                let mut seen = VisitSet::new(cands.num_candidates());
                b.iter(|| {
                    let mut verify = 0u64;
                    let mut probes = 0u64;
                    let mut hits = 0u32;
                    tree.for_each_contained(
                        black_box(&customer),
                        cands,
                        &mut seen,
                        &mut verify,
                        &mut probes,
                        &mut |_| hits += 1,
                    );
                    (verify, probes, hits)
                })
            },
        );
    }
    group.finish();
}

fn bench_candidate_generation(c: &mut Criterion) {
    // L2 over a 40-litemset alphabet → a realistic join input.
    let mut rnd = pseudo_random(29);
    let mut l2: Vec<Vec<u32>> = (0..400).map(|_| vec![rnd(40), rnd(40)]).collect();
    l2.sort();
    l2.dedup();
    let l2 = CandidateArena::from_rows(2, l2.iter().map(|c| c.as_slice()));
    c.bench_function("apriori_generate_sequences/L2~400", |b| {
        b.iter(|| seqpat_core::algorithms::candidate::generate(black_box(&l2)))
    });

    let mut l3: Vec<Vec<u32>> = (0..300).map(|_| vec![rnd(20), rnd(20), rnd(20)]).collect();
    l3.sort();
    l3.dedup();
    let l3 = CandidateArena::from_rows(3, l3.iter().map(|c| c.as_slice()));
    c.bench_function("apriori_generate_sequences/L3~300", |b| {
        b.iter(|| seqpat_core::algorithms::candidate::generate(black_box(&l3)))
    });
}

fn bench_itemset_hash_tree(c: &mut Criterion) {
    let mut rnd = pseudo_random(31);
    let mut candidates: Vec<Vec<u32>> = (0..1000)
        .map(|_| {
            let a = rnd(200);
            let b = a + 1 + rnd(50);
            vec![a, b]
        })
        .collect();
    candidates.sort();
    candidates.dedup();
    let tree = seqpat_itemset::HashTree::build(&candidates, 16, 32);
    let transaction: Vec<u32> = {
        let mut t: Vec<u32> = (0..12).map(|_| rnd(250)).collect();
        t.sort_unstable();
        t.dedup();
        t
    };
    c.bench_function("itemset_hash_tree/probe_1000", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            tree.for_each_contained(black_box(&transaction), &candidates, &mut |_| hits += 1);
            hits
        })
    });
}

fn bench_sstep(c: &mut Criterion) {
    // Pure smear kernel over a word array: the inner loop of every bitmap
    // counting pass. Words carry 0–2 set bits, like real sparse frontiers.
    let mut rnd = pseudo_random(37);
    let words: Vec<u64> = (0..4096)
        .map(|_| (1u64 << rnd(64)) | (1u64 << rnd(64)))
        .collect();
    c.bench_function("bitmap_sstep/4096words", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &w in black_box(&words).iter() {
                acc ^= sstep(w);
            }
            acc
        })
    });
}

fn bench_sstep_and_extension(c: &mut Criterion) {
    // One S-step + AND extension over two-word customer spans, including
    // the cross-word carry and the non-zero support test — the fused form
    // the counting kernel runs per candidate per customer.
    let mut rnd = pseudo_random(41);
    let frontier: Vec<u64> = (0..2048).map(|_| 1u64 << rnd(64)).collect();
    let bits: Vec<u64> = (0..2048)
        .map(|_| (1u64 << rnd(64)) | (1u64 << rnd(64)) | (1u64 << rnd(64)))
        .collect();
    c.bench_function("bitmap_sstep_and/1024spans_x2words", |b| {
        b.iter(|| {
            let mut supported = 0u32;
            let spans = black_box(&frontier)
                .chunks_exact(2)
                .zip(black_box(&bits).chunks_exact(2));
            for (f, m) in spans {
                let w0 = sstep(f[0]) & m[0];
                let smeared = if f[0] != 0 { u64::MAX } else { sstep(f[1]) };
                let w1 = smeared & m[1];
                if w0 | w1 != 0 {
                    supported += 1;
                }
            }
            supported
        })
    });
}

fn bench_bitmap_lanes(c: &mut Criterion) {
    // The unrolled lane kernels in isolation (one word = one customer
    // span): the per-variant counterpart of the scalar bitmap_sstep cell.
    let mut rnd = pseudo_random(61);
    let base: Vec<u64> = (0..4096).map(|_| 1u64 << rnd(64)).collect();
    let bits: Vec<u64> = (0..4096)
        .map(|_| (1u64 << rnd(64)) | (1u64 << rnd(64)) | (1u64 << rnd(64)))
        .collect();
    let mut frontier = base.clone();
    c.bench_function("bitmap_lanes/smear_and/4096words", |b| {
        b.iter(|| {
            frontier.copy_from_slice(black_box(&base));
            smear_and_words(&mut frontier, black_box(&bits));
        })
    });
    c.bench_function("bitmap_lanes/support_hits/4096words", |b| {
        b.iter(|| support_hits_words(black_box(&base), black_box(&bits)))
    });
}

/// Synthetic transformed database shared by the vertical-join benches:
/// `customers` customers × `len` single-id transactions over `universe`
/// ids. When `hot_every > 0`, one designated hot id additionally occurs in
/// every `hot_every`-th transaction, skewing its occurrence list — the
/// regime the galloping join path is built for.
fn vertical_tdb(
    customers: usize,
    len: usize,
    universe: u32,
    hot_every: usize,
) -> TransformedDatabase {
    let mut rnd = pseudo_random(47);
    let table = LitemsetTable::new(
        (0..universe)
            .map(|i| (Itemset::new(vec![i + 1]), 1))
            .collect(),
    );
    let customers: Vec<TransformedCustomer> = (0..customers)
        .map(|i| TransformedCustomer {
            customer_id: i as u64 + 1,
            elements: (0..len)
                .map(|t| {
                    let mut e = vec![rnd(universe)];
                    if hot_every > 0 && t % hot_every == 0 && e[0] != 0 {
                        e.push(0);
                        e.sort_unstable();
                    }
                    e
                })
                .collect(),
        })
        .collect();
    TransformedDatabase {
        total_customers: customers.len(),
        customers,
        table,
    }
}

fn bench_vertical_count(c: &mut Criterion) {
    // End-to-end vertical support counting over occurrence-list joins:
    // 512 customers of 40 transactions, 3-sequence candidates over a
    // 48-id alphabet — the merge-join inner loop dominates.
    let universe = 48u32;
    let tdb = vertical_tdb(512, 40, universe, 0);
    let mut rnd = pseudo_random(53);
    let mut candidates: Vec<Vec<u32>> = (0..256)
        .map(|_| (0..3).map(|_| rnd(universe)).collect())
        .collect();
    candidates.sort();
    candidates.dedup();
    let candidates = CandidateArena::from_rows(3, candidates.iter().map(|c| c.as_slice()));
    let mut state = VerticalState::build(&tdb, VerticalParams::default());
    c.bench_function("vertical_count/512x40/~250cands", |b| {
        b.iter(|| state.count(black_box(&candidates), 1))
    });

    // Skewed cell: id 0 occurs in every second transaction of every
    // customer, so its occurrence list dwarfs every prefix list — the
    // galloping-join regime.
    let tdb = vertical_tdb(512, 40, universe, 2);
    let mut rnd = pseudo_random(59);
    let mut skewed: Vec<Vec<u32>> = (0..128)
        .map(|_| vec![1 + rnd(universe - 1), 1 + rnd(universe - 1), 0])
        .collect();
    skewed.sort();
    skewed.dedup();
    let skewed = CandidateArena::from_rows(3, skewed.iter().map(|c| c.as_slice()));
    let mut state = VerticalState::build(&tdb, VerticalParams::default());
    c.bench_function("vertical_count/512x40/skewed_hot_id", |b| {
        b.iter(|| state.count(black_box(&skewed), 1))
    });
}

fn bench_bitmap_count(c: &mut Criterion) {
    // End-to-end bitmap support counting: 256 customers of 96 transactions
    // (two-word spans) against 3-sequence candidates over a 32-id alphabet.
    let universe = 32u32;
    let mut rnd = pseudo_random(43);
    let customers: Vec<TransformedCustomer> = (0..256)
        .map(|i| TransformedCustomer {
            customer_id: i as u64 + 1,
            elements: (0..96).map(|_| vec![rnd(universe)]).collect(),
        })
        .collect();
    let table = LitemsetTable::new(
        (0..universe)
            .map(|i| (Itemset::new(vec![i + 1]), 1))
            .collect(),
    );
    let tdb = TransformedDatabase {
        total_customers: customers.len(),
        customers,
        table,
    };
    let mut candidates: Vec<Vec<u32>> = (0..256)
        .map(|_| (0..3).map(|_| rnd(universe)).collect())
        .collect();
    candidates.sort();
    candidates.dedup();
    let candidates = CandidateArena::from_rows(3, candidates.iter().map(|c| c.as_slice()));
    let mut state = BitmapState::build(&tdb);
    c.bench_function("bitmap_count/256x96/~250cands", |b| {
        b.iter(|| state.count(black_box(&candidates), 1))
    });
}

criterion_group!(
    kernels,
    bench_sequence_contains,
    bench_id_subsequence,
    bench_customer_contains,
    bench_sequence_hash_tree,
    bench_candidate_generation,
    bench_itemset_hash_tree,
    bench_sstep,
    bench_sstep_and_extension,
    bench_bitmap_lanes,
    bench_vertical_count,
    bench_bitmap_count
);
criterion_main!(kernels);
