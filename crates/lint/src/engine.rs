//! Workspace walk, suppression handling, and report assembly.
//!
//! Suppression grammar (inside any comment):
//!
//! ```text
//! // seqpat-lint: allow(no-panic-in-kernels, deterministic-iteration) why this site is fine
//! ```
//!
//! The justification after `)` is mandatory. A suppression covers its own
//! line; when the comment is the first thing on its line it covers the next
//! line instead (the usual "comment above the offending line" style covers
//! both). Malformed, unknown-rule, or unjustified suppressions are reported
//! under the meta rule `suppression` and are not themselves suppressible.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Token, TokenKind};
use crate::rules::{self, Violation};

/// Result of linting the workspace.
#[derive(Debug)]
pub struct Report {
    /// Unsuppressed violations (including `suppression` meta findings),
    /// sorted by path, line, rule.
    pub violations: Vec<Violation>,
    /// Count of findings silenced by valid suppression comments.
    pub suppressed: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// One parsed allow-comment.
struct Suppression {
    /// Line the comment starts on.
    line: u32,
    /// Whether the comment is the first token on its line (then it covers
    /// the following line too).
    covers_next: bool,
    rules: Vec<String>,
}

/// Lints every `.rs` file under `root` and cross-checks stats coverage.
pub fn run(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();

    let mut all: Vec<Violation> = Vec::new();
    let mut suppressions: BTreeMap<String, Vec<Suppression>> = BTreeMap::new();
    let mut files_scanned = 0usize;

    for file in &files {
        let Ok(src) = fs::read_to_string(file) else {
            // Non-UTF-8 or unreadable; nothing for a Rust linter to do.
            continue;
        };
        files_scanned += 1;
        let rel = rel_path(root, file);
        let (sups, mut meta) = parse_suppressions(&rel, &src);
        suppressions.insert(rel.clone(), sups);
        all.append(&mut meta);
        all.append(&mut rules::analyze_file(&rel, &src));
    }

    // Rule 5 is cross-file: core's stats.rs fields vs the CLI printer.
    let stats_rel = "crates/core/src/stats.rs";
    let cli_rel = "crates/cli/src/main.rs";
    if let (Ok(stats_src), Ok(cli_src)) = (
        fs::read_to_string(root.join(stats_rel)),
        fs::read_to_string(root.join(cli_rel)),
    ) {
        all.append(&mut rules::stats_coverage(stats_rel, &stats_src, &cli_src));
    }

    let mut kept = Vec::new();
    let mut suppressed = 0usize;
    for v in all {
        let covered = suppressions
            .get(&v.path)
            .is_some_and(|sups| is_suppressed(&v, sups));
        if covered {
            suppressed += 1;
        } else {
            kept.push(v);
        }
    }
    kept.sort();
    kept.dedup();
    Ok(Report {
        violations: kept,
        suppressed,
        files_scanned,
    })
}

/// Whether a valid suppression in `sups` covers `v`. Meta `suppression`
/// findings are never suppressible.
fn is_suppressed(v: &Violation, sups: &[Suppression]) -> bool {
    v.rule != rules::SUPPRESSION
        && sups.iter().any(|s| {
            let covers = if s.covers_next {
                v.line == s.line || v.line == s.line + 1
            } else {
                v.line == s.line
            };
            covers && s.rules.iter().any(|r| r == v.rule)
        })
}

/// Lints one in-memory file: rule analysis plus suppression handling, the
/// same per-file pipeline [`run`] applies across the workspace (minus the
/// cross-file stats-coverage rule). Returns the kept violations and the
/// count of findings silenced by valid suppressions.
pub fn lint_source(rel: &str, src: &str) -> (Vec<Violation>, usize) {
    let (sups, meta) = parse_suppressions(rel, src);
    let mut all = meta;
    all.append(&mut rules::analyze_file(rel, src));
    let mut kept = Vec::new();
    let mut suppressed = 0usize;
    for v in all {
        if is_suppressed(&v, &sups) {
            suppressed += 1;
        } else {
            kept.push(v);
        }
    }
    kept.sort();
    kept.dedup();
    (kept, suppressed)
}

/// Workspace-relative path with `/` separators.
fn rel_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Extracts suppression comments from `src`, returning them plus meta
/// violations for malformed/unknown/unjustified ones.
fn parse_suppressions(rel: &str, src: &str) -> (Vec<Suppression>, Vec<Violation>) {
    let tokens = lex(src);
    let mut sups = Vec::new();
    let mut meta = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if !matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let text = tok.text(src);
        let Some(at) = text.find("seqpat-lint:") else {
            continue;
        };
        let rest = text[at + "seqpat-lint:".len()..].trim_start();
        let mut bad = |msg: String| {
            meta.push(Violation {
                path: rel.to_string(),
                line: tok.line,
                rule: rules::SUPPRESSION,
                message: msg,
            });
        };
        let Some(args) = rest.strip_prefix("allow") else {
            bad("malformed seqpat-lint comment: expected `allow(<rule>)`".to_string());
            continue;
        };
        let args = args.trim_start();
        let Some(args) = args.strip_prefix('(') else {
            bad("malformed seqpat-lint comment: expected `(` after `allow`".to_string());
            continue;
        };
        let Some(close) = args.find(')') else {
            bad("malformed seqpat-lint comment: unclosed `allow(`".to_string());
            continue;
        };
        let (rule_list, after) = args.split_at(close);
        let mut rule_names = Vec::new();
        for raw in rule_list.split(',') {
            let name = raw.trim();
            if name.is_empty() {
                continue;
            }
            if rules::is_known_rule(name) {
                rule_names.push(name.to_string());
            } else {
                bad(format!(
                    "suppression names unknown rule `{name}` (see --list-rules)"
                ));
            }
        }
        let justification = after[1..]
            .trim_start_matches(|c: char| {
                c.is_whitespace() || matches!(c, '—' | '–' | '-' | ':' | '.')
            })
            .trim_end_matches("*/")
            .trim();
        if justification.is_empty() {
            bad(
                "suppression lacks a justification: write why the site is sound after \
                 the closing `)`"
                    .to_string(),
            );
            continue;
        }
        if rule_names.is_empty() {
            continue;
        }
        sups.push(Suppression {
            line: tok.line,
            covers_next: comment_starts_line(&tokens, i, src),
            rules: rule_names,
        });
    }
    (sups, meta)
}

/// True if no code token precedes comment `i` on its line.
fn comment_starts_line(tokens: &[Token], i: usize, _src: &str) -> bool {
    let line = tokens[i].line;
    tokens[..i]
        .iter()
        .rev()
        .take_while(|t| t.line == line)
        .all(|t| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
}

/// Renders the report as stable, dependency-free JSON.
pub fn to_json(report: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    s.push_str(&format!("  \"suppressed\": {},\n", report.suppressed));
    s.push_str(&format!(
        "  \"violation_count\": {},\n",
        report.violations.len()
    ));
    s.push_str("  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {");
        s.push_str(&format!("\"rule\": \"{}\", ", json_escape(v.rule)));
        s.push_str(&format!("\"path\": \"{}\", ", json_escape(&v.path)));
        s.push_str(&format!("\"line\": {}, ", v.line));
        s.push_str(&format!("\"message\": \"{}\"", json_escape(&v.message)));
        s.push('}');
    }
    if !report.violations.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
