//! Customer-sequence assembly (paper §5.1, last stage).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::corpus::Corpus;
use crate::distributions::poisson_at_least_one;
use crate::params::GenParams;
use seqpat_core::{CustomerSequence, Database, Item};

/// Generates a customer-sequence database. Fully deterministic per
/// `(params, seed)` pair.
///
/// # Panics
/// Panics when `params` fail [`GenParams::validate`].
pub fn generate(params: &GenParams, seed: u64) -> Database {
    params
        .validate()
        .unwrap_or_else(|e| panic!("invalid generator parameters: {e}"));
    let mut rng = StdRng::seed_from_u64(seed);
    let corpus = Corpus::build(params, &mut rng);
    generate_with_corpus(params, &corpus, &mut rng)
}

/// Like [`generate`] but reuses a pre-built corpus — the scale-up
/// experiments grow `|D|` with the *same* underlying pattern tables, as the
/// paper does.
pub fn generate_with_corpus(params: &GenParams, corpus: &Corpus, rng: &mut StdRng) -> Database {
    let mut rows: Vec<(u64, i64, Vec<Item>)> = Vec::new();
    for customer_id in 0..params.num_customers as u64 {
        generate_customer_rows(params, corpus, rng, customer_id, &mut rows);
    }
    Database::from_rows(rows)
}

/// Streaming generation: yields customer sequences one at a time without
/// materializing the database. The stream consumes the RNG in exactly the
/// same order as [`generate`], so `Database::new(stream(params, seed).collect())`
/// equals `generate(params, seed)` — out-of-core runs can regenerate the
/// identical database pass by pass from `(params, seed)` alone.
///
/// # Panics
/// Panics when `params` fail [`GenParams::validate`].
pub fn stream(params: &GenParams, seed: u64) -> CustomerStream {
    params
        .validate()
        .unwrap_or_else(|e| panic!("invalid generator parameters: {e}"));
    let mut rng = StdRng::seed_from_u64(seed);
    let corpus = Corpus::build(params, &mut rng);
    CustomerStream {
        params: params.clone(),
        corpus,
        rng,
        next_id: 0,
    }
}

/// Iterator over generated [`CustomerSequence`]s, in customer-id order.
/// Created by [`stream`]; owns its corpus and RNG, so it can be recreated
/// from the same `(params, seed)` for each mining pass.
#[derive(Debug, Clone)]
pub struct CustomerStream {
    params: GenParams,
    corpus: Corpus,
    rng: StdRng,
    next_id: u64,
}

impl Iterator for CustomerStream {
    type Item = CustomerSequence;

    fn next(&mut self) -> Option<CustomerSequence> {
        if self.next_id >= self.params.num_customers as u64 {
            return None;
        }
        let mut rows: Vec<(u64, i64, Vec<Item>)> = Vec::new();
        generate_customer_rows(
            &self.params,
            &self.corpus,
            &mut self.rng,
            self.next_id,
            &mut rows,
        );
        self.next_id += 1;
        // Route the rows through the ordinary sort phase so a streamed
        // customer is structurally identical to its batch-generated twin.
        let db = Database::from_rows(rows);
        debug_assert_eq!(db.num_customers(), 1);
        db.customers().first().cloned()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.params.num_customers as u64).saturating_sub(self.next_id) as usize;
        (left, Some(left))
    }
}

/// One customer's transaction rows, appended to `rows`. The single place
/// RNG draws happen per customer — both the batch and the streaming paths
/// go through here, which is what keeps them bit-identical.
fn generate_customer_rows(
    params: &GenParams,
    corpus: &Corpus,
    rng: &mut StdRng,
    customer_id: u64,
    rows: &mut Vec<(u64, i64, Vec<Item>)>,
) {
    let n_transactions = poisson_at_least_one(rng, params.avg_transactions_per_customer) as usize;
    let mut transactions: Vec<Vec<Item>> = vec![Vec::new(); n_transactions];
    let target_sizes: Vec<usize> = (0..n_transactions)
        .map(|_| poisson_at_least_one(rng, params.avg_items_per_transaction) as usize)
        .collect();

    // Lay potentially large sequences into the transactions: each drawn
    // sequence is placed at a random starting transaction, one element
    // per consecutive transaction (a dropped element leaves a gap, so
    // the surviving elements still occur in order, with gaps — exactly
    // what subsequence containment allows). Transactions hold the union
    // of the elements every overlapping sequence contributes, and
    // drawing continues until the customer's total item budget
    // (Σ target sizes) is covered — with |T| = 2.5 and |I| = 1.25 a
    // transaction carries ~2 pattern elements, so a customer
    // accumulates on the order of |C| pattern sequences.
    let total_target: usize = target_sizes.iter().sum();
    let mut placed = 0usize;
    // A guard keeps degenerate corpora (e.g. everything corrupted away)
    // from looping forever.
    let mut attempts = 0usize;
    let max_attempts = 8 * n_transactions + 16;
    while placed < total_target && attempts < max_attempts {
        attempts += 1;
        let seq = &corpus.sequences[corpus.sample_sequence(rng)];
        let len = seq.elements.len().min(n_transactions);
        let start = if n_transactions > len {
            rng.gen_range(0..=n_transactions - len)
        } else {
            0
        };
        for (offset, &itemset_idx) in seq.elements.iter().take(len).enumerate() {
            // Sequence-level corruption drops whole elements (leaving a
            // transaction gap; the surviving elements keep their order).
            if rng.gen::<f64>() < seq.corruption {
                continue;
            }
            let keep = corrupt_itemset(&corpus.itemsets[itemset_idx], rng);
            if keep.is_empty() {
                continue;
            }
            placed += keep.len();
            transactions[start + offset].extend_from_slice(&keep);
        }
    }

    // Normalize and make sure no transaction ends up empty (an empty
    // slot gets one uncorrupted weighted itemset — still skewed corpus
    // content; the generator has no uniform noise source).
    for slot in &mut transactions {
        slot.sort_unstable();
        slot.dedup();
        if slot.is_empty() {
            let potential = &corpus.itemsets[corpus.sample_itemset(rng)];
            slot.extend_from_slice(&potential.items);
        }
    }

    for (t, items) in transactions.into_iter().enumerate() {
        debug_assert!(!items.is_empty());
        rows.push((customer_id, t as i64, items));
    }
}

/// Corruption: drop random items while `U(0,1)` stays below the itemset's
/// corruption level (VLDB'94 §4).
fn corrupt_itemset(potential: &crate::corpus::PotentialItemset, rng: &mut impl Rng) -> Vec<Item> {
    let mut keep = potential.items.clone();
    while !keep.is_empty() && rng.gen::<f64>() < potential.corruption {
        let victim = rng.gen_range(0..keep.len());
        keep.swap_remove(victim);
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> GenParams {
        GenParams::default()
            .customers(200)
            .items(400)
            .corpus_size(60, 300)
    }

    #[test]
    fn deterministic_per_seed() {
        let p = quick_params();
        assert_eq!(generate(&p, 5), generate(&p, 5));
    }

    #[test]
    fn stream_matches_batch_generation() {
        let p = quick_params();
        let streamed: Vec<_> = stream(&p, 5).collect();
        assert_eq!(streamed.len(), 200);
        assert_eq!(Database::new(streamed), generate(&p, 5));
    }

    #[test]
    fn stream_is_replayable() {
        let p = quick_params().customers(40);
        let a: Vec<_> = stream(&p, 9).collect();
        let b: Vec<_> = stream(&p, 9).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let p = quick_params();
        assert_ne!(generate(&p, 5), generate(&p, 6));
    }

    #[test]
    fn shape_statistics_track_parameters() {
        let p = quick_params();
        let db = generate(&p, 11);
        assert_eq!(db.num_customers(), 200);
        let avg_trans = db.num_transactions() as f64 / db.num_customers() as f64;
        assert!(
            (avg_trans - 10.0).abs() < 1.5,
            "avg transactions per customer {avg_trans}"
        );
        let avg_items = db.num_item_occurrences() as f64 / db.num_transactions() as f64;
        // Target sizes are lower bounds (large itemsets may overshoot) and
        // dedup may remove items, so allow generous slack around |T| = 2.5.
        assert!(
            avg_items > 1.5 && avg_items < 5.0,
            "avg items per transaction {avg_items}"
        );
    }

    #[test]
    fn all_items_within_universe() {
        let p = quick_params();
        let db = generate(&p, 3);
        for c in db.customers() {
            for t in &c.transactions {
                assert!(t.items.items().iter().all(|&i| i < 400));
            }
        }
    }

    #[test]
    fn no_empty_transactions() {
        let db = generate(&quick_params(), 8);
        for c in db.customers() {
            assert!(!c.transactions.is_empty());
            // Itemset construction enforces non-emptiness; the count
            // check above is the meaningful assertion.
        }
    }

    #[test]
    fn embedded_patterns_make_sequences_minable() {
        // The whole point of the generator: frequent sequential patterns
        // must exist. Mine with a modest threshold and expect at least one
        // multi-element maximal sequence.
        use seqpat_core::{MinSupport, Miner, MinerConfig};
        let p = quick_params();
        let db = generate(&p, 21);
        // A high-ish threshold keeps this fast under the dev profile; the
        // heavyweight mining happens in the bench crate under --release.
        let config = MinerConfig::new(MinSupport::Fraction(0.1)).max_length(3);
        let result = Miner::new(config).mine(&db);
        assert!(
            result.patterns.iter().any(|pat| pat.sequence.len() >= 2),
            "no multi-element pattern found; generator embeds none?"
        );
    }

    #[test]
    #[should_panic(expected = "invalid generator parameters")]
    fn invalid_params_rejected() {
        let _ = generate(&GenParams::default().items(0), 1);
    }
}
