//! Query-workload generator for the pattern-serving layer.
//!
//! Serve benches and CI smokes need reproducible query streams that look
//! like production traffic against a pattern index: mostly prefixes of
//! actually-mined patterns (hits), skewed toward the popular ones, with a
//! controlled fraction of guaranteed misses. Given the mined pattern list
//! (id space), [`query_workload`] draws:
//!
//! * a **pattern** per query, with probability ∝ `support^skew` —
//!   `skew = 0` is uniform, `skew = 1` is support-proportional, larger
//!   values concentrate traffic on the head of the distribution;
//! * a **prefix length** uniform in `1..=len` (full-length prefixes land
//!   on leaves and legitimately predict nothing);
//! * with probability `miss_rate`, one element is overwritten with
//!   [`MISS_ID`], an id no index built over a real litemset table can
//!   contain — a guaranteed miss with a realistic shape.
//!
//! Everything is deterministic per seed, like the rest of this crate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::distributions::WeightedIndex;
use seqpat_core::{LargeIdSequence, LitemsetId};

/// Sentinel litemset id used to corrupt queries into guaranteed misses.
/// Trie ids are dense indices into the litemset table, which is always
/// far smaller than `u32::MAX` entries, so this id never matches.
pub const MISS_ID: LitemsetId = LitemsetId::MAX;

/// Knobs for [`query_workload`].
#[derive(Debug, Clone, Copy)]
pub struct QueryWorkloadParams {
    /// Number of queries to draw.
    pub count: usize,
    /// Popularity skew: pattern pick weight is `support^skew`.
    pub skew: f64,
    /// Fraction of queries corrupted into guaranteed misses (clamped to
    /// `[0, 1]`).
    pub miss_rate: f64,
}

impl Default for QueryWorkloadParams {
    fn default() -> Self {
        Self {
            count: 1000,
            skew: 1.0,
            miss_rate: 0.1,
        }
    }
}

/// Draws a reproducible prefix-query workload from mined patterns.
/// Patterns with no elements or zero support are ignored; an empty usable
/// pattern list yields an empty workload.
pub fn query_workload(
    patterns: &[LargeIdSequence],
    params: &QueryWorkloadParams,
    seed: u64,
) -> Vec<Vec<LitemsetId>> {
    let usable: Vec<&LargeIdSequence> = patterns
        .iter()
        .filter(|p| !p.ids.is_empty() && p.support > 0)
        .collect();
    if usable.is_empty() || params.count == 0 {
        return Vec::new();
    }
    let weights: Vec<f64> = usable
        .iter()
        .map(|p| (p.support as f64).powf(params.skew))
        .collect();
    let picker = if weights.iter().all(|w| w.is_finite()) && weights.iter().sum::<f64>() > 0.0 {
        WeightedIndex::new(&weights)
    } else {
        // Degenerate skews (e.g. huge exponents overflowing to inf) fall
        // back to uniform rather than panicking mid-bench.
        WeightedIndex::new(&vec![1.0; usable.len()])
    };
    let miss_rate = params.miss_rate.clamp(0.0, 1.0);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(params.count);
    for _ in 0..params.count {
        let p = usable[picker.sample(&mut rng)];
        let len = rng.gen_range(1..=p.ids.len());
        let mut query = p.ids[..len].to_vec();
        if rng.gen::<f64>() < miss_rate {
            let pos = rng.gen_range(0..query.len());
            query[pos] = MISS_ID;
        }
        out.push(query);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterns() -> Vec<LargeIdSequence> {
        vec![
            LargeIdSequence {
                ids: vec![0, 1, 2],
                support: 100,
            },
            LargeIdSequence {
                ids: vec![3, 4],
                support: 1,
            },
            LargeIdSequence {
                ids: vec![],
                support: 50,
            }, // ignored: empty
            LargeIdSequence {
                ids: vec![5],
                support: 0,
            }, // ignored: zero support
        ]
    }

    #[test]
    fn deterministic_per_seed() {
        let params = QueryWorkloadParams::default();
        let a = query_workload(&patterns(), &params, 7);
        let b = query_workload(&patterns(), &params, 7);
        let c = query_workload(&patterns(), &params, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), params.count);
    }

    #[test]
    fn clean_queries_are_prefixes_of_usable_patterns() {
        let params = QueryWorkloadParams {
            count: 300,
            skew: 1.0,
            miss_rate: 0.0,
        };
        let ps = patterns();
        for q in query_workload(&ps, &params, 3) {
            assert!(!q.is_empty());
            assert!(
                ps.iter().any(|p| p.support > 0 && p.ids.starts_with(&q)),
                "query {q:?} is not a prefix of any usable pattern"
            );
        }
    }

    #[test]
    fn miss_rate_bounds_hold() {
        let ps = patterns();
        let all_miss = QueryWorkloadParams {
            count: 200,
            skew: 1.0,
            miss_rate: 1.0,
        };
        for q in query_workload(&ps, &all_miss, 9) {
            assert!(q.contains(&MISS_ID));
        }
        let no_miss = QueryWorkloadParams {
            miss_rate: 0.0,
            ..all_miss
        };
        for q in query_workload(&ps, &no_miss, 9) {
            assert!(!q.contains(&MISS_ID));
        }
    }

    #[test]
    fn skew_concentrates_on_popular_patterns() {
        let ps = patterns();
        let count = 2000;
        let head_share = |skew: f64| -> f64 {
            let params = QueryWorkloadParams {
                count,
                skew,
                miss_rate: 0.0,
            };
            let from_head = query_workload(&ps, &params, 11)
                .iter()
                .filter(|q| q[0] == 0)
                .count();
            from_head as f64 / count as f64
        };
        let uniform = head_share(0.0);
        let skewed = head_share(2.0);
        assert!((uniform - 0.5).abs() < 0.1, "skew 0 share {uniform}");
        assert!(skewed > 0.99, "skew 2 share {skewed}");
    }

    #[test]
    fn empty_inputs_yield_empty_workloads() {
        let params = QueryWorkloadParams::default();
        assert!(query_workload(&[], &params, 1).is_empty());
        let only_unusable = vec![LargeIdSequence {
            ids: vec![],
            support: 3,
        }];
        assert!(query_workload(&only_unusable, &params, 1).is_empty());
    }
}
