//! Checked integer conversions for the counting kernels.
//!
//! The kernel files are `as`-cast-free (enforced by seqpat-lint's
//! no-lossy-casts-in-kernels rule): widening conversions go through the
//! infallible helpers here, and the one narrowing direction the kernels
//! need (usize indices → u32 ids) is debug-checked so an overflow trips the
//! debug-assertions CI job instead of silently wrapping.

/// Widens a `u32` id to a `usize` index. Infallible on every supported
/// target (usize is at least 32 bits on all tier-1 platforms).
#[inline(always)]
pub fn idx(v: u32) -> usize {
    v as usize
}

/// Widens a `usize` count to a `u64` support value. Infallible on every
/// supported target (usize is at most 64 bits).
#[inline(always)]
pub fn w64(v: usize) -> u64 {
    v as u64
}

/// Narrows a `usize` index to a `u32` id. The id spaces in this workspace
/// (items, litemsets, customers) are bounded far below `u32::MAX`; the
/// debug assertion documents and checks that bound.
#[inline(always)]
pub fn id32(v: usize) -> u32 {
    debug_assert!(v <= u32::MAX as usize, "id {v} overflows u32");
    v as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widening_roundtrips() {
        assert_eq!(idx(0), 0);
        assert_eq!(idx(u32::MAX), u32::MAX as usize);
        assert_eq!(w64(0), 0);
        assert_eq!(w64(usize::MAX), usize::MAX as u64);
    }

    #[test]
    fn id32_roundtrips_in_range() {
        assert_eq!(id32(0), 0);
        assert_eq!(id32(123_456), 123_456);
        assert_eq!(id32(u32::MAX as usize), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "overflows u32")]
    #[cfg(debug_assertions)]
    fn id32_checks_overflow_in_debug() {
        let _ = id32(u32::MAX as usize + 1);
    }
}
