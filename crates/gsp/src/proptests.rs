//! Property tests: the memoized window-DFS matcher against a brute-force
//! oracle that enumerates **every** admissible window assignment.

use proptest::prelude::*;

use crate::candidate::ItemSeq;
use crate::contains::{contains_with_constraints, DataSequence};
use crate::GspConfig;
use seqpat_core::Item;

fn data_sequence(rows: Vec<(i64, Vec<Item>)>) -> DataSequence {
    // Route through the public constructor to keep invariants (strictly
    // increasing times) enforced by the same code the miner uses.
    let rows: Vec<(u64, i64, Vec<Item>)> =
        rows.into_iter().map(|(t, items)| (1, t, items)).collect();
    let db = seqpat_core::Database::from_rows(rows);
    db.customers()
        .first()
        .map(DataSequence::from)
        .unwrap_or_else(|| {
            DataSequence::from(&seqpat_core::CustomerSequence {
                customer_id: 1,
                transactions: vec![],
            })
        })
}

/// Exhaustive oracle: try every `(l_i, u_i)` combination.
fn oracle(d: &DataSequence, pattern: &ItemSeq, config: &GspConfig) -> bool {
    fn covers(d: &DataSequence, element: &[Item], l: usize, u: usize) -> bool {
        element
            .iter()
            .all(|item| (l..=u).any(|k| d.transactions[k].1.binary_search(item).is_ok()))
    }
    fn rec(
        d: &DataSequence,
        pattern: &ItemSeq,
        config: &GspConfig,
        i: usize,
        prev: Option<(usize, usize)>,
    ) -> bool {
        if i == pattern.len() {
            return true;
        }
        let m = d.transactions.len();
        let lo = prev.map_or(0, |(_, u)| u + 1);
        for l in lo..m {
            if let Some((_, prev_u)) = prev {
                if d.transactions[l].0 - d.transactions[prev_u].0 <= config.min_gap {
                    continue;
                }
            }
            for u in l..m {
                if d.transactions[u].0 - d.transactions[l].0 > config.window {
                    break;
                }
                if let (Some(max_gap), Some((prev_l, _))) = (config.max_gap, prev) {
                    if d.transactions[u].0 - d.transactions[prev_l].0 > max_gap {
                        break;
                    }
                }
                if covers(d, &pattern[i], l, u) && rec(d, pattern, config, i + 1, Some((l, u))) {
                    return true;
                }
            }
        }
        false
    }
    if pattern.is_empty() {
        return true;
    }
    rec(d, pattern, config, 0, None)
}

fn arb_rows() -> impl Strategy<Value = Vec<(i64, Vec<Item>)>> {
    let transaction = proptest::collection::btree_set(0u32..5, 1..=3)
        .prop_map(|s| s.into_iter().collect::<Vec<_>>());
    proptest::collection::vec((0i64..20, transaction), 1..=7)
}

fn arb_pattern() -> impl Strategy<Value = ItemSeq> {
    let element = proptest::collection::btree_set(0u32..5, 1..=2)
        .prop_map(|s| s.into_iter().collect::<Vec<_>>());
    proptest::collection::vec(element, 1..=3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn matcher_agrees_with_exhaustive_oracle(
        rows in arb_rows(),
        pattern in arb_pattern(),
        min_gap in 0i64..4,
        max_gap in proptest::option::of(2i64..12),
        window in 0i64..4,
    ) {
        let mut config = GspConfig::default().min_gap(min_gap).window(window);
        if let Some(g) = max_gap {
            if g >= min_gap {
                config = config.max_gap(g);
            }
        }
        let d = data_sequence(rows);
        prop_assert_eq!(
            contains_with_constraints(&d, &pattern, &config),
            oracle(&d, &pattern, &config),
            "pattern {:?} on {:?} with {:?}",
            pattern,
            d,
            config
        );
    }

    #[test]
    fn unconstrained_matcher_equals_plain_containment(
        rows in arb_rows(),
        pattern in arb_pattern(),
    ) {
        let d = data_sequence(rows);
        let plain = {
            let hay: Vec<seqpat_core::Itemset> = d
                .transactions
                .iter()
                .map(|(_, items)| seqpat_core::Itemset::new(items.clone()))
                .collect();
            let needle: Vec<seqpat_core::Itemset> = pattern
                .iter()
                .map(|e| seqpat_core::Itemset::new(e.clone()))
                .collect();
            seqpat_core::contain::sequence_contains(&hay, &needle)
        };
        prop_assert_eq!(
            contains_with_constraints(&d, &pattern, &GspConfig::default()),
            plain
        );
    }
}
