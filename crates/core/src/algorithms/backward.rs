//! The backward phase shared by AprioriSome and DynamicSome (paper §4.2).
//!
//! Walking lengths from longest to shortest:
//!
//! * a length that was **skipped** forward first deletes every stored
//!   candidate contained in an already-kept longer large sequence — the
//!   paper's key saving: non-maximal sequences never get counted — then
//!   counts the survivors and keeps the large ones;
//! * a length that was **counted** forward is passed through as-is. (The
//!   paper also trims known-non-maximal sequences from counted `L_k`s here;
//!   in this pipeline that trim is exactly the maximal phase, which runs
//!   right after and does the same quadratic scan *once* over the union
//!   instead of once per length — doing it in both places measurably
//!   penalized AprioriSome on dense inputs without changing the answer.)
//!
//! Containment uses the subset-aware relation: ids denote itemsets, and
//! `⟨(30)(40)⟩` is contained in `⟨(30)(40 70)⟩`. (The paper's description
//! operates on id equality; subset-awareness prunes strictly more while
//! remaining sound — anything pruned is contained in a large sequence and
//! hence large-but-non-maximal — so the final maximal answer is unchanged.
//! DESIGN.md records this as a deliberate choice.)

use std::collections::BTreeMap;

use crate::arena::CandidateArena;
use crate::contain::id_subsequence_with_subsets;
use crate::counting::CountingContext;
use crate::dataset::Dataset;
use crate::phases::maximal::LargeIdSequence;
use crate::stats::{MiningStats, SequencePassStats};
use crate::types::transformed::LitemsetTable;

/// Forward-phase output handed to the backward phase.
#[derive(Debug, Default)]
pub struct ForwardOutput {
    /// `L_k` for the lengths the forward phase counted.
    pub counted: BTreeMap<usize, Vec<LargeIdSequence>>,
    /// `C_k` (uncounted candidates) for the skipped lengths.
    pub skipped: BTreeMap<usize, CandidateArena>,
}

/// Runs the backward phase; returns the kept large sequences (a superset of
/// the maximal large sequences, disjoint per length). `ctx` is the same
/// counting context the forward phase used, so the vertical strategy's
/// occurrence index carries over.
pub fn backward(
    ds: &dyn Dataset,
    min_count: u64,
    ctx: &mut CountingContext,
    stats: &mut MiningStats,
    forward: ForwardOutput,
) -> Vec<LargeIdSequence> {
    let max_len = forward
        .counted
        .keys()
        .chain(forward.skipped.keys())
        .copied()
        .max()
        .unwrap_or(0);

    let mut kept: Vec<LargeIdSequence> = Vec::new();
    let ForwardOutput {
        mut counted,
        mut skipped,
    } = forward;

    for k in (1..=max_len).rev() {
        if let Some(lk) = counted.remove(&k) {
            // Known large: pass through; the maximal phase right after the
            // sequence phase performs the non-maximal trim once globally
            // (see the module docs for why it is not repeated here).
            kept.extend(lk);
        } else if let Some(ck) = skipped.remove(&k) {
            // Skipped in the forward phase: prune, then count the rest.
            // Filtering preserves the arena's sorted order, so the vertical
            // strategy's prefix runs and list cache stay valid.
            let pass_start = crate::stats::Stopwatch::start();
            let before = ck.num_candidates() as u64;
            let mut remaining = CandidateArena::new(k);
            for ids in ck.iter() {
                if !contained_in_any(ids, &kept, ds.table()) {
                    remaining.push(ids);
                }
            }
            let pruned = before - remaining.num_candidates() as u64;
            let supports = ctx.count(ds, &remaining);
            let survivors: Vec<LargeIdSequence> = remaining
                .iter()
                .zip(supports)
                .filter(|&(_, s)| s >= min_count)
                .map(|(ids, support)| LargeIdSequence {
                    ids: ids.to_vec(),
                    support,
                })
                .collect();
            stats.record_pass(SequencePassStats {
                k,
                generated: 0,
                counted: before - pruned,
                large: survivors.len() as u64,
                backward: true,
                pruned_by_containment: pruned,
                pass_time: pass_start.elapsed(),
            });
            kept.extend(survivors);
        }
    }
    kept
}

fn contained_in_any(ids: &[u32], kept: &[LargeIdSequence], table: &LitemsetTable) -> bool {
    kept.iter()
        .any(|k| k.ids.len() > ids.len() && id_subsequence_with_subsets(&k.ids, ids, table))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::apriori_all::tests::paper_tdb;
    use crate::algorithms::apriori_all::SequencePhaseOptions;

    fn ls(ids: Vec<u32>, support: u64) -> LargeIdSequence {
        LargeIdSequence { ids, support }
    }

    fn arena(rows: &[&[u32]]) -> CandidateArena {
        CandidateArena::from_rows(rows.first().map_or(0, |r| r.len()), rows.iter().copied())
    }

    #[test]
    fn counted_lengths_pass_through_unfiltered() {
        let tdb = paper_tdb();
        let mut forward = ForwardOutput::default();
        forward
            .counted
            .insert(1, vec![ls(vec![0], 4), ls(vec![4], 3)]);
        forward.counted.insert(2, vec![ls(vec![0, 4], 2)]);
        let mut stats = MiningStats::default();
        let mut ctx = SequencePhaseOptions::default().context(&tdb);
        let kept = backward(&tdb, 2, &mut ctx, &mut stats, forward);
        // Counted lengths are passed through longest-first; the maximal
        // phase (not the backward pass) trims ⟨0⟩ and ⟨4⟩ later.
        assert_eq!(
            kept,
            vec![ls(vec![0, 4], 2), ls(vec![0], 4), ls(vec![4], 3)]
        );
        assert_eq!(stats.candidates_counted, 0);
        use crate::phases::maximal::maximal_phase;
        let maximal = maximal_phase(kept, &tdb.table);
        assert_eq!(maximal, vec![ls(vec![0, 4], 2)]);
    }

    #[test]
    fn skipped_lengths_pruned_then_counted() {
        let tdb = paper_tdb();
        let mut forward = ForwardOutput::default();
        forward.counted.insert(2, vec![ls(vec![0, 2], 2)]);
        // Skipped C1: ⟨0⟩ (contained in ⟨0 2⟩ → pruned, never counted),
        // ⟨4⟩ (counted; support 3 → kept), ⟨1⟩ (contained via subset-
        // awareness: (40) ⊆ (40 70) → pruned).
        forward.skipped.insert(1, arena(&[&[0], &[1], &[4]]));
        let mut stats = MiningStats::default();
        let mut ctx = SequencePhaseOptions::default().context(&tdb);
        let kept = backward(&tdb, 2, &mut ctx, &mut stats, forward);
        let mut got: Vec<Vec<u32>> = kept.iter().map(|s| s.ids.clone()).collect();
        got.sort();
        assert_eq!(got, vec![vec![0, 2], vec![4]]);
        let back1 = stats
            .sequence_passes
            .iter()
            .find(|p| p.backward && p.k == 1)
            .unwrap();
        assert_eq!(back1.pruned_by_containment, 2);
        assert_eq!(back1.counted, 1);
    }

    #[test]
    fn skipped_candidates_below_support_are_dropped() {
        let tdb = paper_tdb();
        let mut forward = ForwardOutput::default();
        // ⟨4 4⟩ has support 0 in the paper database.
        forward.skipped.insert(2, arena(&[&[4, 4]]));
        let mut stats = MiningStats::default();
        let mut ctx = SequencePhaseOptions::default().context(&tdb);
        let kept = backward(&tdb, 2, &mut ctx, &mut stats, forward);
        assert!(kept.is_empty());
    }

    #[test]
    fn empty_forward_output() {
        let tdb = paper_tdb();
        let mut stats = MiningStats::default();
        let mut ctx = SequencePhaseOptions::default().context(&tdb);
        let kept = backward(&tdb, 2, &mut ctx, &mut stats, ForwardOutput::default());
        assert!(kept.is_empty());
    }
}
