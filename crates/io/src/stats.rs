//! Dataset summary statistics — the rows of the paper's dataset table.

use seqpat_core::Database;

/// Summary statistics of a customer-sequence database.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Number of customers (`|D|`).
    pub customers: usize,
    /// Total transactions.
    pub transactions: usize,
    /// Total item occurrences.
    pub item_occurrences: usize,
    /// Distinct items appearing anywhere.
    pub distinct_items: usize,
    /// Average transactions per customer (the realized `|C|`).
    pub avg_transactions_per_customer: f64,
    /// Average items per transaction (the realized `|T|`).
    pub avg_items_per_transaction: f64,
    /// Size of the database in the paper's accounting: one 32-bit word per
    /// item occurrence plus one per transaction (customer, time) pair —
    /// reported in megabytes like the paper's dataset table.
    pub size_mb: f64,
}

impl DatasetStats {
    /// Computes the statistics for `db`.
    pub fn compute(db: &Database) -> Self {
        let customers = db.num_customers();
        let transactions = db.num_transactions();
        let item_occurrences = db.num_item_occurrences();
        let mut items: Vec<u32> = db
            .customers()
            .iter()
            .flat_map(|c| c.transactions.iter())
            .flat_map(|t| t.items.items().iter().copied())
            .collect();
        items.sort_unstable();
        items.dedup();
        let bytes = 4 * (item_occurrences + 2 * transactions);
        Self {
            customers,
            transactions,
            item_occurrences,
            distinct_items: items.len(),
            avg_transactions_per_customer: ratio(transactions, customers),
            avg_items_per_transaction: ratio(item_occurrences, transactions),
            size_mb: bytes as f64 / (1024.0 * 1024.0),
        }
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|D|={} transactions={} avg|C|={:.2} avg|T|={:.2} items={} size={:.1}MB",
            self.customers,
            self.transactions,
            self.avg_transactions_per_customer,
            self.avg_items_per_transaction,
            self.distinct_items,
            self.size_mb
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_stats() {
        let db = Database::from_rows(vec![
            (1, 1, vec![30]),
            (1, 2, vec![90]),
            (2, 1, vec![10, 20]),
            (2, 2, vec![30]),
            (2, 3, vec![40, 60, 70]),
            (3, 1, vec![30, 50, 70]),
            (4, 1, vec![30]),
            (4, 2, vec![40, 70]),
            (4, 3, vec![90]),
            (5, 1, vec![90]),
        ]);
        let stats = DatasetStats::compute(&db);
        assert_eq!(stats.customers, 5);
        assert_eq!(stats.transactions, 10);
        assert_eq!(stats.item_occurrences, 16);
        assert_eq!(stats.distinct_items, 8);
        assert!((stats.avg_transactions_per_customer - 2.0).abs() < 1e-12);
        assert!((stats.avg_items_per_transaction - 1.6).abs() < 1e-12);
        assert!(stats.size_mb > 0.0);
    }

    #[test]
    fn empty_database() {
        let stats = DatasetStats::compute(&Database::default());
        assert_eq!(stats.customers, 0);
        assert_eq!(stats.avg_transactions_per_customer, 0.0);
    }

    #[test]
    fn display_renders() {
        let db = Database::from_rows(vec![(1, 1, vec![5])]);
        let s = DatasetStats::compute(&db).to_string();
        assert!(s.contains("|D|=1"));
    }

    #[test]
    fn generated_dataset_stats_match_params() {
        use seqpat_datagen::{generate, GenParams};
        let db = generate(
            &GenParams::default()
                .customers(300)
                .items(500)
                .corpus_size(50, 200),
            17,
        );
        let stats = DatasetStats::compute(&db);
        assert_eq!(stats.customers, 300);
        assert!((stats.avg_transactions_per_customer - 10.0).abs() < 1.5);
    }
}
