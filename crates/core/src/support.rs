//! Minimum-support specification and threshold arithmetic.

/// The user's minimum support, either as the paper's fraction of customers
/// or as an absolute customer count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MinSupport {
    /// Fraction of the total number of customers, in `(0, 1]`.
    Fraction(f64),
    /// Absolute number of supporting customers.
    Count(u64),
}

impl MinSupport {
    /// Resolves to an absolute customer count for a database of
    /// `num_customers`. A fraction is rounded **up** (a sequence is large
    /// when `support_count / num_customers >= fraction`), and the result is
    /// clamped to at least 1 so empty thresholds cannot occur.
    ///
    /// ```
    /// use seqpat_core::MinSupport;
    /// assert_eq!(MinSupport::Fraction(0.25).to_count(5), 2);  // 1.25 → 2
    /// assert_eq!(MinSupport::Fraction(0.4).to_count(5), 2);   // exactly 2
    /// assert_eq!(MinSupport::Count(3).to_count(5), 3);
    /// ```
    pub fn to_count(self, num_customers: usize) -> u64 {
        match self {
            MinSupport::Fraction(f) => {
                assert!(
                    f > 0.0 && f <= 1.0,
                    "support fraction must be in (0, 1], got {f}"
                );
                let raw = f * num_customers as f64;
                // ceil with an epsilon so that e.g. 0.4 * 5 = 2.0000000000000004
                // does not round up to 3.
                let count = (raw - 1e-9).ceil() as u64;
                count.max(1)
            }
            MinSupport::Count(c) => c.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_rounds_up() {
        assert_eq!(MinSupport::Fraction(0.25).to_count(5), 2);
        assert_eq!(MinSupport::Fraction(0.25).to_count(4), 1);
        assert_eq!(MinSupport::Fraction(0.01).to_count(1000), 10);
        assert_eq!(MinSupport::Fraction(0.011).to_count(1000), 11);
    }

    #[test]
    fn exact_multiples_do_not_round_up() {
        assert_eq!(MinSupport::Fraction(0.4).to_count(5), 2);
        assert_eq!(MinSupport::Fraction(0.2).to_count(10), 2);
        assert_eq!(MinSupport::Fraction(1.0).to_count(7), 7);
    }

    #[test]
    fn clamped_to_at_least_one() {
        assert_eq!(MinSupport::Fraction(0.001).to_count(5), 1);
        assert_eq!(MinSupport::Count(0).to_count(5), 1);
        assert_eq!(MinSupport::Fraction(0.5).to_count(0), 1);
    }

    #[test]
    #[should_panic(expected = "support fraction")]
    fn zero_fraction_rejected() {
        let _ = MinSupport::Fraction(0.0).to_count(10);
    }

    #[test]
    #[should_panic(expected = "support fraction")]
    fn over_one_fraction_rejected() {
        let _ = MinSupport::Fraction(1.5).to_count(10);
    }
}
