//! End-to-end coverage for the determinism-analysis stage: the four rules
//! over the fixture workspace, the `determinism.json` artifact's content
//! and byte-stability, and the `--rules` filter contract.

use std::path::{Path, PathBuf};

use seqpat_lint::dataflow;
use seqpat_lint::engine::{self, Report};
use seqpat_lint::rules;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixture_ws")
}

fn fixture_report() -> Report {
    engine::run(&fixture_root()).expect("fixture workspace is readable")
}

/// 1-based line of the first occurrence of `needle` in a fixture file.
fn line_of(rel: &str, needle: &str) -> u32 {
    let src = std::fs::read_to_string(fixture_root().join(rel)).expect("fixture file exists");
    let line = src
        .lines()
        .position(|l| l.contains(needle))
        .unwrap_or_else(|| panic!("{needle:?} not found in {rel}"));
    u32::try_from(line).expect("fixture files are small") + 1
}

fn rule_hits<'r>(report: &'r Report, rule: &str) -> Vec<&'r rules::Violation> {
    report
        .violations
        .iter()
        .filter(|v| v.rule == rule)
        .collect()
}

#[test]
fn shared_mutable_capture_fires_on_mut_and_interior_mut_seeds() {
    let report = fixture_report();
    let hits = rule_hits(&report, rules::SHARED_MUTABLE_CAPTURE);
    assert_eq!(hits.len(), 2, "{:?}", report.violations);
    assert!(hits
        .iter()
        .all(|v| v.path == "crates/engine/src/capture.rs"));
    // The `&mut totals` capture, with its fn -> sink -> capture chain.
    let muts = hits
        .iter()
        .find(|v| v.message.contains("`totals`"))
        .expect("the &mut capture fires");
    assert_eq!(
        muts.chain.as_deref(),
        Some(format!(
            "count_bad -> map_chunks(closure@L{}) -> &mut totals",
            muts.line
        ))
        .as_deref()
    );
    // The shared atomic counter.
    let atomic = hits
        .iter()
        .find(|v| v.message.contains("`hits`"))
        .expect("the interior-mut capture fires");
    assert!(atomic.message.contains("interior-mutable"));
    // The chunk-owned scratch in count_good stays silent.
    let good_line = line_of("crates/engine/src/capture.rs", "let mut local");
    assert!(hits.iter().all(|v| v.line < good_line));
}

#[test]
fn order_sensitive_reduction_fires_on_the_float_merge_only() {
    let report = fixture_report();
    let hits = rule_hits(&report, rules::ORDER_SENSITIVE_REDUCTION);
    assert_eq!(hits.len(), 1, "{:?}", report.violations);
    let v = hits[0];
    assert_eq!(v.path, "crates/engine/src/reducer.rs");
    assert!(v.message.contains("merge_scores"));
    assert!(v.message.contains("float `+=`"));
    // The integer merge two fns down combines the same way and is clean.
    assert!(!v.message.contains("merge_counts"));
}

#[test]
fn iteration_flow_fires_on_escaping_order_and_spares_normalized_flows() {
    let report = fixture_report();
    let hits = rule_hits(&report, rules::NONDET_ITERATION_FLOW);
    assert_eq!(hits.len(), 2, "{:?}", report.violations);
    assert!(hits.iter().all(|v| v.path == "crates/engine/src/flow.rs"));
    let escape = hits
        .iter()
        .find(|v| v.message.contains("`out`"))
        .expect("the unsorted export fires");
    let chain = escape.chain.as_deref().expect("flow findings carry chains");
    assert!(chain.contains("hash container `m`"), "witness: {chain}");
    let concat = hits
        .iter()
        .find(|v| v.message.contains("string `s`"))
        .expect("the string concat fires");
    assert_eq!(
        concat.line,
        line_of("crates/engine/src/flow.rs", "s.push_str")
    );
    // export_good (collect + sort) and total (.sum()) stay silent.
    let good_line = line_of("crates/engine/src/flow.rs", "rows.sort_unstable");
    assert!(hits.iter().all(|v| v.line < good_line));
}

#[test]
fn unseeded_randomness_fires_outside_test_code_only() {
    let report = fixture_report();
    let hits = rule_hits(&report, rules::UNSEEDED_RANDOMNESS);
    assert_eq!(hits.len(), 1, "{:?}", report.violations);
    let v = hits[0];
    assert_eq!(v.path, "crates/engine/src/rng.rs");
    assert_eq!(
        v.line,
        line_of("crates/engine/src/rng.rs", "let mut rng = thread_rng();")
    );
    // The identical construction inside #[cfg(test)] is sanctioned, and the
    // `use` line naming thread_rng is not a construction site.
    let test_line = line_of("crates/engine/src/rng.rs", "fn jitter_stays_close");
    assert!(hits.iter().all(|v| v.line < test_line));
}

#[test]
fn determinism_json_is_byte_identical_and_audits_every_fanout_site() {
    let first = fixture_report();
    let second = fixture_report();
    assert!(!first.determinism_json.is_empty());
    assert_eq!(
        first.determinism_json, second.determinism_json,
        "the artifact must be a pure function of the sources"
    );
    let json = &first.determinism_json;
    assert!(json.contains("\"schema\": \"seqpat-determinism-v1\""));
    // All three fan-out sites in capture.rs appear, with verdicts.
    assert!(json.contains("\"fn\": \"count_bad\""));
    assert!(json.contains("\"verdict\": \"shared-mutable\""));
    assert!(json.contains("\"fn\": \"count_good\""));
    assert!(json.contains("\"verdict\": \"ok\""));
    assert!(json.contains("\"mode\": \"by-mut-ref\""));
    assert!(json.contains("\"interior_mut\": true"));
    // Both reducers are audited with their verdicts.
    assert!(json.contains("\"fn\": \"merge_scores\""));
    assert!(json.contains("\"verdict\": \"order-sensitive\""));
    assert!(json.contains("\"fn\": \"merge_counts\""));
    assert!(json.contains("\"verdict\": \"order-insensitive\""));
}

#[test]
fn scope_closure_shadowing_a_param_is_not_a_capture() {
    // The real map_chunks rebinds the closure into a scope-local (`let map
    // = &map;`) before spawning: the spawn closure captures the local, the
    // local shadows the param, and no shared-mutable finding fires.
    let src = r#"
pub fn map_chunks(items: &[u32], f: impl Fn(&[u32]) -> u64 + Sync) -> Vec<u64> {
    let map = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(2)
            .map(|chunk| {
                let map = &map;
                s.spawn(move || map(chunk))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}
"#;
    let (violations, _) = engine::lint_source("crates/itemset/src/parallel.rs", src);
    assert!(
        violations
            .iter()
            .all(|v| v.rule != rules::SHARED_MUTABLE_CAPTURE),
        "{violations:?}"
    );
}

#[test]
fn reduction_audit_flags_subtraction_and_division_regardless_of_type() {
    let src = r#"
pub fn merge_delta(total: &mut [u64], partial: &[u64]) {
    for (t, p) in total.iter_mut().zip(partial) {
        *t -= *p;
    }
}
"#;
    let (violations, audits) = dataflow::reduction_audit("crates/core/src/agg.rs", src);
    assert_eq!(violations.len(), 1);
    assert!(violations[0].message.contains("`-=`"));
    assert_eq!(audits.len(), 1);
    assert!(audits[0].order_sensitive);

    // Non-reducer fn names are not audited at all.
    let plain = "pub fn apply_delta(t: &mut u64, p: u64) { *t -= p; }\n";
    let (v2, a2) = dataflow::reduction_audit("crates/core/src/agg.rs", plain);
    assert!(v2.is_empty());
    assert!(a2.is_empty());
}

#[test]
fn rule_filter_rejects_unknown_names_and_accepts_known_ones() {
    let err = rules::parse_rule_filter("no-panic-in-kernels,not-a-rule")
        .expect_err("unknown names must be rejected");
    assert!(err.contains("not-a-rule"), "{err}");
    assert!(err.contains(rules::SHARED_MUTABLE_CAPTURE), "{err}");

    let names = rules::parse_rule_filter(
        " order-sensitive-reduction , unseeded-randomness-outside-datagen ",
    )
    .expect("known names parse");
    assert_eq!(
        names,
        vec![
            rules::ORDER_SENSITIVE_REDUCTION.to_string(),
            rules::UNSEEDED_RANDOMNESS.to_string()
        ]
    );

    // The retired lexical rule is gone from the registry.
    assert!(rules::parse_rule_filter("deterministic-iteration").is_err());
    assert!(rules::parse_rule_filter("").is_err());
}

#[test]
fn suppressing_a_determinism_finding_works_and_stale_gate_guards_it() {
    let src = r#"
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for k in m.keys() {
        // seqpat-lint: allow(nondeterministic-iteration-flow) callers sort downstream of this export
        out.push(*k);
    }
    out
}
"#;
    let (violations, suppressed) = engine::lint_source("crates/core/src/miner.rs", src);
    assert!(
        violations
            .iter()
            .all(|v| v.rule != rules::NONDET_ITERATION_FLOW),
        "{violations:?}"
    );
    assert!(suppressed >= 1);
}
