//! Mining statistics: per-phase timings and per-pass counters.
//!
//! The ICDE'95 figures are wall-clock plots, but the paper's *analysis*
//! talks in candidates generated, candidates counted, and passes skipped —
//! machine-independent quantities. The harness reports both; these structs
//! carry them out of the miner.

use std::time::Duration;

pub use seqpat_itemset::stats::Stopwatch;

/// Counters for one pass of the sequence phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SequencePassStats {
    /// Sequence length handled by this pass.
    pub k: usize,
    /// Candidates newly generated in this pass. (Pass 1 reports the large
    /// 1-sequences here; they come for free from the litemset phase.)
    pub generated: u64,
    /// Candidates whose support was counted against the database in this
    /// pass. Forward passes that AprioriSome/DynamicSome skip report 0 and
    /// the backward pass that picks the length up reports the number it
    /// actually counted (after containment pruning).
    pub counted: u64,
    /// Candidates found large in this pass (0 when nothing was counted).
    pub large: u64,
    /// `true` when this pass ran in the backward direction.
    pub backward: bool,
    /// Candidates deleted before counting because they were contained in an
    /// already-known larger large sequence (backward passes only).
    pub pruned_by_containment: u64,
    /// Wall time of this pass (generation + counting).
    pub pass_time: Duration,
}

/// Aggregate statistics for one mining run.
#[derive(Debug, Clone, Default)]
pub struct MiningStats {
    /// Wall time of the litemset phase (includes pass 1 counting).
    pub litemset_time: Duration,
    /// Wall time of the transformation phase.
    pub transform_time: Duration,
    /// Wall time of the sequence phase (all passes).
    pub sequence_time: Duration,
    /// Wall time of the maximal phase.
    pub maximal_time: Duration,
    /// Number of large itemsets (= alphabet size of the sequence phase).
    pub num_litemsets: u64,
    /// Per-pass counters of the litemset phase, in pass order.
    pub litemset_passes: Vec<seqpat_itemset::AprioriPassStats>,
    /// Per-pass counters of the sequence phase, in execution order
    /// (forward passes first, then backward passes for the Some variants).
    pub sequence_passes: Vec<SequencePassStats>,
    /// Total candidate sequences generated across all passes.
    pub candidates_generated: u64,
    /// Total candidate sequences whose support was actually counted.
    pub candidates_counted: u64,
    /// Total customer-vs-candidate containment tests executed.
    pub containment_tests: u64,
    /// Flat hash-tree nodes visited by containment probes (zero unless a
    /// pass used [`crate::CountingStrategy::HashTree`]); a proxy for probe
    /// depth × breadth, thread-invariant like every counter here.
    pub probe_nodes: u64,
    /// Wall time spent building the vertical occurrence index (zero unless
    /// the run used [`crate::CountingStrategy::Vertical`]).
    pub vertical_index_time: Duration,
    /// Occurrence-list merge-joins executed by the vertical strategy — its
    /// analogue of `containment_tests` (zero for horizontal strategies).
    pub join_ops: u64,
    /// Occurrence entries skipped by the vertical strategy's galloping
    /// joins (zero when no join was skewed enough to gallop).
    pub gallop_skips: u64,
    /// Peak bytes held by the vertical index plus cached occurrence lists
    /// (zero for horizontal strategies).
    pub vertical_peak_bytes: u64,
    /// Wall time spent building the bitmap index (zero unless the run used
    /// [`crate::CountingStrategy::Bitmap`], directly or via `Auto`).
    pub bitmap_index_time: Duration,
    /// Words processed by the bitmap strategy's S-step smear kernel — its
    /// analogue of `containment_tests`/`join_ops` (zero for the other
    /// strategies).
    pub sstep_ops: u64,
    /// Words the bitmap strategy pushed through its 4×-unrolled
    /// single-word-span lane kernels (a subset of `sstep_ops`' words).
    pub lane_words: u64,
    /// Words the bitmap strategy saturated via the multi-word carry fix-up
    /// pass (nonzero only with customers longer than 64 transactions).
    pub carry_fixups: u64,
    /// Size of the bitmap arena in `u64` words (litemsets × packed words;
    /// zero when no bitmap index was built).
    pub bitmap_words: u64,
    /// When the run was configured with [`crate::CountingStrategy::Auto`],
    /// the strategy it resolved to plus the statistics it decided from.
    pub auto_decision: Option<crate::counting::AutoDecision>,
    /// Peak resident-set size of the process when the run finished
    /// (`VmHWM` from `/proc/self/status`; 0 on platforms without procfs).
    /// Process-wide and monotonic: comparing backends needs one process
    /// per run.
    pub peak_rss_bytes: u64,
    /// Shard loads performed by the counting passes (0 when a resident
    /// database was counted unsharded).
    pub shards_processed: u64,
    /// Bytes of customer rows covered by those shard loads (storage bytes
    /// for on-disk backends, heap bytes for resident ones).
    pub shard_bytes: u64,
    /// Large sequences found before the maximal phase.
    pub large_sequences: u64,
    /// Maximal large sequences (the answer size).
    pub maximal_sequences: u64,
    /// Worker threads the counting passes were configured to use (the
    /// resolved value of the miner's [`crate::Parallelism`] setting).
    pub threads_used: usize,
}

impl MiningStats {
    /// Total wall time across all phases.
    pub fn total_time(&self) -> Duration {
        self.litemset_time + self.transform_time + self.sequence_time + self.maximal_time
    }

    /// Records a sequence-phase pass and keeps the aggregates consistent.
    pub fn record_pass(&mut self, pass: SequencePassStats) {
        self.candidates_generated += pass.generated;
        self.candidates_counted += pass.counted;
        self.sequence_passes.push(pass);
    }
}

/// Peak resident-set size of this process in bytes — the `VmHWM` line of
/// `/proc/self/status` on Linux, 0 where that interface does not exist.
/// The high-water mark is process-wide and never resets, so backend
/// memory comparisons must run each configuration in its own process.
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
            return 0;
        };
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kib = rest
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse::<u64>()
                    .unwrap_or(0);
                return kib * 1024;
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_pass_aggregates() {
        let mut stats = MiningStats::default();
        stats.record_pass(SequencePassStats {
            k: 2,
            generated: 10,
            counted: 10,
            large: 4,
            backward: false,
            pruned_by_containment: 0,
            pass_time: Duration::from_millis(2),
        });
        stats.record_pass(SequencePassStats {
            k: 3,
            generated: 6,
            counted: 0, // skipped forward
            large: 0,
            backward: false,
            pruned_by_containment: 0,
            pass_time: Duration::ZERO,
        });
        stats.record_pass(SequencePassStats {
            k: 3,
            generated: 0,
            counted: 1, // 5 of the 6 pruned by containment
            large: 1,
            backward: true,
            pruned_by_containment: 5,
            pass_time: Duration::from_millis(1),
        });
        assert_eq!(stats.candidates_generated, 16);
        assert_eq!(stats.candidates_counted, 11);
        assert_eq!(stats.sequence_passes.len(), 3);
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        let rss = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            // Any running process has touched at least a page.
            assert!(rss > 0);
        } else {
            assert_eq!(rss, 0);
        }
    }

    #[test]
    fn total_time_sums_phases() {
        let stats = MiningStats {
            litemset_time: Duration::from_millis(10),
            transform_time: Duration::from_millis(5),
            sequence_time: Duration::from_millis(20),
            maximal_time: Duration::from_millis(1),
            ..MiningStats::default()
        };
        assert_eq!(stats.total_time(), Duration::from_millis(36));
    }
}
