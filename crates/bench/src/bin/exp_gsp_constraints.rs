//! **E8 — GSP time-constraint study** (extension; the generalizations the
//! 1995 conclusion proposes, formalized in the EDBT'96 follow-up).
//!
//! On one synthetic dataset: how the frequent-pattern count and the mining
//! time react to tightening max-gap, loosening the sliding window, and
//! raising min-gap. Also asserts that unconstrained GSP returns exactly
//! the number of frequent sequences AprioriAll finds (definition
//! equivalence — the pinned property of the extension).

use std::time::Instant;

use seqpat_bench::table::fmt_secs;
use seqpat_bench::{Args, Table};
use seqpat_core::{MinSupport, Miner, MinerConfig};
use seqpat_datagen::{generate, GenParams};
use seqpat_gsp::{gsp, GspConfig};

fn main() {
    let args = Args::parse();
    let minsup = 0.01;
    let dataset = "C10-T2.5-S4-I1.25";
    let params = GenParams::paper_dataset(dataset)
        .expect("paper dataset")
        .customers(args.customers.min(1_000));
    let db = generate(&params, args.seed);
    println!(
        "E8 (extension): GSP time constraints on {dataset} (|D| = {}, minsup 1%)\n",
        db.num_customers()
    );

    let run = |label: &str, config: &GspConfig, rows: &mut Vec<String>, table: &mut Table| {
        let start = Instant::now();
        let found = gsp(&db, MinSupport::Fraction(minsup), config);
        let secs = start.elapsed().as_secs_f64();
        let multi = found.iter().filter(|p| p.sequence.len() >= 2).count();
        table.row(vec![
            label.to_string(),
            fmt_secs(secs),
            found.len().to_string(),
            multi.to_string(),
        ]);
        rows.push(format!("{label},{secs:.6},{},{multi}", found.len()));
        found.len()
    };

    let mut table = Table::new(&["constraints", "time s", "frequent", "multi-element"]);
    let mut rows = Vec::new();

    let unconstrained = run("none", &GspConfig::default(), &mut rows, &mut table);
    for max_gap in [8, 4, 2, 1] {
        run(
            &format!("max-gap {max_gap}"),
            &GspConfig::default().max_gap(max_gap),
            &mut rows,
            &mut table,
        );
    }
    for min_gap in [1, 2, 4] {
        run(
            &format!("min-gap {min_gap}"),
            &GspConfig::default().min_gap(min_gap),
            &mut rows,
            &mut table,
        );
    }
    for window in [1, 2, 4] {
        run(
            &format!("window {window}"),
            &GspConfig::default().window(window),
            &mut rows,
            &mut table,
        );
    }
    table.print();

    // Definition equivalence with the 1995 pipeline.
    let apriori =
        Miner::new(MinerConfig::new(MinSupport::Fraction(minsup)).include_non_maximal(true))
            .mine(&db);
    assert_eq!(
        unconstrained,
        apriori.patterns.len(),
        "unconstrained GSP must match AprioriAll's frequent-sequence count"
    );
    println!(
        "\nunconstrained GSP = AprioriAll: {} frequent sequences ✓",
        unconstrained
    );
    let path = args
        .write_csv(
            "e8_gsp_constraints",
            "constraints,seconds,frequent,multi_element",
            &rows,
        )
        .expect("write CSV");
    println!("wrote {}", path.display());
}
