//! CLI entry point: `cargo run -p seqpat-lint -- [--root DIR] [--format F]`.

use std::path::PathBuf;
use std::process::ExitCode;

use seqpat_lint::{engine, rules};

const USAGE: &str =
    "usage: seqpat-lint [--root DIR] [--format human|json|sarif] [--rules R1,R2] [--list-rules]
  --root DIR     workspace root to scan (default: .)
  --format FMT   report format: human (default), json, or sarif; machine
                 formats go to stdout with the human report on stderr
  --json         legacy alias for --format json (conflicts with --format)
  --rules LIST   comma-separated rule names; only their findings are
                 reported (exit code follows the filtered set)
  --effects-out PATH
                 write the per-fn inferred-effect table (effects.json,
                 byte-identical across runs) to PATH
  --determinism-out PATH
                 write the parallel-fan-out / reducer audit
                 (determinism.json, byte-identical across runs) to PATH
  --explain RULE render every finding of RULE with its full witness chain
                 (exit code still follows the full deny set)
  --list-rules   print each rule's name, severity, and tier, then exit";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format: Option<Format> = None;
    let mut legacy_json = false;
    let mut rule_filter: Option<Vec<String>> = None;
    let mut effects_out: Option<PathBuf> = None;
    let mut determinism_out: Option<PathBuf> = None;
    let mut explain_rule: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => legacy_json = true,
            "--format" => match args.next().as_deref() {
                Some("human") => format = Some(Format::Human),
                Some("json") => format = Some(Format::Json),
                Some("sarif") => format = Some(Format::Sarif),
                Some(other) => {
                    eprintln!("--format must be human, json, or sarif (got `{other}`)\n{USAGE}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("--format needs an argument\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--rules" => match args.next() {
                Some(list) => match rules::parse_rule_filter(&list) {
                    Ok(names) => rule_filter = Some(names),
                    Err(e) => {
                        eprintln!("--rules: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => {
                    eprintln!("--rules needs a comma-separated list of rule names\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory argument\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--effects-out" => match args.next() {
                Some(path) => effects_out = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--effects-out needs a file path argument\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--determinism-out" => match args.next() {
                Some(path) => determinism_out = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--determinism-out needs a file path argument\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--explain" => match args.next() {
                Some(name) => {
                    if !rules::is_known_rule(&name) {
                        let known: Vec<&str> = rules::RULES.iter().map(|r| r.name).collect();
                        eprintln!(
                            "--explain names unknown rule `{name}`; known rules: {}",
                            known.join(", ")
                        );
                        return ExitCode::FAILURE;
                    }
                    explain_rule = Some(name);
                }
                None => {
                    eprintln!("--explain needs a rule name argument\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--list-rules" => {
                for r in rules::RULES {
                    println!(
                        "{} [{}/{}]\n    {}",
                        r.name,
                        r.severity.as_str(),
                        r.tier.as_str(),
                        r.desc
                    );
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let format = match (format, legacy_json) {
        (Some(_), true) => {
            eprintln!("--json is a legacy alias for --format json; pass one or the other\n{USAGE}");
            return ExitCode::FAILURE;
        }
        (Some(f), false) => f,
        (None, true) => Format::Json,
        (None, false) => Format::Human,
    };

    let mut report = match engine::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("seqpat-lint: failed to scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    for (path, body) in [
        (&effects_out, &report.effects_json),
        (&determinism_out, &report.determinism_json),
    ] {
        let Some(path) = path else { continue };
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(dir);
            }
        }
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("seqpat-lint: failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(filter) = &rule_filter {
        report
            .violations
            .retain(|v| filter.iter().any(|r| r == v.rule));
    }
    if let Some(rule) = &explain_rule {
        print!("{}", engine::explain(&report, rule));
        return if report.has_deny() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    let human = |line: String| {
        if format == Format::Human {
            println!("{line}");
        } else {
            eprintln!("{line}");
        }
    };
    for v in &report.violations {
        human(format!(
            "{}:{}: [{} {}] {}",
            v.path,
            v.line,
            rules::severity_of(v.rule).as_str(),
            v.rule,
            v.message
        ));
    }
    human(format!(
        "seqpat-lint: {} violation(s), {} suppressed, {} files scanned",
        report.violations.len(),
        report.suppressed,
        report.files_scanned
    ));
    match format {
        Format::Human => {}
        Format::Json => print!("{}", engine::to_json(&report)),
        Format::Sarif => print!("{}", engine::to_sarif(&report)),
    }

    if report.has_deny() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
