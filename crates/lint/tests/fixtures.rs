//! Fixture tests for every lint rule: seeded violations are caught, clean
//! idioms are not, suppressions work, and the lexer-driven heuristics do
//! not false-positive on tricky token streams.
//!
//! Fixtures are inline strings analyzed under fake workspace paths — this
//! file lives under `tests/`, which the real lint run whole-file-exempts,
//! so the seeded violations below never show up in `seqpat-lint` output.

use seqpat_lint::dataflow;
use seqpat_lint::engine::{lint_source, to_json, Report};
use seqpat_lint::rules::{self, analyze_file, stats_coverage};

const KERNEL: &str = "crates/core/src/counting.rs";
const NON_KERNEL: &str = "crates/core/src/miner.rs";

/// Distinct rule names fired on `src` at `path`.
fn fired(path: &str, src: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = analyze_file(path, src).iter().map(|v| v.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

// ---- rule 1: no-panic-in-kernels -----------------------------------------

#[test]
fn unwrap_and_expect_fire_only_in_kernel_files() {
    let src = r#"
fn f(v: &[u32]) -> u32 {
    let a = v.first().unwrap();
    let b = v.last().expect("non-empty");
    a + b
}
"#;
    assert_eq!(fired(KERNEL, src), vec![rules::NO_PANIC_IN_KERNELS]);
    assert!(fired(NON_KERNEL, src).is_empty());
}

#[test]
fn panic_family_macros_fire() {
    for mac in [
        "panic!(\"boom\")",
        "unreachable!()",
        "todo!()",
        "unimplemented!()",
    ] {
        let src = format!("fn f() {{ {mac}; }}\n");
        assert_eq!(
            fired(KERNEL, &src),
            vec![rules::NO_PANIC_IN_KERNELS],
            "{mac}"
        );
    }
}

#[test]
fn slice_indexing_needs_a_debug_assert_in_the_fn() {
    let bare = "fn f(v: &[u32], i: usize) -> u32 { v[i] }\n";
    assert_eq!(fired(KERNEL, bare), vec![rules::NO_PANIC_IN_KERNELS]);

    let guarded = r#"
fn f(v: &[u32], i: usize) -> u32 {
    debug_assert!(i < v.len(), "index in range");
    v[i]
}
"#;
    assert!(fired(KERNEL, guarded).is_empty());
}

#[test]
fn cfg_test_modules_and_tests_dirs_are_exempt() {
    let src = r#"
#[cfg(test)]
mod tests {
    fn f(v: &[u32]) -> u32 { v.first().unwrap() + v[0] }
}
"#;
    assert!(fired(KERNEL, src).is_empty());
    let loose = "fn f() { panic!(\"anywhere\"); }\n";
    assert!(fired("crates/core/tests/integration.rs", loose).is_empty());
    assert!(fired("crates/core/src/proptests.rs", loose).is_empty());
}

// ---- rule: nondeterministic-iteration-flow (dataflow) --------------------

/// Distinct rule names fired by the iteration-flow analysis on `src`.
fn flow_fired(src: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = dataflow::flow_violations(NON_KERNEL, src)
        .iter()
        .map(|v| v.rule)
        .collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

#[test]
fn hash_iteration_reaching_the_returned_vec_fires_with_a_chain() {
    let src = r#"
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for k in m.keys() {
        out.push(*k);
    }
    out
}
"#;
    let hits = dataflow::flow_violations(NON_KERNEL, src);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].rule, rules::NONDET_ITERATION_FLOW);
    let chain = hits[0]
        .chain
        .as_deref()
        .expect("flow findings carry chains");
    assert!(chain.contains("hash container `m`"), "{chain}");
    assert!(chain.contains("appends in hash order"), "{chain}");
}

#[test]
fn sorted_collect_kills_the_taint() {
    let src = r#"
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut keys: Vec<u32> = m.keys().copied().collect();
    keys.sort_unstable();
    keys
}
"#;
    assert!(flow_fired(src).is_empty());
}

#[test]
fn order_insensitive_reductions_over_hash_maps_are_clean() {
    let src = r#"
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> usize {
    m.iter().count()
}
"#;
    assert!(flow_fired(src).is_empty());
    let sum = r#"
use std::collections::HashMap;
fn g(m: &HashMap<u32, u32>) -> u32 {
    let total: u32 = m.values().sum();
    total
}
"#;
    assert!(flow_fired(sum).is_empty());
}

#[test]
fn hash_typed_let_binding_is_tracked_through_the_loop() {
    let src = r#"
fn f(rows: &[u32]) -> Vec<u32> {
    let mut m = std::collections::HashMap::<u32, u32>::new();
    for r in rows {
        m.insert(*r, 1);
    }
    let mut out = Vec::new();
    for k in m.keys() {
        out.push(*k);
    }
    out
}
"#;
    assert_eq!(flow_fired(src), vec![rules::NONDET_ITERATION_FLOW]);
}

#[test]
fn float_accumulation_of_hash_ordered_values_fires() {
    let src = r#"
use std::collections::HashMap;
fn f(m: &HashMap<u32, f64>, acc: f64) -> f64 {
    let mut acc = acc;
    for v in m.values() {
        acc += *v;
    }
    acc
}
"#;
    // The shadowing `let mut acc = acc;` keeps `acc` float-typed via the
    // param; the += of the tainted loop binder is the sink.
    let hits = dataflow::flow_violations(NON_KERNEL, src);
    assert!(
        hits.iter()
            .any(|v| v.message.contains("float accumulation")),
        "{hits:?}"
    );
}

#[test]
fn general_fold_over_a_hash_container_fires_but_sum_does_not() {
    let folded = r#"
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> u32 {
    m.iter().fold(0, |a, (_, v)| a.wrapping_mul(31).wrapping_add(*v))
}
"#;
    assert_eq!(flow_fired(folded), vec![rules::NONDET_ITERATION_FLOW]);
}

#[test]
fn direct_extend_from_hash_iter_taints_the_receiver() {
    let src = r#"
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>, out: &mut Vec<(u32, u32)>) {
    out.extend(m.iter().map(|(k, v)| (*k, *v)));
}
"#;
    assert_eq!(flow_fired(src), vec![rules::NONDET_ITERATION_FLOW]);
    let sorted = r#"
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>, out: &mut Vec<(u32, u32)>) {
    out.extend(m.iter().map(|(k, v)| (*k, *v)));
    out.sort_unstable();
}
"#;
    assert!(flow_fired(sorted).is_empty());
}

// ---- rule 3: no-lossy-casts-in-kernels -----------------------------------

#[test]
fn bare_int_casts_fire_only_in_kernel_files() {
    let src = "fn f(n: usize) -> u32 { n as u32 }\n";
    assert_eq!(fired(KERNEL, src), vec![rules::NO_LOSSY_CASTS_IN_KERNELS]);
    assert!(fired(NON_KERNEL, src).is_empty());
}

#[test]
fn float_casts_and_debug_assert_interiors_are_clean() {
    let to_float = "fn f(n: usize) -> f64 { n as f64 }\n";
    assert!(fired(KERNEL, to_float).is_empty());
    let inside_assert = r#"
fn f(n: usize, m: u64) {
    debug_assert!(m <= n as u64, "fits");
}
"#;
    assert!(fired(KERNEL, inside_assert).is_empty());
}

// ---- rule 4: no-wall-clock-outside-stats ---------------------------------

#[test]
fn instant_fires_outside_stats_bench_and_cli() {
    let src = "use std::time::Instant;\nfn f() -> Instant { Instant::now() }\n";
    assert_eq!(
        fired(NON_KERNEL, src),
        vec![rules::NO_WALL_CLOCK_OUTSIDE_STATS]
    );
    assert!(fired("crates/core/src/stats.rs", src).is_empty());
    assert!(fired("crates/itemset/src/stats.rs", src).is_empty());
    assert!(fired("crates/bench/src/harness.rs", src).is_empty());
    assert!(fired("crates/cli/src/main.rs", src).is_empty());
}

#[test]
fn system_time_fires_too() {
    let src = "fn f() { let _ = std::time::SystemTime::now(); }\n";
    assert_eq!(
        fired(NON_KERNEL, src),
        vec![rules::NO_WALL_CLOCK_OUTSIDE_STATS]
    );
}

// ---- rule 5: stats-coverage ----------------------------------------------

#[test]
fn unprinted_stats_fields_are_reported() {
    let stats = r#"
pub struct MiningStats {
    pub covered_time: u64,
    pub missing_count: u64,
}
"#;
    let cli = r#"
fn print_stats(s: &MiningStats) {
    eprintln!("{}", s.covered_time);
}
"#;
    let violations = stats_coverage("crates/core/src/stats.rs", stats, cli);
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].rule, rules::STATS_COVERAGE);
    assert!(violations[0].message.contains("missing_count"));
}

#[test]
fn fully_printed_stats_are_clean() {
    let stats = "pub struct MiningStats {\n    pub a: u64,\n    pub b: u64,\n}\n";
    let cli = "fn p(s: &MiningStats) { eprintln!(\"{} {}\", s.a, s.b); }\n";
    assert!(stats_coverage("crates/core/src/stats.rs", stats, cli).is_empty());
}

// ---- suppressions --------------------------------------------------------

#[test]
fn justified_suppression_on_previous_line_silences_the_finding() {
    let src = r#"
fn f(v: &[u32]) -> u32 {
    // seqpat-lint: allow(no-panic-in-kernels) the caller guarantees v is non-empty
    v.first().unwrap()
}
"#;
    let (kept, suppressed) = lint_source(KERNEL, src);
    assert!(kept.is_empty(), "kept: {kept:?}");
    assert_eq!(suppressed, 1);
}

#[test]
fn same_line_suppression_works() {
    let src = "fn f(v: &[u32]) -> u32 { v.first().unwrap() } // seqpat-lint: allow(no-panic-in-kernels) fixture site\n";
    let (kept, suppressed) = lint_source(KERNEL, src);
    assert!(kept.is_empty(), "kept: {kept:?}");
    assert_eq!(suppressed, 1);
}

#[test]
fn suppression_does_not_leak_past_the_next_line() {
    let src = r#"
fn f(v: &[u32]) -> u32 {
    // seqpat-lint: allow(no-panic-in-kernels) only the next line is covered
    let a = v.first().unwrap();

    let b = v.last().unwrap();
    a + b
}
"#;
    let (kept, suppressed) = lint_source(KERNEL, src);
    assert_eq!(suppressed, 1);
    assert_eq!(kept.len(), 1);
    assert_eq!(kept[0].rule, rules::NO_PANIC_IN_KERNELS);
}

#[test]
fn unjustified_suppression_is_a_meta_violation_and_does_not_suppress() {
    let src = r#"
fn f(v: &[u32]) -> u32 {
    // seqpat-lint: allow(no-panic-in-kernels)
    v.first().unwrap()
}
"#;
    let (kept, suppressed) = lint_source(KERNEL, src);
    assert_eq!(suppressed, 0);
    let rule_names: Vec<&str> = kept.iter().map(|v| v.rule).collect();
    assert!(rule_names.contains(&rules::SUPPRESSION));
    assert!(rule_names.contains(&rules::NO_PANIC_IN_KERNELS));
}

#[test]
fn unknown_rule_in_suppression_is_a_meta_violation() {
    let src = "// seqpat-lint: allow(no-such-rule) misspelled\nfn f() {}\n";
    let (kept, _) = lint_source(KERNEL, src);
    assert_eq!(kept.len(), 1);
    assert_eq!(kept[0].rule, rules::SUPPRESSION);
    assert!(kept[0].message.contains("no-such-rule"));
}

#[test]
fn wrong_rule_name_does_not_suppress_a_different_finding() {
    let src = r#"
fn f(n: usize) -> u32 {
    // seqpat-lint: allow(no-panic-in-kernels) names the wrong rule for a cast
    n as u32
}
"#;
    let (kept, suppressed) = lint_source(KERNEL, src);
    assert_eq!(suppressed, 0);
    let rule_names: Vec<&str> = kept.iter().map(|v| v.rule).collect();
    assert!(rule_names.contains(&rules::NO_LOSSY_CASTS_IN_KERNELS));
    // The unused allow-comment is itself now a finding.
    assert!(rule_names.contains(&rules::STALE_SUPPRESSION));
}

// ---- lexing corner cases: no false positives -----------------------------

#[test]
fn panicky_text_inside_strings_and_comments_is_ignored() {
    let src = r##"
fn f() -> &'static str {
    // this comment mentions panic!("x") and .unwrap() and m.iter()
    let plain = "call .unwrap() then panic!(\"boom\") as u32 [0]";
    let raw = r#"Instant::now() and v[i] and "quoted" text"#;
    let _ = plain;
    raw
}
"##;
    assert!(fired(KERNEL, src).is_empty());
}

#[test]
fn lifetimes_and_char_literals_do_not_confuse_the_lexer() {
    let src = r#"
fn f<'a>(x: &'a [u32]) -> usize {
    let quote = '\'';
    let dquote = '"';
    let _ = (quote, dquote);
    x.len()
}
"#;
    assert!(fired(KERNEL, src).is_empty());
}

#[test]
fn range_expressions_are_not_float_literals() {
    let src = r#"
fn f(n: usize) -> usize {
    let mut total = 0;
    for i in 0..n {
        total += i;
    }
    total
}
"#;
    assert!(fired(KERNEL, src).is_empty());
}

#[test]
fn nested_block_comments_hide_their_contents() {
    let src = "/* outer /* inner panic!() */ still comment .unwrap() */\nfn f() {}\n";
    assert!(fired(KERNEL, src).is_empty());
}

// ---- report rendering ----------------------------------------------------

#[test]
fn json_output_escapes_and_counts() {
    let report = Report {
        violations: analyze_file(KERNEL, "fn f() { panic!(\"quoted \\\"x\\\"\"); }\n"),
        suppressed: 2,
        files_scanned: 1,
        effects_json: String::new(),
        determinism_json: String::new(),
    };
    let json = to_json(&report);
    assert!(json.contains("\"violation_count\": 1"));
    assert!(json.contains("\"suppressed\": 2"));
    assert!(json.contains("\"rule\": \"no-panic-in-kernels\""));
    assert!(json.contains("\"line\": 1"));
}
