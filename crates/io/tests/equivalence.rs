//! Backend equivalence: mining through the on-disk colstore must be
//! bit-identical to mining the resident database — same patterns, same
//! supports — for every counting strategy, parallelism level, shard size,
//! and algorithm.

use std::num::NonZeroUsize;
use std::path::PathBuf;

use seqpat_core::{
    Algorithm, CountingStrategy, Database, Dataset, MinSupport, Miner, MinerConfig, MiningResult,
    Parallelism,
};
use seqpat_datagen::{generate, stream, GenParams};
use seqpat_io::colstore::{write_transformed, ColstoreDataset};
use seqpat_io::stream::{build_colstore, min_count_for};

fn small_params() -> GenParams {
    GenParams::default()
        .customers(40)
        .items(120)
        .corpus_size(25, 60)
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("seqpat-equiv-{}-{name}", std::process::id()));
    p
}

/// Sorted `(pattern, support)` rendering, the comparison key everywhere.
fn rendered(result: &MiningResult) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = result
        .patterns
        .iter()
        .map(|p| (p.sequence.to_string(), p.support))
        .collect();
    v.sort();
    v
}

/// Builds a colstore for `db` via the streaming pipeline and returns it
/// opened. The caller removes `path` when done.
fn streamed_store(db: &Database, minsup: f64, path: &PathBuf) -> ColstoreDataset {
    let min_count = min_count_for(db.num_customers() as u64, minsup);
    build_colstore(
        || db.customers().iter().cloned(),
        min_count,
        &Default::default(),
        16,
        path,
    )
    .unwrap();
    ColstoreDataset::open(path).unwrap()
}

#[test]
fn all_strategies_parallelism_and_shard_sizes_match_in_memory() {
    let db = generate(&small_params(), 42);
    // minsup 0.2 / max_length 2 keeps the 61-mine matrix fast under the
    // dev profile; the algorithm test below covers the k=3 passes.
    let minsup = 0.2;
    let path = tmp("matrix.colstore");
    let store = streamed_store(&db, minsup, &path);

    let baseline =
        Miner::new(MinerConfig::new(MinSupport::Fraction(minsup)).max_length(2)).mine(&db);
    let expected = rendered(&baseline);
    assert!(
        !expected.is_empty(),
        "degenerate fixture: no patterns to compare"
    );

    for strategy in [
        CountingStrategy::Direct,
        CountingStrategy::HashTree,
        CountingStrategy::Vertical,
        CountingStrategy::Bitmap,
        CountingStrategy::Auto,
    ] {
        for parallelism in [
            Parallelism::Serial,
            Parallelism::Threads(NonZeroUsize::new(3).unwrap()),
        ] {
            for shard in [Some(1), Some(7), None] {
                let mut config = MinerConfig::new(MinSupport::Fraction(minsup))
                    .max_length(2)
                    .counting(strategy)
                    .parallelism(parallelism);
                if let Some(s) = shard {
                    config = config.shard_customers(s);
                }
                let miner = Miner::new(config);
                let mem = miner.mine(&db);
                let disk = miner.mine_dataset(&store);
                assert_eq!(
                    rendered(&mem),
                    expected,
                    "mem backend diverged: {strategy:?} {parallelism:?} shard {shard:?}"
                );
                assert_eq!(
                    rendered(&disk),
                    expected,
                    "colstore backend diverged: {strategy:?} {parallelism:?} shard {shard:?}"
                );
                assert_eq!(disk.min_support_count, baseline.min_support_count);
                assert_eq!(disk.num_customers, baseline.num_customers);
                if shard.is_some() {
                    assert!(
                        disk.stats.shards_processed > 0,
                        "sharded colstore run recorded no shards"
                    );
                }
            }
        }
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn every_algorithm_matches_across_backends_when_sharded() {
    let db = generate(&small_params(), 7);
    let minsup = 0.2;
    let path = tmp("algos.colstore");
    let store = streamed_store(&db, minsup, &path);

    for algorithm in [
        Algorithm::AprioriAll,
        Algorithm::AprioriSome,
        Algorithm::DynamicSome { step: 2 },
    ] {
        for strategy in [
            CountingStrategy::Direct,
            CountingStrategy::HashTree,
            CountingStrategy::Vertical,
            CountingStrategy::Bitmap,
            CountingStrategy::Auto,
        ] {
            let miner = Miner::new(
                MinerConfig::new(MinSupport::Fraction(minsup))
                    .max_length(3)
                    .algorithm(algorithm)
                    .counting(strategy)
                    .shard_customers(7),
            );
            let mem = miner.mine(&db);
            let disk = miner.mine_dataset(&store);
            assert_eq!(
                rendered(&mem),
                rendered(&disk),
                "{algorithm:?} {strategy:?} diverged across backends"
            );
        }
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn streamed_build_equals_conversion_of_in_memory_transform() {
    // Two roads to the same file: stream-build from raw customers, or
    // convert the in-memory transformed database. Both must open to
    // byte-equal tables and rows.
    let db = generate(&small_params().customers(30), 99);
    let minsup = 0.1;
    let stream_path = tmp("two-roads-stream.colstore");
    let convert_path = tmp("two-roads-convert.colstore");
    let streamed = streamed_store(&db, minsup, &stream_path);

    // Rebuild the transformed database exactly as the miner does.
    let min_count = min_count_for(db.num_customers() as u64, minsup);
    let table = seqpat_core::phases::litemset::litemset_phase(&db, min_count, &Default::default());
    let tdb = seqpat_core::phases::transform::transform_phase(&db, table.table);
    write_transformed(&tdb, &convert_path).unwrap();
    let converted = ColstoreDataset::open(&convert_path).unwrap();

    assert_eq!(streamed.num_rows(), converted.num_rows());
    assert_eq!(streamed.total_customers(), converted.total_customers());
    assert_eq!(streamed.table().len(), converted.table().len());
    let a = std::fs::read(&stream_path).unwrap();
    let b = std::fs::read(&convert_path).unwrap();
    assert_eq!(a, b, "stream-built and converted stores differ on disk");
    std::fs::remove_file(&stream_path).unwrap();
    std::fs::remove_file(&convert_path).unwrap();
}

#[test]
fn datagen_stream_feeds_colstore_without_database() {
    // The out-of-core path end to end: customers are never collected into
    // a Database; every pass regenerates them from (params, seed).
    let params = small_params().customers(50);
    let minsup = 0.2;
    let path = tmp("datagen-stream.colstore");
    let min_count = min_count_for(50, minsup);
    let summary = build_colstore(
        || stream(&params, 1234),
        min_count,
        &Default::default(),
        8,
        &path,
    )
    .unwrap();
    assert_eq!(summary.total_customers, 50);

    let store = ColstoreDataset::open(&path).unwrap();
    let db = generate(&params, 1234);
    let miner = Miner::new(
        MinerConfig::new(MinSupport::Fraction(minsup))
            .max_length(3)
            .shard_customers(7),
    );
    assert_eq!(
        rendered(&miner.mine(&db)),
        rendered(&miner.mine_dataset(&store)),
        "stream-built store diverged from batch-generated database"
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn peak_rss_stat_is_reported() {
    let db = generate(&small_params().customers(20), 3);
    let result = Miner::new(MinerConfig::new(MinSupport::Fraction(0.2)).max_length(2)).mine(&db);
    if cfg!(target_os = "linux") {
        assert!(result.stats.peak_rss_bytes > 0);
    }
}
