//! Recursive-descent item parser over the lexer's token stream.
//!
//! Produces an item-level view of one source file: functions (with the
//! calls, panic constructs, allocation sites, and `match` expressions inside
//! their bodies), enum declarations, and `use … as …` aliases. This is not a
//! full Rust parser — it recognizes exactly the item structure the semantic
//! rules need (modules, impls, traits, fns, enums, use-trees) and skips
//! everything else by balanced-delimiter matching, so unknown syntax
//! degrades to "no facts extracted" rather than misparses.
//!
//! Loop-scope model: a *loop scope* is the body of a lexical `for`/`while`/
//! `loop` **or of a closure** (closures passed to iterator adapters and
//! `map_chunks` run per element, so for allocation discipline they count as
//! loops). A scope is *innermost* when no other loop scope nests strictly
//! inside it; an allocation site is "in the innermost loop" when its
//! smallest enclosing loop scope is innermost.

use std::collections::BTreeSet;

use crate::lexer::{lex, Token, TokenKind};

/// Parsed view of one source file.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Every `fn` item found, in source order (tests included, flagged).
    pub fns: Vec<FnDef>,
    /// Every `enum` declaration found.
    pub enums: Vec<EnumDef>,
    /// `use … as …` renames: (local alias, real last path segment).
    pub aliases: Vec<(String, String)>,
}

/// One `enum` declaration.
#[derive(Debug)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// 1-based line of the name.
    pub line: u32,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
}

/// One `fn` item and the facts extracted from its body.
#[derive(Debug)]
pub struct FnDef {
    /// Name with any `r#` prefix stripped.
    pub name: String,
    /// 1-based line of the name.
    pub line: u32,
    /// Enclosing `impl Type` / `trait Type` name, if any.
    pub impl_type: Option<String>,
    /// Inside `#[cfg(test)]` / annotated `#[test]` (body facts are skipped).
    pub is_test: bool,
    /// Whether the fn has a body at all (trait method decls do not).
    pub has_body: bool,
    /// Call sites in the body (excluding `debug_assert*!` interiors).
    pub calls: Vec<CallSite>,
    /// Panic constructs in the body (excluding `debug_assert*!` interiors).
    pub panics: Vec<PanicSite>,
    /// I/O macro invocations (`println!`-family) in the body.
    pub ios: Vec<IoSite>,
    /// Allocation sites in the body.
    pub allocs: Vec<AllocSite>,
    /// `match` expressions in the body.
    pub matches: Vec<MatchExpr>,
    /// Signature parameters: `(name, flattened type text)`.
    pub params: Vec<Param>,
    /// Closure expressions in the body with their capture sets.
    pub closures: Vec<ClosureSite>,
}

/// One fn parameter.
#[derive(Debug)]
pub struct Param {
    /// Binder name (`self` receivers are skipped).
    pub name: String,
    /// Type tokens joined with single spaces, e.g. `& mut Vec < u32 >`.
    pub ty: String,
}

/// How a closure captures one outer binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureMode {
    /// Read-only borrow.
    ByRef,
    /// The closure body mutates the binding (assignment, compound assign,
    /// `&mut`, or a mutating-method receiver).
    ByMutRef,
    /// `move` closure taking ownership (and not mutating).
    ByMove,
}

impl CaptureMode {
    /// Kebab-case name, as rendered into determinism.json.
    pub fn as_str(self) -> &'static str {
        match self {
            CaptureMode::ByRef => "by-ref",
            CaptureMode::ByMutRef => "by-mut-ref",
            CaptureMode::ByMove => "by-move",
        }
    }
}

/// One outer binding captured by a closure.
#[derive(Debug)]
pub struct Capture {
    /// Captured binding name.
    pub name: String,
    /// How the closure uses the binding.
    pub mode: CaptureMode,
    /// The binding's type is interior-mutable (`Mutex`/`RefCell`/`Atomic*`…)
    /// or the body calls an interior-mutability method on it
    /// (`lock`/`borrow_mut`/`fetch_add`/`store`…).
    pub interior_mut: bool,
}

/// One closure expression and its capture set.
#[derive(Debug)]
pub struct ClosureSite {
    /// 1-based line of the opening `|` (or the `move` keyword's line).
    pub line: u32,
    /// Whether the closure is a `move` closure.
    pub is_move: bool,
    /// Name of the call this closure is an immediate argument of, e.g.
    /// `spawn` for `scope.spawn(|| …)`. `None` for let-bound closures.
    pub handed_to: Option<String>,
    /// Captured outer bindings, sorted by name.
    pub captures: Vec<Capture>,
}

/// One call site inside a fn body.
#[derive(Debug)]
pub struct CallSite {
    /// Called name (last segment, `r#` stripped).
    pub name: String,
    /// Qualifying path segments before the name (empty for bare calls).
    pub path: Vec<String>,
    /// 1-based line.
    pub line: u32,
    /// True for `.name(…)` method-call syntax.
    pub is_method: bool,
    /// True when the smallest enclosing loop scope exists and is innermost
    /// (same scope model as [`AllocSite::in_innermost_loop`]).
    pub in_innermost_loop: bool,
}

/// One I/O macro invocation (`println!`-family).
#[derive(Debug)]
pub struct IoSite {
    /// 1-based line.
    pub line: u32,
    /// Human-readable description, e.g. "`println!`".
    pub what: String,
}

/// One panic construct (`.unwrap()`, `.expect()`, `panic!`-family macro).
#[derive(Debug)]
pub struct PanicSite {
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the construct, e.g. "`.unwrap()`".
    pub what: String,
}

/// One allocation site.
#[derive(Debug)]
pub struct AllocSite {
    /// 1-based line.
    pub line: u32,
    /// Human-readable description, e.g. "`vec!`" or "`.collect()`".
    pub what: String,
    /// True when the smallest enclosing loop scope exists and is innermost.
    pub in_innermost_loop: bool,
}

/// One `match` expression: its line and the (flattened) arm alternatives.
#[derive(Debug)]
pub struct MatchExpr {
    /// 1-based line of the `match` keyword.
    pub line: u32,
    /// One entry per `|`-alternative of each arm.
    pub arms: Vec<MatchArm>,
}

/// One arm alternative of a `match`.
#[derive(Debug)]
pub struct MatchArm {
    /// 1-based line the alternative starts on.
    pub line: u32,
    /// Leading path of the pattern, e.g. `["CountingStrategy", "Direct"]`.
    /// Empty for literal/tuple/parenthesized patterns.
    pub head: Vec<String>,
    /// True for `_` or a bare lowercase binding (a catch-all).
    pub wildcard: bool,
}

/// Idents that look like calls when followed by `(` but are keywords.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "let", "move", "mut", "ref", "unsafe", "where", "use", "pub", "mod", "struct", "enum", "trait",
    "type", "const", "static", "dyn", "box", "await", "yield", "union", "fn", "impl",
];

/// Method names that allocate (or may) when invoked.
const ALLOC_METHODS: &[&str] = &["collect", "to_vec", "to_owned", "clone", "to_string"];

/// Growth methods that allocate only when growing a locally-owned buffer.
const GROW_METHODS: &[&str] = &["push", "extend", "extend_from_slice"];

/// Associated constructors on uppercase types that allocate (or may).
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "default"];

/// Macros that write to stdout/stderr. `write!`/`writeln!` are deliberately
/// absent: they target `fmt::Write`/`io::Write` alike and cannot be told
/// apart lexically.
const IO_MACROS: &[&str] = &["println", "eprintln", "print", "eprint"];

/// Tokens that can directly precede the opening `|` of a closure.
const CLOSURE_STARTERS: &[&str] = &["(", ",", "=", "{", ";", ">", "&", "move", "return", "else"];

/// Types whose values can be mutated through a shared reference. A capture
/// of such a binding is shared mutable state regardless of capture mode.
const INTERIOR_MUT_TYPES: &[&str] = &[
    "Mutex",
    "RwLock",
    "RefCell",
    "Cell",
    "OnceCell",
    "OnceLock",
    "LazyLock",
    "UnsafeCell",
];

/// Method names that require a `&mut` receiver: calling one on a captured
/// binding upgrades the capture to [`CaptureMode::ByMutRef`]. `sort*` names
/// are matched by prefix in addition to this list.
const MUT_METHODS: &[&str] = &[
    "push",
    "push_str",
    "insert",
    "remove",
    "extend",
    "extend_from_slice",
    "clear",
    "truncate",
    "resize",
    "retain",
    "append",
    "pop",
    "drain",
    "dedup",
    "fill",
    "copy_from_slice",
    "get_mut",
    "iter_mut",
    "swap",
    "take",
    "set",
];

/// Method names that mutate through a shared reference (lock/cell/atomic
/// APIs): calling one flags the capture as interior-mutable.
const INTERIOR_MUT_METHODS: &[&str] = &[
    "lock",
    "borrow_mut",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "store",
    "compare_exchange",
    "get_or_init",
];

/// True when a flattened type-token is (or names) an interior-mutable type.
fn interior_mut_type_token(tok: &str) -> bool {
    INTERIOR_MUT_TYPES.contains(&tok) || tok.starts_with("Atomic")
}

/// One closure expression's spans, before capture analysis.
struct ClosureSpan {
    /// Code index of the opening `|`.
    start: usize,
    /// Parameter list interior (between the `|`s), half-open.
    p0: usize,
    p1: usize,
    /// Body interior, half-open.
    b0: usize,
    b1: usize,
    /// Whether the `move` keyword precedes the parameter list.
    is_move: bool,
}

/// Parses one file. `rel_path` is carried through for attribution only.
pub fn parse_file(rel_path: &str, src: &str) -> ParsedFile {
    let tokens = lex(src);
    let code: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .map(|(i, _)| i)
        .collect();
    let mut p = Parser {
        src,
        tokens,
        code,
        out: ParsedFile {
            path: rel_path.to_string(),
            fns: Vec::new(),
            enums: Vec::new(),
            aliases: Vec::new(),
        },
    };
    let end = p.code.len();
    p.items(0, end, false, None);
    p.out
}

struct Parser<'a> {
    src: &'a str,
    tokens: Vec<Token>,
    code: Vec<usize>,
    out: ParsedFile,
}

impl Parser<'_> {
    fn tok(&self, ci: usize) -> Option<&Token> {
        self.code.get(ci).and_then(|&ti| self.tokens.get(ti))
    }

    fn txt(&self, ci: usize) -> &str {
        match self.tok(ci) {
            Some(t) => t.text(self.src),
            None => "",
        }
    }

    fn kind(&self, ci: usize) -> Option<TokenKind> {
        self.tok(ci).map(|t| t.kind)
    }

    fn line(&self, ci: usize) -> u32 {
        self.tok(ci).map_or(0, |t| t.line)
    }

    /// Code index of the delimiter closing the one at `open_ci`.
    fn match_delim(&self, open_ci: usize) -> Option<usize> {
        let open = self.txt(open_ci);
        let close = match open {
            "(" => ")",
            "[" => "]",
            "{" => "}",
            _ => return None,
        };
        let mut depth: u32 = 0;
        let mut ci = open_ci;
        while ci < self.code.len() {
            let s = self.txt(ci);
            if s == open {
                depth += 1;
            } else if s == close {
                depth -= 1;
                if depth == 0 {
                    return Some(ci);
                }
            }
            ci += 1;
        }
        None
    }

    /// With `ci` at `<`, returns the index just past the matching `>`.
    /// `->` arrows inside do not close the angle bracket.
    fn skip_angles(&self, ci: usize) -> usize {
        let mut depth: u32 = 0;
        let mut k = ci;
        while k < self.code.len() {
            match self.txt(k) {
                "<" => depth += 1,
                ">" if k == 0 || self.txt(k - 1) != "-" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return k + 1;
                    }
                }
                "" | ";" | "{" => return k,
                _ => {}
            }
            k += 1;
        }
        k
    }

    /// Walks items in `[ci, end)`, recursing into `mod`/`impl`/`trait`.
    fn items(&mut self, mut ci: usize, end: usize, in_test: bool, impl_type: Option<&str>) {
        while ci < end {
            let mut item_test = in_test;
            // Attributes (inner attributes are skipped; `#[test]` and
            // `#[cfg(test)]` mark the following item as test code).
            loop {
                if self.txt(ci) == "#" && self.txt(ci + 1) == "!" && self.txt(ci + 2) == "[" {
                    ci = self.match_delim(ci + 2).map_or(end, |c| c + 1);
                    continue;
                }
                if self.txt(ci) == "#" && self.txt(ci + 1) == "[" {
                    let Some(close) = self.match_delim(ci + 1) else {
                        return;
                    };
                    let first = self.txt(ci + 2);
                    if first == "test"
                        || (first == "cfg" && (ci + 3..close).any(|k| self.txt(k) == "test"))
                    {
                        item_test = true;
                    }
                    ci = close + 1;
                    continue;
                }
                break;
            }
            // Item modifiers.
            loop {
                match self.txt(ci) {
                    "pub" => {
                        ci += 1;
                        if self.txt(ci) == "(" {
                            ci = self.match_delim(ci).map_or(end, |c| c + 1);
                        }
                    }
                    "unsafe" | "async" | "default" => ci += 1,
                    "extern" => {
                        ci += 1;
                        if self.kind(ci) == Some(TokenKind::Str) {
                            ci += 1;
                        }
                    }
                    "const" if self.txt(ci + 1) == "fn" => ci += 1,
                    _ => break,
                }
            }
            match self.txt(ci) {
                "" => return,
                "fn" => ci = self.item_fn(ci, item_test, impl_type),
                "mod" => {
                    let mut k = ci + 2;
                    if self.txt(k) == "{" {
                        let close = self.match_delim(k).unwrap_or(end);
                        self.items(k + 1, close, item_test, None);
                        k = close;
                    }
                    ci = k + 1;
                }
                "impl" | "trait" => {
                    let is_trait = self.txt(ci) == "impl";
                    let mut k = ci + 1;
                    if self.txt(k) == "<" {
                        k = self.skip_angles(k);
                    }
                    // For `impl`: the self type is the last ident before the
                    // body (segments after `for` win in `impl Trait for T`).
                    // For `trait`: the name is the first ident.
                    let mut ty: Option<String> = if is_trait {
                        None
                    } else {
                        Some(self.txt(k).to_string())
                    };
                    loop {
                        match self.txt(k) {
                            "" => return,
                            "{" | "where" => break,
                            "for" => {
                                ty = None;
                                k += 1;
                            }
                            "<" => k = self.skip_angles(k),
                            s => {
                                if is_trait && self.kind(k) == Some(TokenKind::Ident) {
                                    ty = Some(s.to_string());
                                }
                                k += 1;
                            }
                        }
                    }
                    while self.txt(k) != "{" {
                        if self.txt(k).is_empty() {
                            return;
                        }
                        k = if self.txt(k) == "<" {
                            self.skip_angles(k)
                        } else {
                            k + 1
                        };
                    }
                    let close = self.match_delim(k).unwrap_or(end);
                    self.items(k + 1, close, item_test, ty.as_deref());
                    ci = close + 1;
                }
                "enum" => ci = self.item_enum(ci),
                "use" => ci = self.item_use(ci),
                "struct" | "union" | "static" | "type" | "const" => {
                    // Skip to the terminating `;` or the end of a `{…}` body.
                    let mut k = ci + 1;
                    loop {
                        match self.txt(k) {
                            "" => return,
                            ";" => {
                                k += 1;
                                break;
                            }
                            "{" => {
                                k = self.match_delim(k).map_or(end, |c| c + 1);
                                break;
                            }
                            "(" | "[" => k = self.match_delim(k).map_or(end, |c| c + 1),
                            "<" => k = self.skip_angles(k),
                            _ => k += 1,
                        }
                    }
                    ci = k;
                }
                "macro_rules" => {
                    // `macro_rules! name { … }` — skip the whole blob.
                    let mut k = ci + 1;
                    while !matches!(self.txt(k), "{" | "(" | "[" | "") {
                        k += 1;
                    }
                    ci = self.match_delim(k).map_or(end, |c| c + 1);
                }
                _ => ci += 1,
            }
        }
    }

    /// Parses a `fn` item with `ci` at the `fn` keyword; returns the index
    /// just past the item.
    fn item_fn(&mut self, ci: usize, is_test: bool, impl_type: Option<&str>) -> usize {
        let name = self.txt(ci + 1).trim_start_matches("r#").to_string();
        let line = self.line(ci + 1);
        let mut def = FnDef {
            name,
            line,
            impl_type: impl_type.map(str::to_string),
            is_test,
            has_body: false,
            calls: Vec::new(),
            panics: Vec::new(),
            ios: Vec::new(),
            allocs: Vec::new(),
            matches: Vec::new(),
            params: Vec::new(),
            closures: Vec::new(),
        };
        def.params = self.fn_params(ci + 2);
        // Scan the signature for the body `{` (or `;` for declarations).
        let mut k = ci + 2;
        let mut depth: u32 = 0;
        let open = loop {
            match self.txt(k) {
                "" => {
                    self.out.fns.push(def);
                    return self.code.len();
                }
                ";" if depth == 0 => {
                    self.out.fns.push(def);
                    return k + 1;
                }
                "{" if depth == 0 => break k,
                "(" | "[" => {
                    depth += 1;
                    k += 1;
                }
                ")" | "]" => {
                    depth = depth.saturating_sub(1);
                    k += 1;
                }
                "<" if depth == 0 => k = self.skip_angles(k),
                _ => k += 1,
            }
        };
        let close = self.match_delim(open).unwrap_or(self.code.len());
        def.has_body = true;
        if !is_test {
            self.analyze_body(open + 1, close, &mut def);
        }
        self.out.fns.push(def);
        close + 1
    }

    /// Parses an `enum` item with `ci` at the `enum` keyword.
    fn item_enum(&mut self, ci: usize) -> usize {
        let name = self.txt(ci + 1).to_string();
        let line = self.line(ci + 1);
        let mut k = ci + 2;
        while self.txt(k) != "{" {
            if self.txt(k).is_empty() || self.txt(k) == ";" {
                return k + 1;
            }
            k = if self.txt(k) == "<" {
                self.skip_angles(k)
            } else {
                k + 1
            };
        }
        let Some(close) = self.match_delim(k) else {
            return self.code.len();
        };
        let mut variants = Vec::new();
        let mut j = k + 1;
        while j < close {
            // Variant attributes.
            while self.txt(j) == "#" && self.txt(j + 1) == "[" {
                j = self.match_delim(j + 1).map_or(close, |c| c + 1);
            }
            if j >= close {
                break;
            }
            if self.kind(j) == Some(TokenKind::Ident) {
                variants.push(self.txt(j).to_string());
                j += 1;
                // Payload / discriminant.
                if matches!(self.txt(j), "(" | "{") {
                    j = self.match_delim(j).map_or(close, |c| c + 1);
                }
                while j < close && self.txt(j) != "," {
                    j += 1;
                }
            }
            j += 1;
        }
        self.out.enums.push(EnumDef {
            name,
            line,
            variants,
        });
        close + 1
    }

    /// Parses a `use` item with `ci` at the `use` keyword, recording
    /// `as`-renames only (plain re-exports resolve by name anyway).
    fn item_use(&mut self, ci: usize) -> usize {
        let mut k = ci + 1;
        let mut brace: u32 = 0;
        let mut last_seg = String::new();
        loop {
            match self.txt(k) {
                "" => return k,
                ";" if brace == 0 => return k + 1,
                "{" => brace += 1,
                "}" => brace = brace.saturating_sub(1),
                "as" => {
                    let alias = self.txt(k + 1).trim_start_matches("r#").to_string();
                    if !alias.is_empty() && !last_seg.is_empty() && alias != "_" {
                        self.out.aliases.push((alias, last_seg.clone()));
                    }
                    k += 1;
                }
                s => {
                    if self.kind(k) == Some(TokenKind::Ident) {
                        last_seg = s.trim_start_matches("r#").to_string();
                    }
                }
            }
            k += 1;
        }
    }

    /// Extracts calls, panics, allocations, and matches from a fn body
    /// spanning code indices `[b0, b1)`.
    fn analyze_body(&mut self, b0: usize, b1: usize, def: &mut FnDef) {
        let da = self.debug_assert_spans(b0, b1);
        let in_da = |ci: usize| da.iter().any(|&(s, e)| ci >= s && ci <= e);
        let scopes = self.loop_scopes(b0, b1);
        // A scope is innermost when no other scope nests strictly inside it.
        let innermost: Vec<bool> = scopes
            .iter()
            .map(|s| {
                !scopes
                    .iter()
                    .any(|t| t.0 >= s.0 && t.1 <= s.1 && (t.0 > s.0 || t.1 < s.1))
            })
            .collect();
        // Smallest enclosing loop scope of a site, if any.
        let enclosing = |ci: usize| -> Option<usize> {
            scopes
                .iter()
                .enumerate()
                .filter(|(_, s)| s.0 <= ci && ci < s.1)
                .min_by_key(|(_, s)| s.1 - s.0)
                .map(|(i, _)| i)
        };

        let mut ci = b0;
        while ci < b1 {
            if self.kind(ci) != Some(TokenKind::Ident) || in_da(ci) {
                ci += 1;
                continue;
            }
            let t = self.txt(ci);
            let line = self.line(ci);
            let after_dot = ci > b0 && self.txt(ci.wrapping_sub(1)) == ".";
            let after_fn = ci > b0 && self.txt(ci.wrapping_sub(1)) == "fn";
            let bang = self.txt(ci + 1) == "!";

            // Panic constructs.
            if bang && crate::rules::PANIC_MACROS.contains(&t) {
                def.panics.push(PanicSite {
                    line,
                    what: format!("`{t}!`"),
                });
            }
            if after_dot && (t == "unwrap" || t == "expect") && self.txt(ci + 1) == "(" {
                def.panics.push(PanicSite {
                    line,
                    what: format!("`.{t}()`"),
                });
            }

            // I/O macros.
            if bang && IO_MACROS.contains(&t) {
                def.ios.push(IoSite {
                    line,
                    what: format!("`{t}!`"),
                });
            }

            // Allocation sites.
            let mut alloc_what: Option<String> = None;
            if bang && (t == "vec" || t == "format") {
                alloc_what = Some(format!("`{t}!`"));
            } else if after_dot && ALLOC_METHODS.contains(&t) && self.paren_after(ci + 1).is_some()
            {
                alloc_what = Some(format!("`.{t}()`"));
            } else if after_dot && GROW_METHODS.contains(&t) && self.txt(ci + 1) == "(" {
                // Growth only counts against a buffer owned by the loop
                // scope itself; pushes into hoisted/param buffers are the
                // fix, not the violation.
                if let Some(si) = enclosing(ci) {
                    let recv = self.txt(ci.wrapping_sub(2)).to_string();
                    let (lo, _) = scopes[si];
                    let owned = self.kind(ci.wrapping_sub(2)) == Some(TokenKind::Ident)
                        && (lo..ci).any(|k| {
                            self.txt(k) == "let"
                                && (self.txt(k + 1) == recv
                                    || (self.txt(k + 1) == "mut" && self.txt(k + 2) == recv))
                        });
                    if owned {
                        alloc_what = Some(format!("`.{t}()` into a loop-local buffer"));
                    }
                }
            } else if ALLOC_CTORS.contains(&t)
                && ci >= 3
                && self.txt(ci - 1) == ":"
                && self.txt(ci - 2) == ":"
                && self.txt(ci + 1) == "("
                && self
                    .txt(ci - 3)
                    .trim_start_matches("r#")
                    .starts_with(|c: char| c.is_ascii_uppercase())
            {
                alloc_what = Some(format!("`{}::{t}()`", self.txt(ci - 3)));
            }
            if let Some(what) = alloc_what {
                let in_innermost_loop = enclosing(ci).is_some_and(|si| innermost[si]);
                def.allocs.push(AllocSite {
                    line,
                    what,
                    in_innermost_loop,
                });
            }

            // Call sites.
            if !bang
                && !after_fn
                && !NON_CALL_KEYWORDS.contains(&t)
                && self.paren_after(ci + 1).is_some()
            {
                let mut path = Vec::new();
                if !after_dot {
                    let mut j = ci;
                    while j >= 3
                        && self.txt(j - 1) == ":"
                        && self.txt(j - 2) == ":"
                        && self.kind(j - 3) == Some(TokenKind::Ident)
                    {
                        path.insert(0, self.txt(j - 3).trim_start_matches("r#").to_string());
                        j -= 3;
                    }
                }
                def.calls.push(CallSite {
                    name: t.trim_start_matches("r#").to_string(),
                    path,
                    line,
                    is_method: after_dot,
                    in_innermost_loop: enclosing(ci).is_some_and(|si| innermost[si]),
                });
            }

            // `match` expressions.
            if t == "match" && !after_dot && !after_fn {
                self.parse_match(ci, b1, def);
            }

            ci += 1;
        }

        self.extract_closures(b0, b1, def);
    }

    /// Parses the parameter list of a fn whose signature starts at `k`
    /// (the token after the fn name).
    fn fn_params(&self, mut k: usize) -> Vec<Param> {
        if self.txt(k) == "<" {
            k = self.skip_angles(k);
        }
        if self.txt(k) != "(" {
            return Vec::new();
        }
        let Some(close) = self.match_delim(k) else {
            return Vec::new();
        };
        let mut params = Vec::new();
        let mut j = k + 1;
        while j < close {
            // A binder is an ident directly followed by `:` (not `::`) at
            // any nesting — destructured-tuple params are rare enough that
            // only the `name: Type` shape is recognized.
            let is_binder = self.kind(j) == Some(TokenKind::Ident)
                && self.txt(j + 1) == ":"
                && self.txt(j + 2) != ":"
                && self.txt(j.wrapping_sub(1)) != ":";
            if !is_binder {
                j += 1;
                continue;
            }
            let name = self.txt(j).trim_start_matches("r#").to_string();
            // Type text runs to the `,` that closes this parameter.
            let mut ty = String::new();
            let mut depth: i32 = 0;
            let mut angle: i32 = 0;
            let mut t = j + 2;
            while t < close {
                let s = self.txt(t);
                match s {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "<" => angle += 1,
                    ">" if self.txt(t.wrapping_sub(1)) != "-" => angle -= 1,
                    "," if depth == 0 && angle <= 0 => break,
                    _ => {}
                }
                if !ty.is_empty() {
                    ty.push(' ');
                }
                ty.push_str(s);
                t += 1;
            }
            params.push(Param { name, ty });
            j = t + 1;
        }
        params
    }

    /// Finds every closure in `[b0, b1)` and computes its capture set
    /// against the enclosing fn's bindings (params and `let`s).
    fn extract_closures(&self, b0: usize, b1: usize, def: &mut FnDef) {
        let spans = self.closure_spans(b0, b1);
        if spans.is_empty() {
            return;
        }
        // Outer bindings: (name, code index where visible, interior-mut).
        let mut outer: Vec<(String, usize, bool)> = def
            .params
            .iter()
            .map(|p| {
                let interior = p.ty.split(' ').any(interior_mut_type_token);
                (p.name.clone(), b0, interior)
            })
            .collect();
        let mut ci = b0;
        while ci < b1 {
            if self.txt(ci) == "let" {
                // Binders run to the `=` / `;` closing the pattern; the
                // annotation/initializer window decides interior mutability.
                let mut names = Vec::new();
                let mut j = ci + 1;
                let mut depth: u32 = 0;
                while j < b1 {
                    match self.txt(j) {
                        "(" | "[" | "{" | "<" => depth += 1,
                        ")" | "]" | "}" | ">" => depth = depth.saturating_sub(1),
                        "=" | ";" if depth == 0 => break,
                        s if self.kind(j) == Some(TokenKind::Ident)
                            && !matches!(s, "mut" | "ref")
                            && s.starts_with(|c: char| c.is_ascii_lowercase() || c == '_') =>
                        {
                            names.push(s.to_string());
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let mut interior = false;
                let mut d: u32 = 0;
                for k in ci + 1..(j + 60).min(b1) {
                    match self.txt(k) {
                        "(" | "[" | "{" => d += 1,
                        ")" | "]" | "}" => d = d.saturating_sub(1),
                        ";" if d == 0 && k > j => break,
                        s if interior_mut_type_token(s) => interior = true,
                        _ => {}
                    }
                }
                for name in names {
                    outer.push((name, ci, interior));
                }
            }
            ci += 1;
        }

        for span in &spans {
            let mut shadowed = self.binder_names(span.p0, span.p1);
            self.collect_local_binders(span.b0, span.b1, &mut shadowed);
            // Nested closures' parameters shadow too.
            for nested in &spans {
                if nested.start > span.start && nested.b1 <= span.b1 {
                    shadowed.extend(self.binder_names(nested.p0, nested.p1));
                }
            }
            let mut caps: std::collections::BTreeMap<String, (CaptureMode, bool)> =
                std::collections::BTreeMap::new();
            for k in span.b0..span.b1 {
                if self.kind(k) != Some(TokenKind::Ident) {
                    continue;
                }
                let name = self.txt(k);
                if shadowed.contains(name) {
                    continue;
                }
                // Skip field accesses, path segments, and struct-literal
                // field names: none of them reference an outer binding.
                let prev = self.txt(k.wrapping_sub(1));
                if prev == "." || prev == ":" {
                    continue;
                }
                if self.txt(k + 1) == ":" && self.txt(k + 2) != ":" {
                    continue;
                }
                let Some(&(_, _, interior_ty)) = outer
                    .iter()
                    .rev()
                    .find(|(n, decl, _)| n == name && *decl < span.start)
                else {
                    continue;
                };
                let (mutated, interior_use) = self.mutation_at(k);
                let entry = caps
                    .entry(name.to_string())
                    .or_insert((CaptureMode::ByRef, false));
                if mutated {
                    entry.0 = CaptureMode::ByMutRef;
                }
                if interior_use || interior_ty {
                    entry.1 = true;
                }
            }
            let captures = caps
                .into_iter()
                .map(|(name, (mode, interior_mut))| Capture {
                    name,
                    mode: if span.is_move && mode == CaptureMode::ByRef {
                        CaptureMode::ByMove
                    } else {
                        mode
                    },
                    interior_mut,
                })
                .collect();
            let walk_from = if span.is_move {
                span.start.wrapping_sub(1)
            } else {
                span.start
            };
            def.closures.push(ClosureSite {
                line: self.line(span.start),
                is_move: span.is_move,
                handed_to: self.enclosing_call(walk_from, b0),
                captures,
            });
        }
    }

    /// Whether the ident at `k` is used mutably at this occurrence, and
    /// whether the use goes through an interior-mutability method.
    fn mutation_at(&self, k: usize) -> (bool, bool) {
        let mut mutated = false;
        let mut interior = false;
        // `&mut name`.
        if k >= 2 && self.txt(k - 1) == "mut" && self.txt(k - 2) == "&" {
            mutated = true;
        }
        // Method receiver: `name.method(` / `name[i].method(`.
        let mut m = k + 1;
        if self.txt(m) == "[" {
            if let Some(c) = self.match_delim(m) {
                m = c + 1;
            }
        }
        if self.txt(m) == "."
            && self.kind(m + 1) == Some(TokenKind::Ident)
            && self.txt(m + 2) == "("
        {
            let meth = self.txt(m + 1);
            if MUT_METHODS.contains(&meth) || meth.starts_with("sort") {
                mutated = true;
            }
            if INTERIOR_MUT_METHODS.contains(&meth) {
                interior = true;
            }
        }
        // Assignment / compound assignment: `name = …`, `name += …`,
        // `name[i] -= …` (the index was already skipped above).
        match self.txt(m) {
            "=" if self.txt(m + 1) != "=" => mutated = true,
            "+" | "-" | "*" | "/" | "%" | "^" | "&" | "|"
                if self.txt(m + 1) == "=" && self.txt(m + 2) != "=" =>
            {
                mutated = true;
            }
            _ => {}
        }
        (mutated, interior)
    }

    /// Binder names in a closure parameter list `[p0, p1)`: idents outside
    /// type-annotation positions.
    fn binder_names(&self, p0: usize, p1: usize) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        let mut k = p0;
        while k < p1 {
            match self.txt(k) {
                ":" if self.txt(k + 1) != ":" => {
                    // Skip the annotation until a depth-0 `,`.
                    let mut depth: i32 = 0;
                    k += 1;
                    while k < p1 {
                        match self.txt(k) {
                            "(" | "[" | "{" | "<" => depth += 1,
                            ")" | "]" | "}" => depth -= 1,
                            ">" if self.txt(k.wrapping_sub(1)) != "-" => depth -= 1,
                            "," if depth <= 0 => break,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                s if self.kind(k) == Some(TokenKind::Ident) && !matches!(s, "mut" | "ref") => {
                    out.insert(s.to_string());
                    k += 1;
                }
                _ => k += 1,
            }
        }
        out
    }

    /// Adds every binder declared inside `[b0, b1)` (`let` patterns, `for`
    /// binders, `match`-arm and `if let` patterns are approximated by their
    /// lowercase idents) to `out`.
    fn collect_local_binders(&self, b0: usize, b1: usize, out: &mut BTreeSet<String>) {
        let mut ci = b0;
        while ci < b1 {
            let t = self.txt(ci);
            if t == "let" {
                let mut j = ci + 1;
                let mut depth: u32 = 0;
                while j < b1 {
                    match self.txt(j) {
                        "(" | "[" | "{" | "<" => depth += 1,
                        ")" | "]" | "}" | ">" => depth = depth.saturating_sub(1),
                        "=" | ";" if depth == 0 => break,
                        s if self.kind(j) == Some(TokenKind::Ident)
                            && !matches!(s, "mut" | "ref")
                            && s.starts_with(|c: char| c.is_ascii_lowercase() || c == '_') =>
                        {
                            out.insert(s.to_string());
                        }
                        _ => {}
                    }
                    j += 1;
                }
            } else if t == "for" && self.kind(ci) == Some(TokenKind::Ident) {
                let mut j = ci + 1;
                while j < b1 && self.txt(j) != "in" && self.txt(j) != "{" {
                    if self.kind(j) == Some(TokenKind::Ident)
                        && !matches!(self.txt(j), "mut" | "ref")
                    {
                        out.insert(self.txt(j).to_string());
                    }
                    j += 1;
                }
            }
            ci += 1;
        }
    }

    /// Name of the innermost call the token at `k` is an argument of, found
    /// by walking backwards to an unmatched `(` preceded by an ident.
    fn enclosing_call(&self, mut k: usize, b0: usize) -> Option<String> {
        let mut depth: u32 = 0;
        while k > b0 {
            k -= 1;
            match self.txt(k) {
                ")" | "]" | "}" => depth += 1,
                "(" => {
                    if depth > 0 {
                        depth -= 1;
                    } else {
                        return (self.kind(k.wrapping_sub(1)) == Some(TokenKind::Ident)
                            && !NON_CALL_KEYWORDS.contains(&self.txt(k.wrapping_sub(1))))
                        .then(|| {
                            self.txt(k.wrapping_sub(1))
                                .trim_start_matches("r#")
                                .to_string()
                        });
                    }
                }
                "[" | "{" => {
                    if depth > 0 {
                        depth -= 1;
                    } else {
                        return None;
                    }
                }
                ";" if depth == 0 => return None,
                _ => {}
            }
        }
        None
    }

    /// `debug_assert*!(…)` interiors as inclusive code-index spans.
    fn debug_assert_spans(&self, b0: usize, b1: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for ci in b0..b1 {
            if self.kind(ci) == Some(TokenKind::Ident)
                && self.txt(ci).starts_with("debug_assert")
                && self.txt(ci + 1) == "!"
                && matches!(self.txt(ci + 2), "(" | "[" | "{")
            {
                if let Some(close) = self.match_delim(ci + 2) {
                    out.push((ci, close));
                }
            }
        }
        out
    }

    /// Loop scopes in `[b0, b1)` as half-open interior code-index ranges:
    /// `for`/`while`/`loop` bodies and closure bodies.
    fn loop_scopes(&self, b0: usize, b1: usize) -> Vec<(usize, usize)> {
        let mut scopes = Vec::new();
        let mut ci = b0;
        while ci < b1 {
            let t = self.txt(ci);
            if self.kind(ci) == Some(TokenKind::Ident)
                && matches!(t, "for" | "while" | "loop")
                && self.txt(ci + 1) != "<"
            {
                // Header: first `{` outside parens/brackets opens the body.
                let mut k = ci + 1;
                let mut depth: u32 = 0;
                loop {
                    match self.txt(k) {
                        "" | ";" => break,
                        "(" | "[" => {
                            depth += 1;
                            k += 1;
                        }
                        ")" | "]" => {
                            depth = depth.saturating_sub(1);
                            k += 1;
                        }
                        "{" if depth == 0 => {
                            if let Some(close) = self.match_delim(k) {
                                scopes.push((k + 1, close));
                            }
                            break;
                        }
                        _ => k += 1,
                    }
                }
            }
            ci += 1;
        }
        scopes.extend(self.closure_spans(b0, b1).into_iter().map(|c| (c.b0, c.b1)));
        scopes
    }

    /// Closure expressions in `[b0, b1)` with their parameter and body spans.
    fn closure_spans(&self, b0: usize, b1: usize) -> Vec<ClosureSpan> {
        let mut out = Vec::new();
        let mut ci = b0;
        while ci < b1 {
            if self.txt(ci) != "|"
                || ci == b0
                || !CLOSURE_STARTERS.contains(&self.txt(ci.wrapping_sub(1)))
            {
                ci += 1;
                continue;
            }
            // Closure: `|params| body` or `|| body`.
            let params_end = if self.txt(ci + 1) == "|" {
                ci + 1
            } else {
                let mut k = ci + 1;
                let mut depth: u32 = 0;
                loop {
                    match self.txt(k) {
                        "" | ";" | "{" => break,
                        "(" | "[" => {
                            depth += 1;
                            k += 1;
                        }
                        ")" | "]" => {
                            depth = depth.saturating_sub(1);
                            k += 1;
                        }
                        "<" => k = self.skip_angles(k),
                        "|" if depth == 0 => break,
                        _ => k += 1,
                    }
                }
                k
            };
            if self.txt(params_end) != "|" {
                ci += 1;
                continue;
            }
            let mut k = params_end + 1;
            if self.txt(k) == "-" && self.txt(k + 1) == ">" {
                // Return type forces a braced body.
                k += 2;
                while !matches!(self.txt(k), "{" | "" | ";") {
                    k = if self.txt(k) == "<" {
                        self.skip_angles(k)
                    } else {
                        k + 1
                    };
                }
            }
            let body = if self.txt(k) == "{" {
                self.match_delim(k).map(|close| (k + 1, close))
            } else {
                // Expression body: up to a depth-0 `,` `)` `}` `;`.
                let start = k;
                let mut depth: u32 = 0;
                loop {
                    match self.txt(k) {
                        "" => break,
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" if depth == 0 => break,
                        ")" | "]" | "}" => depth -= 1,
                        "," | ";" if depth == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                (k > start).then_some((start, k))
            };
            if let Some((cb0, cb1)) = body {
                out.push(ClosureSpan {
                    start: ci,
                    p0: ci + 1,
                    p1: params_end,
                    b0: cb0,
                    b1: cb1,
                    is_move: self.txt(ci.wrapping_sub(1)) == "move",
                });
            }
            ci += 1;
        }
        out
    }

    /// If a call's argument list opens at `ci` (directly `(` or after a
    /// `::<…>` turbofish), returns the index of the `(`.
    fn paren_after(&self, ci: usize) -> Option<usize> {
        if self.txt(ci) == "(" {
            return Some(ci);
        }
        if self.txt(ci) == ":" && self.txt(ci + 1) == ":" && self.txt(ci + 2) == "<" {
            let j = self.skip_angles(ci + 2);
            if self.txt(j) == "(" {
                return Some(j);
            }
        }
        None
    }

    /// Parses one `match` expression with `ci` at the keyword; records the
    /// arm alternatives on `def`. Nested matches are found by the caller's
    /// flat scan, so this does not recurse.
    fn parse_match(&self, ci: usize, b1: usize, def: &mut FnDef) {
        // Scrutinee: first `{` outside parens/brackets opens the arm block.
        let mut k = ci + 1;
        let mut depth: u32 = 0;
        let open = loop {
            if k >= b1 {
                return;
            }
            match self.txt(k) {
                "" | ";" => return,
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "{" if depth == 0 => break k,
                "{" => match self.match_delim(k) {
                    Some(c) => k = c,
                    None => return,
                },
                _ => {}
            }
            k += 1;
        };
        let Some(close) = self.match_delim(open) else {
            return;
        };
        let mut arms = Vec::new();
        let mut k = open + 1;
        while k < close {
            // Pattern region: up to `=>` at depth 0.
            let pat_start = k;
            let mut d: u32 = 0;
            let mut arrow = None;
            let mut j = k;
            while j < close {
                match self.txt(j) {
                    "(" | "[" | "{" => d += 1,
                    ")" | "]" | "}" => d = d.saturating_sub(1),
                    "=" if d == 0 && self.txt(j + 1) == ">" => {
                        arrow = Some(j);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            let Some(arrow) = arrow else { break };
            // A depth-0 `if` starts the guard; alternatives end there.
            let mut pat_end = arrow;
            let mut d: u32 = 0;
            for j in pat_start..arrow {
                match self.txt(j) {
                    "(" | "[" | "{" => d += 1,
                    ")" | "]" | "}" => d = d.saturating_sub(1),
                    "if" if d == 0 => {
                        pat_end = j;
                        break;
                    }
                    _ => {}
                }
            }
            // Split alternatives at depth-0 `|`.
            let mut alt_start = pat_start;
            let mut d: u32 = 0;
            for j in pat_start..=pat_end {
                let at_end = j == pat_end;
                let split = at_end
                    || match self.txt(j) {
                        "(" | "[" | "{" => {
                            d += 1;
                            false
                        }
                        ")" | "]" | "}" => {
                            d = d.saturating_sub(1);
                            false
                        }
                        "|" => d == 0,
                        _ => false,
                    };
                if split {
                    if j > alt_start {
                        arms.push(self.parse_alt(alt_start, j));
                    }
                    alt_start = j + 1;
                }
            }
            // Arm body: braced (skip) or expression (to a depth-0 `,`).
            let mut j = arrow + 2;
            if self.txt(j) == "{" {
                j = self.match_delim(j).map_or(close, |c| c + 1);
                if self.txt(j) == "," {
                    j += 1;
                }
            } else {
                let mut d: u32 = 0;
                while j < close {
                    match self.txt(j) {
                        "(" | "[" | "{" => d += 1,
                        ")" | "]" | "}" => d = d.saturating_sub(1),
                        "," if d == 0 => {
                            j += 1;
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            k = j.max(k + 1);
        }
        def.matches.push(MatchExpr {
            line: self.line(ci),
            arms,
        });
    }

    /// Parses one arm alternative spanning `[s, e)` into its leading path
    /// and catch-all-ness.
    fn parse_alt(&self, s: usize, e: usize) -> MatchArm {
        let line = self.line(s);
        let mut k = s;
        while k < e && matches!(self.txt(k), "&" | "ref" | "mut" | "box") {
            k += 1;
        }
        if self.txt(k) == "_" {
            return MatchArm {
                line,
                head: Vec::new(),
                wildcard: true,
            };
        }
        let mut head = Vec::new();
        if self.kind(k) == Some(TokenKind::Ident) {
            head.push(self.txt(k).trim_start_matches("r#").to_string());
            k += 1;
            while self.txt(k) == ":" && self.txt(k + 1) == ":" {
                if self.kind(k + 2) == Some(TokenKind::Ident) {
                    head.push(self.txt(k + 2).trim_start_matches("r#").to_string());
                    k += 3;
                } else {
                    break;
                }
            }
        }
        // A single lowercase segment followed by nothing is a bare binding —
        // semantically a catch-all.
        let wildcard = head.len() == 1
            && k >= e
            && head[0].starts_with(|c: char| c.is_ascii_lowercase() || c == '_');
        MatchArm {
            line,
            head,
            wildcard,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fns_enums_and_aliases_are_collected() {
        let src = r#"
pub enum CountingStrategy { Direct, HashTree, Auto }
use crate::helpers::run as go;
impl Foo {
    pub fn method(&self) -> u32 { helper() }
}
fn helper() -> u32 { 7 }
"#;
        let f = parse_file("crates/x/src/lib.rs", src);
        assert_eq!(f.enums.len(), 1);
        assert_eq!(f.enums[0].variants, vec!["Direct", "HashTree", "Auto"]);
        assert_eq!(f.aliases, vec![("go".to_string(), "run".to_string())]);
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].name, "method");
        assert_eq!(f.fns[0].impl_type.as_deref(), Some("Foo"));
        assert_eq!(f.fns[0].calls.len(), 1);
        assert_eq!(f.fns[0].calls[0].name, "helper");
        assert!(f.fns[1].impl_type.is_none());
    }

    #[test]
    fn impl_trait_for_type_attributes_to_the_type() {
        let src = "impl std::fmt::Display for Bar { fn fmt(&self) {} }\n";
        let f = parse_file("x.rs", src);
        assert_eq!(f.fns[0].impl_type.as_deref(), Some("Bar"));
    }

    #[test]
    fn test_code_is_flagged_and_not_analyzed() {
        let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() { v.unwrap(); }
}
fn live() { x.unwrap(); }
"#;
        let f = parse_file("x.rs", src);
        let t = f.fns.iter().find(|g| g.name == "t").unwrap();
        assert!(t.is_test);
        assert!(t.panics.is_empty());
        let live = f.fns.iter().find(|g| g.name == "live").unwrap();
        assert!(!live.is_test);
        assert_eq!(live.panics.len(), 1);
    }

    #[test]
    fn innermost_loop_allocs_are_flagged_but_hoisted_ones_are_not() {
        let src = r#"
fn f(n: usize) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    for i in 0..n {
        for j in 0..n {
            let row = vec![i as u32, j as u32];
            out.push(row);
        }
    }
    out
}
"#;
        let f = parse_file("x.rs", src);
        let g = &f.fns[0];
        let hot: Vec<_> = g.allocs.iter().filter(|a| a.in_innermost_loop).collect();
        // `vec![…]` and the push into `out`? `out` is let-bound *outside*
        // the loop, so only the vec! macro is hot.
        assert_eq!(hot.len(), 1);
        assert!(hot[0].what.contains("vec!"));
        // The top-level Vec::new is not in any loop.
        assert!(g
            .allocs
            .iter()
            .any(|a| a.what.contains("Vec::new") && !a.in_innermost_loop));
    }

    #[test]
    fn closures_count_as_loop_scopes() {
        let src = r#"
fn f(v: &[u32]) -> Vec<Vec<u32>> {
    v.iter().map(|x| vec![*x]).collect()
}
"#;
        let f = parse_file("x.rs", src);
        let g = &f.fns[0];
        assert!(g
            .allocs
            .iter()
            .any(|a| a.what.contains("vec!") && a.in_innermost_loop));
        // The trailing `.collect()` is outside the closure.
        assert!(g
            .allocs
            .iter()
            .any(|a| a.what.contains("collect") && !a.in_innermost_loop));
    }

    #[test]
    fn match_arms_record_heads_and_wildcards() {
        let src = r#"
fn f(s: Strategy) -> u32 {
    match s {
        Strategy::A => 1,
        Strategy::B | Strategy::C => 2,
        _ => 0,
    }
}
"#;
        let f = parse_file("x.rs", src);
        let m = &f.fns[0].matches[0];
        assert_eq!(m.arms.len(), 4);
        assert_eq!(m.arms[0].head, vec!["Strategy", "A"]);
        assert_eq!(m.arms[2].head, vec!["Strategy", "C"]);
        assert!(m.arms[3].wildcard);
    }

    #[test]
    fn guards_do_not_extend_the_pattern_head() {
        let src = r#"
fn f(s: S, n: u32) -> u32 {
    match s {
        S::A if n > 3 => 1,
        other => 0,
    }
}
"#;
        let f = parse_file("x.rs", src);
        let m = &f.fns[0].matches[0];
        assert_eq!(m.arms[0].head, vec!["S", "A"]);
        assert!(!m.arms[0].wildcard);
        assert!(m.arms[1].wildcard);
    }

    #[test]
    fn turbofish_calls_and_qualified_paths_resolve() {
        let src = r#"
fn f() {
    let v = build::<u32>();
    crate::chunk::run_chunks(v);
    std::panic::resume_unwind(Box::new(1));
}
"#;
        let f = parse_file("x.rs", src);
        let calls: Vec<(&str, Vec<&str>)> = f.fns[0]
            .calls
            .iter()
            .map(|c| (c.name.as_str(), c.path.iter().map(String::as_str).collect()))
            .collect();
        assert!(calls.contains(&("build", vec![])));
        assert!(calls.contains(&("run_chunks", vec!["crate", "chunk"])));
        assert!(calls.contains(&("resume_unwind", vec!["std", "panic"])));
    }

    #[test]
    fn panic_in_a_path_is_not_a_panic_macro() {
        let src = "fn f(p: Box<dyn std::any::Any>) { std::panic::resume_unwind(p); }\n";
        let f = parse_file("x.rs", src);
        assert!(f.fns[0].panics.is_empty());
    }

    #[test]
    fn debug_assert_interiors_are_skipped() {
        let src = "fn f(v: &[u32]) { debug_assert!(v.first().unwrap() < &10); }\n";
        let f = parse_file("x.rs", src);
        assert!(f.fns[0].panics.is_empty());
    }

    #[test]
    fn closure_mut_capture_and_handed_to_are_recorded() {
        let src = r#"
fn count_bad(items: &[u32], threads: usize) -> Vec<u64> {
    let mut totals = vec![0u64; 4];
    map_chunks(items, threads, |chunk: &[u32]| {
        for &x in chunk {
            totals[(x as usize) % 4] += 1;
        }
    });
    totals
}
"#;
        let f = parse_file("x.rs", src);
        let c = &f.fns[0].closures[0];
        assert_eq!(c.handed_to.as_deref(), Some("map_chunks"));
        assert!(!c.is_move);
        let cap = c.captures.iter().find(|c| c.name == "totals").unwrap();
        assert_eq!(cap.mode, CaptureMode::ByMutRef);
        assert!(!cap.interior_mut);
        // `items`/`threads` appear only outside the closure; `chunk` and
        // `x` are closure-local.
        assert_eq!(c.captures.len(), 1);
    }

    #[test]
    fn move_closures_capture_params_by_move_and_locals_shadow() {
        let src = r#"
fn run<M: Fn(&[u32]) -> u64>(items: &[u32], map: M) -> u64 {
    scope.spawn(move || {
        let mut local = Vec::new();
        local.push(1);
        map(items)
    });
    0
}
"#;
        let f = parse_file("x.rs", src);
        let c = &f.fns[0].closures[0];
        assert!(c.is_move);
        assert_eq!(c.handed_to.as_deref(), Some("spawn"));
        let map = c.captures.iter().find(|c| c.name == "map").unwrap();
        assert_eq!(map.mode, CaptureMode::ByMove);
        // The loop-local scratch buffer is not a capture.
        assert!(c.captures.iter().all(|c| c.name != "local"));
    }

    #[test]
    fn interior_mutability_is_flagged_from_type_and_method() {
        let src = r#"
fn tally(hits: &AtomicU64, cells: &RefCell<Vec<u32>>) {
    spawn(|| hits.fetch_add(1, Ordering::Relaxed));
    spawn(|| cells.borrow_mut().push(1));
}
"#;
        let f = parse_file("x.rs", src);
        let cs = &f.fns[0].closures;
        assert_eq!(cs.len(), 2);
        assert!(cs[0]
            .captures
            .iter()
            .any(|c| c.name == "hits" && c.interior_mut));
        assert!(cs[1]
            .captures
            .iter()
            .any(|c| c.name == "cells" && c.interior_mut));
    }

    #[test]
    fn let_bound_closures_have_no_handed_to() {
        let src = r#"
fn f(n: u32) -> u32 {
    let add = |x: u32| x + n;
    add(3)
}
"#;
        let f = parse_file("x.rs", src);
        let c = &f.fns[0].closures[0];
        assert!(c.handed_to.is_none());
        let n = c.captures.iter().find(|c| c.name == "n").unwrap();
        assert_eq!(n.mode, CaptureMode::ByRef);
    }

    #[test]
    fn fn_params_record_names_and_types() {
        let src = "fn f(a: &mut Vec<u32>, b: usize) -> usize { b }\n";
        let f = parse_file("x.rs", src);
        let p = &f.fns[0].params;
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].name, "a");
        assert_eq!(p[0].ty, "& mut Vec < u32 >");
        assert_eq!(p[1].name, "b");
    }

    #[test]
    fn macro_rules_bodies_are_skipped_entirely() {
        let src = r#"
macro_rules! m {
    ($x:expr) => { $x.unwrap() };
}
fn f() {}
"#;
        let f = parse_file("x.rs", src);
        assert_eq!(f.fns.len(), 1);
        assert!(f.fns[0].panics.is_empty());
    }
}
