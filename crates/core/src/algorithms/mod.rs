//! The sequence phase (paper §4): the three mining algorithms.
//!
//! All three operate on the transformed database, where a *k-sequence* is a
//! vector of `k` litemset ids, and produce large id-sequences:
//!
//! * [`apriori_all()`] counts **every** large sequence length by length — the
//!   baseline the paper measures the others against.
//! * [`apriori_some()`] counts only *some* lengths going forward (skipping
//!   ahead by the [`next`] heuristic) and picks up skipped lengths going
//!   backward, where candidates contained in an already-found longer large
//!   sequence need no counting at all — a win when most large sequences are
//!   non-maximal.
//! * [`dynamic_some()`] jumps in fixed `step`s and generates the jumped-to
//!   candidates **on the fly** from pairs of known large sequences while
//!   scanning each customer ([`otf`]), at the price of a candidate explosion
//!   when supports are low.
//!
//! The algorithms return *supersets of the maximal large sequences* (for
//! AprioriAll, the complete large set); the maximal phase finishes the job.

pub mod apriori_all;
pub mod apriori_some;
pub mod backward;
pub mod candidate;
pub mod dynamic_some;
pub mod next;
pub mod otf;

#[cfg(test)]
mod proptests;

pub use apriori_all::apriori_all;
pub use apriori_some::apriori_some;
pub use dynamic_some::dynamic_some;

/// Which sequence-phase algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Count all lengths (paper §4.1).
    AprioriAll,
    /// Skip lengths forward, fill in backward (paper §4.2).
    AprioriSome,
    /// Jump by `step` with on-the-fly candidate generation (paper §4.3).
    DynamicSome {
        /// Jump width; the paper's experiments use 2 or 3.
        step: usize,
    },
}

impl Algorithm {
    /// Short human-readable name used by the harness and CLI.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::AprioriAll => "apriori-all",
            Algorithm::AprioriSome => "apriori-some",
            Algorithm::DynamicSome { .. } => "dynamic-some",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algorithm::DynamicSome { step } => write!(f, "dynamic-some(step={step})"),
            Algorithm::AprioriAll | Algorithm::AprioriSome => f.write_str(self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_display() {
        assert_eq!(Algorithm::AprioriAll.name(), "apriori-all");
        assert_eq!(Algorithm::AprioriSome.to_string(), "apriori-some");
        assert_eq!(
            Algorithm::DynamicSome { step: 3 }.to_string(),
            "dynamic-some(step=3)"
        );
    }
}
