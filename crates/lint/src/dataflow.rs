//! Intraprocedural order-sensitivity dataflow.
//!
//! Two analyses over one file's token stream, both per-fn:
//!
//! * **Iteration flow** (`nondeterministic-iteration-flow`): def-use taint
//!   tracking from hash-container iteration sources (`iter`/`keys`/`values`/
//!   `drain` on `HashMap`/`HashSet`/`FxHash*`, and `for … in` over such a
//!   container) to order-sensitive sinks. Taint propagates through `let`
//!   bindings and pushes into buffers; it is killed by normalization — a
//!   `sort*` call, a BTree collect, or an order-insensitive reduction
//!   (`sum`/`count`/`min`/`max`/`all`/`any`/`sum_partials`). Sinks are:
//!   formatting/printing a tainted value, float accumulation of a tainted
//!   value, a general `fold`/`reduce` over a tainted iterator, string
//!   concatenation, and — the deferred case — a tainted buffer reaching the
//!   fn result (returned or written through a `&mut` param) without a sort.
//!
//! * **Reduction audit** (`order-sensitive-reduction`): partial-merge fns
//!   (named `merge*`/`combine*`/`reduce*`/`*_partials`) must combine chunk
//!   results with associative + commutative ops only. `-=`/`/=`/`%=` always
//!   fire; `+=`/`*=` fire when the fn handles floats (float addition is not
//!   associative, so re-chunking changes the result bit-for-bit).
//!
//! Both analyses render step-by-step witness chains into
//! [`Violation::chain`], and the reduction audit feeds the
//! `determinism.json` artifact.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Token, TokenKind};
use crate::rules::{self, Violation};

/// Methods that expose a hash container's (nondeterministic) iteration
/// order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// Order-insensitive reductions: folding a hash iteration into one of these
/// is deterministic.
const REDUCERS: &[&str] = &[
    "sum",
    "count",
    "min",
    "max",
    "all",
    "any",
    "fold_first",
    "len",
];

/// Buffer methods that append in iteration order: pushing tainted data
/// through one taints the receiver.
const APPEND_METHODS: &[&str] = &["push", "extend", "extend_from_slice", "append", "push_str"];

/// Macros that render values into human-visible or serialized output.
const FORMAT_MACROS: &[&str] = &[
    "format", "println", "eprintln", "print", "eprint", "write", "writeln",
];

/// One audited partial-merge fn, for the determinism.json artifact.
#[derive(Debug)]
pub struct ReducerAudit {
    /// Workspace-relative path.
    pub path: String,
    /// Reducer fn name.
    pub fn_name: String,
    /// 1-based line of the fn name.
    pub line: u32,
    /// True when the reducer combines partials with a non-associative or
    /// non-commutative op.
    pub order_sensitive: bool,
    /// The ops behind the verdict, e.g. "`+=` on a float".
    pub ops: Vec<String>,
}

/// True for fn names that merge per-chunk partials into a combined result.
fn is_reducer_name(name: &str) -> bool {
    name.starts_with("merge")
        || name.starts_with("combine")
        || name.starts_with("reduce")
        || name.ends_with("_partials")
}

/// What a tracked binding holds, as far as the token stream shows.
#[derive(Debug, Clone, Copy, Default)]
struct Binding {
    /// Type/initializer mentions a hash container.
    hash: bool,
    /// Type/initializer mentions `f32`/`f64` (or a float literal).
    float: bool,
    /// Type/initializer mentions `String`.
    string: bool,
    /// `&mut` parameter — writes through it escape the fn.
    mut_ref_param: bool,
}

/// Ordered witness steps for one taint chain: `(line, rendered step)`.
type Chain = Vec<(u32, String)>;

/// One fn item's spans: name, signature, body (all code indices).
struct FnItem {
    name: String,
    line: u32,
    /// Signature tokens after the name, up to the body `{` (exclusive).
    sig: (usize, usize),
    /// Body interior, half-open.
    body: (usize, usize),
}

struct Flow<'a> {
    path: &'a str,
    src: &'a str,
    tokens: Vec<Token>,
    code: Vec<usize>,
    test_regions: Vec<(usize, usize)>,
}

/// Runs the iteration-flow analysis over one file, returning
/// `nondeterministic-iteration-flow` findings. Test paths yield nothing.
pub fn flow_violations(rel_path: &str, src: &str) -> Vec<Violation> {
    if rules::is_test_path(rel_path) {
        return Vec::new();
    }
    let flow = Flow::new(rel_path, src);
    let hash_fns = flow.hash_returning_fns();
    let mut out = Vec::new();
    for item in flow.fn_items() {
        flow.analyze_fn(&item, &hash_fns, &mut out);
    }
    out.sort();
    out.dedup();
    out
}

/// Runs the reduction audit over one file: `order-sensitive-reduction`
/// findings plus the per-reducer audit entries for determinism.json.
pub fn reduction_audit(rel_path: &str, src: &str) -> (Vec<Violation>, Vec<ReducerAudit>) {
    if rules::is_test_path(rel_path) {
        return (Vec::new(), Vec::new());
    }
    let flow = Flow::new(rel_path, src);
    let mut violations = Vec::new();
    let mut audits = Vec::new();
    for item in flow.fn_items() {
        if !is_reducer_name(&item.name) {
            continue;
        }
        flow.audit_reducer(&item, &mut violations, &mut audits);
    }
    violations.sort();
    violations.dedup();
    (violations, audits)
}

impl<'a> Flow<'a> {
    fn new(path: &'a str, src: &'a str) -> Self {
        let tokens = lex(src);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        Flow {
            path,
            src,
            tokens,
            code,
            test_regions: rules::test_region_spans(src),
        }
    }

    fn tok(&self, ci: usize) -> Option<&Token> {
        self.code.get(ci).and_then(|&ti| self.tokens.get(ti))
    }

    fn txt(&self, ci: usize) -> &str {
        match self.tok(ci) {
            Some(t) => t.text(self.src),
            None => "",
        }
    }

    fn kind(&self, ci: usize) -> Option<TokenKind> {
        self.tok(ci).map(|t| t.kind)
    }

    fn line(&self, ci: usize) -> u32 {
        self.tok(ci).map_or(0, |t| t.line)
    }

    fn in_test(&self, ci: usize) -> bool {
        let Some(t) = self.tok(ci) else { return false };
        self.test_regions
            .iter()
            .any(|&(s, e)| t.start >= s && t.start < e)
    }

    fn match_delim(&self, open_ci: usize) -> Option<usize> {
        let open = self.txt(open_ci);
        let close = match open {
            "(" => ")",
            "[" => "]",
            "{" => "}",
            _ => return None,
        };
        let mut depth: u32 = 0;
        let mut ci = open_ci;
        while ci < self.code.len() {
            let s = self.txt(ci);
            if s == open {
                depth += 1;
            } else if s == close {
                depth -= 1;
                if depth == 0 {
                    return Some(ci);
                }
            }
            ci += 1;
        }
        None
    }

    /// Every fn item in the file, test regions excluded.
    fn fn_items(&self) -> Vec<FnItem> {
        let mut out = Vec::new();
        let mut ci = 0;
        while ci < self.code.len() {
            let is_fn = self.txt(ci) == "fn"
                && self.kind(ci) == Some(TokenKind::Ident)
                && self.kind(ci + 1) == Some(TokenKind::Ident)
                && (ci == 0 || self.txt(ci - 1) != ".");
            if !is_fn || self.in_test(ci) {
                ci += 1;
                continue;
            }
            let name = self.txt(ci + 1).trim_start_matches("r#").to_string();
            let line = self.line(ci + 1);
            // Find the body `{` (or `;` for a declaration), paren-aware.
            let mut k = ci + 2;
            let mut depth: u32 = 0;
            let open = loop {
                match self.txt(k) {
                    "" => {
                        return out;
                    }
                    ";" if depth == 0 => break None,
                    "{" if depth == 0 => break Some(k),
                    "(" | "[" => {
                        depth += 1;
                        k += 1;
                    }
                    ")" | "]" => {
                        depth = depth.saturating_sub(1);
                        k += 1;
                    }
                    _ => k += 1,
                }
            };
            let Some(open) = open else {
                ci = k + 1;
                continue;
            };
            let close = self.match_delim(open).unwrap_or(self.code.len());
            out.push(FnItem {
                name,
                line,
                sig: (ci + 2, open),
                body: (open + 1, close),
            });
            ci = close + 1;
        }
        out
    }

    /// Names of fns in this file whose return type mentions a hash type.
    fn hash_returning_fns(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for item in self.fn_items() {
            let (s0, s1) = item.sig;
            let mut after_arrow = false;
            for k in s0..s1 {
                match self.txt(k) {
                    "-" if self.txt(k + 1) == ">" => after_arrow = true,
                    s if after_arrow && rules::HASH_TYPES.contains(&s) => {
                        out.insert(item.name.clone());
                    }
                    _ => {}
                }
            }
        }
        out
    }

    /// Bindings declared by the signature `[s0, s1)`: params with their
    /// type-derived kind flags.
    fn param_bindings(&self, s0: usize, s1: usize) -> BTreeMap<String, Binding> {
        let mut out = BTreeMap::new();
        let mut k = s0;
        while k < s1 {
            let is_binder = self.kind(k) == Some(TokenKind::Ident)
                && self.txt(k + 1) == ":"
                && self.txt(k + 2) != ":"
                && self.txt(k.wrapping_sub(1)) != ":";
            if !is_binder {
                k += 1;
                continue;
            }
            let name = self.txt(k).trim_start_matches("r#").to_string();
            let mut b = Binding::default();
            let mut depth: i32 = 0;
            let mut t = k + 2;
            b.mut_ref_param = self.txt(t) == "&"
                && (self.txt(t + 1) == "mut"
                    || (self.kind(t + 1) == Some(TokenKind::Lifetime) && self.txt(t + 2) == "mut"));
            while t < s1 {
                match self.txt(t) {
                    "(" | "[" | "{" | "<" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ">" if self.txt(t.wrapping_sub(1)) != "-" => depth -= 1,
                    "," if depth <= 0 => break,
                    s => {
                        if rules::HASH_TYPES.contains(&s) {
                            b.hash = true;
                        }
                        if s == "f32" || s == "f64" {
                            b.float = true;
                        }
                        if s == "String" {
                            b.string = true;
                        }
                    }
                }
                t += 1;
            }
            out.insert(name, b);
            k = t;
        }
        out
    }

    /// Idents the fn's result flows out of: `&mut` params plus returned
    /// locals (`return x;` and the trailing-expression ident).
    fn output_idents(&self, item: &FnItem, bind: &BTreeMap<String, Binding>) -> BTreeSet<String> {
        let (b0, b1) = item.body;
        let mut out: BTreeSet<String> = bind
            .iter()
            .filter(|(_, b)| b.mut_ref_param)
            .map(|(n, _)| n.clone())
            .collect();
        for k in b0..b1 {
            if self.txt(k) == "return"
                && self.kind(k + 1) == Some(TokenKind::Ident)
                && matches!(self.txt(k + 2), ";" | "}")
            {
                out.insert(self.txt(k + 1).to_string());
            }
        }
        // Trailing expression: the last code token of the body, skipping a
        // final `;` (then it is a statement, not a tail value).
        if b1 > b0 {
            let last = b1 - 1;
            if self.kind(last) == Some(TokenKind::Ident) && self.txt(last) != "self" {
                out.insert(self.txt(last).to_string());
            }
        }
        out
    }

    /// The iteration-flow taint analysis over one fn body.
    fn analyze_fn(&self, item: &FnItem, hash_fns: &BTreeSet<String>, out: &mut Vec<Violation>) {
        let (b0, b1) = item.body;
        let mut bind = self.param_bindings(item.sig.0, item.sig.1);
        let outputs = self.output_idents(item, &bind);
        // Taint chains: ident -> ordered witness steps `(line, text)`.
        let mut taint: BTreeMap<String, Chain> = BTreeMap::new();
        let mut findings: Vec<(u32, String, Chain)> = Vec::new();

        let mut ci = b0;
        while ci < b1 {
            let t = self.txt(ci);
            // `let [mut] <pat> (: T)? = <rhs> ;` — bind + propagate/kill.
            if t == "let" && self.kind(ci) == Some(TokenKind::Ident) {
                ci = self.handle_let(ci, b1, hash_fns, &mut bind, &mut taint);
                continue;
            }
            // `for <pat> in <expr> {` — taint binders from hash sources.
            if t == "for" && self.kind(ci) == Some(TokenKind::Ident) && self.txt(ci + 1) != "<" {
                self.handle_for(ci, b1, hash_fns, &bind, &mut taint);
                ci += 1;
                continue;
            }
            if self.kind(ci) != Some(TokenKind::Ident) {
                ci += 1;
                continue;
            }
            let prev = self.txt(ci.wrapping_sub(1));

            // Normalization kill: `x.sort*()` / `x.clear()`.
            if prev != "."
                && self.txt(ci + 1) == "."
                && (self.txt(ci + 2).starts_with("sort") || self.txt(ci + 2) == "clear")
                && self.txt(ci + 3) == "("
            {
                taint.remove(t);
                ci += 1;
                continue;
            }

            // Append sink: `recv.push(…tainted…)` taints the receiver (a
            // later sort still normalizes; unsorted outputs fire at fn end).
            if prev != "."
                && self.txt(ci + 1) == "."
                && APPEND_METHODS.contains(&self.txt(ci + 2))
                && self.txt(ci + 3) == "("
            {
                if let Some(close) = self.match_delim(ci + 3) {
                    if let Some((arg, mut chain)) =
                        self.first_tainted_in(ci + 4, close, &bind, &taint)
                    {
                        let line = self.line(ci);
                        chain.push((
                            line,
                            format!("`{t}.{}(…{arg}…)` appends in hash order", self.txt(ci + 2)),
                        ));
                        // String receivers are concatenation — order is
                        // baked in, no sort can fix it; fire immediately.
                        if self.txt(ci + 2) == "push_str" || bind.get(t).is_some_and(|b| b.string) {
                            findings.push((
                                line,
                                format!(
                                    "hash-ordered `{arg}` is concatenated into string `{t}`; \
                                     the text depends on iteration order — sort the keys first"
                                ),
                                chain,
                            ));
                        } else {
                            taint.entry(t.to_string()).or_insert(chain);
                        }
                        // Nested sinks in the args would re-report the same
                        // flow — this sink owns them.
                        ci = close + 1;
                        continue;
                    }
                }
                ci += 1;
                continue;
            }

            // Format/print sink: a tainted value rendered into output.
            if FORMAT_MACROS.contains(&t) && self.txt(ci + 1) == "!" && self.txt(ci + 2) == "(" {
                if let Some(close) = self.match_delim(ci + 2) {
                    if let Some((arg, mut chain)) =
                        self.first_tainted_in(ci + 3, close, &bind, &taint)
                    {
                        let line = self.line(ci);
                        chain.push((line, format!("`{t}!` renders `{arg}` into output")));
                        findings.push((
                            line,
                            format!(
                                "hash-ordered `{arg}` is formatted by `{t}!`; output \
                                 depends on iteration order — sort before rendering"
                            ),
                            chain,
                        ));
                    }
                    ci = close + 1;
                    continue;
                }
            }

            // Fold sink: a general fold/reduce over a tainted iterator (or
            // directly over a hash binding's iter chain) is order-sensitive
            // unless it is one of the sanctioned reducers.
            if (taint.contains_key(t) || bind.get(t).is_some_and(|b| b.hash))
                && prev != "."
                && self.txt(ci + 1) == "."
                && self.iter_chain_folds(ci + 1, b1)
            {
                let line = self.line(ci);
                let mut chain = taint
                    .get(t)
                    .cloned()
                    .unwrap_or_else(|| vec![(line, format!("`{t}` is a hash container"))]);
                chain.push((line, format!("`{t}` folded with a general closure")));
                findings.push((
                    line,
                    format!(
                        "`fold`/`reduce` over hash-ordered `{t}`; use an order-insensitive \
                         reduction (sum/count/min/max) or sort first"
                    ),
                    chain,
                ));
                ci += 1;
                continue;
            }

            // Float-accumulation sink: `facc += tainted`.
            if bind.get(t).is_some_and(|b| b.float) && prev != "." {
                let mut m = ci + 1;
                if self.txt(m) == "[" {
                    if let Some(c) = self.match_delim(m) {
                        m = c + 1;
                    }
                }
                let compound = matches!(self.txt(m), "+" | "*") && self.txt(m + 1) == "=";
                if compound {
                    // Statement RHS up to `;`.
                    let mut end = m + 2;
                    while end < b1 && self.txt(end) != ";" {
                        end += 1;
                    }
                    if let Some((arg, mut chain)) = self.first_tainted_in(m + 2, end, &bind, &taint)
                    {
                        let line = self.line(ci);
                        chain.push((
                            line,
                            format!(
                                "float `{t} {}= {arg}` accumulates in hash order",
                                self.txt(m)
                            ),
                        ));
                        findings.push((
                            line,
                            format!(
                                "float accumulation of hash-ordered `{arg}` into `{t}`; \
                                 float addition is not associative — sort the iteration first"
                            ),
                            chain,
                        ));
                    }
                }
            }

            ci += 1;
        }

        // Deferred sink: a tainted buffer that escapes the fn unsorted.
        for o in &outputs {
            if let Some(chain) = taint.get(o) {
                let line = chain.last().map_or(item.line, |&(l, _)| l);
                findings.push((
                    line,
                    format!(
                        "hash-ordered data reaches the result `{o}` of `{}` without \
                         normalization; sort `{o}` (or reduce order-insensitively)",
                        item.name
                    ),
                    chain.clone(),
                ));
            }
        }

        for (line, message, chain) in findings {
            out.push(Violation {
                path: self.path.to_string(),
                line,
                rule: rules::NONDET_ITERATION_FLOW,
                message,
                chain: Some(render_chain(self.path, &chain)),
            });
        }
    }

    /// Handles one `let` statement at `ci`; returns the index to resume at.
    fn handle_let(
        &self,
        ci: usize,
        b1: usize,
        hash_fns: &BTreeSet<String>,
        bind: &mut BTreeMap<String, Binding>,
        taint: &mut BTreeMap<String, Chain>,
    ) -> usize {
        let mut j = ci + 1;
        if self.txt(j) == "mut" {
            j += 1;
        }
        if self.kind(j) != Some(TokenKind::Ident) {
            return ci + 1;
        }
        let name = self.txt(j).to_string();
        // Window: annotation + initializer, up to the depth-0 `;`.
        let mut end = j + 1;
        let mut depth: u32 = 0;
        while end < b1 {
            match self.txt(end) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                ";" if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        let mut b = Binding::default();
        let mut source: Option<(u32, String)> = None;
        let mut carrier: Option<String> = None;
        let mut normalized = false;
        for k in j + 1..end {
            let s = self.txt(k);
            match self.kind(k) {
                Some(TokenKind::Ident) => {
                    if rules::HASH_TYPES.contains(&s) || hash_fns.contains(s) {
                        b.hash = true;
                    }
                    if s == "f32" || s == "f64" {
                        b.float = true;
                    }
                    if s == "String" {
                        b.string = true;
                    }
                    if s.starts_with("sort") || s.contains("BTree") || s == "sum_partials" {
                        normalized = true;
                    }
                    // Kind flags propagate through rebinding: `let mut acc =
                    // acc;` keeps the param's float-ness, and a `.clone()`
                    // is the same value. `.len()`-style projections drop the
                    // flags (value position only).
                    if self.txt(k.wrapping_sub(1)) != "."
                        && (self.txt(k + 1) != "." || self.txt(k + 2) == "clone")
                    {
                        if let Some(bb) = bind.get(s) {
                            b.float |= bb.float;
                            b.string |= bb.string;
                            b.hash |= bb.hash;
                        }
                    }
                    // Hash-order source: `h.iter()`-family on a hash binding.
                    if bind.get(s).is_some_and(|bb| bb.hash)
                        && self.txt(k + 1) == "."
                        && ITER_METHODS.contains(&self.txt(k + 2))
                        && self.txt(k + 3) == "("
                        && source.is_none()
                    {
                        source = Some((
                            self.line(k),
                            format!("`{s}.{}()` exposes hash-container order", self.txt(k + 2)),
                        ));
                    }
                    if taint.contains_key(s) && self.txt(k.wrapping_sub(1)) != "." {
                        carrier.get_or_insert_with(|| s.to_string());
                    }
                }
                _ => {
                    // `.sum()`-style reducer directly in the chain.
                    if s == "." && REDUCERS.contains(&self.txt(k + 1)) && self.txt(k + 2) == "(" {
                        normalized = true;
                    }
                }
            }
        }
        if self.kind_float_literal(j + 1, end) {
            b.float = true;
        }
        bind.insert(name.clone(), b);
        if normalized {
            taint.remove(&name);
        } else if let Some((line, step)) = source {
            let mut chain = vec![(line, step)];
            chain.push((
                self.line(j),
                format!("`{name}` binds the hash-ordered data"),
            ));
            taint.insert(name, chain);
        } else if let Some(parent) = carrier {
            let mut chain = taint[&parent].clone();
            chain.push((self.line(j), format!("`{name}` derives from `{parent}`")));
            taint.insert(name, chain);
        } else {
            // Rebound to a clean value.
            taint.remove(&name);
        }
        end + 1
    }

    /// Handles one `for <pat> in <expr> {` header at `ci`, tainting the
    /// loop binders when the iterated expression is hash-ordered.
    fn handle_for(
        &self,
        ci: usize,
        b1: usize,
        hash_fns: &BTreeSet<String>,
        bind: &BTreeMap<String, Binding>,
        taint: &mut BTreeMap<String, Chain>,
    ) {
        // Find `in` at depth 0.
        let mut in_at = None;
        let mut k = ci + 1;
        let mut depth: u32 = 0;
        while k < b1 && k < ci + 40 {
            match self.txt(k) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "{" | "" | ";" => break,
                "in" if depth == 0 => {
                    in_at = Some(k);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let Some(in_at) = in_at else { return };
        // Iterated expression: up to the body `{` at depth 0.
        let mut expr_end = in_at + 1;
        let mut depth: u32 = 0;
        while expr_end < b1 {
            match self.txt(expr_end) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "{" if depth == 0 => break,
                "" => break,
                _ => {}
            }
            expr_end += 1;
        }
        let mut source: Option<(u32, String)> = None;
        let mut normalized = false;
        for k in in_at + 1..expr_end {
            let s = self.txt(k);
            if self.kind(k) != Some(TokenKind::Ident) {
                if s == "." && REDUCERS.contains(&self.txt(k + 1)) {
                    normalized = true;
                }
                continue;
            }
            if s.starts_with("sort") || s.contains("BTree") {
                normalized = true;
            }
            if self.txt(k.wrapping_sub(1)) == "." {
                continue;
            }
            if bind.get(s).is_some_and(|b| b.hash) || hash_fns.contains(s) {
                source.get_or_insert((
                    self.line(k),
                    format!("`for … in` iterates hash container `{s}`"),
                ));
            } else if let Some(chain) = taint.get(s) {
                let mut c = chain.clone();
                c.push((self.line(k), format!("`for … in` iterates tainted `{s}`")));
                source.get_or_insert((self.line(k), String::new()));
                // Tainted-carrier loops reuse the carrier's chain directly.
                for binder in self.for_binders(ci + 1, in_at) {
                    taint.insert(binder, c.clone());
                }
                return;
            }
        }
        if normalized {
            return;
        }
        if let Some((line, step)) = source {
            for binder in self.for_binders(ci + 1, in_at) {
                taint.insert(binder, vec![(line, step.clone())]);
            }
        }
    }

    /// Loop-binder idents between `for` and `in`.
    fn for_binders(&self, p0: usize, p1: usize) -> Vec<String> {
        let mut out = Vec::new();
        for k in p0..p1 {
            if self.kind(k) == Some(TokenKind::Ident)
                && !matches!(self.txt(k), "mut" | "ref")
                && self
                    .txt(k)
                    .starts_with(|c: char| c.is_ascii_lowercase() || c == '_')
                && self.txt(k.wrapping_sub(1)) != "."
                && self.txt(k.wrapping_sub(1)) != ":"
            {
                out.push(self.txt(k).to_string());
            }
        }
        out
    }

    /// First hash-ordered value in `[s, e)` (value position): a tainted
    /// ident, or a direct `h.iter()`-family call on a hash binding. Returns
    /// the ident with the witness chain leading to it.
    fn first_tainted_in(
        &self,
        s: usize,
        e: usize,
        bind: &BTreeMap<String, Binding>,
        taint: &BTreeMap<String, Chain>,
    ) -> Option<(String, Chain)> {
        for k in s..e {
            if self.kind(k) != Some(TokenKind::Ident) || self.txt(k.wrapping_sub(1)) == "." {
                continue;
            }
            let name = self.txt(k);
            if let Some(chain) = taint.get(name) {
                return Some((name.to_string(), chain.clone()));
            }
            if bind.get(name).is_some_and(|b| b.hash)
                && self.txt(k + 1) == "."
                && ITER_METHODS.contains(&self.txt(k + 2))
                && self.txt(k + 3) == "("
            {
                return Some((
                    name.to_string(),
                    vec![(
                        self.line(k),
                        format!(
                            "`{name}.{}()` exposes hash-container order",
                            self.txt(k + 2)
                        ),
                    )],
                ));
            }
        }
        None
    }

    /// True when the method chain starting at the `.` at `ci` reaches a
    /// general `fold(`/`reduce(` before any sanctioned reducer or sort.
    fn iter_chain_folds(&self, mut ci: usize, b1: usize) -> bool {
        while ci + 1 < b1 && self.txt(ci) == "." {
            let m = self.txt(ci + 1);
            if m == "fold" || m == "reduce" {
                return self.txt(ci + 2) == "(";
            }
            if REDUCERS.contains(&m) || m.starts_with("sort") || m == "collect" {
                return false;
            }
            // Skip over `method(…)` to the next link.
            if self.txt(ci + 2) == "(" {
                match self.match_delim(ci + 2) {
                    Some(close) => ci = close + 1,
                    None => return false,
                }
            } else {
                return false;
            }
        }
        false
    }

    /// True when `[s, e)` contains a float literal (a `Number` token with a
    /// decimal point).
    fn kind_float_literal(&self, s: usize, e: usize) -> bool {
        (s..e).any(|k| {
            self.kind(k) == Some(TokenKind::Number)
                && self.txt(k).contains('.')
                && self.txt(k + 1) != "."
        })
    }

    /// The reduction audit for one reducer-named fn.
    fn audit_reducer(
        &self,
        item: &FnItem,
        violations: &mut Vec<Violation>,
        audits: &mut Vec<ReducerAudit>,
    ) {
        let (s0, s1) = item.sig;
        let float_sig = (s0..s1).any(|k| matches!(self.txt(k), "f32" | "f64"));
        let (b0, b1) = item.body;
        let float_body = (b0..b1)
            .any(|k| matches!(self.txt(k), "f32" | "f64") || self.kind_float_literal(k, k + 1));
        let floaty = float_sig || float_body;
        let mut ops: Vec<String> = Vec::new();
        let mut sensitive = false;
        for k in b0..b1 {
            // Compound assigns: token `=` preceded by the op char. `==`,
            // `<=`, `>=`, `!=`, `=>` never match (`<`/`>`/`!` are not in
            // either op set, and the second `=` of `==` is preceded by `=`).
            if self.txt(k) != "=" || self.txt(k + 1) == "=" {
                continue;
            }
            let op = self.txt(k.wrapping_sub(1));
            match op {
                "-" | "/" | "%" => {
                    sensitive = true;
                    ops.push(format!(
                        "`{op}=` at line {} (not commutative)",
                        self.line(k)
                    ));
                }
                "+" | "*" if floaty => {
                    sensitive = true;
                    ops.push(format!(
                        "float `{op}=` at line {} (not associative)",
                        self.line(k)
                    ));
                }
                "+" | "*" => {
                    ops.push(format!("integer `{op}=` at line {} (ok)", self.line(k)));
                }
                _ => {}
            }
        }
        if sensitive {
            for op in ops.iter().filter(|o| !o.contains("(ok)")) {
                // Attribute the finding to the op's line.
                let line = op
                    .rsplit("line ")
                    .next()
                    .and_then(|r| {
                        r.split(|c: char| !c.is_ascii_digit())
                            .next()
                            .and_then(|n| n.parse().ok())
                    })
                    .unwrap_or(item.line);
                violations.push(Violation {
                    path: self.path.to_string(),
                    line,
                    rule: rules::ORDER_SENSITIVE_REDUCTION,
                    message: format!(
                        "partial-merge fn `{}` combines chunk results with {op}; \
                         reducers must be associative and commutative so chunking \
                         cannot change the result",
                        item.name
                    ),
                    chain: Some(format!("{} -> {op}", item.name)),
                });
            }
        }
        audits.push(ReducerAudit {
            path: self.path.to_string(),
            fn_name: item.name.clone(),
            line: item.line,
            order_sensitive: sensitive,
            ops,
        });
    }
}

/// Renders witness steps into one `--explain` chain string.
fn render_chain(path: &str, steps: &[(u32, String)]) -> String {
    steps
        .iter()
        .map(|(line, s)| format!("{s} [{path}:{line}]"))
        .collect::<Vec<_>>()
        .join(" -> ")
}
