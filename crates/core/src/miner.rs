//! The [`Miner`] facade: configure once, run the full five-phase pipeline.

use crate::stats::Stopwatch;

use crate::algorithms::apriori_all::SequencePhaseOptions;
use crate::algorithms::{apriori_all, apriori_some, dynamic_some, Algorithm};
use crate::counting::{CountingStrategy, TreeParams};
use crate::dataset::Dataset;
use crate::phases::litemset::litemset_phase;
use crate::phases::maximal::{maximal_phase, LargeIdSequence};
use crate::phases::transform::transform_phase;
use crate::stats::MiningStats;
use crate::support::MinSupport;
use crate::types::database::Database;
use crate::types::sequence::Sequence;
use crate::types::transformed::{LitemsetTable, TransformedDatabase};
use crate::vertical::VerticalParams;
use seqpat_itemset::Parallelism;

/// Full configuration of a mining run.
#[derive(Debug, Clone)]
pub struct MinerConfig {
    /// Minimum support threshold.
    pub min_support: MinSupport,
    /// Which sequence-phase algorithm to run.
    pub algorithm: Algorithm,
    /// Candidate-support counting strategy.
    pub counting: CountingStrategy,
    /// Hash-tree shape for tree-based counting.
    pub tree_params: TreeParams,
    /// Vertical-strategy knobs (occurrence-list cache cap).
    pub vertical: VerticalParams,
    /// Knobs of the litemset-phase Apriori run.
    pub apriori: seqpat_itemset::AprioriConfig,
    /// Optional cap on sequence length (`None` = unbounded, the paper's
    /// setting).
    pub max_length: Option<usize>,
    /// When `true`, skip the maximal phase and report **all** large
    /// sequences. Only meaningful with [`Algorithm::AprioriAll`]; the Some
    /// variants deliberately avoid determining non-maximal sequences, so for
    /// them this flag yields whatever their backward phase retained.
    pub include_non_maximal: bool,
    /// Worker threads for support counting (litemset and sequence phases).
    /// Defaults to [`Parallelism::Auto`] (one thread per core). Parallel
    /// runs produce bit-identical results to serial ones. This setting
    /// overrides `apriori.parallelism` so one knob governs the whole
    /// pipeline.
    pub parallelism: Parallelism,
    /// Customers per counting shard (`None` = count the whole database at
    /// once). Sharding bounds the counting passes' peak memory at one
    /// shard's rows plus its scratch index; supports and patterns are
    /// bit-identical to the unsharded run.
    pub shard_customers: Option<usize>,
}

impl MinerConfig {
    /// A configuration with the given support threshold and the defaults the
    /// paper's experiments use: AprioriAll, hash-tree counting, no caps.
    pub fn new(min_support: MinSupport) -> Self {
        Self {
            min_support,
            algorithm: Algorithm::AprioriAll,
            counting: CountingStrategy::default(),
            tree_params: TreeParams::default(),
            vertical: VerticalParams::default(),
            apriori: seqpat_itemset::AprioriConfig::default(),
            max_length: None,
            include_non_maximal: false,
            parallelism: Parallelism::default(),
            shard_customers: None,
        }
    }

    /// Selects the sequence-phase algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Selects the counting strategy.
    pub fn counting(mut self, counting: CountingStrategy) -> Self {
        self.counting = counting;
        self
    }

    /// Sets the vertical strategy's knobs.
    pub fn vertical(mut self, vertical: VerticalParams) -> Self {
        self.vertical = vertical;
        self
    }

    /// Caps the sequence length.
    pub fn max_length(mut self, cap: usize) -> Self {
        self.max_length = Some(cap);
        self
    }

    /// Requests all large sequences instead of only the maximal ones.
    pub fn include_non_maximal(mut self, yes: bool) -> Self {
        self.include_non_maximal = yes;
        self
    }

    /// Sets the worker-thread policy for support counting.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Shards every counting pass to `shard` customers at a time.
    pub fn shard_customers(mut self, shard: usize) -> Self {
        self.shard_customers = Some(shard);
        self
    }
}

/// One mined pattern: a sequence and its customer support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    /// The sequence, in original item space.
    pub sequence: Sequence,
    /// Number of supporting customers.
    pub support: u64,
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.sequence.fmt(f)
    }
}

/// The result of a mining run.
#[derive(Debug, Clone)]
pub struct MiningResult {
    /// The answer: maximal large sequences (or all large sequences with
    /// [`MinerConfig::include_non_maximal`]), sorted by length then
    /// lexicographically.
    pub patterns: Vec<Pattern>,
    /// The same answer in **litemset-id space** (ids + supports), sorted by
    /// length then lexicographically by ids. This is the form the serving
    /// layer compiles into a prefix trie (`seqpat-serve`): ids are dense
    /// `u32`s, so the trie never touches item-space itemsets on its hot
    /// path.
    pub id_patterns: Vec<crate::phases::maximal::LargeIdSequence>,
    /// The litemset table the id patterns are expressed over. Carried out
    /// of the run so downstream consumers (index serialization, query
    /// parsing) can map between id space and item space without re-mining.
    pub table: LitemsetTable,
    /// Customers in the mined database (the support denominator).
    pub num_customers: usize,
    /// The resolved absolute support threshold.
    pub min_support_count: u64,
    /// Phase timings and per-pass counters.
    pub stats: MiningStats,
}

impl MiningResult {
    /// Support of `pattern` as a fraction of customers.
    pub fn support_fraction(&self, pattern: &Pattern) -> f64 {
        if self.num_customers == 0 {
            0.0
        } else {
            pattern.support as f64 / self.num_customers as f64
        }
    }
}

/// Runs the five-phase pipeline of the paper.
#[derive(Debug, Clone)]
pub struct Miner {
    config: MinerConfig,
}

impl Miner {
    /// Creates a miner with the given configuration.
    pub fn new(config: MinerConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MinerConfig {
        &self.config
    }

    /// Mines `db` end to end: litemset → transform → sequence → maximal.
    /// (`db` is already past the sort phase — [`Database::from_rows`] runs
    /// it during construction.)
    pub fn mine(&self, db: &Database) -> MiningResult {
        let mut stats = MiningStats::default();
        let min_count = self.config.min_support.to_count(db.num_customers());

        let t0 = Stopwatch::start();
        // The miner-level knob governs the litemset phase too.
        let mut apriori = self.config.apriori.clone();
        apriori.parallelism = self.config.parallelism;
        let lit = litemset_phase(db, min_count, &apriori);
        stats.litemset_time = t0.elapsed();
        stats.num_litemsets = lit.table.len() as u64;
        stats.litemset_passes = lit.passes;

        let t1 = Stopwatch::start();
        let tdb = transform_phase(db, lit.table);
        stats.transform_time = t1.elapsed();

        self.mine_transformed_inner(&tdb, min_count, db.num_customers(), stats)
    }

    /// Mines an already-transformed database (used by the harness to
    /// time the sequence phase in isolation and by the incremental
    /// examples). `num_customers` of the transformed database is used as
    /// the support denominator.
    pub fn mine_transformed(&self, tdb: &TransformedDatabase) -> MiningResult {
        let min_count = self.config.min_support.to_count(tdb.total_customers);
        self.mine_transformed_inner(tdb, min_count, tdb.total_customers, MiningStats::default())
    }

    /// Mines any [`Dataset`] backend — resident or on-disk — through the
    /// sequence and maximal phases (litemset + transform are assumed done:
    /// the backend stores their output). With an on-disk backend plus
    /// [`MinerConfig::shard_customers`], the run never holds more than one
    /// shard of customer rows in memory, and the patterns are bit-identical
    /// to mining the same data resident.
    pub fn mine_dataset(&self, ds: &dyn Dataset) -> MiningResult {
        let min_count = self.config.min_support.to_count(ds.total_customers());
        self.mine_transformed_inner(ds, min_count, ds.total_customers(), MiningStats::default())
    }

    fn mine_transformed_inner(
        &self,
        ds: &dyn Dataset,
        min_count: u64,
        num_customers: usize,
        mut stats: MiningStats,
    ) -> MiningResult {
        let options = SequencePhaseOptions {
            counting: self.config.counting,
            tree_params: self.config.tree_params,
            max_length: self.config.max_length,
            parallelism: self.config.parallelism,
            vertical: self.config.vertical,
            shard_customers: self.config.shard_customers,
        };
        stats.threads_used = self.config.parallelism.resolved_threads();

        let t2 = Stopwatch::start();
        let large: Vec<LargeIdSequence> = match self.config.algorithm {
            Algorithm::AprioriAll => apriori_all(ds, min_count, &options, &mut stats),
            Algorithm::AprioriSome => apriori_some(ds, min_count, &options, &mut stats),
            Algorithm::DynamicSome { step } => {
                dynamic_some(ds, min_count, step, &options, &mut stats)
            }
        };
        stats.sequence_time = t2.elapsed();
        stats.large_sequences = large.len() as u64;

        let t3 = Stopwatch::start();
        let final_set = if self.config.include_non_maximal {
            large
        } else {
            maximal_phase(large, ds.table())
        };
        stats.maximal_time = t3.elapsed();
        stats.maximal_sequences = final_set.len() as u64;
        stats.peak_rss_bytes = crate::stats::peak_rss_bytes();

        let mut patterns: Vec<Pattern> = final_set
            .iter()
            .map(|s| Pattern {
                sequence: ds.table().to_sequence(&s.ids),
                support: s.support,
            })
            .collect();
        patterns.sort_by(|a, b| {
            (a.sequence.len(), a.sequence.elements())
                .cmp(&(b.sequence.len(), b.sequence.elements()))
        });
        let mut id_patterns = final_set;
        id_patterns.sort_by(|a, b| (a.ids.len(), &a.ids).cmp(&(b.ids.len(), &b.ids)));

        MiningResult {
            patterns,
            id_patterns,
            table: ds.table().clone(),
            num_customers,
            min_support_count: min_count,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_db() -> Database {
        Database::from_rows(vec![
            (1, 1, vec![30]),
            (1, 2, vec![90]),
            (2, 1, vec![10, 20]),
            (2, 2, vec![30]),
            (2, 3, vec![40, 60, 70]),
            (3, 1, vec![30, 50, 70]),
            (4, 1, vec![30]),
            (4, 2, vec![40, 70]),
            (4, 3, vec![90]),
            (5, 1, vec![90]),
        ])
    }

    fn answer(config: MinerConfig) -> Vec<String> {
        let result = Miner::new(config).mine(&paper_db());
        result
            .patterns
            .iter()
            .map(|p| format!("{}:{}", p, p.support))
            .collect()
    }

    #[test]
    fn all_three_algorithms_give_the_paper_answer() {
        let expected = vec!["<(30)(40 70)>:2", "<(30)(90)>:2"];
        for algorithm in [
            Algorithm::AprioriAll,
            Algorithm::AprioriSome,
            Algorithm::DynamicSome { step: 2 },
        ] {
            let got = answer(MinerConfig::new(MinSupport::Fraction(0.25)).algorithm(algorithm));
            assert_eq!(got, expected, "{algorithm}");
        }
    }

    #[test]
    fn include_non_maximal_reports_all_large_sequences() {
        let result =
            Miner::new(MinerConfig::new(MinSupport::Fraction(0.25)).include_non_maximal(true))
                .mine(&paper_db());
        assert_eq!(result.patterns.len(), 9);
        // Sorted by length first.
        assert!(result.patterns[0].sequence.len() <= result.patterns[8].sequence.len());
    }

    #[test]
    fn result_metadata() {
        let result = Miner::new(MinerConfig::new(MinSupport::Fraction(0.25))).mine(&paper_db());
        assert_eq!(result.num_customers, 5);
        assert_eq!(result.min_support_count, 2);
        assert_eq!(result.stats.maximal_sequences, 2);
        assert!(result.stats.num_litemsets == 5);
        let p = &result.patterns[0];
        let f = result.support_fraction(p);
        assert!((f - 0.4).abs() < 1e-12);
    }

    #[test]
    fn count_threshold_variant() {
        let got = answer(MinerConfig::new(MinSupport::Count(4)));
        // Only (30) has support ≥ 4.
        assert_eq!(got, vec!["<(30)>:4"]);
    }

    #[test]
    fn empty_database() {
        let result =
            Miner::new(MinerConfig::new(MinSupport::Fraction(0.5))).mine(&Database::default());
        assert!(result.patterns.is_empty());
        assert_eq!(result.num_customers, 0);
    }

    #[test]
    fn parallel_mining_matches_serial() {
        let db = paper_db();
        let serial = Miner::new(
            MinerConfig::new(MinSupport::Fraction(0.25)).parallelism(Parallelism::Serial),
        )
        .mine(&db);
        assert_eq!(serial.stats.threads_used, 1);
        for threads in [2, 3, 7] {
            let parallel = Miner::new(
                MinerConfig::new(MinSupport::Fraction(0.25))
                    .parallelism(Parallelism::threads(threads)),
            )
            .mine(&db);
            assert_eq!(parallel.patterns, serial.patterns);
            assert_eq!(
                parallel.stats.containment_tests,
                serial.stats.containment_tests
            );
            assert_eq!(parallel.stats.threads_used, threads);
        }
    }

    #[test]
    fn all_strategies_give_the_paper_answer_for_all_algorithms() {
        let expected = vec!["<(30)(40 70)>:2", "<(30)(90)>:2"];
        for algorithm in [
            Algorithm::AprioriAll,
            Algorithm::AprioriSome,
            Algorithm::DynamicSome { step: 2 },
        ] {
            for counting in [
                CountingStrategy::Direct,
                CountingStrategy::HashTree,
                CountingStrategy::Vertical,
                CountingStrategy::Bitmap,
                CountingStrategy::Auto,
            ] {
                let got = answer(
                    MinerConfig::new(MinSupport::Fraction(0.25))
                        .algorithm(algorithm)
                        .counting(counting),
                );
                assert_eq!(got, expected, "{algorithm} with {counting}");
            }
        }
    }

    #[test]
    fn id_patterns_mirror_item_space_patterns() {
        let result = Miner::new(MinerConfig::new(MinSupport::Fraction(0.25))).mine(&paper_db());
        assert_eq!(result.id_patterns.len(), result.patterns.len());
        for p in &result.id_patterns {
            let seq = result.table.to_sequence(&p.ids);
            assert!(
                result
                    .patterns
                    .iter()
                    .any(|q| q.sequence == seq && q.support == p.support),
                "id pattern {:?} has no item-space twin",
                p.ids
            );
        }
        // Sorted by length, then lexicographically by ids.
        for w in result.id_patterns.windows(2) {
            assert!((w[0].ids.len(), &w[0].ids) <= (w[1].ids.len(), &w[1].ids));
        }
    }

    #[test]
    fn mine_transformed_matches_mine() {
        let db = paper_db();
        let config = MinerConfig::new(MinSupport::Fraction(0.25));
        let full = Miner::new(config.clone()).mine(&db);
        let min_count = config.min_support.to_count(db.num_customers());
        let lit = crate::phases::litemset::litemset_phase(&db, min_count, &config.apriori);
        let tdb = crate::phases::transform::transform_phase(&db, lit.table);
        let partial = Miner::new(config).mine_transformed(&tdb);
        assert_eq!(full.patterns, partial.patterns);
    }
}
