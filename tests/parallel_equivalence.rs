//! Property tests for the parallel counting layer at the full-miner level:
//! mining with any thread count must be **bit-identical** to the serial
//! run — same patterns, same supports, same containment-test/join/S-step
//! counters — for every algorithm and every counting strategy.
//!
//! (The per-function equivalence of `count_supports` itself is pinned by
//! property tests inside `seqpat-core`; this file covers the end-to-end
//! plumbing through the litemset phase, the three algorithms, and the
//! backward pass.)

use proptest::prelude::*;
use seqpat::{Algorithm, CountingStrategy, Database, MinSupport, Miner, MinerConfig, Parallelism};

/// A small random transaction table (≤ 8 customers, ≤ 4 transactions each,
/// items from a 6-item universe). Empty databases are included.
fn arb_database() -> impl Strategy<Value = Database> {
    let transaction = proptest::collection::vec(0u32..6, 1..=3);
    let customer = proptest::collection::vec(transaction, 1..=4);
    proptest::collection::vec(customer, 0..=8).prop_map(|customers| {
        let mut rows = Vec::new();
        for (c, transactions) in customers.into_iter().enumerate() {
            for (t, items) in transactions.into_iter().enumerate() {
                rows.push((c as u64, t as i64, items));
            }
        }
        Database::from_rows(rows)
    })
}

fn render(patterns: &[seqpat::Pattern]) -> Vec<String> {
    patterns
        .iter()
        .map(|p| format!("{}:{}", p, p.support))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn mining_is_thread_count_invariant(
        db in arb_database(),
        minsup_pct in 20u32..=60,
    ) {
        let minsup = minsup_pct as f64 / 100.0;
        for algorithm in [
            Algorithm::AprioriAll,
            Algorithm::AprioriSome,
            Algorithm::DynamicSome { step: 2 },
        ] {
            for counting in [
                CountingStrategy::Direct,
                CountingStrategy::HashTree,
                CountingStrategy::Vertical,
                CountingStrategy::Bitmap,
                CountingStrategy::Auto,
            ] {
                let config = |parallelism| {
                    MinerConfig::new(MinSupport::Fraction(minsup))
                        .algorithm(algorithm)
                        .counting(counting)
                        .parallelism(parallelism)
                };
                let serial = Miner::new(config(Parallelism::Serial)).mine(&db);
                for threads in [2usize, 3, 7] {
                    let parallel =
                        Miner::new(config(Parallelism::threads(threads))).mine(&db);
                    prop_assert_eq!(
                        render(&parallel.patterns),
                        render(&serial.patterns),
                        "{} / {:?} with {} threads",
                        algorithm,
                        counting,
                        threads
                    );
                    prop_assert_eq!(
                        parallel.stats.containment_tests,
                        serial.stats.containment_tests,
                        "{} / {:?} with {} threads",
                        algorithm,
                        counting,
                        threads
                    );
                    prop_assert_eq!(
                        parallel.stats.join_ops,
                        serial.stats.join_ops,
                        "{} / {:?} with {} threads (joins)",
                        algorithm,
                        counting,
                        threads
                    );
                    prop_assert_eq!(
                        parallel.stats.sstep_ops,
                        serial.stats.sstep_ops,
                        "{} / {:?} with {} threads (sstep ops)",
                        algorithm,
                        counting,
                        threads
                    );
                    prop_assert_eq!(parallel.stats.threads_used, threads);
                }
            }
        }
    }
}

#[test]
fn single_customer_database_is_thread_count_invariant() {
    let db = Database::from_rows(vec![(1, 1, vec![1, 2]), (1, 2, vec![3])]);
    let serial =
        Miner::new(MinerConfig::new(MinSupport::Fraction(1.0)).parallelism(Parallelism::Serial))
            .mine(&db);
    for threads in [2usize, 8] {
        let parallel = Miner::new(
            MinerConfig::new(MinSupport::Fraction(1.0)).parallelism(Parallelism::threads(threads)),
        )
        .mine(&db);
        assert_eq!(render(&parallel.patterns), render(&serial.patterns));
        assert_eq!(
            parallel.stats.containment_tests,
            serial.stats.containment_tests
        );
    }
    assert!(!serial.patterns.is_empty());
}
