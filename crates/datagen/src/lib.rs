//! # seqpat-datagen — the Agrawal–Srikant synthetic customer-sequence
//! generator (ICDE 1995 §5.1, extending VLDB 1994 §4).
//!
//! The paper evaluates its algorithms on synthetic databases that "mimic
//! real-world transactions, where people buy sequences of sets of items".
//! This crate rebuilds that generator:
//!
//! 1. A table of `N_I` **potentially large itemsets**: sizes are
//!    Poisson-distributed around `|I|`; consecutive itemsets share a
//!    correlated fraction of items; each itemset carries an exponentially
//!    distributed weight (normalized to a probability) and a corruption
//!    level drawn from N(0.75, 0.1²).
//! 2. A table of `N_S` **potentially large sequences** over those itemsets,
//!    built the same way (Poisson lengths around `|S|`, correlation with
//!    the previous sequence, exponential weights, corruption levels).
//! 3. **Customer sequences**: each customer gets a Poisson(`|C|`) number of
//!    transactions with Poisson(`|T|`) target sizes and is assigned a
//!    series of potentially large sequences (picked by weight); each
//!    assigned sequence is *corrupted* — items are dropped while a uniform
//!    draw stays below the corruption level — and its surviving elements
//!    are laid into consecutive transactions. Leftover capacity is padded
//!    with uniform random items (noise).
//!
//! The standard parameter names follow the paper: a dataset
//! `C10-T2.5-S4-I1.25` has `|C| = 10`, `|T| = 2.5`, `|S| = 4`,
//! `|I| = 1.25`. See [`GenParams`] for every knob and
//! [`GenParams::paper_dataset`] for the five datasets of the evaluation
//! section.
//!
//! Everything is deterministic per seed:
//!
//! ```
//! use seqpat_datagen::{generate, GenParams};
//! let params = GenParams::paper_dataset("C10-T2.5-S4-I1.25").unwrap().customers(100);
//! let a = generate(&params, 42);
//! let b = generate(&params, 42);
//! assert_eq!(a, b);
//! assert_eq!(a.num_customers(), 100);
//! ```

pub mod corpus;
pub mod distributions;
pub mod generator;
pub mod params;
pub mod queries;

pub use generator::{generate, stream, CustomerStream};
pub use params::GenParams;
pub use queries::{query_workload, QueryWorkloadParams, MISS_ID};
