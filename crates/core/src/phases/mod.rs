//! The five-phase pipeline of the paper (§3). The sequence phase lives in
//! [`crate::algorithms`]; the other four phases are here.

pub mod litemset;
pub mod maximal;
pub mod sort;
pub mod transform;
