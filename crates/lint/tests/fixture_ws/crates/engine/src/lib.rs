//! Fixture workspace root: wires the seeded-rule modules together.

pub mod counting;
pub mod hop;
pub mod prelude;
pub mod recurse;
pub mod stale;
pub mod strategy;
pub mod support;
pub mod tricky;
