//! Seeds for `order-sensitive-reduction`: a float partial-merge (addition
//! is not associative, so chunk boundaries leak into the total) next to the
//! clean integer merge.

/// Seeded: float `+=` across partials — re-chunking changes the bits.
pub fn merge_scores(total: &mut [f64], partial: &[f64]) {
    for (t, p) in total.iter_mut().zip(partial) {
        *t += *p;
    }
}

/// Clean: integer addition is associative and commutative, so any chunking
/// and any merge order produce the same totals.
pub fn merge_counts(total: &mut [u64], partial: &[u64]) {
    for (t, p) in total.iter_mut().zip(partial) {
        *t += *p;
    }
}
