//! The `next()` step heuristic of AprioriSome (paper §4.2).
//!
//! After counting pass `k`, AprioriSome decides which length to count next
//! from the *hit ratio* `hit_k = |L_k| / |C_k|`: when most candidates turn
//! out large, larger sequences are likely and it pays to skip further ahead
//! (skipped lengths are recovered cheaply in the backward phase); when few
//! candidates are large, skipping wastes work on candidates generated from
//! candidates. The thresholds below are the paper's.

/// Returns the next length to count after counting length `k` with hit
/// ratio `hit_k` (fraction of candidates that were large, in `[0, 1]`).
pub fn next(k: usize, hit_k: f64) -> usize {
    debug_assert!(
        (0.0..=1.0).contains(&hit_k),
        "hit ratio out of range: {hit_k}"
    );
    if hit_k < 0.666 {
        k + 1
    } else if hit_k < 0.75 {
        k + 2
    } else if hit_k < 0.80 {
        k + 3
    } else if hit_k < 0.85 {
        k + 4
    } else {
        k + 5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_thresholds() {
        assert_eq!(next(3, 0.0), 4);
        assert_eq!(next(3, 0.6), 4);
        assert_eq!(next(3, 0.666), 5);
        assert_eq!(next(3, 0.70), 5);
        assert_eq!(next(3, 0.75), 6);
        assert_eq!(next(3, 0.79), 6);
        assert_eq!(next(3, 0.80), 7);
        assert_eq!(next(3, 0.84), 7);
        assert_eq!(next(3, 0.85), 8);
        assert_eq!(next(3, 1.0), 8);
    }

    #[test]
    fn monotone_in_hit_ratio() {
        let mut last = 0;
        for i in 0..=100 {
            let n = next(10, i as f64 / 100.0);
            assert!(n >= last);
            last = n;
        }
    }
}
