//! The constrained containment test (EDBT'96 §2 definition, §4.2
//! algorithm).
//!
//! The matcher below is a depth-first search over per-element windows with
//! failure memoization, rather than a transcription of the paper's
//! interleaved forward/backward phases — same answers, simpler invariants:
//!
//! * for a fixed window start `l`, only the **minimal** window end
//!   `u_min(l)` matters: shrinking `u` can only relax constraint 3 for the
//!   current element and constraint 2 for the next one;
//! * `u_min(l)` is non-decreasing in `l`, so once constraint 3
//!   (`t(u) − t(l_{i−1}) ≤ max_gap`) fails it fails for every later `l` —
//!   the search can stop scanning starts for that element;
//! * feasibility of the pattern suffix from element `i` depends only on
//!   `(i, l)` (because `u = u_min(l)`), so failed `(i, l)` pairs are
//!   memoized and each is explored at most once — the whole test is
//!   `O(elements × transactions × window-work)`.

use seqpat_core::Item;

use crate::candidate::ItemSeq;
use crate::GspConfig;

/// A customer sequence prepared for constrained matching: `(time, items)`
/// per transaction (times strictly increasing — the sort phase merges
/// simultaneous rows) plus the customer's overall item set for prefilters.
#[derive(Debug, Clone)]
pub struct DataSequence {
    /// Transactions as `(time, sorted items)`.
    pub transactions: Vec<(i64, Vec<Item>)>,
    all_items: Vec<Item>,
}

impl From<&seqpat_core::CustomerSequence> for DataSequence {
    fn from(c: &seqpat_core::CustomerSequence) -> Self {
        let transactions: Vec<(i64, Vec<Item>)> = c
            .transactions
            .iter()
            .map(|t| (t.time, t.items.items().to_vec()))
            .collect();
        let mut all_items: Vec<Item> = transactions
            .iter()
            .flat_map(|(_, t)| t.iter().copied())
            .collect();
        all_items.sort_unstable();
        all_items.dedup();
        Self {
            transactions,
            all_items,
        }
    }
}

impl DataSequence {
    /// Cheap necessary condition: every item of the pattern occurs
    /// somewhere in the customer history.
    pub fn may_contain(&self, pattern: &ItemSeq) -> bool {
        pattern
            .iter()
            .flat_map(|e| e.iter())
            .all(|item| self.all_items.binary_search(item).is_ok())
    }
}

/// Does `d` contain `pattern` under the configuration's time constraints?
pub fn contains_with_constraints(d: &DataSequence, pattern: &ItemSeq, config: &GspConfig) -> bool {
    if pattern.is_empty() {
        return true;
    }
    if d.transactions.is_empty() {
        return false;
    }
    let mut failed: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    search(d, pattern, config, 0, None, &mut failed)
}

/// Window of the previously matched element, as transaction indices.
type PrevWindow = Option<(usize, usize)>;

fn search(
    d: &DataSequence,
    pattern: &ItemSeq,
    config: &GspConfig,
    element: usize,
    prev: PrevWindow,
    failed: &mut std::collections::HashSet<(usize, usize)>,
) -> bool {
    if element == pattern.len() {
        return true;
    }
    let m = d.transactions.len();
    // Earliest admissible window start: strictly after the previous window,
    // with more than min_gap between the times.
    let mut start = match prev {
        None => 0,
        Some((_, prev_u)) => {
            let threshold = d.transactions[prev_u].0 + config.min_gap;
            // Times are strictly increasing, so binary-search the first
            // transaction with time > threshold (and index > prev_u).
            let lo = d.transactions.partition_point(|&(t, _)| t <= threshold);
            lo.max(prev_u + 1)
        }
    };
    while start < m {
        if failed.contains(&(element, start)) {
            start += 1;
            continue;
        }
        let Some(end) = min_window(d, &pattern[element], start, config.window) else {
            // No window for this or (since u_min only grows) for any later
            // start that begins at a transaction missing required items —
            // but later starts can still succeed; keep scanning.
            failed.insert((element, start));
            start += 1;
            continue;
        };
        // Constraint 3: end of this window vs start of the previous one.
        if let (Some(max_gap), Some((prev_l, _))) = (config.max_gap, prev) {
            if d.transactions[end].0 - d.transactions[prev_l].0 > max_gap {
                // u_min(start) is non-decreasing in start: no later start
                // can satisfy the max-gap either.
                return false;
            }
        }
        if search(d, pattern, config, element + 1, Some((start, end)), failed) {
            return true;
        }
        failed.insert((element, start));
        start += 1;
    }
    false
}

/// Minimal `u ≥ l` such that `element ⊆ d_l ∪ … ∪ d_u` with
/// `t(u) − t(l) ≤ window`; `None` when no such window exists.
fn min_window(d: &DataSequence, element: &[Item], l: usize, window: i64) -> Option<usize> {
    let start_time = d.transactions[l].0;
    let mut missing: Vec<Item> = element.to_vec();
    let mut u = l;
    while u < d.transactions.len() {
        let (time, items) = &d.transactions[u];
        if time - start_time > window {
            return None;
        }
        missing.retain(|item| items.binary_search(item).is_err());
        if missing.is_empty() {
            return Some(u);
        }
        u += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(rows: &[(i64, &[Item])]) -> DataSequence {
        let transactions: Vec<(i64, Vec<Item>)> =
            rows.iter().map(|&(t, items)| (t, items.to_vec())).collect();
        let mut all_items: Vec<Item> = transactions
            .iter()
            .flat_map(|(_, i)| i.iter().copied())
            .collect();
        all_items.sort_unstable();
        all_items.dedup();
        DataSequence {
            transactions,
            all_items,
        }
    }

    fn seq(v: &[&[Item]]) -> ItemSeq {
        v.iter().map(|e| e.to_vec()).collect()
    }

    #[test]
    fn plain_containment_without_constraints() {
        let d = data(&[(1, &[30]), (2, &[40, 70]), (3, &[90])]);
        let cfg = GspConfig::default();
        assert!(contains_with_constraints(&d, &seq(&[&[30], &[90]]), &cfg));
        assert!(contains_with_constraints(
            &d,
            &seq(&[&[30], &[40, 70]]),
            &cfg
        ));
        assert!(!contains_with_constraints(&d, &seq(&[&[90], &[30]]), &cfg));
        assert!(!contains_with_constraints(&d, &seq(&[&[30, 90]]), &cfg));
    }

    #[test]
    fn min_gap_excludes_adjacent_transactions() {
        let d = data(&[(0, &[1]), (3, &[2]), (10, &[2])]);
        assert!(contains_with_constraints(
            &d,
            &seq(&[&[1], &[2]]),
            &GspConfig::default().min_gap(5)
        )); // matches via t=10
        assert!(!contains_with_constraints(
            &d,
            &seq(&[&[1], &[2]]),
            &GspConfig::default().min_gap(15)
        ));
    }

    #[test]
    fn max_gap_limits_span() {
        let d = data(&[(0, &[1]), (100, &[2])]);
        assert!(contains_with_constraints(
            &d,
            &seq(&[&[1], &[2]]),
            &GspConfig::default().max_gap(100)
        ));
        assert!(!contains_with_constraints(
            &d,
            &seq(&[&[1], &[2]]),
            &GspConfig::default().max_gap(99)
        ));
    }

    #[test]
    fn max_gap_forces_later_first_window() {
        // ⟨(1)(2)⟩ with max_gap 5: the early 1 at t=0 is too far from 2 at
        // t=50, but the later 1 at t=48 works — the DFS must not commit to
        // the earliest window.
        let d = data(&[(0, &[1]), (48, &[1]), (50, &[2])]);
        assert!(contains_with_constraints(
            &d,
            &seq(&[&[1], &[2]]),
            &GspConfig::default().max_gap(5)
        ));
    }

    #[test]
    fn window_unions_nearby_transactions() {
        let d = data(&[(0, &[1]), (2, &[2]), (9, &[3])]);
        let cfg = GspConfig::default().window(2);
        assert!(contains_with_constraints(&d, &seq(&[&[1, 2]]), &cfg));
        assert!(!contains_with_constraints(&d, &seq(&[&[1, 3]]), &cfg));
        // Window + following element: ⟨(1 2)(3)⟩.
        assert!(contains_with_constraints(&d, &seq(&[&[1, 2], &[3]]), &cfg));
    }

    #[test]
    fn window_and_min_gap_interact_on_window_edges() {
        // Element (1 2) occupies [0, 2]; min_gap 5 is measured from the
        // window END (t=2): 3 at t=6 is too close (6-2=4), 3 at t=8 is ok.
        let d = data(&[(0, &[1]), (2, &[2]), (6, &[3]), (8, &[3])]);
        let cfg = GspConfig::default().window(2).min_gap(5);
        assert!(contains_with_constraints(&d, &seq(&[&[1, 2], &[3]]), &cfg));
        let d2 = data(&[(0, &[1]), (2, &[2]), (6, &[3])]);
        assert!(!contains_with_constraints(
            &d2,
            &seq(&[&[1, 2], &[3]]),
            &cfg
        ));
    }

    #[test]
    fn max_gap_measured_from_previous_window_start() {
        // Constraint 3 is t(u_i) − t(l_{i−1}) ≤ max_gap: element (1 2) has
        // l=0 (t=0); element (3) ends at t=7; 7 − 0 = 7 > 6 → fails even
        // though the distance from the window end (t=2) is only 5.
        let d = data(&[(0, &[1]), (2, &[2]), (7, &[3])]);
        let cfg = GspConfig::default().window(2).max_gap(6);
        assert!(!contains_with_constraints(&d, &seq(&[&[1, 2], &[3]]), &cfg));
        let cfg_loose = GspConfig::default().window(2).max_gap(7);
        assert!(contains_with_constraints(
            &d,
            &seq(&[&[1, 2], &[3]]),
            &cfg_loose
        ));
    }

    #[test]
    fn three_element_chain_with_max_gap_needs_backtracking() {
        // ⟨(1)(2)(3)⟩, max_gap 10. Greedy earliest: 1@0 → 2@5 (ok, 5-0≤10)
        // → 3@20 fails (20-5>10). Backtrack: 1@0→2@12? 12-0>10 fails.
        // 1@11 → 2@12 → 3@20 (12-11≤10, 20-12≤10) succeeds.
        let d = data(&[(0, &[1]), (5, &[2]), (11, &[1]), (12, &[2]), (20, &[3])]);
        assert!(contains_with_constraints(
            &d,
            &seq(&[&[1], &[2], &[3]]),
            &GspConfig::default().max_gap(10)
        ));
    }

    #[test]
    fn may_contain_prefilter() {
        let d = data(&[(0, &[1, 2])]);
        assert!(d.may_contain(&seq(&[&[1], &[2]])));
        assert!(!d.may_contain(&seq(&[&[3]])));
    }

    #[test]
    fn empty_pattern_and_empty_data() {
        let d = data(&[(0, &[1])]);
        assert!(contains_with_constraints(
            &d,
            &seq(&[]),
            &GspConfig::default()
        ));
        let empty = data(&[]);
        assert!(!contains_with_constraints(
            &empty,
            &seq(&[&[1]]),
            &GspConfig::default()
        ));
    }
}
