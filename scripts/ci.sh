#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> seqpat-lint (workspace rules: determinism, panic-safety, kernel invariants)"
mkdir -p target/ci-results
cargo run -q -p seqpat-lint -- --json > target/ci-results/lint.json

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> equivalence suites with debug assertions in release"
# The kernels' debug_assert!s mirror the lint contract (CSR monotonicity,
# word-span consistency, arena run boundaries); exercise them against the
# optimized code paths. A separate target dir keeps the cache warm.
CARGO_TARGET_DIR=target/ci-debug-assert RUSTFLAGS="-C debug-assertions" \
  cargo test --release -q -p seqpat-core -p seqpat-itemset

echo "==> bench smoke (one tiny ablation cell for all four strategies + auto)"
cargo run --release -p seqpat-bench --bin exp_ablation -- \
  --quick --customers 150 --out target/ci-results

echo "==> bench smoke (bitmap crossover, one dense + one sparse cell)"
cargo run --release -p seqpat-bench --bin exp_bitmap -- \
  --quick --customers 150 --out target/ci-results

echo "==> CI green"
