//! End-to-end Criterion benchmarks: one per algorithm on a pinned synthetic
//! dataset, plus the counting-strategy ablation and PrefixSpan.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use seqpat_core::{Algorithm, CountingStrategy, Database, MinSupport, Miner, MinerConfig};
use seqpat_datagen::{generate, GenParams};
use seqpat_prefixspan::{prefixspan_maximal, PrefixSpanConfig};

fn pinned_db() -> Database {
    generate(
        &GenParams::paper_dataset("C10-T2.5-S4-I1.25")
            .expect("paper dataset")
            .customers(500),
        42,
    )
}

fn bench_algorithms(c: &mut Criterion) {
    let db = pinned_db();
    let mut group = c.benchmark_group("mine_500_customers");
    group.sample_size(10);
    for algorithm in [
        Algorithm::AprioriAll,
        Algorithm::AprioriSome,
        Algorithm::DynamicSome { step: 2 },
    ] {
        group.bench_with_input(
            BenchmarkId::new("algorithm", algorithm),
            &algorithm,
            |b, &alg| {
                let miner = Miner::new(MinerConfig::new(MinSupport::Fraction(0.01)).algorithm(alg));
                b.iter(|| miner.mine(black_box(&db)))
            },
        );
    }
    group.bench_function("prefixspan", |b| {
        b.iter(|| {
            prefixspan_maximal(
                black_box(&db),
                MinSupport::Fraction(0.01),
                &PrefixSpanConfig::default(),
            )
        })
    });
    group.finish();
}

fn bench_counting_strategies(c: &mut Criterion) {
    let db = pinned_db();
    let mut group = c.benchmark_group("counting_strategy");
    group.sample_size(10);
    for (name, strategy) in [
        ("direct", CountingStrategy::Direct),
        ("hash_tree", CountingStrategy::HashTree),
        ("vertical", CountingStrategy::Vertical),
    ] {
        group.bench_function(name, |b| {
            let miner = Miner::new(MinerConfig::new(MinSupport::Fraction(0.01)).counting(strategy));
            b.iter(|| miner.mine(black_box(&db)))
        });
    }
    group.finish();
}

fn bench_minsup_sensitivity(c: &mut Criterion) {
    let db = pinned_db();
    let mut group = c.benchmark_group("minsup_sensitivity/apriori_all");
    group.sample_size(10);
    for minsup in [0.02, 0.01, 0.005] {
        group.bench_with_input(BenchmarkId::from_parameter(minsup), &minsup, |b, &ms| {
            let miner = Miner::new(MinerConfig::new(MinSupport::Fraction(ms)));
            b.iter(|| miner.mine(black_box(&db)))
        });
    }
    group.finish();
}

criterion_group!(
    mining,
    bench_algorithms,
    bench_counting_strategies,
    bench_minsup_sensitivity
);
criterion_main!(mining);
