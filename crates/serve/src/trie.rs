//! The pattern index: a flattened prefix trie over litemset ids.
//!
//! Every mined maximal pattern ⟨s₁ … sₙ⟩ is a path of litemset ids; the
//! set of patterns is therefore a trie, and a *prefix* query resolves to a
//! trie node whose children are exactly the possible next litemsets. The
//! builder grows a temporary pointer trie and then flattens it — the same
//! move as core's `FlatNode` hash-tree flattening — into parallel arrays:
//!
//! * `child_offsets` — CSR: node *n*'s child slots are
//!   `child_offsets[n] .. child_offsets[n+1]`. Node 0 is the root.
//! * `child_ids` / `child_nodes` — per slot, the edge's litemset id and the
//!   child node it leads to. Ids are **strictly ascending within a node's
//!   range** (so the probe can stay branch-cheap), and nodes are numbered
//!   in **preorder**, so every child index is strictly greater than its
//!   parent's — descent can never cycle.
//! * `best_support` — per node, the maximum support of any pattern in the
//!   node's subtree (including a pattern ending at the node itself).
//! * `terminal_support` — per node, the support of the pattern ending
//!   exactly here, or 0 for interior prefixes.
//! * `rank_order` — per node range, a permutation of that range's slot
//!   indices sorted by (child `best_support` descending, id ascending).
//!   Top-k is then a bounded scan of the first k entries — no heap, no
//!   sort, no allocation at query time.
//!
//! The index is immutable after construction; the serving loop shares it
//! across worker threads behind an `Arc` without further synchronization.

use std::collections::BTreeMap;

use seqpat_core::cast::{id32, idx, w64};
use seqpat_core::{LargeIdSequence, LitemsetId, LitemsetTable};

/// Why [`PatternTrie::build`] rejected its input. Mined output never
/// triggers these; they guard direct construction from untrusted data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrieBuildError {
    /// A pattern references a litemset id outside the table.
    IdOutOfRange {
        /// Index of the offending pattern in the input slice.
        pattern: usize,
        /// The out-of-range id.
        id: LitemsetId,
        /// Number of litemsets in the table.
        table_len: usize,
    },
    /// A pattern has no elements (the empty sequence is not a pattern).
    EmptyPattern {
        /// Index of the offending pattern in the input slice.
        pattern: usize,
    },
    /// A pattern claims zero support (large sequences are supported by
    /// construction; zero would poison the ranking).
    ZeroSupport {
        /// Index of the offending pattern in the input slice.
        pattern: usize,
    },
    /// The trie would exceed `u32` node indices.
    TooManyNodes {
        /// Number of nodes the pointer trie reached.
        nodes: usize,
    },
}

impl std::fmt::Display for TrieBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrieBuildError::IdOutOfRange {
                pattern,
                id,
                table_len,
            } => write!(
                f,
                "pattern {pattern} references litemset id {id}, but the table has {table_len}"
            ),
            TrieBuildError::EmptyPattern { pattern } => {
                write!(f, "pattern {pattern} is empty")
            }
            TrieBuildError::ZeroSupport { pattern } => {
                write!(f, "pattern {pattern} has zero support")
            }
            TrieBuildError::TooManyNodes { nodes } => {
                write!(
                    f,
                    "trie has {nodes} nodes, more than u32 indices can address"
                )
            }
        }
    }
}

impl std::error::Error for TrieBuildError {}

/// One node of the temporary pointer trie the builder grows before
/// flattening. `children` maps edge ids to arena indices; a `BTreeMap` so
/// flattening emits each node's child slots in ascending id order.
#[derive(Default)]
struct BuildNode {
    children: BTreeMap<LitemsetId, usize>,
    terminal: u64,
}

/// The compiled, immutable pattern index. See the module docs for the
/// array layout and invariants.
#[derive(Debug, Clone)]
pub struct PatternTrie {
    /// CSR offsets into the child arrays; length `num_nodes + 1`.
    pub(crate) child_offsets: Vec<u32>,
    /// Per node, the maximum pattern support in its subtree.
    pub(crate) best_support: Vec<u64>,
    /// Per node, the support of the pattern ending here (0 = interior).
    pub(crate) terminal_support: Vec<u64>,
    /// Per child slot, the edge's litemset id (ascending within a node).
    pub(crate) child_ids: Vec<LitemsetId>,
    /// Per child slot, the preorder index of the child node.
    pub(crate) child_nodes: Vec<u32>,
    /// Per node range, its slots permuted by (best support desc, id asc).
    pub(crate) rank_order: Vec<u32>,
    /// The litemset table the ids are expressed over.
    pub(crate) table: LitemsetTable,
    /// Support denominator of the mining run that produced the patterns.
    pub(crate) total_customers: u64,
    /// Number of distinct patterns stored (terminal nodes).
    pub(crate) num_patterns: u64,
}

impl PatternTrie {
    /// Compiles mined patterns into the flattened trie. Duplicate id
    /// sequences keep their maximum support; input order does not matter
    /// (the layout is canonical, so equal pattern sets serialize
    /// byte-identically).
    pub fn build(
        patterns: &[LargeIdSequence],
        table: LitemsetTable,
        total_customers: u64,
    ) -> Result<Self, TrieBuildError> {
        let mut arena: Vec<BuildNode> = Vec::with_capacity(patterns.len() + 1);
        arena.push(BuildNode::default());
        for (pi, p) in patterns.iter().enumerate() {
            if p.ids.is_empty() {
                return Err(TrieBuildError::EmptyPattern { pattern: pi });
            }
            if p.support == 0 {
                return Err(TrieBuildError::ZeroSupport { pattern: pi });
            }
            let mut cur = 0usize;
            for &id in &p.ids {
                if idx(id) >= table.len() {
                    return Err(TrieBuildError::IdOutOfRange {
                        pattern: pi,
                        id,
                        table_len: table.len(),
                    });
                }
                // seqpat-lint: allow(no-alloc-in-hot-loop) build-time arena growth, one node per new trie edge; serving lookups never allocate
                cur = child_or_new(&mut arena, cur, id);
            }
            debug_assert!(cur < arena.len(), "child_or_new indices stay in the arena");
            arena[cur].terminal = arena[cur].terminal.max(p.support);
        }
        if u32::try_from(arena.len()).is_err() {
            return Err(TrieBuildError::TooManyNodes { nodes: arena.len() });
        }

        let nodes = arena.len();
        let mut flat = PatternTrie {
            child_offsets: Vec::with_capacity(nodes + 1),
            best_support: Vec::with_capacity(nodes),
            terminal_support: Vec::with_capacity(nodes),
            child_ids: Vec::with_capacity(nodes - 1),
            child_nodes: Vec::with_capacity(nodes - 1),
            rank_order: Vec::with_capacity(nodes - 1),
            table,
            total_customers,
            num_patterns: 0,
        };
        flat.child_offsets.push(0);
        flatten(&arena, 0, &mut flat);
        flat.num_patterns = w64(flat.terminal_support.iter().filter(|&&s| s > 0).count());
        Ok(flat)
    }

    /// Number of trie nodes (distinct pattern prefixes, plus the root).
    pub fn num_nodes(&self) -> usize {
        self.best_support.len()
    }

    /// Number of edges (equals `num_nodes() - 1`).
    pub fn num_children(&self) -> usize {
        self.child_ids.len()
    }

    /// Number of distinct patterns stored.
    pub fn num_patterns(&self) -> u64 {
        self.num_patterns
    }

    /// Support denominator of the originating mining run.
    pub fn total_customers(&self) -> u64 {
        self.total_customers
    }

    /// The litemset table the trie's ids are expressed over.
    pub fn table(&self) -> &LitemsetTable {
        &self.table
    }

    /// Largest child fan-out of any node (bounds `predict` result width).
    pub fn max_fanout(&self) -> usize {
        self.child_offsets
            .iter()
            .zip(self.child_offsets.iter().skip(1))
            .map(|(&lo, &hi)| idx(hi - lo))
            .max()
            .unwrap_or(0)
    }

    /// Resident size of the trie arrays in bytes (excluding the litemset
    /// table), for `--stats` reporting.
    pub fn heap_bytes(&self) -> u64 {
        let u32s = self.child_offsets.len() + self.child_ids.len() * 2 + self.rank_order.len();
        let u64s = self.best_support.len() + self.terminal_support.len();
        w64(u32s) * 4 + w64(u64s) * 8
    }
}

/// Index of the `id` child of `cur`, growing the arena when the edge is
/// new. Kept out of the insert loop so the builder's per-node allocation
/// happens in a loop-free fn.
fn child_or_new(arena: &mut Vec<BuildNode>, cur: usize, id: LitemsetId) -> usize {
    debug_assert!(cur < arena.len(), "cur was returned by a previous call");
    if let Some(&next) = arena[cur].children.get(&id) {
        return next;
    }
    let next = arena.len();
    arena.push(BuildNode::default());
    arena[cur].children.insert(id, next);
    next
}

/// Emits `b`'s subtree into `flat` in preorder and returns the subtree's
/// best support. Child slots are reserved (in ascending id order, the
/// `BTreeMap` iteration order) before descending, so a node's slots are
/// contiguous and `child_offsets` stays monotone.
fn flatten(arena: &[BuildNode], b: usize, flat: &mut PatternTrie) -> (u32, u64) {
    debug_assert!(
        b < arena.len() && flat.child_offsets.len() == flat.best_support.len() + 1,
        "arena indices come from child_or_new; one offset is pushed per node plus the root's 0"
    );
    let f = flat.best_support.len();
    flat.best_support.push(0);
    flat.terminal_support.push(arena[b].terminal);
    let start = flat.child_ids.len();
    let end = start + arena[b].children.len();
    flat.child_offsets.push(id32(end));
    for (off, &id) in arena[b].children.keys().enumerate() {
        flat.child_ids.push(id);
        flat.child_nodes.push(0);
        flat.rank_order.push(id32(start + off));
    }
    let mut best = arena[b].terminal;
    for (off, &cb) in arena[b].children.values().enumerate() {
        let (child_index, child_best) = flatten(arena, cb, flat);
        flat.child_nodes[start + off] = child_index;
        best = best.max(child_best);
    }
    flat.best_support[f] = best;
    let child_ids = &flat.child_ids;
    let child_nodes = &flat.child_nodes;
    let best_support = &flat.best_support;
    flat.rank_order[start..end].sort_unstable_by_key(|&slot| {
        let s = idx(slot);
        (
            std::cmp::Reverse(best_support[idx(child_nodes[s])]),
            child_ids[s],
        )
    });
    (id32(f), best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqpat_core::Itemset;

    fn table(n: u32) -> LitemsetTable {
        LitemsetTable::new((0..n).map(|i| (Itemset::new(vec![i + 1]), 5)).collect())
    }

    fn seqs(raw: &[(&[u32], u64)]) -> Vec<LargeIdSequence> {
        raw.iter()
            .map(|&(ids, support)| LargeIdSequence {
                ids: ids.to_vec(),
                support,
            })
            .collect()
    }

    #[test]
    fn empty_pattern_set_builds_a_root_only_trie() {
        let trie = PatternTrie::build(&[], table(3), 10).unwrap();
        assert_eq!(trie.num_nodes(), 1);
        assert_eq!(trie.num_children(), 0);
        assert_eq!(trie.num_patterns(), 0);
        assert_eq!(trie.max_fanout(), 0);
    }

    #[test]
    fn shared_prefixes_share_nodes() {
        let patterns = seqs(&[(&[0, 1], 3), (&[0, 2], 2), (&[1], 4)]);
        let trie = PatternTrie::build(&patterns, table(3), 10).unwrap();
        // root, 0, 0-1, 0-2, 1 — five nodes, four edges.
        assert_eq!(trie.num_nodes(), 5);
        assert_eq!(trie.num_children(), 4);
        assert_eq!(trie.num_patterns(), 3);
        assert_eq!(trie.max_fanout(), 2);
    }

    #[test]
    fn best_support_is_the_subtree_max() {
        let patterns = seqs(&[(&[0, 1], 3), (&[0, 2], 7), (&[1], 4)]);
        let trie = PatternTrie::build(&patterns, table(3), 10).unwrap();
        // Root's best is the global max; node for prefix [0] sees 7.
        assert_eq!(trie.best_support[0], 7);
        let zero_node = trie.lookup(&[0]).unwrap() as usize;
        assert_eq!(trie.best_support[zero_node], 7);
        assert_eq!(trie.terminal_support[zero_node], 0);
    }

    #[test]
    fn duplicate_patterns_keep_the_max_support() {
        let patterns = seqs(&[(&[0], 3), (&[0], 9)]);
        let trie = PatternTrie::build(&patterns, table(1), 10).unwrap();
        assert_eq!(trie.num_patterns(), 1);
        assert_eq!(trie.best_support[0], 9);
    }

    #[test]
    fn input_order_does_not_change_the_layout() {
        let a = seqs(&[(&[0, 1], 3), (&[2], 5), (&[0, 2], 2)]);
        let mut b = a.clone();
        b.reverse();
        let ta = PatternTrie::build(&a, table(3), 10).unwrap();
        let tb = PatternTrie::build(&b, table(3), 10).unwrap();
        assert_eq!(ta.child_offsets, tb.child_offsets);
        assert_eq!(ta.child_ids, tb.child_ids);
        assert_eq!(ta.child_nodes, tb.child_nodes);
        assert_eq!(ta.rank_order, tb.rank_order);
        assert_eq!(ta.best_support, tb.best_support);
        assert_eq!(ta.terminal_support, tb.terminal_support);
    }

    #[test]
    fn build_rejects_bad_input() {
        assert_eq!(
            PatternTrie::build(&seqs(&[(&[], 1)]), table(1), 10).unwrap_err(),
            TrieBuildError::EmptyPattern { pattern: 0 }
        );
        assert_eq!(
            PatternTrie::build(&seqs(&[(&[0], 0)]), table(1), 10).unwrap_err(),
            TrieBuildError::ZeroSupport { pattern: 0 }
        );
        assert_eq!(
            PatternTrie::build(&seqs(&[(&[3], 1)]), table(3), 10).unwrap_err(),
            TrieBuildError::IdOutOfRange {
                pattern: 0,
                id: 3,
                table_len: 3
            }
        );
    }

    #[test]
    fn preorder_means_children_follow_parents() {
        let patterns = seqs(&[(&[0, 1, 2], 2), (&[0, 2], 3), (&[1, 0], 1)]);
        let trie = PatternTrie::build(&patterns, table(3), 10).unwrap();
        for n in 0..trie.num_nodes() {
            let (lo, hi) = (
                trie.child_offsets[n] as usize,
                trie.child_offsets[n + 1] as usize,
            );
            for slot in lo..hi {
                assert!(trie.child_nodes[slot] as usize > n);
            }
            // Ascending ids within the range.
            for w in trie.child_ids[lo..hi].windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }
}
