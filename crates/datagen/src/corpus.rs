//! The corpus tables: potentially large itemsets and potentially large
//! sequences (paper §5.1 / VLDB'94 §4).

use rand::Rng;

use crate::distributions::{clamped_normal, exponential, poisson_at_least_one, WeightedIndex};
use crate::params::GenParams;
use seqpat_core::Item;

/// One potentially large itemset with its sampling weight and corruption
/// level.
#[derive(Debug, Clone)]
pub struct PotentialItemset {
    /// Sorted, duplicate-free items.
    pub items: Vec<Item>,
    /// Normalized sampling probability weight.
    pub weight: f64,
    /// Corruption level `c`: while `U(0,1) < c`, drop another item.
    pub corruption: f64,
}

/// One potentially large sequence: indices into the itemset table.
#[derive(Debug, Clone)]
pub struct PotentialSequence {
    /// The member itemsets (indices into [`Corpus::itemsets`]).
    pub elements: Vec<usize>,
    /// Normalized sampling probability weight.
    pub weight: f64,
    /// Corruption level.
    pub corruption: f64,
}

/// Both corpus tables plus their weighted samplers.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// `N_I` potentially large itemsets.
    pub itemsets: Vec<PotentialItemset>,
    /// `N_S` potentially large sequences.
    pub sequences: Vec<PotentialSequence>,
    sequence_sampler: WeightedIndex,
    itemset_sampler: WeightedIndex,
}

impl Corpus {
    /// Builds the corpus from the parameters.
    pub fn build(params: &GenParams, rng: &mut impl Rng) -> Self {
        let itemsets = build_itemsets(params, rng);
        let sequences = build_sequences(params, &itemsets, rng);
        let seq_weights: Vec<f64> = sequences.iter().map(|s| s.weight).collect();
        let set_weights: Vec<f64> = itemsets.iter().map(|s| s.weight).collect();
        Self {
            itemsets,
            sequences,
            sequence_sampler: WeightedIndex::new(&seq_weights),
            itemset_sampler: WeightedIndex::new(&set_weights),
        }
    }

    /// Draws a potentially large sequence index by weight.
    pub fn sample_sequence(&self, rng: &mut impl Rng) -> usize {
        self.sequence_sampler.sample(rng)
    }

    /// Draws a potentially large itemset index by weight (used to pad
    /// short transactions — the generator has no uniform noise source; all
    /// content is skewed corpus content, as in the paper).
    pub fn sample_itemset(&self, rng: &mut impl Rng) -> usize {
        self.itemset_sampler.sample(rng)
    }
}

fn build_itemsets(params: &GenParams, rng: &mut impl Rng) -> Vec<PotentialItemset> {
    let n = params.num_potential_itemsets;
    let mut out: Vec<PotentialItemset> = Vec::with_capacity(n);
    let mut raw_weights: Vec<f64> = Vec::with_capacity(n);
    for idx in 0..n {
        let size = poisson_at_least_one(rng, params.avg_potential_itemset_size) as usize;
        let mut items: Vec<Item> = Vec::with_capacity(size);
        // Correlated fraction carried over from the previous itemset:
        // exponentially distributed around the correlation level, capped
        // at 1 (VLDB'94 §4).
        if idx > 0 {
            let frac = exponential(rng, params.correlation).min(1.0);
            let prev = &out[idx - 1].items;
            let carry = ((frac * size as f64).round() as usize).min(prev.len());
            // Sample `carry` distinct positions from the previous itemset.
            let mut positions: Vec<usize> = (0..prev.len()).collect();
            for taken in 0..carry {
                let pick = rng.gen_range(taken..positions.len());
                positions.swap(taken, pick);
                items.push(prev[positions[taken]]);
            }
        }
        while items.len() < size {
            items.push(rng.gen_range(0..params.num_items));
        }
        items.sort_unstable();
        items.dedup();
        raw_weights.push(exponential(rng, 1.0));
        out.push(PotentialItemset {
            items,
            weight: 0.0,
            corruption: clamped_normal(rng, params.corruption_mean, params.corruption_sd, 0.0, 1.0),
        });
    }
    normalize_into(&mut out, &raw_weights, |p, w| p.weight = w);
    out
}

fn build_sequences(
    params: &GenParams,
    itemsets: &[PotentialItemset],
    rng: &mut impl Rng,
) -> Vec<PotentialSequence> {
    let n = params.num_potential_sequences;
    let itemset_weights: Vec<f64> = itemsets.iter().map(|i| i.weight).collect();
    let itemset_sampler = WeightedIndex::new(&itemset_weights);
    let mut out: Vec<PotentialSequence> = Vec::with_capacity(n);
    let mut raw_weights: Vec<f64> = Vec::with_capacity(n);
    for idx in 0..n {
        let len = poisson_at_least_one(rng, params.avg_potential_sequence_length) as usize;
        let mut elements: Vec<usize> = Vec::with_capacity(len);
        if idx > 0 {
            let frac = exponential(rng, params.correlation).min(1.0);
            let prev = &out[idx - 1].elements;
            let carry = ((frac * len as f64).round() as usize).min(prev.len());
            // Order is significant in sequences: keep the carried elements
            // in their original relative order (take a prefix slice of a
            // random rotation would break correlation; the paper carries a
            // contiguous run — we take the first `carry` elements).
            elements.extend_from_slice(&prev[..carry]);
        }
        while elements.len() < len {
            elements.push(itemset_sampler.sample(rng));
        }
        raw_weights.push(exponential(rng, 1.0));
        out.push(PotentialSequence {
            elements,
            weight: 0.0,
            corruption: clamped_normal(rng, params.corruption_mean, params.corruption_sd, 0.0, 1.0),
        });
    }
    normalize_into(&mut out, &raw_weights, |p, w| p.weight = w);
    out
}

fn normalize_into<T>(entries: &mut [T], raw: &[f64], set: impl Fn(&mut T, f64)) {
    let total: f64 = raw.iter().sum();
    debug_assert!(total > 0.0);
    for (entry, &w) in entries.iter_mut().zip(raw) {
        set(entry, w / total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_params() -> GenParams {
        GenParams::default().corpus_size(50, 200).items(500)
    }

    #[test]
    fn corpus_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let corpus = Corpus::build(&small_params(), &mut rng);
        assert_eq!(corpus.itemsets.len(), 200);
        assert_eq!(corpus.sequences.len(), 50);
        for set in &corpus.itemsets {
            assert!(!set.items.is_empty());
            assert!(set.items.windows(2).all(|w| w[0] < w[1]));
            assert!(set.items.iter().all(|&i| i < 500));
            assert!((0.0..=1.0).contains(&set.corruption));
        }
        for seq in &corpus.sequences {
            assert!(!seq.elements.is_empty());
            assert!(seq.elements.iter().all(|&e| e < 200));
        }
    }

    #[test]
    fn weights_normalized() {
        let mut rng = StdRng::seed_from_u64(2);
        let corpus = Corpus::build(&small_params(), &mut rng);
        let sum_i: f64 = corpus.itemsets.iter().map(|i| i.weight).sum();
        let sum_s: f64 = corpus.sequences.iter().map(|s| s.weight).sum();
        assert!((sum_i - 1.0).abs() < 1e-9);
        assert!((sum_s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn average_sizes_track_parameters() {
        let mut rng = StdRng::seed_from_u64(3);
        let params = GenParams::shape(10.0, 2.5, 4.0, 2.5)
            .corpus_size(2_000, 2_000)
            .items(10_000);
        let corpus = Corpus::build(&params, &mut rng);
        let avg_len: f64 = corpus
            .sequences
            .iter()
            .map(|s| s.elements.len() as f64)
            .sum::<f64>()
            / corpus.sequences.len() as f64;
        // Poisson clamped at 1 shifts the mean up slightly.
        assert!((avg_len - 4.0).abs() < 0.5, "avg sequence length {avg_len}");
        let avg_size: f64 = corpus
            .itemsets
            .iter()
            .map(|s| s.items.len() as f64)
            .sum::<f64>()
            / corpus.itemsets.len() as f64;
        assert!((avg_size - 2.5).abs() < 0.5, "avg itemset size {avg_size}");
    }

    #[test]
    fn deterministic_per_seed() {
        let p = small_params();
        let a = Corpus::build(&p, &mut StdRng::seed_from_u64(9));
        let b = Corpus::build(&p, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.itemsets.len(), b.itemsets.len());
        for (x, y) in a.itemsets.iter().zip(&b.itemsets) {
            assert_eq!(x.items, y.items);
        }
        for (x, y) in a.sequences.iter().zip(&b.sequences) {
            assert_eq!(x.elements, y.elements);
        }
    }

    #[test]
    fn correlation_carries_items_over() {
        // With correlation 1.0 consecutive itemsets share most content.
        let mut rng = StdRng::seed_from_u64(4);
        let mut p = small_params();
        p.correlation = 1.0;
        p.avg_potential_itemset_size = 5.0;
        let corpus = Corpus::build(&p, &mut rng);
        let mut overlaps = 0usize;
        for w in corpus.itemsets.windows(2) {
            if w[1].items.iter().any(|i| w[0].items.contains(i)) {
                overlaps += 1;
            }
        }
        assert!(
            overlaps > corpus.itemsets.len() / 2,
            "only {overlaps} overlapping neighbours"
        );
    }
}
