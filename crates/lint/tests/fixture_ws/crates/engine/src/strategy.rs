//! The fixture's strategy enum plus two seeded non-exhaustive matches.

pub enum CountingStrategy {
    Direct,
    HashTree,
    Vertical,
    Bitmap,
    Auto,
}

pub fn wildcard_dispatch(s: CountingStrategy) -> u32 {
    match s {
        CountingStrategy::Direct => 0,
        _ => 1, // seeded: catch-all arm over a strategy enum
    }
}

pub fn missing_variant_dispatch(s: CountingStrategy) -> u32 {
    // seeded: names four of the five variants, `Auto` is missing
    match s {
        CountingStrategy::Direct => 0,
        CountingStrategy::HashTree => 1,
        CountingStrategy::Vertical => 2,
        CountingStrategy::Bitmap => 3,
    }
}
