//! Small sampling utilities: Poisson, exponential and normal variates plus
//! weighted discrete choice, built on `rand`'s uniform source only (the
//! sanctioned `rand` crate ships without `rand_distr`).

use rand::Rng;

/// Poisson sample via Knuth's product-of-uniforms method — exact and fast
/// for the small means this generator uses (`|C| ≤ 50`, `|T| ≤ 10`).
pub fn poisson(rng: &mut impl Rng, mean: f64) -> u64 {
    debug_assert!(mean > 0.0);
    // For large means Knuth's method degrades (needs ~mean uniforms and
    // e^-mean underflows); fall back to a normal approximation, fine for
    // the scale-up sweeps.
    if mean > 30.0 {
        let x = normal(rng, mean, mean.sqrt());
        return x.max(0.0).round() as u64;
    }
    let limit = (-mean).exp();
    let mut product: f64 = rng.gen();
    let mut count = 0u64;
    while product > limit {
        product *= rng.gen::<f64>();
        count += 1;
    }
    count
}

/// Poisson clamped below by 1 — the generator's sizes must be positive.
pub fn poisson_at_least_one(rng: &mut impl Rng, mean: f64) -> u64 {
    poisson(rng, mean).max(1)
}

/// Exponential variate with the given mean (inverse CDF).
pub fn exponential(rng: &mut impl Rng, mean: f64) -> f64 {
    debug_assert!(mean > 0.0);
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// Normal variate via Box–Muller.
pub fn normal(rng: &mut impl Rng, mean: f64, sd: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + sd * z
}

/// Normal variate clamped into `[lo, hi]` — the paper clamps corruption
/// levels into `[0, 1]`.
pub fn clamped_normal(rng: &mut impl Rng, mean: f64, sd: f64, lo: f64, hi: f64) -> f64 {
    normal(rng, mean, sd).clamp(lo, hi)
}

/// Weighted discrete sampler over normalized weights, using cumulative
/// sums + binary search. Construction is `O(n)`, sampling `O(log n)`.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
}

impl WeightedIndex {
    /// Builds the sampler; weights must be non-negative with positive sum.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0, "negative weight");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "weights must sum to a positive value");
        Self { cumulative }
    }

    /// Draws an index with probability proportional to its weight.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.gen_range(0.0..total);
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("no NaN"))
        {
            Ok(i) => i + 1, // x exactly equals a boundary: next bucket
            Err(i) => i,
        }
        .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut r = rng();
        let n = 20_000;
        for mean in [0.5, 1.25, 2.5, 4.0, 10.0] {
            let sum: u64 = (0..n).map(|_| poisson(&mut r, mean)).sum();
            let observed = sum as f64 / n as f64;
            assert!(
                (observed - mean).abs() < 0.1 * mean + 0.05,
                "mean {mean}: observed {observed}"
            );
        }
    }

    #[test]
    fn poisson_large_mean_normal_fallback() {
        let mut r = rng();
        let n = 5_000;
        let sum: u64 = (0..n).map(|_| poisson(&mut r, 50.0)).sum();
        let observed = sum as f64 / n as f64;
        assert!((observed - 50.0).abs() < 1.0, "observed {observed}");
    }

    #[test]
    fn poisson_at_least_one_never_zero() {
        let mut r = rng();
        assert!((0..5_000).all(|_| poisson_at_least_one(&mut r, 0.1) >= 1));
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = rng();
        let n = 30_000;
        let sum: f64 = (0..n).map(|_| exponential(&mut r, 2.0)).sum();
        let observed = sum / n as f64;
        assert!((observed - 2.0).abs() < 0.1, "observed {observed}");
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 30_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 0.75, 0.1)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 0.75).abs() < 0.01);
        assert!((var.sqrt() - 0.1).abs() < 0.01);
    }

    #[test]
    fn clamped_normal_stays_in_range() {
        let mut r = rng();
        for _ in 0..5_000 {
            let x = clamped_normal(&mut r, 0.75, 0.5, 0.0, 1.0);
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = rng();
        let w = WeightedIndex::new(&[1.0, 0.0, 3.0]);
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[w.sample(&mut r)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn weighted_index_rejects_empty() {
        let _ = WeightedIndex::new(&[]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn weighted_index_rejects_all_zero() {
        let _ = WeightedIndex::new(&[0.0, 0.0]);
    }
}
