//! Sequences of itemsets — the objects the miner searches for.

use std::fmt;

use super::itemset::Itemset;

/// An ordered list of itemsets, e.g. `⟨(30)(40 70)⟩`.
///
/// **Length** of a sequence is its number of itemsets (a *k-sequence* has
/// `k` elements), exactly as the paper defines it.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sequence {
    elements: Vec<Itemset>,
}

impl Sequence {
    /// Builds a sequence from its elements.
    ///
    /// # Panics
    /// Panics when `elements` is empty; the paper's sequences have length ≥ 1.
    pub fn new(elements: Vec<Itemset>) -> Self {
        assert!(
            !elements.is_empty(),
            "a sequence must have at least one element"
        );
        Self { elements }
    }

    /// Convenience constructor from plain item vectors.
    ///
    /// ```
    /// use seqpat_core::Sequence;
    /// let s = Sequence::from_items(vec![vec![30], vec![40, 70]]);
    /// assert_eq!(s.to_string(), "<(30)(40 70)>");
    /// ```
    pub fn from_items(elements: Vec<Vec<super::itemset::Item>>) -> Self {
        Self::new(elements.into_iter().map(Itemset::new).collect())
    }

    /// The elements in order.
    pub fn elements(&self) -> &[Itemset] {
        &self.elements
    }

    /// Number of elements (the paper's sequence length).
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Always `false`; sequences are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total number of items across all elements.
    pub fn total_items(&self) -> usize {
        self.elements.iter().map(Itemset::len).sum()
    }

    /// Containment test per the paper's definition: `self ⊑ other` iff there
    /// are indices `i1 < … < in` with `self[j] ⊆ other[i_j]` for all `j`.
    ///
    /// Delegates to [`crate::contain::sequence_contains`].
    pub fn is_contained_in(&self, other: &Sequence) -> bool {
        crate::contain::sequence_contains(other.elements(), self.elements())
    }

    /// Consumes the sequence, returning its elements.
    pub fn into_elements(self) -> Vec<Itemset> {
        self.elements
    }
}

impl fmt::Display for Sequence {
    /// Paper notation: `<(30)(40 70)>`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for e in &self.elements {
            write!(f, "{e}")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(v: Vec<Vec<u32>>) -> Sequence {
        Sequence::from_items(v)
    }

    #[test]
    fn display_notation() {
        assert_eq!(
            seq(vec![vec![30], vec![40, 70]]).to_string(),
            "<(30)(40 70)>"
        );
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn empty_sequence_rejected() {
        let _ = Sequence::new(vec![]);
    }

    #[test]
    fn containment_paper_example() {
        // ⟨(3)(4 5)(8)⟩ is contained in ⟨(7)(3 8)(9)(4 5 6)(8)⟩ (paper §2).
        let small = seq(vec![vec![3], vec![4, 5], vec![8]]);
        let big = seq(vec![vec![7], vec![3, 8], vec![9], vec![4, 5, 6], vec![8]]);
        assert!(small.is_contained_in(&big));
        assert!(!big.is_contained_in(&small));
    }

    #[test]
    fn containment_requires_order() {
        // ⟨(3)(5)⟩ not contained in ⟨(3 5)⟩ (paper §2).
        let a = seq(vec![vec![3], vec![5]]);
        let b = seq(vec![vec![3, 5]]);
        assert!(!a.is_contained_in(&b));
        assert!(!b.is_contained_in(&a));
    }

    #[test]
    fn containment_is_reflexive() {
        let s = seq(vec![vec![1, 2], vec![3]]);
        assert!(s.is_contained_in(&s));
    }

    #[test]
    fn lengths() {
        let s = seq(vec![vec![1, 2], vec![3], vec![4, 5, 6]]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.total_items(), 6);
    }
}
