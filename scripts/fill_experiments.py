#!/usr/bin/env python3
"""Fills the <!-- Ex-MEASURED --> placeholders in EXPERIMENTS.md from the
CSVs under results/. Idempotent: replaces the section between a placeholder
comment and the next blank-line-delimited block it previously wrote."""
import csv
import io
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"
DOC = ROOT / "EXPERIMENTS.md"


def table(rows, headers):
    out = io.StringIO()
    out.write("| " + " | ".join(headers) + " |\n")
    out.write("|" + "---|" * len(headers) + "\n")
    for row in rows:
        out.write("| " + " | ".join(str(c) for c in row) + " |\n")
    return out.getvalue()


def load(name):
    path = RESULTS / name
    if not path.exists():
        return None
    with open(path) as f:
        return list(csv.DictReader(f))


def fmt_pct(x):
    return f"{float(x) * 100:.2f}%"


def e1():
    rows = load("e1_minsup_sweep.csv")
    if not rows:
        return None
    # Per dataset: one row per minsup with three algorithm times.
    out = []
    datasets = []
    for r in rows:
        if r["dataset"] not in datasets:
            datasets.append(r["dataset"])
    for ds in datasets:
        sub = [r for r in rows if r["dataset"] == ds]
        minsups = []
        for r in sub:
            if r["minsup"] not in minsups:
                minsups.append(r["minsup"])
        body = []
        for m in minsups:
            cells = {r["algorithm"]: r for r in sub if r["minsup"] == m}
            aa = cells.get("apriori-all")
            some = cells.get("apriori-some")
            dyn = cells.get("dynamic-some(step=2)")
            body.append(
                [
                    fmt_pct(m),
                    f"{float(aa['seconds']):.2f}" if aa else "-",
                    f"{float(some['seconds']):.2f}" if some else "-",
                    f"{float(dyn['seconds']):.2f}" if dyn else "-",
                    aa["patterns"] if aa else "-",
                ]
            )
        out.append(f"**{ds}**\n\n" + table(body, ["minsup", "apriori-all s", "apriori-some s", "dynamic-some s", "patterns"]))
    return "\n".join(out)


def e2():
    rows = load("e2_relative.csv")
    if not rows:
        return None
    body = [
        [fmt_pct(r["minsup"]), "1.00", f"{float(r['apriori_some']):.2f}", f"{float(r['dynamic_some']):.2f}"]
        for r in rows
    ]
    return table(body, ["minsup", "apriori-all", "apriori-some", "dynamic-some"])


def e3():
    rows = load("e3_scaleup_customers.csv")
    if not rows:
        return None
    body = [
        [r["customers"], r["algorithm"], f"{float(r['seconds']):.3f}", f"{float(r['relative']):.2f}"]
        for r in rows
    ]
    return table(body, ["|D|", "algorithm", "seconds", "relative"])


def e4():
    rows = load("e4_scaleup_ctrans.csv")
    if not rows:
        return None
    body = [
        [r["avg_transactions"], r["algorithm"], f"{float(r['seconds']):.3f}", f"{float(r['relative']):.2f}"]
        for r in rows
    ]
    return table(body, ["|C|", "algorithm", "seconds", "relative"])


def e5():
    rows = load("e5_passes.csv")
    if not rows:
        return None
    body = [
        [r["algorithm"], r["k"], r["direction"], r["generated"], r["counted"], r["pruned"], r["large"]]
        for r in rows
    ]
    return table(body, ["algorithm", "k", "direction", "generated", "counted", "pruned", "large"])


def e6():
    rows = load("e6_prefixspan.csv")
    if not rows:
        return None
    body = [
        [fmt_pct(r["minsup"]), r["algorithm"], f"{float(r['seconds']):.3f}", r["patterns"]]
        for r in rows
    ]
    return table(body, ["minsup", "algorithm", "seconds", "maximal patterns"])


def e7():
    rows = load("e7_ablation.csv")
    if not rows:
        return None
    body = [
        [
            r["strategy"],
            r["fanout"] or "-",
            r["leaf_capacity"] or "-",
            f"{float(r['seconds']):.3f}",
            r["containment_tests"],
        ]
        for r in rows
    ]
    return table(body, ["strategy", "fanout", "leaf cap", "seconds", "containment tests"])


def e8():
    rows = load("e8_gsp_constraints.csv")
    if not rows:
        return None
    body = [
        [r["constraints"], f"{float(r['seconds']):.3f}", r["frequent"], r["multi_element"]]
        for r in rows
    ]
    return table(body, ["constraints", "seconds", "frequent", "multi-element"])


def main():
    doc = DOC.read_text()
    sections = {
        "E1": e1(),
        "E2": e2(),
        "E3": e3(),
        "E4": e4(),
        "E5": e5(),
        "E6": e6(),
        "E7": e7(),
        "E8": e8(),
    }
    for key, content in sections.items():
        if content is None:
            print(f"{key}: no CSV yet, skipped", file=sys.stderr)
            continue
        marker = f"<!-- {key}-MEASURED -->"
        if marker not in doc:
            print(f"{key}: marker missing, skipped", file=sys.stderr)
            continue
        # Replace marker plus anything until the next heading-or-marker.
        pattern = re.compile(
            re.escape(marker) + r".*?(?=\n## |\n<!-- |\Z)", re.S
        )
        doc = pattern.sub(marker + "\n\n" + content.rstrip() + "\n", doc)
        print(f"{key}: filled")
    DOC.write_text(doc)


if __name__ == "__main__":
    main()
