//! # seqpat-io — dataset input/output.
//!
//! Two text formats plus dataset statistics:
//!
//! * [`spmf`] — the de-facto standard sequence-database format of the SPMF
//!   library (the repository the paper's successors are benchmarked
//!   against): one customer sequence per line, itemsets separated by `-1`,
//!   line terminated by `-2`.
//! * [`csv`] — raw transaction rows `customer,time,items…`, the shape the
//!   paper's sort phase consumes.
//! * [`stats`] — summary statistics used by the experiment harness's
//!   dataset table (experiment E0).

pub mod csv;
pub mod error;
pub mod spmf;
pub mod stats;

pub use error::IoError;
pub use stats::DatasetStats;
