//! Mining navigation patterns from web sessions.
//!
//! ```sh
//! cargo run --example weblog_sessions
//! ```
//!
//! Sequential pattern mining is not just retail: any per-entity event log
//! fits the paper's model. Here each "customer" is a visitor, each
//! "transaction" one page visit (single-item events), and the mined
//! sequences are common navigation paths. The example builds a synthetic
//! clickstream with hand-planted paths plus noise, mines it with
//! AprioriAll and with the PrefixSpan comparator, and checks both find the
//! planted paths.

use seqpat::prefixspan::{prefixspan_maximal, PrefixSpanConfig};
use seqpat::{Algorithm, Database, MinSupport, Miner, MinerConfig};

// Page ids.
const HOME: u32 = 0;
const SEARCH: u32 = 1;
const PRODUCT: u32 = 2;
const CART: u32 = 3;
const CHECKOUT: u32 = 4;
const HELP: u32 = 5;
const ACCOUNT: u32 = 6;

fn page_name(p: u32) -> &'static str {
    match p {
        HOME => "home",
        SEARCH => "search",
        PRODUCT => "product",
        CART => "cart",
        CHECKOUT => "checkout",
        HELP => "help",
        ACCOUNT => "account",
        _ => "?",
    }
}

fn main() {
    // A deterministic toy clickstream: 300 visitors. 40% follow the
    // purchase funnel home→search→product→cart→checkout; 25% browse
    // home→search→product and leave; the rest wander.
    let mut rows: Vec<(u64, i64, Vec<u32>)> = Vec::new();
    let mut state: u64 = 0x9E3779B97F4A7C15;
    let mut rnd = move |m: u64| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state % m
    };
    for visitor in 0..300u64 {
        let path: Vec<u32> = match rnd(100) {
            0..=39 => vec![HOME, SEARCH, PRODUCT, CART, CHECKOUT],
            40..=64 => vec![HOME, SEARCH, PRODUCT],
            65..=79 => vec![HOME, ACCOUNT, HELP],
            _ => {
                let len = 2 + rnd(4) as usize;
                (0..len).map(|_| rnd(7) as u32).collect()
            }
        };
        for (t, page) in path.into_iter().enumerate() {
            rows.push((visitor, t as i64, vec![page]));
        }
    }
    let db = Database::from_rows(rows);
    println!(
        "{} visitors, {} page views\n",
        db.num_customers(),
        db.num_transactions()
    );

    let minsup = MinSupport::Fraction(0.2);
    let result = Miner::new(MinerConfig::new(minsup).algorithm(Algorithm::AprioriSome)).mine(&db);
    println!("maximal navigation patterns at 20% support (AprioriSome):");
    for pattern in &result.patterns {
        let path: Vec<&str> = pattern
            .sequence
            .elements()
            .iter()
            .map(|e| page_name(e.items()[0]))
            .collect();
        println!(
            "  {}  — {} visitors ({:.0}%)",
            path.join(" → "),
            pattern.support,
            100.0 * result.support_fraction(pattern)
        );
    }

    // The planted funnel must be found.
    let funnel = "home → search → product → cart → checkout";
    let found_funnel = result.patterns.iter().any(|p| {
        let path: Vec<&str> = p
            .sequence
            .elements()
            .iter()
            .map(|e| page_name(e.items()[0]))
            .collect();
        path.join(" → ") == funnel
    });
    assert!(found_funnel, "the planted purchase funnel was not found");
    println!("\nplanted funnel recovered ✓");

    // Cross-check with the PrefixSpan comparator (extension crate).
    let ps = prefixspan_maximal(&db, minsup, &PrefixSpanConfig::default());
    let a: Vec<String> = result.patterns.iter().map(|p| p.to_string()).collect();
    let b: Vec<String> = ps.iter().map(|p| p.to_string()).collect();
    assert_eq!(a, b, "PrefixSpan and AprioriSome disagree");
    println!("PrefixSpan agrees ✓");
}
