//! `apriori-generate` for sequences (paper §4.1.1).
//!
//! Differences from the itemset version worth spelling out:
//!
//! * Order matters, so the join pairs are **ordered**: any two sequences
//!   `p, q` (possibly `p == q`) sharing their first `k-2` elements produce
//!   the candidate `p · ⟨q_last⟩`. At `k = 2` the shared prefix is empty and
//!   all `|L1|²` ordered pairs arise, including `⟨x x⟩`.
//! * Elements may repeat within a sequence (`⟨1 2 1⟩` is legal), so there is
//!   no `p.last < q.last` restriction.
//! * The prune step drops a candidate when any of its `(k-1)`-subsequences
//!   (obtained by deleting one element) is missing from the generation
//!   source.

use crate::types::transformed::LitemsetId;

/// One large or candidate sequence in id space.
pub type IdSeq = Vec<LitemsetId>;

/// Generates length-`k` candidates from the length-`k-1` source (large
/// sequences in AprioriAll; possibly candidates in the Some variants'
/// forward phases).
///
/// `prev` must be lexicographically sorted and duplicate-free; all elements
/// must share one length ≥ 1. Output is lexicographically sorted and
/// duplicate-free.
pub fn generate(prev: &[IdSeq]) -> Vec<IdSeq> {
    if prev.is_empty() {
        return Vec::new();
    }
    let k_minus_1 = prev[0].len();
    debug_assert!(prev.iter().all(|s| s.len() == k_minus_1));
    debug_assert!(
        prev.windows(2).all(|w| w[0] < w[1]),
        "prev must be sorted+dedup"
    );

    let mut out = Vec::new();
    let mut block_start = 0;
    while block_start < prev.len() {
        let prefix = &prev[block_start][..k_minus_1 - 1];
        let mut block_end = block_start + 1;
        while block_end < prev.len() && &prev[block_end][..k_minus_1 - 1] == prefix {
            block_end += 1;
        }
        // Ordered pairs within the block, p == q included.
        for p in &prev[block_start..block_end] {
            for q in &prev[block_start..block_end] {
                let mut cand = p.clone();
                cand.push(q[k_minus_1 - 1]);
                if survives_prune(&cand, prev) {
                    out.push(cand);
                }
            }
        }
        block_start = block_end;
    }
    debug_assert!(out.windows(2).all(|w| w[0] < w[1]));
    out
}

/// Every delete-one-element subsequence of `cand` must be present in `prev`.
fn survives_prune(cand: &[LitemsetId], prev: &[IdSeq]) -> bool {
    let mut sub: IdSeq = Vec::with_capacity(cand.len() - 1);
    for drop in 0..cand.len() {
        sub.clear();
        sub.extend_from_slice(&cand[..drop]);
        sub.extend_from_slice(&cand[drop + 1..]);
        if prev.binary_search_by(|s| s.as_slice().cmp(&sub)).is_err() {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k2_from_singletons_is_all_ordered_pairs() {
        let prev: Vec<IdSeq> = vec![vec![0], vec![1]];
        let got = generate(&prev);
        assert_eq!(got, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn paper_style_join_and_prune() {
        // L3 = {⟨1 2 3⟩ ⟨1 2 4⟩ ⟨1 3 4⟩ ⟨1 3 5⟩ ⟨2 3 4⟩}. The join over the
        // prefix blocks yields (paper §4.1.1's example adapted to order):
        // ⟨1 2 3 4⟩ survives (all 3-subseqs present); the mirror candidates
        // like ⟨1 2 4 3⟩ die because ⟨1 4 3⟩ or ⟨2 4 3⟩ are absent.
        let prev: Vec<IdSeq> = vec![
            vec![1, 2, 3],
            vec![1, 2, 4],
            vec![1, 3, 4],
            vec![1, 3, 5],
            vec![2, 3, 4],
        ];
        let got = generate(&prev);
        assert_eq!(got, vec![vec![1, 2, 3, 4]]);
    }

    #[test]
    fn repeated_elements_are_legal() {
        // ⟨7 7⟩ is generated from L1 = {⟨7⟩} and survives (both delete-one
        // subsequences equal ⟨7⟩).
        let prev: Vec<IdSeq> = vec![vec![7]];
        assert_eq!(generate(&prev), vec![vec![7, 7]]);
    }

    #[test]
    fn triple_with_repeats_needs_its_subsequences() {
        // From L2 = {⟨7 7⟩} the join gives ⟨7 7 7⟩, whose subsequences are
        // all ⟨7 7⟩ — present, so it survives.
        let prev: Vec<IdSeq> = vec![vec![7, 7]];
        assert_eq!(generate(&prev), vec![vec![7, 7, 7]]);
    }

    #[test]
    fn prune_blocks_missing_subsequence() {
        // L2 = {⟨0 1⟩, ⟨1 1⟩}: join block prefixes are [0] and [1];
        // candidates ⟨0 1 1⟩ (from ⟨0 1⟩+⟨0 1⟩.last) needs ⟨0 1⟩ (ok, drop
        // middle and last give ⟨0 1⟩) and ⟨1 1⟩ (drop first) — present, so
        // it survives. ⟨1 1 1⟩ survives likewise. But with L2 = {⟨0 1⟩}
        // alone nothing survives because ⟨1 1⟩ is missing.
        let got = generate(&[vec![0, 1], vec![1, 1]]);
        assert_eq!(got, vec![vec![0, 1, 1], vec![1, 1, 1]]);
        let got2 = generate(&[vec![0, 1]]);
        assert!(got2.is_empty());
    }

    #[test]
    fn empty_input() {
        assert!(generate(&[]).is_empty());
    }

    #[test]
    fn completeness_every_large_superset_is_generated() {
        // Anti-monotonicity completeness check: if every (k-1)-subsequence
        // of a k-sequence is in prev, the k-sequence must be generated.
        let prev: Vec<IdSeq> = vec![vec![0, 1], vec![1, 0], vec![0, 0], vec![1, 1]]
            .into_iter()
            .collect();
        let mut prev = prev;
        prev.sort();
        let got = generate(&prev);
        // ⟨0 1 0⟩: subsequences ⟨1 0⟩, ⟨0 0⟩, ⟨0 1⟩ all present → must appear.
        assert!(got.contains(&vec![0, 1, 0]));
        // All 8 ternary sequences over {0,1} qualify here.
        assert_eq!(got.len(), 8);
    }
}
