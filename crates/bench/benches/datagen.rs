//! Criterion benchmarks for the synthetic generator: corpus construction
//! and customer-sequence assembly throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use seqpat_datagen::corpus::Corpus;
use seqpat_datagen::generator::generate_with_corpus;
use seqpat_datagen::{generate, GenParams};

fn bench_corpus_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus_build");
    group.sample_size(10);
    for (ns, ni) in [(500usize, 2_500usize), (5_000, 25_000)] {
        let params = GenParams::default().corpus_size(ns, ni);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("NS{ns}_NI{ni}")),
            &params,
            |b, p| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    Corpus::build(black_box(p), &mut rng)
                })
            },
        );
    }
    group.finish();
}

fn bench_customer_assembly(c: &mut Criterion) {
    let params = GenParams::default().customers(1_000);
    let mut rng = StdRng::seed_from_u64(1);
    let corpus = Corpus::build(&params, &mut rng);
    let mut group = c.benchmark_group("customer_assembly");
    group.sample_size(10);
    group.bench_function("1000_customers_C10_T2.5", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            generate_with_corpus(black_box(&params), &corpus, &mut rng)
        })
    });
    group.finish();
}

fn bench_end_to_end_shapes(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_end_to_end");
    group.sample_size(10);
    for name in ["C10-T2.5-S4-I1.25", "C20-T2.5-S8-I1.25"] {
        let params = GenParams::paper_dataset(name)
            .expect("paper dataset")
            .customers(500)
            .corpus_size(500, 2_500);
        group.bench_with_input(BenchmarkId::from_parameter(name), &params, |b, p| {
            b.iter(|| generate(black_box(p), 7))
        });
    }
    group.finish();
}

criterion_group!(
    datagen,
    bench_corpus_build,
    bench_customer_assembly,
    bench_end_to_end_shapes
);
criterion_main!(datagen);
