//! # seqpat-gsp — Generalized Sequential Patterns (extension).
//!
//! The ICDE 1995 paper's conclusion lists the generalizations its authors
//! tackled next in the EDBT 1996 follow-up ("Mining Sequential Patterns:
//! Generalizations and Performance Improvements"): **time constraints**
//! between the elements of a pattern and a **sliding window** that lets one
//! element be collected from several nearby transactions. This crate
//! implements that successor algorithm, GSP, with those generalizations:
//!
//! * **min-gap** — consecutive pattern elements must be more than `min_gap`
//!   time units apart;
//! * **max-gap** — the *end* of an element's window must be within
//!   `max_gap` of the *start* of the previous element's window (the EDBT'96
//!   definition; it is what breaks plain anti-monotonicity and forces the
//!   contiguous-subsequence prune);
//! * **window** — one pattern element may be assembled from the union of
//!   transactions spanning at most `window` time units.
//!
//! Formally (EDBT'96 §2): a data sequence `d = d_1 … d_m` with transaction
//! times `t(·)` contains a pattern `s = s_1 … s_n` iff there are windows
//! `l_1 ≤ u_1 < l_2 ≤ u_2 < … < l_n ≤ u_n` with
//!
//! 1. `s_i ⊆ d_{l_i} ∪ … ∪ d_{u_i}` and `t(u_i) − t(l_i) ≤ window`,
//! 2. `t(l_i) − t(u_{i−1}) > min_gap`,
//! 3. `t(u_i) − t(l_{i−1}) ≤ max_gap`.
//!
//! With the default constraints (`window = 0`, `min_gap = 0`, no max-gap)
//! GSP's frequent-sequence set coincides with the 1995 definition, which
//! the test-suite pins against AprioriAll and PrefixSpan.
//!
//! Unlike the 1995 algorithms, GSP's pass `k` handles patterns with `k`
//! **items** (not `k` elements), and it mines **all** frequent sequences;
//! use [`gsp_maximal`] for the 1995-style maximal answer.
//!
//! Taxonomies (the third EDBT'96 generalization) are out of scope here.
//!
//! ```
//! use seqpat_gsp::{gsp, GspConfig};
//! use seqpat_core::{Database, MinSupport};
//!
//! let db = Database::from_rows(vec![
//!     (1, 1, vec![30]), (1, 20, vec![90]),
//!     (2, 1, vec![30]), (2, 2, vec![90]),
//! ]);
//! // Unconstrained: both customers support ⟨(30)(90)⟩.
//! let all = gsp(&db, MinSupport::Count(2), &GspConfig::default());
//! assert!(all.iter().any(|p| p.sequence.to_string() == "<(30)(90)>"));
//! // With max_gap = 5 only customer 2's gap qualifies: the pattern drops out.
//! let constrained = gsp(&db, MinSupport::Count(2), &GspConfig::default().max_gap(5));
//! assert!(!constrained.iter().any(|p| p.sequence.to_string() == "<(30)(90)>"));
//! ```

pub mod candidate;
pub mod contains;

#[cfg(test)]
mod proptests;

use seqpat_core::contain::sequence_contains;
use seqpat_core::{Database, Item, Itemset, MinSupport, Pattern, Sequence};

use candidate::{generate_k2, generate_next, ItemSeq};
use contains::{contains_with_constraints, DataSequence};

/// Time-constraint configuration (all in the units of transaction times).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GspConfig {
    /// Consecutive elements must satisfy `t(l_i) − t(u_{i−1}) > min_gap`.
    /// `0` only requires strictly later transactions (the 1995 semantics).
    pub min_gap: i64,
    /// `t(u_i) − t(l_{i−1}) ≤ max_gap` when set.
    pub max_gap: Option<i64>,
    /// One element may span transactions within `window` time units.
    pub window: i64,
    /// Optional cap on the number of items in a pattern.
    pub max_items: Option<usize>,
}

impl GspConfig {
    /// Sets the minimum gap.
    pub fn min_gap(mut self, gap: i64) -> Self {
        self.min_gap = gap;
        self
    }

    /// Sets the maximum gap.
    pub fn max_gap(mut self, gap: i64) -> Self {
        self.max_gap = Some(gap);
        self
    }

    /// Sets the sliding-window size.
    pub fn window(mut self, window: i64) -> Self {
        self.window = window;
        self
    }

    /// Caps the total item count of mined patterns.
    pub fn max_items(mut self, cap: usize) -> Self {
        self.max_items = Some(cap);
        self
    }

    fn validate(&self) {
        assert!(self.min_gap >= 0, "min_gap must be non-negative");
        assert!(self.window >= 0, "window must be non-negative");
        if let Some(g) = self.max_gap {
            assert!(g >= 0, "max_gap must be non-negative");
            assert!(g >= self.min_gap, "max_gap must be at least min_gap");
        }
    }
}

/// Per-pass counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GspPassStats {
    /// Number of items per pattern in this pass.
    pub k: usize,
    /// Candidates counted.
    pub candidates: u64,
    /// Candidates found frequent.
    pub frequent: u64,
}

/// Mines **all** frequent sequences under the time constraints. Patterns
/// come back sorted by (element count, elements).
pub fn gsp(db: &Database, min_support: MinSupport, config: &GspConfig) -> Vec<Pattern> {
    gsp_with_stats(db, min_support, config).0
}

/// Like [`gsp`] but with per-pass statistics.
pub fn gsp_with_stats(
    db: &Database,
    min_support: MinSupport,
    config: &GspConfig,
) -> (Vec<Pattern>, Vec<GspPassStats>) {
    config.validate();
    let min_count = min_support.to_count(db.num_customers());
    let data: Vec<DataSequence> = db.customers().iter().map(DataSequence::from).collect();

    let mut passes: Vec<GspPassStats> = Vec::new();
    let mut out: Vec<Pattern> = Vec::new();

    // Pass 1: frequent items (constraints are vacuous for one element).
    let mut item_counts: std::collections::BTreeMap<Item, u64> = std::collections::BTreeMap::new();
    for d in &data {
        let mut items: Vec<Item> = d
            .transactions
            .iter()
            .flat_map(|(_, t)| t.iter().copied())
            .collect();
        items.sort_unstable();
        items.dedup();
        for item in items {
            *item_counts.entry(item).or_insert(0) += 1;
        }
    }
    let distinct = item_counts.len() as u64;
    let frequent_items: Vec<(Item, u64)> = item_counts
        .into_iter()
        .filter(|&(_, c)| c >= min_count)
        .collect();
    passes.push(GspPassStats {
        k: 1,
        candidates: distinct,
        frequent: frequent_items.len() as u64,
    });
    let mut frequent: Vec<(ItemSeq, u64)> = frequent_items
        .iter()
        .map(|&(item, support)| (vec![vec![item]], support))
        .collect();
    out.extend(frequent.iter().map(|(s, sup)| to_pattern(s, *sup)));
    if frequent.is_empty() {
        return (finish(out), passes);
    }

    // Inverted index: item → ascending customer indices containing it.
    // A candidate's potential supporters are the intersection of its
    // items' lists, so the (expensive, constraint-aware) matcher only runs
    // on customers that hold every item — for most candidates a handful.
    let mut inverted: std::collections::BTreeMap<Item, Vec<u32>> =
        std::collections::BTreeMap::new();
    for (ci, d) in data.iter().enumerate() {
        let mut items: Vec<Item> = d
            .transactions
            .iter()
            .flat_map(|(_, t)| t.iter().copied())
            .collect();
        items.sort_unstable();
        items.dedup();
        for item in items {
            inverted.entry(item).or_default().push(ci as u32);
        }
    }
    let supporters = |cand: &ItemSeq| -> Vec<u32> {
        let mut lists: Vec<&Vec<u32>> = Vec::new();
        for element in cand {
            for item in element {
                match inverted.get(item) {
                    Some(list) => lists.push(list),
                    None => return Vec::new(),
                }
            }
        }
        lists.sort_by_key(|l| l.len());
        lists.dedup_by(|a, b| std::ptr::eq(*a, *b));
        let mut acc: Vec<u32> = lists[0].clone();
        for list in &lists[1..] {
            acc.retain(|c| list.binary_search(c).is_ok());
            if acc.is_empty() {
                break;
            }
        }
        acc
    };

    let mut k = 2usize;
    loop {
        if config.max_items.is_some_and(|cap| k > cap) {
            break;
        }
        let prev: Vec<ItemSeq> = frequent.iter().map(|(s, _)| s.clone()).collect();
        let candidates = if k == 2 {
            let items: Vec<Item> = frequent_items.iter().map(|&(i, _)| i).collect();
            generate_k2(&items)
        } else {
            generate_next(&prev, config.max_gap.is_some())
        };
        if candidates.is_empty() {
            break;
        }
        let mut next: Vec<(ItemSeq, u64)> = Vec::new();
        for cand in &candidates {
            let potential = supporters(cand);
            if (potential.len() as u64) < min_count {
                continue;
            }
            let mut support = 0u64;
            for &ci in &potential {
                if contains_with_constraints(&data[ci as usize], cand, config) {
                    support += 1;
                }
            }
            if support >= min_count {
                next.push((cand.clone(), support));
            }
        }
        passes.push(GspPassStats {
            k,
            candidates: candidates.len() as u64,
            frequent: next.len() as u64,
        });
        out.extend(next.iter().map(|(s, sup)| to_pattern(s, *sup)));
        if next.is_empty() {
            break;
        }
        frequent = next;
        k += 1;
    }
    (finish(out), passes)
}

/// The maximal frequent sequences under the constraints — the 1995-style
/// answer set. Note that under a max-gap constraint containment pruning
/// uses the plain (unconstrained) containment relation, which is sound:
/// it only removes sequences that are redundant presentations.
pub fn gsp_maximal(db: &Database, min_support: MinSupport, config: &GspConfig) -> Vec<Pattern> {
    let mut all = gsp(db, min_support, config);
    all.sort_by(|a, b| {
        (b.sequence.len(), b.sequence.total_items())
            .cmp(&(a.sequence.len(), a.sequence.total_items()))
    });
    let mut kept: Vec<Pattern> = Vec::new();
    'outer: for pat in all {
        for k in &kept {
            if sequence_contains(k.sequence.elements(), pat.sequence.elements()) {
                continue 'outer;
            }
        }
        kept.push(pat);
    }
    kept.sort_by(|a, b| {
        (a.sequence.len(), a.sequence.elements()).cmp(&(b.sequence.len(), b.sequence.elements()))
    });
    kept
}

fn to_pattern(seq: &ItemSeq, support: u64) -> Pattern {
    Pattern {
        sequence: Sequence::new(seq.iter().cloned().map(Itemset::from_sorted).collect()),
        support,
    }
}

fn finish(mut out: Vec<Pattern>) -> Vec<Pattern> {
    out.sort_by(|a, b| {
        (a.sequence.len(), a.sequence.elements()).cmp(&(b.sequence.len(), b.sequence.elements()))
    });
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_db() -> Database {
        Database::from_rows(vec![
            (1, 1, vec![30]),
            (1, 2, vec![90]),
            (2, 1, vec![10, 20]),
            (2, 2, vec![30]),
            (2, 3, vec![40, 60, 70]),
            (3, 1, vec![30, 50, 70]),
            (4, 1, vec![30]),
            (4, 2, vec![40, 70]),
            (4, 3, vec![90]),
            (5, 1, vec![90]),
        ])
    }

    fn strings(patterns: &[Pattern]) -> Vec<String> {
        patterns
            .iter()
            .map(|p| format!("{}:{}", p.sequence, p.support))
            .collect()
    }

    #[test]
    fn unconstrained_gsp_matches_the_1995_definition() {
        let found = gsp(
            &paper_db(),
            MinSupport::Fraction(0.25),
            &GspConfig::default(),
        );
        assert_eq!(
            strings(&found),
            vec![
                "<(30)>:4",
                "<(40)>:2",
                "<(40 70)>:2",
                "<(70)>:3",
                "<(90)>:3",
                "<(30)(40)>:2",
                "<(30)(40 70)>:2",
                "<(30)(70)>:2",
                "<(30)(90)>:2",
            ]
        );
    }

    #[test]
    fn maximal_matches_paper_answer() {
        let found = gsp_maximal(
            &paper_db(),
            MinSupport::Fraction(0.25),
            &GspConfig::default(),
        );
        assert_eq!(strings(&found), vec!["<(30)(40 70)>:2", "<(30)(90)>:2"]);
    }

    #[test]
    fn max_gap_kills_distant_patterns() {
        // Customer 4 buys (30) at t=1 and (90) at t=3; customer 1 at t=1,2.
        // With max_gap = 1 only customer 1 supports ⟨(30)(90)⟩ → below 25%×5=2.
        let found = gsp(
            &paper_db(),
            MinSupport::Fraction(0.25),
            &GspConfig::default().max_gap(1),
        );
        assert!(!strings(&found).iter().any(|s| s.starts_with("<(30)(90)>")));
        // 1-sequences are unaffected.
        assert!(strings(&found).contains(&"<(30)>:4".to_string()));
    }

    #[test]
    fn min_gap_requires_spacing() {
        let db = Database::from_rows(vec![
            (1, 0, vec![1]),
            (1, 1, vec![2]),
            (2, 0, vec![1]),
            (2, 10, vec![2]),
        ]);
        // min_gap 5: only customer 2's spacing exceeds it.
        let found = gsp(&db, MinSupport::Count(2), &GspConfig::default().min_gap(5));
        assert!(!strings(&found).iter().any(|s| s.starts_with("<(1)(2)>")));
        let loose = gsp(&db, MinSupport::Count(2), &GspConfig::default());
        assert!(strings(&loose).contains(&"<(1)(2)>:2".to_string()));
    }

    #[test]
    fn window_assembles_elements_across_transactions() {
        // Items 1 and 2 bought a day apart by both customers: with a
        // 1-unit window ⟨(1 2)⟩ becomes frequent although no single
        // transaction contains both.
        let db = Database::from_rows(vec![
            (1, 0, vec![1]),
            (1, 1, vec![2]),
            (2, 5, vec![1]),
            (2, 6, vec![2]),
        ]);
        let plain = gsp(&db, MinSupport::Count(2), &GspConfig::default());
        assert!(!strings(&plain).contains(&"<(1 2)>:2".to_string()));
        let windowed = gsp(&db, MinSupport::Count(2), &GspConfig::default().window(1));
        assert!(strings(&windowed).contains(&"<(1 2)>:2".to_string()));
    }

    #[test]
    fn max_items_caps_patterns() {
        let found = gsp(
            &paper_db(),
            MinSupport::Fraction(0.25),
            &GspConfig::default().max_items(1),
        );
        assert!(found.iter().all(|p| p.sequence.total_items() == 1));
    }

    #[test]
    #[should_panic(expected = "min_gap must be non-negative")]
    fn negative_min_gap_rejected() {
        let _ = gsp(
            &paper_db(),
            MinSupport::Count(1),
            &GspConfig::default().min_gap(-1),
        );
    }

    #[test]
    fn empty_database() {
        let found = gsp(
            &Database::default(),
            MinSupport::Count(1),
            &GspConfig::default(),
        );
        assert!(found.is_empty());
    }

    #[test]
    fn pass_stats_track_item_lengths() {
        let (_, passes) = gsp_with_stats(
            &paper_db(),
            MinSupport::Fraction(0.25),
            &GspConfig::default(),
        );
        assert_eq!(passes[0].k, 1);
        assert_eq!(passes[0].frequent, 4); // items 30, 40, 70, 90
        assert_eq!(passes[1].k, 2);
        // k=2 candidates: 4·4 two-element + C(4,2) one-element = 22.
        assert_eq!(passes[1].candidates, 22);
    }
}
