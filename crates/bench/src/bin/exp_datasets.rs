//! **E0 — the synthetic dataset table** (paper §5.1, "Synthetic datasets").
//!
//! Generates the five datasets of the evaluation and prints the table the
//! paper reports: shape parameters, realized transaction statistics, and
//! size. The paper used `|D|` = 250 000 on an RS/6000; the default here is
//! laptop-scale (`--customers` overrides; the statistics per customer are
//! `|D|`-invariant).

use seqpat_bench::{Args, Table};
use seqpat_datagen::{generate, GenParams};
use seqpat_io::DatasetStats;

fn main() {
    let args = Args::parse();
    let mut table = Table::new(&[
        "dataset",
        "|D|",
        "transactions",
        "avg|C|",
        "avg|T|",
        "distinct items",
        "size MB",
    ]);
    let mut rows = Vec::new();
    for name in GenParams::paper_dataset_names() {
        let params = GenParams::paper_dataset(name)
            .expect("paper dataset")
            .customers(args.customers);
        let db = generate(&params, args.seed);
        let stats = DatasetStats::compute(&db);
        table.row(vec![
            name.to_string(),
            stats.customers.to_string(),
            stats.transactions.to_string(),
            format!("{:.2}", stats.avg_transactions_per_customer),
            format!("{:.2}", stats.avg_items_per_transaction),
            stats.distinct_items.to_string(),
            format!("{:.1}", stats.size_mb),
        ]);
        rows.push(format!(
            "{},{},{},{:.4},{:.4},{},{:.3}",
            name,
            stats.customers,
            stats.transactions,
            stats.avg_transactions_per_customer,
            stats.avg_items_per_transaction,
            stats.distinct_items,
            stats.size_mb
        ));
    }
    println!("E0: synthetic datasets (seed {})\n", args.seed);
    table.print();
    let path = args
        .write_csv(
            "e0_datasets",
            "dataset,customers,transactions,avg_c,avg_t,distinct_items,size_mb",
            &rows,
        )
        .expect("write CSV");
    println!("\nwrote {}", path.display());
}
