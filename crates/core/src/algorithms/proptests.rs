//! Property tests for the sequence candidate generation — soundness and
//! completeness of `apriori-generate` (the anti-monotonicity backbone).

use proptest::prelude::*;

use super::candidate::{generate, IdSeq};
use crate::arena::CandidateArena;

fn arb_prev(k: usize) -> impl Strategy<Value = CandidateArena> {
    proptest::collection::btree_set(proptest::collection::vec(0u32..5, k), 1..=25)
        .prop_map(move |s| CandidateArena::from_rows(k, s.iter().map(|row| row.as_slice())))
}

/// All delete-one-element subsequences of `seq`.
fn delete_one(seq: &[u32]) -> Vec<IdSeq> {
    (0..seq.len())
        .map(|drop| {
            let mut sub = seq.to_vec();
            sub.remove(drop);
            sub
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn soundness_every_candidate_survives_its_own_prune(prev in arb_prev(2)) {
        for cand in generate(&prev).iter() {
            prop_assert_eq!(cand.len(), 3);
            for sub in delete_one(cand) {
                prop_assert!(
                    prev.binary_search(&sub).is_ok(),
                    "candidate {:?} emitted though subsequence {:?} is not in prev",
                    cand,
                    sub
                );
            }
        }
    }

    #[test]
    fn completeness_all_fully_supported_extensions_are_generated(prev in arb_prev(2)) {
        // Enumerate every 3-sequence over the alphabet; those whose
        // delete-one subsequences are all in prev MUST be generated.
        let out = generate(&prev);
        for a in 0u32..5 {
            for b in 0u32..5 {
                for c in 0u32..5 {
                    let cand = [a, b, c];
                    let supported = delete_one(&cand)
                        .into_iter()
                        .all(|s| prev.binary_search(&s).is_ok());
                    prop_assert_eq!(
                        out.binary_search(&cand).is_ok(),
                        supported,
                        "mismatch for {:?}",
                        cand
                    );
                }
            }
        }
    }

    #[test]
    fn output_sorted_and_unique(prev in arb_prev(3)) {
        prop_assert!(generate(&prev).is_sorted_unique());
    }

    #[test]
    fn k2_is_the_full_ordered_square(prev in arb_prev(1)) {
        let out = generate(&prev);
        prop_assert_eq!(
            out.num_candidates(),
            prev.num_candidates() * prev.num_candidates()
        );
    }
}
