//! Itemsets: sorted, duplicate-free sets of items.

use std::fmt;

/// A raw item identifier (re-exported from the Apriori substrate so both
/// crates agree on the representation).
pub type Item = seqpat_itemset::Item;

/// A non-empty set of items, stored sorted ascending without duplicates.
///
/// The sortedness invariant is established at construction and relied upon
/// by every subset test in the pipeline, so the inner vector is private.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Itemset {
    items: Vec<Item>,
}

impl Itemset {
    /// Builds an itemset from arbitrary items: sorts and deduplicates.
    ///
    /// # Panics
    /// Panics if `items` is empty — the paper's itemsets are non-empty, and
    /// an empty element would make containment semantics degenerate.
    pub fn new(mut items: Vec<Item>) -> Self {
        assert!(
            !items.is_empty(),
            "an itemset must contain at least one item"
        );
        items.sort_unstable();
        items.dedup();
        Self { items }
    }

    /// Builds an itemset from a slice already known to be sorted and
    /// duplicate-free (checked in debug builds only).
    pub fn from_sorted(items: Vec<Item>) -> Self {
        debug_assert!(!items.is_empty());
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "items must be strictly ascending"
        );
        Self { items }
    }

    /// Single-item convenience constructor.
    pub fn single(item: Item) -> Self {
        Self { items: vec![item] }
    }

    /// The items, sorted ascending.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Always `false` (itemsets are non-empty by construction); provided for
    /// clippy-idiomatic pairing with `len`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Subset test: is every item of `self` in `other`?
    pub fn is_subset_of(&self, other: &Itemset) -> bool {
        seqpat_itemset::counting::sorted_subset(&self.items, &other.items)
    }

    /// Membership test (binary search).
    pub fn contains(&self, item: Item) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// Consumes the itemset, returning the sorted item vector.
    pub fn into_items(self) -> Vec<Item> {
        self.items
    }
}

impl fmt::Display for Itemset {
    /// Paper notation: `(30 40 70)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Item>> for Itemset {
    fn from(items: Vec<Item>) -> Self {
        Itemset::new(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_and_dedups() {
        let s = Itemset::new(vec![3, 1, 2, 3, 1]);
        assert_eq!(s.items(), &[1, 2, 3]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn empty_itemset_rejected() {
        let _ = Itemset::new(vec![]);
    }

    #[test]
    fn subset_relation() {
        let small = Itemset::new(vec![40, 70]);
        let big = Itemset::new(vec![40, 60, 70]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(small.is_subset_of(&small));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Itemset::new(vec![70, 40]).to_string(), "(40 70)");
        assert_eq!(Itemset::single(30).to_string(), "(30)");
    }

    #[test]
    fn contains_uses_binary_search() {
        let s = Itemset::new(vec![10, 20, 30]);
        assert!(s.contains(20));
        assert!(!s.contains(25));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Itemset::new(vec![1, 2]);
        let b = Itemset::new(vec![1, 3]);
        let c = Itemset::new(vec![1, 2, 3]);
        assert!(a < b);
        assert!(a < c); // prefix is smaller
    }
}
