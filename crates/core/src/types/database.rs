//! The customer-transaction database (original, un-transformed space).

use super::itemset::{Item, Itemset};

/// One retail transaction: the purchase time and the items bought.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Transaction time; only the relative order per customer matters.
    pub time: i64,
    /// Items bought together.
    pub items: Itemset,
}

/// A customer's complete, time-ordered transaction history — the *customer
/// sequence* of the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CustomerSequence {
    /// Stable customer identifier (kept for I/O and debugging).
    pub customer_id: u64,
    /// Transactions sorted by `time` ascending (ties keep input order).
    pub transactions: Vec<Transaction>,
}

impl CustomerSequence {
    /// The customer's transactions viewed as a sequence of itemsets.
    pub fn itemsets(&self) -> impl Iterator<Item = &Itemset> {
        self.transactions.iter().map(|t| &t.items)
    }
}

/// A database of customer sequences — the output of the sort phase and the
/// input to every miner in this workspace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Database {
    customers: Vec<CustomerSequence>,
}

impl Database {
    /// Builds a database from already-sorted customer sequences.
    pub fn new(customers: Vec<CustomerSequence>) -> Self {
        Self { customers }
    }

    /// Builds a database from raw `(customer_id, time, items)` rows in any
    /// order — this is the paper's **sort phase**. Rows of one customer are
    /// ordered by time; two rows with equal `(customer, time)` are merged
    /// into a single transaction (simultaneous purchases form one itemset).
    pub fn from_rows(rows: Vec<(u64, i64, Vec<Item>)>) -> Self {
        crate::phases::sort::sort_phase(rows)
    }

    /// Like [`Database::from_rows`] but merging each customer's
    /// transactions that fall within a sliding time `window` into single
    /// itemsets — the extension proposed in the paper's conclusion. See
    /// [`crate::phases::sort::sort_phase_windowed`].
    pub fn from_rows_windowed(rows: Vec<(u64, i64, Vec<Item>)>, window: i64) -> Self {
        crate::phases::sort::sort_phase_windowed(rows, window)
    }

    /// The customer sequences, ordered by customer id.
    pub fn customers(&self) -> &[CustomerSequence] {
        &self.customers
    }

    /// Number of customers — the denominator of every support computation.
    pub fn num_customers(&self) -> usize {
        self.customers.len()
    }

    /// Total number of transactions in the database.
    pub fn num_transactions(&self) -> usize {
        self.customers.iter().map(|c| c.transactions.len()).sum()
    }

    /// Total number of item occurrences.
    pub fn num_item_occurrences(&self) -> usize {
        self.customers
            .iter()
            .flat_map(|c| c.transactions.iter())
            .map(|t| t.items.len())
            .sum()
    }

    /// Flattens the database back into raw `(customer, time, items)` rows —
    /// the inverse of [`Database::from_rows`] (up to row merging). Used to
    /// re-run the sort phase with different options, e.g. a time window.
    pub fn to_rows(&self) -> Vec<(u64, i64, Vec<Item>)> {
        self.customers
            .iter()
            .flat_map(|c| {
                c.transactions
                    .iter()
                    .map(move |t| (c.customer_id, t.time, t.items.items().to_vec()))
            })
            .collect()
    }

    /// View usable by the `seqpat-itemset` substrate: per customer, the raw
    /// sorted item vectors of each transaction.
    pub fn as_item_matrix(&self) -> Vec<Vec<Vec<Item>>> {
        self.customers
            .iter()
            .map(|c| {
                c.transactions
                    .iter()
                    .map(|t| t.items.items().to_vec())
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_groups_and_sorts() {
        let db = Database::from_rows(vec![
            (2, 5, vec![9]),
            (1, 2, vec![3, 1]),
            (1, 1, vec![7]),
            (2, 4, vec![8]),
        ]);
        assert_eq!(db.num_customers(), 2);
        let c1 = &db.customers()[0];
        assert_eq!(c1.customer_id, 1);
        assert_eq!(c1.transactions[0].time, 1);
        assert_eq!(c1.transactions[0].items.items(), &[7]);
        assert_eq!(c1.transactions[1].items.items(), &[1, 3]);
        let c2 = &db.customers()[1];
        assert_eq!(c2.transactions[0].time, 4);
        assert_eq!(c2.transactions[1].time, 5);
    }

    #[test]
    fn equal_time_rows_merge_into_one_transaction() {
        let db = Database::from_rows(vec![(1, 3, vec![1]), (1, 3, vec![2])]);
        assert_eq!(db.num_transactions(), 1);
        assert_eq!(db.customers()[0].transactions[0].items.items(), &[1, 2]);
    }

    #[test]
    fn counters() {
        let db = Database::from_rows(vec![(1, 1, vec![1, 2]), (1, 2, vec![3]), (2, 1, vec![4])]);
        assert_eq!(db.num_customers(), 2);
        assert_eq!(db.num_transactions(), 3);
        assert_eq!(db.num_item_occurrences(), 4);
    }

    #[test]
    fn item_matrix_roundtrip() {
        let db = Database::from_rows(vec![(1, 1, vec![2, 1]), (1, 2, vec![3])]);
        assert_eq!(db.as_item_matrix(), vec![vec![vec![1, 2], vec![3]]]);
    }
}
