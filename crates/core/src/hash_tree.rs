//! Hash tree over candidate **sequences** (paper §4, implementation).
//!
//! The sequence-phase analogue of the Apriori itemset hash tree: interior
//! nodes hash on the litemset id at the node's depth; leaves hold candidate
//! indices. To find the candidates contained in a transformed customer
//! sequence, the walk explores, at each interior node, every `(transaction,
//! id)` pair that could match the next candidate position — advancing the
//! transaction cursor strictly, because consecutive sequence elements must
//! come from distinct, later transactions. Leaf hits are verified with the
//! exact containment test against the full customer sequence (hash
//! collisions make path information insufficient, exactly as in the itemset
//! tree).

use crate::arena::CandidateArena;
use crate::cast::{id32, idx};
use crate::contain::customer_contains;
use crate::types::transformed::{LitemsetId, TransformedCustomer};

/// Hash tree over equal-length candidate id-sequences.
#[derive(Debug)]
pub struct SequenceHashTree {
    root: Node,
    fanout: usize,
    candidate_len: usize,
    len: usize,
}

#[derive(Debug)]
enum Node {
    Leaf(Vec<u32>),
    Interior(Vec<Node>),
}

impl SequenceHashTree {
    /// Builds a tree over the candidates of one arena (equal length ≥ 1
    /// by construction).
    pub fn build(candidates: &CandidateArena, fanout: usize, leaf_capacity: usize) -> Self {
        assert!(fanout >= 2, "fanout must be at least 2");
        assert!(leaf_capacity >= 1, "leaf capacity must be at least 1");
        let candidate_len = if candidates.is_empty() {
            0
        } else {
            candidates.candidate_len()
        };
        let mut tree = Self {
            root: Node::Leaf(Vec::new()),
            fanout,
            candidate_len,
            len: candidates.num_candidates(),
        };
        for (i, cand) in candidates.iter().enumerate() {
            insert(
                &mut tree.root,
                cand,
                id32(i),
                0,
                fanout,
                leaf_capacity,
                candidates,
            );
        }
        tree
    }

    /// Number of candidates stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Calls `on_match(candidate_index)` for every candidate contained in
    /// `customer`. Each contained candidate is reported **exactly once**
    /// (deduplication is internal); `verify_calls` is incremented once per
    /// exact containment test executed, feeding the harness's
    /// machine-independent counters.
    pub fn for_each_contained(
        &self,
        customer: &TransformedCustomer,
        candidates: &CandidateArena,
        seen: &mut VisitSet,
        verify_calls: &mut u64,
        on_match: &mut impl FnMut(u32),
    ) {
        if self.len == 0 || customer.elements.len() < self.candidate_len {
            return;
        }
        seen.next_epoch();
        walk(
            &self.root,
            customer,
            0,
            candidates,
            self.fanout,
            seen,
            verify_calls,
            on_match,
        );
    }
}

fn bucket(id: LitemsetId, fanout: usize) -> usize {
    idx(id.wrapping_mul(2654435761)) % fanout
}

#[allow(clippy::too_many_arguments)]
fn insert(
    node: &mut Node,
    cand: &[LitemsetId],
    slot: u32,
    depth: usize,
    fanout: usize,
    leaf_capacity: usize,
    candidates: &CandidateArena,
) {
    debug_assert!(
        depth <= cand.len(),
        "interior nodes only exist above the candidate length, so the depth cursor stays in range"
    );
    match node {
        Node::Interior(children) => {
            let b = bucket(cand[depth], fanout);
            insert(
                &mut children[b],
                cand,
                slot,
                depth + 1,
                fanout,
                leaf_capacity,
                candidates,
            );
        }
        Node::Leaf(ids) => {
            ids.push(slot);
            if ids.len() > leaf_capacity && depth < cand.len() {
                let old = std::mem::take(ids);
                // seqpat-lint: allow(no-alloc-in-hot-loop) Vec::new() is capacity-0 (no heap allocation) and the split path is cold — it runs once per overflowing leaf, not per insert
                let mut children: Vec<Node> = (0..fanout).map(|_| Node::Leaf(Vec::new())).collect();
                for id in old {
                    match &mut children[bucket(candidates.get(idx(id))[depth], fanout)] {
                        Node::Leaf(v) => v.push(id),
                        // seqpat-lint: allow(no-panic-in-kernels) every child was created as a leaf two lines up and nothing re-splits them before this loop ends
                        Node::Interior(_) => unreachable!(),
                    }
                }
                *node = Node::Interior(children);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn walk(
    node: &Node,
    customer: &TransformedCustomer,
    start_transaction: usize,
    candidates: &CandidateArena,
    fanout: usize,
    seen: &mut VisitSet,
    verify_calls: &mut u64,
    on_match: &mut impl FnMut(u32),
) {
    debug_assert!(
        start_transaction <= customer.elements.len(),
        "the transaction cursor stays within the customer"
    );
    match node {
        Node::Leaf(ids) => {
            for &id in ids {
                if seen.first_visit(id) {
                    *verify_calls += 1;
                    if customer_contains(customer, candidates.get(idx(id))) {
                        on_match(id);
                    }
                }
            }
        }
        Node::Interior(children) => {
            for t in start_transaction..customer.elements.len() {
                for &lid in &customer.elements[t] {
                    walk(
                        &children[bucket(lid, fanout)],
                        customer,
                        t + 1,
                        candidates,
                        fanout,
                        seen,
                        verify_calls,
                        on_match,
                    );
                }
            }
        }
    }
}

/// Epoch-stamped visited set over candidate indices (one epoch per
/// customer), so a candidate reachable along many tree paths is verified
/// once per customer.
#[derive(Debug)]
pub struct VisitSet {
    stamps: Vec<u64>,
    epoch: u64,
}

impl VisitSet {
    /// Creates a set for `n` candidates.
    pub fn new(n: usize) -> Self {
        Self {
            stamps: vec![0; n],
            epoch: 0,
        }
    }

    fn next_epoch(&mut self) {
        self.epoch += 1;
    }

    fn first_visit(&mut self, cand: u32) -> bool {
        debug_assert!(idx(cand) < self.stamps.len(), "one stamp per candidate");
        let slot = &mut self.stamps[idx(cand)];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn customer(elements: Vec<Vec<LitemsetId>>) -> TransformedCustomer {
        TransformedCustomer {
            customer_id: 0,
            elements,
        }
    }

    fn arena(rows: &[Vec<LitemsetId>]) -> CandidateArena {
        CandidateArena::from_rows(
            rows.first().map_or(0, |r| r.len()),
            rows.iter().map(|r| r.as_slice()),
        )
    }

    fn matched(
        tree: &SequenceHashTree,
        cands: &CandidateArena,
        c: &TransformedCustomer,
    ) -> Vec<u32> {
        let mut seen = VisitSet::new(cands.num_candidates());
        let mut verify = 0;
        let mut out = Vec::new();
        tree.for_each_contained(c, cands, &mut seen, &mut verify, &mut |id| out.push(id));
        out.sort_unstable();
        out.dedup();
        out
    }

    #[test]
    fn finds_contained_sequences() {
        let cands = arena(&[
            vec![0, 4], // contained
            vec![4, 0], // wrong order
            vec![0, 0], // needs two transactions with 0
            vec![0, 1], // 1 absent
        ]);
        let tree = SequenceHashTree::build(&cands, 4, 1);
        let c = customer(vec![vec![0], vec![0, 4]]);
        assert_eq!(matched(&tree, &cands, &c), vec![0, 2]);
    }

    #[test]
    fn same_transaction_does_not_satisfy_order() {
        let cands = arena(&[vec![1, 2]]);
        let tree = SequenceHashTree::build(&cands, 4, 2);
        // Both ids in ONE transaction: ⟨1 2⟩ needs two transactions.
        assert!(matched(&tree, &cands, &customer(vec![vec![1, 2]])).is_empty());
        assert_eq!(
            matched(&tree, &cands, &customer(vec![vec![1], vec![2]])),
            vec![0]
        );
    }

    #[test]
    fn agrees_with_linear_scan_on_random_input() {
        // Deterministic pseudo-random databases and candidates.
        let mut x: u32 = 1234;
        let mut rnd = move |m: u32| {
            x = x.wrapping_mul(48271) % 0x7fffffff;
            x % m
        };
        let mut cands: Vec<Vec<LitemsetId>> = Vec::new();
        for _ in 0..80 {
            cands.push(vec![rnd(8), rnd(8), rnd(8)]);
        }
        cands.sort();
        cands.dedup();
        let cands = arena(&cands);
        let tree = SequenceHashTree::build(&cands, 4, 2);
        for _ in 0..30 {
            let n_trans = 2 + rnd(6) as usize;
            let elements: Vec<Vec<LitemsetId>> = (0..n_trans)
                .map(|_| {
                    let mut e: Vec<LitemsetId> = (0..1 + rnd(4)).map(|_| rnd(8)).collect();
                    e.sort_unstable();
                    e.dedup();
                    e
                })
                .collect();
            let c = customer(elements);
            let brute: Vec<u32> = cands
                .iter()
                .enumerate()
                .filter(|&(_, cand)| customer_contains(&c, cand))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(matched(&tree, &cands, &c), brute);
        }
    }

    #[test]
    fn short_customer_prefiltered() {
        let cands = arena(&[vec![0, 1, 2]]);
        let tree = SequenceHashTree::build(&cands, 4, 2);
        let mut seen = VisitSet::new(1);
        let mut verify = 0;
        let c = customer(vec![vec![0, 1, 2]]); // 1 transaction < candidate len 3
        tree.for_each_contained(&c, &cands, &mut seen, &mut verify, &mut |_| {
            panic!("nothing can match")
        });
        assert_eq!(verify, 0);
    }

    #[test]
    fn each_candidate_verified_at_most_once_per_customer() {
        let cands = arena(&[vec![3, 3]]);
        let tree = SequenceHashTree::build(&cands, 4, 1);
        // Id 3 occurs in four transactions → many tree paths.
        let c = customer(vec![vec![3], vec![3], vec![3], vec![3]]);
        let mut seen = VisitSet::new(1);
        let mut verify = 0;
        let mut hits = 0;
        tree.for_each_contained(&c, &cands, &mut seen, &mut verify, &mut |_| hits += 1);
        assert_eq!(hits, 1);
        assert_eq!(verify, 1);
    }
}
