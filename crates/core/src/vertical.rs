//! Vertical (id-list) support counting — [`CountingStrategy::Vertical`].
//!
//! The horizontal strategies re-scan every customer against every candidate
//! each pass. The vertical family (SPADE-style id-lists) inverts the
//! layout: after the transform phase a **vertical occurrence index** is
//! built once — for every litemset id, the flat customer-partitioned list
//! of `(customer, transaction-position)` occurrences — and a candidate's
//! support is computed by a *temporal merge-join* over occurrence lists,
//! touching only the customers where its parts actually occur.
//!
//! ## Occurrence lists
//!
//! For a **sequence** `s`, the occurrence list holds one entry per
//! supporting customer: `(customer, e)` where `e` is the transaction index
//! at which the greedy **earliest-match** embedding of `s` ends. The
//! exchange argument behind [`crate::contain`] makes this canonical: if any
//! embedding exists, the earliest-end one exists, and its end position is
//! minimal over all embeddings. Support is therefore just the list length,
//! and the lists of a pass are exactly what the next pass's joins need.
//!
//! For a single litemset id the index list may hold *several* entries per
//! customer (every transaction containing the id, ascending) — the join and
//! the `seed_first_per_customer` kernel reduce those to earliest matches.
//!
//! ## The join
//!
//! `occ(p · ⟨x⟩)` = merge-join of `occ(p)` (ascending unique customers)
//! with the index list of `x` (sorted by `(customer, pos)`): a customer
//! supports `p · ⟨x⟩` iff it has an occurrence of `x` at a transaction
//! **strictly after** the earliest end of `p`, and the first such
//! occurrence is the candidate's earliest end. Both sides are scanned once
//! (two-pointer), so a join costs `O(|occ(p)| + |list(x)|)`.
//!
//! ## Pass-to-pass reuse and the memory cap
//!
//! [`VerticalState`] retains the occurrence lists of the last counted pass
//! (keyed by the pass's sorted [`CandidateArena`]) so pass `k+1` finds each
//! candidate's length-`k` prefix list by binary search — one join per
//! candidate. When the lists outgrow [`VerticalParams::cache_cap_bytes`]
//! (or the prefix is not cached, e.g. after the pass-2 pair fast path or a
//! backward jump), the prefix list is **re-folded from the litemset index
//! lists**: seed with the first id's earliest occurrence per customer, then
//! one join per remaining prefix id. Cached lists are a pure function of
//! the transformed database, so the cache never needs invalidation.
//!
//! ## Parallelism and determinism
//!
//! Counting shards over **prefix runs** (maximal blocks of candidates
//! sharing a length-`k-1` prefix; contiguous because arenas are sorted) via
//! [`map_chunks`], so each run's fold-or-lookup decision and join count are
//! independent of the chunking: supports, join counters, and list bytes are
//! bit-identical across thread counts, matching the workspace-wide
//! guarantee of the horizontal strategies.
//!
//! [`CountingStrategy::Vertical`]: crate::counting::CountingStrategy

use crate::arena::CandidateArena;
use crate::cast::{id32, idx, w64};
use crate::stats::Stopwatch;
use crate::types::transformed::{LitemsetId, TransformedDatabase};
use seqpat_itemset::parallel::map_chunks;
use std::time::Duration;

/// Knobs of the vertical strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerticalParams {
    /// Maximum bytes of per-candidate occurrence lists retained between
    /// passes. `0` disables retention entirely: every pass re-folds its
    /// prefixes from the litemset index lists (more joins, least memory).
    pub cache_cap_bytes: usize,
}

impl Default for VerticalParams {
    fn default() -> Self {
        Self {
            // 64 MiB comfortably holds the lists of every paper-scale
            // dataset; the cap exists for adversarial low-minsup runs.
            cache_cap_bytes: 64 << 20,
        }
    }
}

/// One occurrence: `customer` is the index into
/// `TransformedDatabase::customers`, `pos` the transaction index within
/// that customer where the (last element of the) sequence matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Occurrence {
    /// Customer index (not customer id — lists are internal to one run).
    pub customer: u32,
    /// Transaction index of the earliest match end.
    pub pos: u32,
}

const OCC_BYTES: usize = std::mem::size_of::<Occurrence>();

/// CSR occurrence index over litemset ids: `list(id)` is the flat slice of
/// this id's occurrences, sorted by `(customer, pos)`.
#[derive(Debug)]
pub struct VerticalIndex {
    offsets: Vec<usize>,
    occ: Vec<Occurrence>,
}

impl VerticalIndex {
    /// Builds the index in two scans (count, then cursor fill); the scan
    /// order — customers ascending, transactions ascending — is what makes
    /// every per-id list arrive sorted without a sort pass.
    pub fn build(tdb: &TransformedDatabase) -> Self {
        let n = tdb.table.len();
        debug_assert!(
            tdb.customers
                .iter()
                .flat_map(|c| &c.elements)
                .flatten()
                .all(|&id| idx(id) < n),
            "every transformed litemset id is within the n-entry alphabet"
        );
        let mut offsets = vec![0usize; n + 1];
        for customer in &tdb.customers {
            for element in &customer.elements {
                for &id in element {
                    offsets[idx(id) + 1] += 1;
                }
            }
        }
        for i in 1..=n {
            offsets[i] += offsets[i - 1];
        }
        let mut occ = vec![Occurrence::default(); offsets[n]];
        let mut cursor = offsets.clone();
        for (c, customer) in tdb.customers.iter().enumerate() {
            for (t, element) in customer.elements.iter().enumerate() {
                for &id in element {
                    occ[cursor[idx(id)]] = Occurrence {
                        customer: id32(c),
                        pos: id32(t),
                    };
                    cursor[idx(id)] += 1;
                }
            }
        }
        debug_assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "CSR offsets are monotone non-decreasing"
        );
        Self { offsets, occ }
    }

    /// All occurrences of litemset `id`.
    pub fn list(&self, id: LitemsetId) -> &[Occurrence] {
        debug_assert!(
            idx(id) + 1 < self.offsets.len() && self.offsets[idx(id)] <= self.offsets[idx(id) + 1],
            "id within the alphabet; CSR offsets monotone"
        );
        &self.occ[self.offsets[idx(id)]..self.offsets[idx(id) + 1]]
    }

    /// Heap bytes held by the index.
    pub fn bytes(&self) -> u64 {
        w64(self.occ.len() * OCC_BYTES + self.offsets.len() * std::mem::size_of::<usize>())
    }
}

/// CSR store of per-candidate occurrence lists (one list per arena row).
#[derive(Debug, Clone, Default)]
pub struct OccLists {
    offsets: Vec<usize>,
    occ: Vec<Occurrence>,
}

impl OccLists {
    fn new() -> Self {
        Self {
            offsets: vec![0],
            occ: Vec::new(),
        }
    }

    fn push_list(&mut self, list: &[Occurrence]) {
        self.occ.extend_from_slice(list);
        self.offsets.push(self.occ.len());
    }

    /// The `i`-th candidate's occurrence list.
    pub fn list(&self, i: usize) -> &[Occurrence] {
        debug_assert!(
            i + 1 < self.offsets.len() && self.offsets[i] <= self.offsets[i + 1],
            "list index within bounds; CSR offsets monotone"
        );
        &self.occ[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Number of lists stored.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when no lists are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap bytes held.
    pub fn bytes(&self) -> u64 {
        w64(self.occ.len() * OCC_BYTES + self.offsets.len() * std::mem::size_of::<usize>())
    }

    /// Appends another chunk's lists (used to merge `map_chunks` results in
    /// chunk order).
    fn append(&mut self, other: &OccLists) {
        debug_assert!(
            other.offsets.first() == Some(&0),
            "an OccLists CSR always starts at offset 0"
        );
        let base = self.occ.len();
        self.occ.extend_from_slice(&other.occ);
        self.offsets
            .extend(other.offsets[1..].iter().map(|&o| o + base));
    }
}

/// Temporal merge-join: `out` gets one `(customer, pos)` entry per customer
/// of `prefix` that has an entry in `last` at a strictly later transaction
/// (the earliest such). `prefix` must hold ascending unique customers;
/// `last` must be sorted by `(customer, pos)` — both invariants hold for
/// every list this module produces.
fn join(prefix: &[Occurrence], last: &[Occurrence], out: &mut Vec<Occurrence>) {
    debug_assert!(
        prefix.windows(2).all(|w| w[0].customer < w[1].customer),
        "prefix lists hold ascending unique customers"
    );
    debug_assert!(
        last.windows(2)
            .all(|w| (w[0].customer, w[0].pos) <= (w[1].customer, w[1].pos)),
        "index lists are sorted by (customer, pos)"
    );
    let mut j = 0usize;
    for &p in prefix {
        while j < last.len()
            && (last[j].customer < p.customer
                || (last[j].customer == p.customer && last[j].pos <= p.pos))
        {
            j += 1;
        }
        if j < last.len() && last[j].customer == p.customer {
            out.push(Occurrence {
                customer: p.customer,
                pos: last[j].pos,
            });
        }
    }
}

/// Reduces an index list (possibly several occurrences per customer) to the
/// earliest occurrence per customer — `occ(⟨x⟩)` for a single id `x`.
fn seed_first_per_customer(list: &[Occurrence], out: &mut Vec<Occurrence>) {
    let mut last_customer: Option<u32> = None;
    for &o in list {
        if last_customer != Some(o.customer) {
            out.push(o);
            last_customer = Some(o.customer);
        }
    }
}

/// Computes `occ(prefix)` from the litemset index lists alone: seed with
/// the first id, then one join per remaining id (`prefix.len() - 1` joins,
/// added to `joins`). `out` receives the result; `tmp` is scratch.
fn fold_prefix(
    index: &VerticalIndex,
    prefix: &[LitemsetId],
    out: &mut Vec<Occurrence>,
    tmp: &mut Vec<Occurrence>,
    joins: &mut u64,
) {
    debug_assert!(
        !prefix.is_empty(),
        "a prefix has at least one id to seed from"
    );
    out.clear();
    seed_first_per_customer(index.list(prefix[0]), out);
    for &id in &prefix[1..] {
        tmp.clear();
        join(out, index.list(id), tmp);
        std::mem::swap(out, tmp);
        *joins += 1;
    }
}

/// Per-run (mining-run, not prefix-run) state of the vertical strategy: the
/// litemset index, the previous pass's cached lists, and the counters that
/// feed [`crate::stats::MiningStats`].
#[derive(Debug)]
pub struct VerticalState {
    index: VerticalIndex,
    params: VerticalParams,
    /// Lists of the last counted pass, keyed by that pass's sorted arena.
    cache: Option<(CandidateArena, OccLists)>,
    /// Join scratch reused across [`VerticalState::occurrences_of`] calls.
    fold_tmp: Vec<Occurrence>,
    /// Wall time spent building the index.
    pub index_build_time: Duration,
    /// Merge-joins executed so far (the vertical analogue of an exact
    /// containment test).
    pub joins: u64,
    /// Peak bytes held across index, cached lists, and a pass's fresh lists.
    pub peak_bytes: u64,
}

impl VerticalState {
    /// Builds the occurrence index for `tdb`.
    pub fn build(tdb: &TransformedDatabase, params: VerticalParams) -> Self {
        let watch = Stopwatch::start();
        let index = VerticalIndex::build(tdb);
        let index_build_time = watch.elapsed();
        let peak_bytes = index.bytes();
        Self {
            index,
            params,
            cache: None,
            fold_tmp: Vec::new(),
            index_build_time,
            joins: 0,
            peak_bytes,
        }
    }

    /// The underlying litemset index.
    pub fn index(&self) -> &VerticalIndex {
        &self.index
    }

    /// Counts the support of every candidate in `candidates` (sorted,
    /// equal-length rows) by occurrence-list joins, sharding prefix runs
    /// over `threads` workers. Results and join counts are bit-identical
    /// across thread counts.
    pub fn count(&mut self, candidates: &CandidateArena, threads: usize) -> Vec<u64> {
        let n = candidates.num_candidates();
        if n == 0 {
            self.cache = None;
            return Vec::new();
        }
        let len = candidates.candidate_len();
        debug_assert!(
            candidates
                .iter()
                .flatten()
                .all(|&id| idx(id) + 1 < self.index.offsets.len()),
            "every candidate id is within the index alphabet"
        );

        // Maximal blocks of candidates sharing the length-(len-1) prefix;
        // contiguous because the arena is sorted. Each run is scheduled
        // whole, which pins the fold-vs-lookup decision (and hence the join
        // counter) to the run, not to the chunking.
        let runs = candidates.prefix_runs();

        // Lists are only worth keeping when the next pass can binary-search
        // them, which needs this arena sorted — true for every algorithm
        // pass, possibly false for ad-hoc one-shot counts.
        let keep_lists = self.params.cache_cap_bytes > 0 && candidates.is_sorted_unique();
        let cache = self.cache.take();
        let cached = cache
            .as_ref()
            .filter(|(arena, _)| len >= 2 && arena.candidate_len() == len - 1);

        let index = &self.index;
        let partials = map_chunks(&runs, threads, |chunk| {
            let mut supports: Vec<u64> = Vec::new();
            let mut lists = OccLists::new();
            let mut joins = 0u64;
            let mut folded: Vec<Occurrence> = Vec::new();
            let mut fold_tmp: Vec<Occurrence> = Vec::new();
            let mut out: Vec<Occurrence> = Vec::new();
            for &(start, end) in chunk {
                let prefix = &candidates.get(start)[..len - 1];
                let cached_list = if len == 1 {
                    None
                } else {
                    cached.and_then(|(a, l)| a.binary_search(prefix).ok().map(|i| l.list(i)))
                };
                let prefix_list: &[Occurrence] = if len == 1 {
                    &[]
                } else if let Some(list) = cached_list {
                    list
                } else {
                    fold_prefix(index, prefix, &mut folded, &mut fold_tmp, &mut joins);
                    &folded
                };
                for i in start..end {
                    let last = candidates.get(i)[len - 1];
                    out.clear();
                    if len == 1 {
                        seed_first_per_customer(index.list(last), &mut out);
                    } else {
                        join(prefix_list, index.list(last), &mut out);
                        joins += 1;
                    }
                    supports.push(w64(out.len()));
                    if keep_lists {
                        lists.push_list(&out);
                    }
                }
            }
            (supports, lists, joins)
        });

        let mut supports: Vec<u64> = Vec::with_capacity(n);
        let mut new_lists = OccLists::new();
        for (s, l, j) in partials {
            supports.extend(s);
            if keep_lists {
                new_lists.append(&l);
            }
            self.joins += j;
        }

        let fresh_bytes = if keep_lists {
            candidates.bytes() + new_lists.bytes()
        } else {
            0
        };
        let held = self.index.bytes()
            + cache.as_ref().map_or(0, |(a, l)| a.bytes() + l.bytes())
            + fresh_bytes;
        self.peak_bytes = self.peak_bytes.max(held);

        // The memory cap: retain the pass's lists only when they fit,
        // otherwise the next pass falls back to folding from the index.
        self.cache = if keep_lists && fresh_bytes <= w64(self.params.cache_cap_bytes) {
            Some((candidates.clone(), new_lists))
        } else {
            None
        };
        supports
    }

    /// The occurrence list of one sequence, written into `out` (cleared
    /// first): a cache lookup when the last counted pass covered it, else a
    /// fold from the index lists (counted in [`VerticalState::joins`]). The
    /// out-parameter lets DynamicSome's on-the-fly pass reuse one buffer
    /// across its whole `Lk` loop instead of allocating per sequence.
    pub fn occurrences_of(&mut self, ids: &[LitemsetId], out: &mut Vec<Occurrence>) {
        out.clear();
        if ids.is_empty() {
            return;
        }
        if let Some((arena, lists)) = &self.cache {
            if arena.candidate_len() == ids.len() {
                if let Ok(i) = arena.binary_search(ids) {
                    out.extend_from_slice(lists.list(i));
                    return;
                }
            }
        }
        fold_prefix(&self.index, ids, out, &mut self.fold_tmp, &mut self.joins);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contain::customer_contains_from;
    use crate::types::itemset::Itemset;
    use crate::types::transformed::{LitemsetTable, TransformedCustomer};

    fn tdb(customers: Vec<Vec<Vec<LitemsetId>>>, num_ids: u32) -> TransformedDatabase {
        let table = LitemsetTable::new(
            (0..num_ids)
                .map(|i| (Itemset::new(vec![i + 1]), 1))
                .collect::<Vec<_>>(),
        );
        let total = customers.len();
        TransformedDatabase {
            customers: customers
                .into_iter()
                .enumerate()
                .map(|(i, elements)| TransformedCustomer {
                    customer_id: i as u64 + 1,
                    elements,
                })
                .collect(),
            table,
            total_customers: total,
        }
    }

    fn occ(customer: u32, pos: u32) -> Occurrence {
        Occurrence { customer, pos }
    }

    #[test]
    fn index_lists_are_customer_partitioned_and_sorted() {
        let db = tdb(
            vec![
                vec![vec![0], vec![1, 2], vec![0]],
                vec![],
                vec![vec![2], vec![0, 2]],
            ],
            3,
        );
        let index = VerticalIndex::build(&db);
        assert_eq!(index.list(0), &[occ(0, 0), occ(0, 2), occ(2, 1)]);
        assert_eq!(index.list(1), &[occ(0, 1)]);
        assert_eq!(index.list(2), &[occ(0, 1), occ(2, 0), occ(2, 1)]);
        assert!(index.bytes() > 0);
    }

    #[test]
    fn join_requires_strictly_later_transactions() {
        let prefix = [occ(0, 1), occ(2, 0), occ(5, 3)];
        let last = [occ(0, 0), occ(0, 1), occ(0, 4), occ(2, 0), occ(4, 0)];
        let mut out = Vec::new();
        join(&prefix, &last, &mut out);
        // Customer 0: earliest entry after pos 1 is pos 4. Customer 2: only
        // entry is at pos 0, not strictly later. Customer 5: absent.
        assert_eq!(out, vec![occ(0, 4)]);
    }

    #[test]
    fn seed_takes_first_occurrence_per_customer() {
        let list = [occ(0, 2), occ(0, 5), occ(3, 0), occ(3, 1), occ(4, 7)];
        let mut out = Vec::new();
        seed_first_per_customer(&list, &mut out);
        assert_eq!(out, vec![occ(0, 2), occ(3, 0), occ(4, 7)]);
    }

    /// Brute-force oracle: count + earliest ends via the containment kernel.
    fn oracle(db: &TransformedDatabase, cand: &[LitemsetId]) -> Vec<Occurrence> {
        db.customers
            .iter()
            .enumerate()
            .filter_map(|(c, customer)| {
                customer_contains_from(customer, cand, 0).map(|end| occ(c as u32, end as u32))
            })
            .collect()
    }

    #[test]
    fn counting_matches_containment_oracle_with_and_without_cache() {
        let db = tdb(
            vec![
                vec![vec![0], vec![1], vec![0, 1], vec![2]],
                vec![vec![1, 2], vec![0], vec![0]],
                vec![vec![2], vec![2], vec![1]],
                vec![vec![0, 1, 2]],
                vec![],
            ],
            3,
        );
        // All 27 ordered triples over {0,1,2}; sorted by construction.
        let mut triples = CandidateArena::new(3);
        for a in 0..3u32 {
            for b in 0..3u32 {
                for c in 0..3u32 {
                    triples.push(&[a, b, c]);
                }
            }
        }
        for cap in [0usize, usize::MAX] {
            let mut state = VerticalState::build(
                &db,
                VerticalParams {
                    cache_cap_bytes: cap,
                },
            );
            for threads in [1usize, 2, 4] {
                let supports = state.count(&triples, threads);
                for (i, cand) in triples.iter().enumerate() {
                    let expected = oracle(&db, cand);
                    assert_eq!(
                        supports[i],
                        expected.len() as u64,
                        "cap {cap}, threads {threads}, candidate {cand:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn cached_prefix_lists_cut_joins() {
        let db = tdb(
            vec![
                vec![vec![0], vec![1], vec![2], vec![0]],
                vec![vec![0], vec![1], vec![2]],
                vec![vec![1], vec![0], vec![2]],
            ],
            3,
        );
        let pairs = CandidateArena::from_rows(2, [&[0u32, 1][..], &[0, 2], &[1, 2]]);
        let triples = CandidateArena::from_rows(3, [&[0u32, 1, 2][..]]);

        // With caching: pass 2 folds (prefix length 1 → 0 fold joins,
        // 3 candidate joins); pass 3 finds its prefix ⟨0 1⟩ cached → one
        // more join.
        let mut warm = VerticalState::build(&db, VerticalParams::default());
        let s2 = warm.count(&pairs, 1);
        assert_eq!(warm.joins, 3);
        let s3 = warm.count(&triples, 1);
        assert_eq!(warm.joins, 4);

        // cap = 0: pass 3 must re-fold its prefix (1 join) before the
        // candidate join — same supports, more joins.
        let mut cold = VerticalState::build(&db, VerticalParams { cache_cap_bytes: 0 });
        assert_eq!(cold.count(&pairs, 1), s2);
        assert_eq!(cold.count(&triples, 1), s3);
        assert_eq!(cold.joins, 5);
        assert_eq!(s3, vec![2]); // customers 0 and 1 contain ⟨0 1 2⟩
    }

    #[test]
    fn occurrences_of_matches_earliest_match_ends() {
        let db = tdb(
            vec![
                vec![vec![0], vec![0, 1], vec![1]],
                vec![vec![1], vec![0]],
                vec![vec![0], vec![1]],
            ],
            2,
        );
        let mut state = VerticalState::build(&db, VerticalParams::default());
        let mut out = vec![occ(9, 9)]; // stale content must be cleared
        state.occurrences_of(&[0, 1], &mut out);
        assert_eq!(out, vec![occ(0, 1), occ(2, 1)]);
        state.occurrences_of(&[1, 0], &mut out);
        assert_eq!(out, vec![occ(1, 1)]);
        state.occurrences_of(&[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn length_one_candidates_count_distinct_customers() {
        let db = tdb(
            vec![vec![vec![0], vec![0]], vec![vec![0]], vec![vec![1]]],
            2,
        );
        let mut state = VerticalState::build(&db, VerticalParams::default());
        let singles = CandidateArena::from_rows(1, [&[0u32][..], &[1]]);
        assert_eq!(state.count(&singles, 1), vec![2, 1]);
        assert_eq!(state.joins, 0);
    }

    #[test]
    fn peak_bytes_and_join_counts_are_thread_invariant() {
        let db = tdb(
            vec![
                vec![vec![0], vec![1], vec![0], vec![1]],
                vec![vec![1], vec![0], vec![1]],
                vec![vec![0], vec![0], vec![1]],
                vec![vec![1], vec![1]],
            ],
            2,
        );
        let mut pairs = CandidateArena::new(2);
        for a in 0..2u32 {
            for b in 0..2u32 {
                pairs.push(&[a, b]);
            }
        }
        let run = |threads: usize| {
            let mut state = VerticalState::build(&db, VerticalParams::default());
            let supports = state.count(&pairs, threads);
            (supports, state.joins, state.peak_bytes)
        };
        let serial = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), serial, "{threads} threads");
        }
    }
}
