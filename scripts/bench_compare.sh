#!/usr/bin/env bash
# Kernel-benchmark regression gate: compares a fresh bench_kernels.json
# against the committed baseline in results/bench_kernels.json and fails
# when any kernel's minimum regressed by more than the threshold. The
# minimum — not the mean — is compared: on a shared single-CPU box a
# scheduler preemption inflates a few of the n=20 samples by 10×, which
# drags the mean around run-to-run while the min stays within a few
# percent. A real code regression slows *every* sample, so it moves the
# min too; noise almost never does.
#
#   ./scripts/bench_compare.sh <fresh.json> [baseline.json]
#
# The same gate covers every criterion-compat JSON report: the kernel
# benches (default baseline results/bench_kernels.json) and the serve
# benches (pass results/bench_serve.json as the baseline explicitly).
#
# Environment:
#   BENCH_COMPARE_SKIP=1        skip entirely (known-noisy hosts / CI boxes)
#   BENCH_COMPARE_THRESHOLD=25  allowed min-time regression in percent
#
# Only labels present in BOTH files are compared (the key intersection), so
# adding or renaming benches never breaks the gate by itself. Absolute
# numbers are machine-dependent; the gate exists to catch *relative* cliffs
# introduced by a code change, hence the generous default threshold.
set -euo pipefail

if [ "${BENCH_COMPARE_SKIP:-0}" = "1" ]; then
  echo "bench_compare: skipped (BENCH_COMPARE_SKIP=1)"
  exit 0
fi

fresh="${1:?usage: bench_compare.sh <fresh.json> [baseline.json]}"
baseline="${2:-$(dirname "$0")/../results/bench_kernels.json}"
threshold="${BENCH_COMPARE_THRESHOLD:-25}"

for f in "$fresh" "$baseline"; do
  if [ ! -f "$f" ]; then
    echo "bench_compare: missing $f" >&2
    exit 1
  fi
done

# Flatten one result-per-line: label<TAB>min_ns. The JSON is written by
# criterion-compat's --json mode, one object per line, so line-oriented
# extraction is exact. Each key is matched by name, independently of where
# it sits in the object — reordering keys or adding new ones (p50_ns, …)
# must not silently break the gate.
extract() {
  awk '
    match($0, /"label"[[:space:]]*:[[:space:]]*"[^"]*"/) {
      label = substr($0, RSTART, RLENGTH);
      sub(/^"label"[[:space:]]*:[[:space:]]*"/, "", label);
      sub(/"$/, "", label);
      if (match($0, /"min_ns"[[:space:]]*:[[:space:]]*[0-9]+/)) {
        min = substr($0, RSTART, RLENGTH);
        sub(/^"min_ns"[[:space:]]*:[[:space:]]*/, "", min);
        printf "%s\t%s\n", label, min;
      }
    }
  ' "$1"
}

extract "$fresh" | sort > /tmp/bench_compare_fresh.$$
extract "$baseline" | sort > /tmp/bench_compare_base.$$
trap 'rm -f /tmp/bench_compare_fresh.$$ /tmp/bench_compare_base.$$' EXIT

join -t "$(printf '\t')" /tmp/bench_compare_base.$$ /tmp/bench_compare_fresh.$$ | awk -F '\t' -v thr="$threshold" '
  {
    base = $2; now = $3;
    if (base == 0) next;
    delta = (now - base) * 100.0 / base;
    printf "  %-48s base %12d ns  now %12d ns  %+7.1f%%\n", $1, base, now, delta;
    if (delta > thr) { bad++; worst = $1; }
    compared++;
  }
  END {
    if (compared == 0) { print "bench_compare: no common labels to compare" > "/dev/stderr"; exit 1 }
    if (bad > 0) {
      printf "bench_compare: %d kernel(s) regressed beyond %s%% (e.g. %s)\n", bad, thr, worst > "/dev/stderr";
      exit 1
    }
    printf "bench_compare: %d kernels within %s%% of baseline\n", compared, thr;
  }
'
