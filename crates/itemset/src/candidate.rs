//! Apriori candidate generation for itemsets (`apriori-gen` of VLDB 1994).
//!
//! Two steps, exactly as published:
//!
//! 1. **Join**: `L_{k-1} ⋈ L_{k-1}` — two large `(k-1)`-itemsets sharing
//!    their first `k-2` items, with `p.last < q.last`, produce the candidate
//!    `p ∪ {q.last}`.
//! 2. **Prune**: delete candidates with any `(k-1)`-subset not in `L_{k-1}`.
//!
//! The input must be the complete, lexicographically sorted list of large
//! `(k-1)`-itemsets (each itself sorted ascending); the driver maintains that
//! invariant. The output comes back lexicographically sorted as well, which
//! downstream counting relies on for reproducible candidate ids.

use crate::Item;

/// Generates the size-`k` candidates from the large `(k-1)`-itemsets.
///
/// `prev` must be sorted lexicographically; every element must be sorted
/// ascending and of equal length. Returns candidates in lexicographic order.
pub fn apriori_gen(prev: &[&[Item]]) -> Vec<Vec<Item>> {
    if prev.is_empty() {
        return Vec::new();
    }
    let k_minus_1 = prev[0].len();
    debug_assert!(prev.iter().all(|s| s.len() == k_minus_1));
    debug_assert!(is_lex_sorted(prev));

    let mut candidates = Vec::new();
    // Join step. Because `prev` is lexicographically sorted, all itemsets
    // sharing a (k-2)-prefix are contiguous: join within each block.
    let mut block_start = 0;
    while block_start < prev.len() {
        let prefix = &prev[block_start][..k_minus_1 - 1];
        let mut block_end = block_start + 1;
        while block_end < prev.len() && &prev[block_end][..k_minus_1 - 1] == prefix {
            block_end += 1;
        }
        for i in block_start..block_end {
            for j in (i + 1)..block_end {
                // p.last < q.last holds because the block is sorted.
                let mut cand = prev[i].to_vec();
                cand.push(prev[j][k_minus_1 - 1]);
                if all_subsets_large(&cand, prev) {
                    candidates.push(cand);
                }
            }
        }
        block_start = block_end;
    }
    candidates
}

/// Prune test: every `(k-1)`-subset of `cand` is present in `prev`.
///
/// The two subsets obtained by dropping one of the last two items are the
/// join operands themselves, so only the remaining `k-2` subsets need
/// checking — but we check all of them; the binary search is cheap and the
/// uniform loop is harder to get wrong.
fn all_subsets_large(cand: &[Item], prev: &[&[Item]]) -> bool {
    let mut subset = Vec::with_capacity(cand.len() - 1);
    for drop in 0..cand.len() {
        subset.clear();
        subset.extend_from_slice(&cand[..drop]);
        subset.extend_from_slice(&cand[drop + 1..]);
        if prev
            .binary_search_by(|s| s.iter().cmp(subset.iter()))
            .is_err()
        {
            return false;
        }
    }
    true
}

fn is_lex_sorted(sets: &[&[Item]]) -> bool {
    sets.windows(2).all(|w| w[0] <= w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(prev: Vec<Vec<Item>>) -> Vec<Vec<Item>> {
        let refs: Vec<&[Item]> = prev.iter().map(|s| s.as_slice()).collect();
        apriori_gen(&refs)
    }

    #[test]
    fn paper_example_vldb94() {
        // L3 = {123, 124, 134, 135, 234}; join gives {1234, 1345};
        // prune removes 1345 because 145 is not in L3. (VLDB'94 §2.1.1.)
        let prev = vec![
            vec![1, 2, 3],
            vec![1, 2, 4],
            vec![1, 3, 4],
            vec![1, 3, 5],
            vec![2, 3, 4],
        ];
        assert_eq!(gen(prev), vec![vec![1, 2, 3, 4]]);
    }

    #[test]
    fn pairs_from_singletons() {
        let prev = vec![vec![1], vec![2], vec![3]];
        assert_eq!(gen(prev), vec![vec![1, 2], vec![1, 3], vec![2, 3]]);
    }

    #[test]
    fn empty_input() {
        assert!(gen(vec![]).is_empty());
    }

    #[test]
    fn no_joinable_prefix_means_no_candidates() {
        let prev = vec![vec![1, 2], vec![3, 4]];
        assert!(gen(prev).is_empty());
    }

    #[test]
    fn output_is_lexicographically_sorted() {
        let prev = vec![vec![1], vec![2], vec![3], vec![4], vec![9]];
        let out = gen(prev);
        let mut sorted = out.clone();
        sorted.sort();
        assert_eq!(out, sorted);
    }

    #[test]
    fn candidates_never_contain_duplicates() {
        let prev = vec![vec![1, 2], vec![1, 3], vec![2, 3]];
        for cand in gen(prev) {
            let mut d = cand.clone();
            d.dedup();
            assert_eq!(d, cand);
        }
    }
}
