//! Pseudo-projection: pointers into the original database instead of
//! copied suffixes.
//!
//! A projected database for prefix `p` holds, per supporting customer, the
//! **earliest-embedding pointer**: the index of the transaction in which
//! the last element of `p` matches under the greedy earliest embedding.
//! Greedy is optimal for growth (any later embedding sees a subset of the
//! suffix the earliest one sees), so one pointer per customer suffices:
//!
//! * *s-extensions* scan transactions strictly after the pointer;
//! * *i-extensions* scan transactions at or after the pointer that contain
//!   the whole last element — at the pointer itself the earlier prefix
//!   elements matched strictly before, and at later transactions a
//!   fortiori, so every such transaction hosts a valid embedding of the
//!   extended pattern.

/// One supporting customer in a projected database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pointer {
    /// Index into the customer array.
    pub customer: u32,
    /// Transaction index where the prefix's last element matched earliest.
    pub transaction: u32,
}

/// The pseudo-projected database: one pointer per supporting customer.
#[derive(Debug, Clone, Default)]
pub struct ProjectedDb {
    /// Supporting customers in ascending order.
    pub entries: Vec<Pointer>,
}

impl ProjectedDb {
    /// Customer support of the prefix this projection belongs to.
    pub fn support(&self) -> u64 {
        self.entries.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_counts_entries() {
        let mut db = ProjectedDb::default();
        assert_eq!(db.support(), 0);
        db.entries.push(Pointer {
            customer: 0,
            transaction: 2,
        });
        db.entries.push(Pointer {
            customer: 3,
            transaction: 0,
        });
        assert_eq!(db.support(), 2);
    }
}
