//! `seqpat-lint` — the workspace's own static-analysis gate.
//!
//! A dependency-free linter (hand-rolled lexer + lexical rule engine) that
//! enforces the invariants the equivalence suites rely on: panic-free and
//! cast-checked counting kernels, order-normalized hash iteration,
//! wall-clock confined to the stats layer, and full `MiningStats` coverage
//! in the CLI. See DESIGN.md §"Correctness tooling" for the contract and
//! `rules::RULES` for the rule list.

pub mod engine;
pub mod lexer;
pub mod rules;
