//! End-to-end integration test on the paper's running example (§2):
//! every algorithm, every counting strategy (including Auto), the facade,
//! and I/O.

use seqpat::io::{csv, spmf};
use seqpat::prefixspan::{prefixspan_maximal, PrefixSpanConfig};
use seqpat::{Algorithm, CountingStrategy, Database, MinSupport, Miner, MinerConfig};

fn paper_db() -> Database {
    Database::from_rows(vec![
        (1, 1, vec![30]),
        (1, 2, vec![90]),
        (2, 1, vec![10, 20]),
        (2, 2, vec![30]),
        (2, 3, vec![40, 60, 70]),
        (3, 1, vec![30, 50, 70]),
        (4, 1, vec![30]),
        (4, 2, vec![40, 70]),
        (4, 3, vec![90]),
        (5, 1, vec![90]),
    ])
}

const PAPER_ANSWER: [&str; 2] = ["<(30)(40 70)>:2", "<(30)(90)>:2"];

fn render(patterns: &[seqpat::Pattern]) -> Vec<String> {
    patterns
        .iter()
        .map(|p| format!("{}:{}", p, p.support))
        .collect()
}

#[test]
fn every_algorithm_and_strategy_reproduces_the_paper_answer() {
    for algorithm in [
        Algorithm::AprioriAll,
        Algorithm::AprioriSome,
        Algorithm::DynamicSome { step: 1 },
        Algorithm::DynamicSome { step: 2 },
        Algorithm::DynamicSome { step: 3 },
    ] {
        for strategy in [
            CountingStrategy::Direct,
            CountingStrategy::HashTree,
            CountingStrategy::Vertical,
            CountingStrategy::Bitmap,
            CountingStrategy::Auto,
        ] {
            let config = MinerConfig::new(MinSupport::Fraction(0.25))
                .algorithm(algorithm)
                .counting(strategy);
            let result = Miner::new(config).mine(&paper_db());
            assert_eq!(
                render(&result.patterns),
                PAPER_ANSWER.to_vec(),
                "{algorithm} with {strategy:?}"
            );
        }
    }
}

#[test]
fn prefixspan_extension_agrees() {
    let found = prefixspan_maximal(
        &paper_db(),
        MinSupport::Fraction(0.25),
        &PrefixSpanConfig::default(),
    );
    assert_eq!(render(&found), PAPER_ANSWER.to_vec());
}

#[test]
fn answer_survives_spmf_roundtrip() {
    let db = paper_db();
    let text = spmf::write_string(&db);
    let again = spmf::read_str(&text).expect("roundtrip parse");
    let result = Miner::new(MinerConfig::new(MinSupport::Fraction(0.25))).mine(&again);
    assert_eq!(render(&result.patterns), PAPER_ANSWER.to_vec());
}

#[test]
fn answer_survives_csv_roundtrip() {
    let db = paper_db();
    let text = csv::write_string(&db);
    let again = csv::read_str(&text).expect("roundtrip parse");
    assert_eq!(db, again);
    let result = Miner::new(MinerConfig::new(MinSupport::Fraction(0.25))).mine(&again);
    assert_eq!(render(&result.patterns), PAPER_ANSWER.to_vec());
}

#[test]
fn non_maximal_set_is_downward_closed() {
    let result = Miner::new(MinerConfig::new(MinSupport::Fraction(0.25)).include_non_maximal(true))
        .mine(&paper_db());
    // Every element of every large sequence is itself a large 1-sequence.
    let singles: Vec<&seqpat::Itemset> = result
        .patterns
        .iter()
        .filter(|p| p.sequence.len() == 1)
        .map(|p| &p.sequence.elements()[0])
        .collect();
    for pattern in &result.patterns {
        for element in pattern.sequence.elements() {
            assert!(
                singles.iter().any(|s| element.is_subset_of(s)),
                "element {element} of {pattern} has no large 1-sequence cover"
            );
        }
    }
}

#[test]
fn support_fractions_consistent() {
    let result = Miner::new(MinerConfig::new(MinSupport::Fraction(0.25))).mine(&paper_db());
    for p in &result.patterns {
        let f = result.support_fraction(p);
        assert!(f >= 0.25 - 1e-12);
        assert!((f * 5.0 - p.support as f64).abs() < 1e-9);
    }
}

#[test]
fn varying_threshold_shrinks_answer_monotonically() {
    let db = paper_db();
    let mut last_len = usize::MAX;
    for count in 1..=5u64 {
        let result =
            Miner::new(MinerConfig::new(MinSupport::Count(count)).include_non_maximal(true))
                .mine(&db);
        assert!(
            result.patterns.len() <= last_len,
            "large-sequence count must shrink as the threshold grows"
        );
        last_len = result.patterns.len();
    }
}
