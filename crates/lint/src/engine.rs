//! Workspace walk, suppression handling, semantic-rule orchestration, and
//! report assembly.
//!
//! Suppression grammar (inside any non-doc comment):
//!
//! ```text
//! // seqpat-lint: allow(no-panic-in-kernels, nondeterministic-iteration-flow) why this site is fine
//! ```
//!
//! The justification after `)` is mandatory. A suppression covers its own
//! line; when the comment is the first thing on its line it covers the next
//! line instead (the usual "comment above the offending line" style covers
//! both). Malformed, unknown-rule, or unjustified suppressions are reported
//! under the meta rule `suppression` and are not themselves suppressible.
//! A valid suppression that silences nothing is reported under
//! `stale-suppression` — allow-comments must stay honest as code moves.
//! Doc comments and `#[cfg(test)]` regions are exempt from both: a grammar
//! example in a doc comment is not a live suppression.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::callgraph::CallGraph;
use crate::dataflow;
use crate::determinism;
use crate::effects;
use crate::lexer::{lex, Token, TokenKind};
use crate::parser::{self, ParsedFile};
use crate::rules::{self, Violation};
use crate::semantic;

/// Result of linting the workspace.
#[derive(Debug)]
pub struct Report {
    /// Unsuppressed violations (including meta findings), sorted by path,
    /// line, rule.
    pub violations: Vec<Violation>,
    /// Count of findings silenced by valid suppression comments.
    pub suppressed: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// The deterministic per-fn effect table (`effects.json` artifact):
    /// a pure function of the scanned sources, byte-identical across runs.
    pub effects_json: String,
    /// The determinism audit (`determinism.json` artifact): every parallel
    /// fan-out site with its audited captures, every partial-merge reducer
    /// with its verdict. Also byte-identical across runs.
    pub determinism_json: String,
}

impl Report {
    /// True when any violation's rule is deny-severity (the exit/CI gate).
    pub fn has_deny(&self) -> bool {
        self.violations
            .iter()
            .any(|v| rules::severity_of(v.rule) == rules::Severity::Deny)
    }
}

/// One parsed allow-comment.
struct Suppression {
    /// Line the comment starts on.
    line: u32,
    /// Whether the comment is the first token on its line (then it covers
    /// the following line too).
    covers_next: bool,
    rules: Vec<String>,
}

impl Suppression {
    fn covers(&self, line: u32) -> bool {
        line == self.line || (self.covers_next && line == self.line + 1)
    }
}

/// Lints every `.rs` file under `root`.
pub fn run(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut inputs: Vec<(String, String)> = Vec::new();
    for file in &files {
        let Ok(src) = fs::read_to_string(file) else {
            // Non-UTF-8 or unreadable; nothing for a Rust linter to do.
            continue;
        };
        inputs.push((rel_path(root, file), src));
    }
    let files_scanned = inputs.len();
    let (violations, suppressed, effects_json, determinism_json) = lint_sources(&inputs);
    Ok(Report {
        violations,
        suppressed,
        files_scanned,
        effects_json,
        determinism_json,
    })
}

/// The full lint pipeline over in-memory `(rel_path, source)` pairs: lexical
/// rules, suppression handling, effect inference, the parser/call-graph
/// semantic rules, the determinism analyses, and stale-suppression
/// accounting. Test-path files are skipped wholesale. Returns the kept
/// violations (sorted, deduped), the count of findings silenced by valid
/// suppressions, and the rendered `effects.json` and `determinism.json`
/// artifacts.
pub fn lint_sources(inputs: &[(String, String)]) -> (Vec<Violation>, usize, String, String) {
    let mut all: Vec<Violation> = Vec::new();
    let mut sups_by_path: BTreeMap<&str, Vec<Suppression>> = BTreeMap::new();
    let mut parsed: Vec<ParsedFile> = Vec::new();
    let mut reducer_audits: Vec<dataflow::ReducerAudit> = Vec::new();

    for (rel, src) in inputs {
        if rules::is_test_path(rel) {
            continue;
        }
        let (sups, mut meta) = parse_suppressions(rel, src);
        sups_by_path.insert(rel.as_str(), sups);
        all.append(&mut meta);
        all.append(&mut rules::analyze_file(rel, src));
        all.append(&mut dataflow::flow_violations(rel, src));
        let (mut red, mut audits) = dataflow::reduction_audit(rel, src);
        all.append(&mut red);
        reducer_audits.append(&mut audits);
        parsed.push(parser::parse_file(rel, src));
    }

    // Cross-file lexical rule: core's stats.rs fields vs the CLI printer.
    let stats_rel = "crates/core/src/stats.rs";
    let cli_rel = "crates/cli/src/main.rs";
    let find = |want: &str| inputs.iter().find(|(rel, _)| rel == want);
    if let (Some((_, stats_src)), Some((_, cli_src))) = (find(stats_rel), find(cli_rel)) {
        all.append(&mut rules::stats_coverage(stats_rel, stats_src, cli_src));
    }

    // Effect inference and the semantic rules over the parsed workspace.
    let graph = CallGraph::build(&parsed);
    let fx = effects::infer(&parsed, &graph);
    let effects_json = effects::to_json(&parsed, &graph, &fx);
    let mut suppressed = 0usize;
    // (path, suppression line, rule name) triples that earned their keep.
    let mut used: BTreeSet<(String, u32, String)> = BTreeSet::new();
    {
        let absorb = |path: &str, line: u32| -> bool {
            let Some(sups) = sups_by_path.get(path) else {
                return false;
            };
            let mut hit = false;
            for s in sups.iter().filter(|s| s.covers(line)) {
                for r in &s.rules {
                    if r == rules::NO_PANIC_IN_KERNELS || r == rules::TRANSITIVE_PANIC_REACHABILITY
                    {
                        used.insert((path.to_string(), s.line, r.clone()));
                        hit = true;
                    }
                }
            }
            if hit {
                suppressed += 1;
            }
            hit
        };
        all.append(&mut semantic::transitive_panic(
            &parsed, &graph, &fx, absorb,
        ));
    }
    all.append(&mut semantic::no_alloc_in_hot_loop(&parsed));
    all.append(&mut semantic::alloc_calls_in_hot_loop(&parsed, &graph, &fx));
    all.append(&mut semantic::effect_purity(&parsed, &graph, &fx));
    all.append(&mut semantic::exhaustive_strategy_match(&parsed));
    all.append(&mut determinism::shared_mutable_capture(&parsed));
    let determinism_json = determinism::to_json(&parsed, &reducer_audits);

    // Apply suppressions to everything else, tracking which earned use.
    let mut kept = Vec::new();
    for v in all {
        let matched = if rules::rule_info(v.rule).is_some_and(|r| !r.suppressible) {
            None
        } else {
            sups_by_path.get(v.path.as_str()).and_then(|sups| {
                sups.iter()
                    .find(|s| s.covers(v.line) && s.rules.iter().any(|r| r == v.rule))
            })
        };
        match matched {
            Some(s) => {
                used.insert((v.path.clone(), s.line, v.rule.to_string()));
                suppressed += 1;
            }
            None => kept.push(v),
        }
    }

    // Stale-suppression: every named rule of every valid suppression must
    // have silenced at least one finding.
    for (path, sups) in &sups_by_path {
        for s in sups {
            for r in &s.rules {
                if !used.contains(&(path.to_string(), s.line, r.clone())) {
                    kept.push(Violation {
                        path: path.to_string(),
                        line: s.line,
                        rule: rules::STALE_SUPPRESSION,
                        message: format!(
                            "suppression allows `{r}` but no such finding fires on the \
                             covered line(s); delete or update the allow-comment"
                        ),
                        chain: None,
                    });
                }
            }
        }
    }

    kept.sort();
    kept.dedup();
    (kept, suppressed, effects_json, determinism_json)
}

/// Lints one in-memory file: the per-file slice of [`lint_sources`] (the
/// cross-file stats-coverage rule and the workspace call graph see only
/// this file). Returns the kept violations and the suppressed count.
pub fn lint_source(rel: &str, src: &str) -> (Vec<Violation>, usize) {
    let (violations, suppressed, _, _) = lint_sources(&[(rel.to_string(), src.to_string())]);
    (violations, suppressed)
}

/// Workspace-relative path with `/` separators.
fn rel_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// True for `///`, `//!`, `/**`, `/*!` comments — documentation, where a
/// suppression-shaped line is an example, not a directive.
fn is_doc_comment(text: &str) -> bool {
    text.starts_with("///")
        || text.starts_with("//!")
        || text.starts_with("/*!")
        || (text.starts_with("/**") && text != "/**/")
}

/// Extracts suppression comments from `src`, returning them plus meta
/// violations for malformed/unknown/unjustified ones. Doc comments and
/// `#[cfg(test)]` regions are skipped entirely.
fn parse_suppressions(rel: &str, src: &str) -> (Vec<Suppression>, Vec<Violation>) {
    let tokens = lex(src);
    let test_regions = rules::test_region_spans(src);
    let mut sups = Vec::new();
    let mut meta = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if !matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let text = tok.text(src);
        if is_doc_comment(text) {
            continue;
        }
        if test_regions
            .iter()
            .any(|&(s, e)| tok.start >= s && tok.start < e)
        {
            continue;
        }
        let Some(at) = text.find("seqpat-lint:") else {
            continue;
        };
        let rest = text[at + "seqpat-lint:".len()..].trim_start();
        let mut bad = |msg: String| {
            meta.push(Violation {
                path: rel.to_string(),
                line: tok.line,
                rule: rules::SUPPRESSION,
                message: msg,
                chain: None,
            });
        };
        let Some(args) = rest.strip_prefix("allow") else {
            bad("malformed seqpat-lint comment: expected `allow(<rule>)`".to_string());
            continue;
        };
        let args = args.trim_start();
        let Some(args) = args.strip_prefix('(') else {
            bad("malformed seqpat-lint comment: expected `(` after `allow`".to_string());
            continue;
        };
        let Some(close) = args.find(')') else {
            bad("malformed seqpat-lint comment: unclosed `allow(`".to_string());
            continue;
        };
        let (rule_list, after) = args.split_at(close);
        let mut rule_names = Vec::new();
        for raw in rule_list.split(',') {
            let name = raw.trim();
            if name.is_empty() {
                continue;
            }
            match rules::rule_info(name) {
                Some(info) if info.suppressible => rule_names.push(name.to_string()),
                Some(_) => bad(format!(
                    "rule `{name}` cannot be suppressed (meta rules keep the \
                     suppression system honest)"
                )),
                None => bad(format!(
                    "suppression names unknown rule `{name}` (see --list-rules)"
                )),
            }
        }
        let justification = after[1..]
            .trim_start_matches(|c: char| {
                c.is_whitespace() || matches!(c, '—' | '–' | '-' | ':' | '.')
            })
            .trim_end_matches("*/")
            .trim();
        if justification.is_empty() {
            bad(
                "suppression lacks a justification: write why the site is sound after \
                 the closing `)`"
                    .to_string(),
            );
            continue;
        }
        if rule_names.is_empty() {
            continue;
        }
        sups.push(Suppression {
            line: tok.line,
            covers_next: comment_starts_line(&tokens, i, src),
            rules: rule_names,
        });
    }
    (sups, meta)
}

/// True if no code token precedes comment `i` on its line.
fn comment_starts_line(tokens: &[Token], i: usize, _src: &str) -> bool {
    let line = tokens[i].line;
    tokens[..i]
        .iter()
        .rev()
        .take_while(|t| t.line == line)
        .all(|t| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
}

/// Renders the report as stable, dependency-free JSON.
pub fn to_json(report: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    s.push_str(&format!("  \"suppressed\": {},\n", report.suppressed));
    s.push_str(&format!(
        "  \"violation_count\": {},\n",
        report.violations.len()
    ));
    s.push_str("  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {");
        s.push_str(&format!("\"rule\": \"{}\", ", json_escape(v.rule)));
        s.push_str(&format!(
            "\"severity\": \"{}\", ",
            rules::severity_of(v.rule).as_str()
        ));
        s.push_str(&format!("\"path\": \"{}\", ", json_escape(&v.path)));
        s.push_str(&format!("\"line\": {}, ", v.line));
        s.push_str(&format!("\"message\": \"{}\"", json_escape(&v.message)));
        if let Some(chain) = &v.chain {
            s.push_str(&format!(", \"chain\": \"{}\"", json_escape(chain)));
        }
        s.push('}');
    }
    if !report.violations.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// Renders every finding of `rule` with its full witness chain — the
/// `--explain <rule>` view. Deterministic: findings arrive sorted from the
/// report, and chains are hop-minimal with deterministic tie-breaks.
pub fn explain(report: &Report, rule: &str) -> String {
    let mut s = String::new();
    let hits: Vec<&Violation> = report
        .violations
        .iter()
        .filter(|v| v.rule == rule)
        .collect();
    s.push_str(&format!("rule `{rule}`: {} finding(s)\n", hits.len()));
    for v in &hits {
        s.push_str(&format!("\n{}:{}\n", v.path, v.line));
        s.push_str(&format!("  {}\n", v.message));
        if let Some(chain) = &v.chain {
            s.push_str(&format!("  witness: {chain}\n"));
        }
    }
    if hits.is_empty() {
        s.push_str("nothing to explain: the workspace is clean for this rule\n");
    }
    s
}

/// Renders the report as minimal SARIF 2.1.0 (one run, one driver, all
/// rules listed, one result per violation).
pub fn to_sarif(report: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n    {\n");
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"seqpat-lint\",\n");
    s.push_str("          \"rules\": [");
    for (i, r) in rules::RULES.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n            {");
        s.push_str(&format!("\"id\": \"{}\", ", json_escape(r.name)));
        s.push_str(&format!(
            "\"shortDescription\": {{\"text\": \"{}\"}}, ",
            json_escape(r.desc)
        ));
        s.push_str(&format!(
            "\"defaultConfiguration\": {{\"level\": \"{}\"}}",
            r.severity.sarif_level()
        ));
        s.push('}');
    }
    s.push_str("\n          ]\n        }\n      },\n");
    s.push_str("      \"results\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n        {");
        s.push_str(&format!("\"ruleId\": \"{}\", ", json_escape(v.rule)));
        s.push_str(&format!(
            "\"level\": \"{}\", ",
            rules::severity_of(v.rule).sarif_level()
        ));
        s.push_str(&format!(
            "\"message\": {{\"text\": \"{}\"}}, ",
            json_escape(&v.message)
        ));
        s.push_str(&format!(
            "\"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
             {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]",
            json_escape(&v.path),
            v.line.max(1)
        ));
        s.push('}');
    }
    if !report.violations.is_empty() {
        s.push_str("\n      ");
    }
    s.push_str("]\n    }\n  ]\n}\n");
    s
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
