//! # seqpat-proptest-compat — offline stand-in for the `proptest` crate
//!
//! The build environment has no crates.io access, so the slice of the
//! `proptest 1.x` API this workspace uses is reimplemented here and wired
//! in under the dependency name `proptest`. Covered surface:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//!   [`prop_assert!`] and [`prop_assert_eq!`];
//! * [`strategy::Strategy`] with `prop_map`, plus strategies for integer
//!   ranges, tuples (arity ≤ 5), string literals (a small regex subset),
//!   [`collection::vec`], [`collection::btree_set`], and [`option::of`];
//! * [`test_runner::ProptestConfig::with_cases`].
//!
//! Differences from real proptest, acceptable for this workspace:
//! no shrinking (a failing case reports its inputs and deterministic
//! seed instead), no persistence files, and string-literal strategies
//! support only the `atom{lo,hi}` regex shapes the tests actually use
//! (`[class]{lo,hi}` and `\PC{lo,hi}`).

pub mod test_runner {
    /// Per-suite configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// A failed `prop_assert!` inside one generated case.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: String) -> Self {
            Self { message }
        }

        pub fn message(&self) -> &str {
            &self.message
        }
    }

    /// Deterministic per-case random source (SplitMix64 stream).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derives the rng for `case` of the test named `name` — fully
        /// deterministic, so a failure report is reproducible.
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self {
                state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// The subset of proptest's `Strategy`: a reusable recipe that can
    /// produce one value per call from a deterministic rng.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let drawn = u128::from(rng.next_u64()) % span;
                    (self.start as i128 + drawn as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let drawn = u128::from(rng.next_u64()) % span;
                    (lo as i128 + drawn as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);

    /// String-literal strategies: a tiny regex subset covering the shapes
    /// used in this workspace — one atom (`[class]` or `\PC`) followed by
    /// a `{lo,hi}` repetition.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (pool, lo, hi) = parse_simple_regex(self);
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| pool[rng.below(pool.len() as u64) as usize])
                .collect()
        }
    }

    /// Parses `atom{lo,hi}` into (alphabet, lo, hi). Panics on patterns
    /// outside the supported subset so unsupported tests fail loudly.
    fn parse_simple_regex(pattern: &str) -> (Vec<char>, usize, usize) {
        fn unsupported(pattern: &str) -> ! {
            panic!("unsupported regex {pattern:?} in offline proptest shim")
        }
        let (atom, rep) = match pattern.rfind('{') {
            Some(i) => (&pattern[..i], &pattern[i..]),
            None => unsupported(pattern),
        };
        let rep = rep
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| unsupported(pattern));
        let (lo, hi) = match rep.split_once(',') {
            Some((a, b)) => (
                a.parse().unwrap_or_else(|_| unsupported(pattern)),
                b.parse().unwrap_or_else(|_| unsupported(pattern)),
            ),
            None => unsupported(pattern),
        };
        let pool = if atom == "\\PC" {
            // `\PC` = "not a control character": printable ASCII plus a
            // sprinkling of multi-byte characters to exercise UTF-8 paths.
            let mut pool: Vec<char> = (0x20u8..0x7f).map(char::from).collect();
            pool.extend(['é', 'ß', '→', '✓', '\u{203D}', '日', '𝄞']);
            pool
        } else {
            parse_char_class(atom).unwrap_or_else(|| unsupported(pattern))
        };
        assert!(lo <= hi && !pool.is_empty(), "degenerate regex {pattern:?}");
        (pool, lo, hi)
    }

    /// Expands `[...]` with literal chars, `a-z` ranges, and `\n`/`\-`/`\\`
    /// escapes into the explicit alphabet.
    fn parse_char_class(atom: &str) -> Option<Vec<char>> {
        let inner = atom.strip_prefix('[')?.strip_suffix(']')?;
        let mut pool = Vec::new();
        let mut chars = inner.chars().peekable();
        while let Some(c) = chars.next() {
            let decoded = if c == '\\' {
                match chars.next()? {
                    'n' => '\n',
                    't' => '\t',
                    other => other,
                }
            } else {
                c
            };
            // A bare `-` between two literals denotes a range.
            if chars.peek() == Some(&'-') {
                let mut lookahead = chars.clone();
                lookahead.next();
                if let Some(&end) = lookahead.peek() {
                    if end != ']' && end != '\\' {
                        chars = lookahead;
                        let end = chars.next()?;
                        pool.extend((decoded..=end).collect::<Vec<_>>());
                        continue;
                    }
                }
            }
            pool.push(decoded);
        }
        Some(pool)
    }

    /// Generates the whole argument tuple of a `proptest!` case in
    /// declaration order — used by the macro expansion.
    pub fn generate_tuple<T: Strategy>(strategies: &T, rng: &mut TestRng) -> T::Value {
        strategies.generate(rng)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Size specification for collection strategies: an exact `usize`, a
    /// half-open range, or an inclusive range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    /// `Vec<T>` strategy with element strategy and size bounds.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet<T>` strategy. The element domain must be able to fill the
    /// lower size bound; generation retries duplicates a bounded number of
    /// times and panics if the floor is unreachable.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target {
                out.insert(self.element.generate(rng));
                attempts += 1;
                if attempts >= 64 * target.max(1) {
                    assert!(
                        out.len() >= self.size.lo,
                        "btree_set element domain too small for size floor {}",
                        self.size.lo
                    );
                    break;
                }
            }
            out
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `Option<T>` strategy: `None` roughly a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// The case-runner macro. Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u32..10, v in arb_thing()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
///
/// Each case draws its inputs from a deterministic rng derived from the
/// test name and case index, so failures are reproducible run-to-run.
/// There is no shrinking: the failure report prints the offending inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let strategies = ($($strategy,)+);
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    let ($($arg,)+) =
                        $crate::strategy::generate_tuple(&strategies, &mut rng);
                    let outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest case {case} of {} failed: {}",
                            stringify!($name),
                            err.message(),
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a `proptest!` case, reporting the failing
/// inputs instead of panicking mid-case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality form of [`prop_assert!`]; both sides must be `Debug`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    left, right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                    left,
                    right,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_collections_produce_in_bounds_values() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let x = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (1u64..=3).generate(&mut rng);
            assert!((1..=3).contains(&y));
            let v = crate::collection::vec(0u32..5, 2..=4).generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 5));
            let s = crate::collection::btree_set(0u32..8, 1..=4).generate(&mut rng);
            assert!((1..=4).contains(&s.len()));
        }
    }

    #[test]
    fn string_regex_subset_generates_expected_alphabets() {
        let mut rng = TestRng::for_case("strings", 0);
        for _ in 0..200 {
            let s = "[0-9 \\-\n]{0,200}".generate(&mut rng);
            assert!(s.chars().count() <= 200);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_digit() || c == ' ' || c == '-' || c == '\n'));
            let t = "\\PC{0,100}".generate(&mut rng);
            assert!(t.chars().count() <= 100);
            assert!(t.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn tuple_and_option_strategies_compose() {
        let mut rng = TestRng::for_case("tuple", 0);
        let strat = (0i64..20, crate::collection::vec(0u32..5, 1..=3));
        let mut saw_none = false;
        let mut saw_some = false;
        for _ in 0..200 {
            let (t, items) = strat.generate(&mut rng);
            assert!((0..20).contains(&t));
            assert!(!items.is_empty());
            match crate::option::of(2i64..12).generate(&mut rng) {
                None => saw_none = true,
                Some(g) => {
                    saw_some = true;
                    assert!((2..12).contains(&g));
                }
            }
        }
        assert!(saw_none && saw_some);
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let a = crate::collection::vec(0u32..100, 0..12).generate(&mut TestRng::for_case("det", 7));
        let b = crate::collection::vec(0u32..100, 0..12).generate(&mut TestRng::for_case("det", 7));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_runs(x in 0u32..10, pair in (0i64..5, 1usize..=2)) {
            prop_assert!(x < 10);
            prop_assert_eq!(pair.1.min(2), pair.1, "second field {} out of range", pair.1);
        }
    }
}
