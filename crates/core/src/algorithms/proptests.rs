//! Property tests for the sequence candidate generation — soundness and
//! completeness of `apriori-generate` (the anti-monotonicity backbone) —
//! and end-to-end mining equivalence of every counting strategy at every
//! thread count.

use proptest::prelude::*;

use super::candidate::{generate, IdSeq};
use crate::arena::CandidateArena;
use crate::{Algorithm, CountingStrategy, Database, MinSupport, Miner, MinerConfig, Parallelism};

/// Renders a mining run as `pattern:support` lines for equivalence pins.
fn mine_rendered(
    db: &Database,
    algorithm: Algorithm,
    strategy: CountingStrategy,
    threads: usize,
    min_count: u64,
) -> (Vec<String>, u64) {
    let config = MinerConfig::new(MinSupport::Count(min_count))
        .algorithm(algorithm)
        .counting(strategy)
        .parallelism(Parallelism::threads(threads));
    let result = Miner::new(config).mine(db);
    let rendered = result
        .patterns
        .iter()
        .map(|p| format!("{}:{}", p, p.support))
        .collect();
    (rendered, result.stats.gallop_skips)
}

fn arb_prev(k: usize) -> impl Strategy<Value = CandidateArena> {
    proptest::collection::btree_set(proptest::collection::vec(0u32..5, k), 1..=25)
        .prop_map(move |s| CandidateArena::from_rows(k, s.iter().map(|row| row.as_slice())))
}

/// All delete-one-element subsequences of `seq`.
fn delete_one(seq: &[u32]) -> Vec<IdSeq> {
    (0..seq.len())
        .map(|drop| {
            let mut sub = seq.to_vec();
            sub.remove(drop);
            sub
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn soundness_every_candidate_survives_its_own_prune(prev in arb_prev(2)) {
        for cand in generate(&prev).iter() {
            prop_assert_eq!(cand.len(), 3);
            for sub in delete_one(cand) {
                prop_assert!(
                    prev.binary_search(&sub).is_ok(),
                    "candidate {:?} emitted though subsequence {:?} is not in prev",
                    cand,
                    sub
                );
            }
        }
    }

    #[test]
    fn completeness_all_fully_supported_extensions_are_generated(prev in arb_prev(2)) {
        // Enumerate every 3-sequence over the alphabet; those whose
        // delete-one subsequences are all in prev MUST be generated.
        let out = generate(&prev);
        for a in 0u32..5 {
            for b in 0u32..5 {
                for c in 0u32..5 {
                    let cand = [a, b, c];
                    let supported = delete_one(&cand)
                        .into_iter()
                        .all(|s| prev.binary_search(&s).is_ok());
                    prop_assert_eq!(
                        out.binary_search(&cand).is_ok(),
                        supported,
                        "mismatch for {:?}",
                        cand
                    );
                }
            }
        }
    }

    #[test]
    fn output_sorted_and_unique(prev in arb_prev(3)) {
        prop_assert!(generate(&prev).is_sorted_unique());
    }

    #[test]
    fn k2_is_the_full_ordered_square(prev in arb_prev(1)) {
        let out = generate(&prev);
        prop_assert_eq!(
            out.num_candidates(),
            prev.num_candidates() * prev.num_candidates()
        );
    }
}

/// Generated raw databases: up to 8 customers, each with up to 6
/// transactions of 1–3 items over an 8-item alphabet.
fn arb_database() -> impl Strategy<Value = Database> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::collection::vec(1u32..=8, 1..4), 0..6),
        0..8,
    )
    .prop_map(|customers| {
        let mut rows = Vec::new();
        for (c, transactions) in customers.into_iter().enumerate() {
            for (t, items) in transactions.into_iter().enumerate() {
                rows.push((c as u64 + 1, t as i64, items));
            }
        }
        Database::from_rows(rows)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole pin: every algorithm × every counting strategy
    /// (including Bitmap and Auto) × threads 1/2/4 produces the exact same
    /// maximal pattern set with the exact same supports.
    #[test]
    fn all_strategies_and_thread_counts_mine_identical_patterns(
        db in arb_database(),
        min_count in 1u64..4,
    ) {
        let mut baseline: Option<Vec<String>> = None;
        for algorithm in [
            Algorithm::AprioriAll,
            Algorithm::AprioriSome,
            Algorithm::DynamicSome { step: 2 },
        ] {
            for strategy in [
                CountingStrategy::Direct,
                CountingStrategy::HashTree,
                CountingStrategy::Vertical,
                CountingStrategy::Bitmap,
                CountingStrategy::Auto,
            ] {
                for threads in [1usize, 2, 4] {
                    let (rendered, _) = mine_rendered(&db, algorithm, strategy, threads, min_count);
                    if let Some(expected) = &baseline {
                        prop_assert_eq!(
                            &rendered, expected,
                            "{} / {} / {} threads", algorithm, strategy, threads
                        );
                    } else {
                        baseline = Some(rendered);
                    }
                }
            }
        }
    }
}

/// Fixture databases with one 129+-transaction customer (three-word bitmap
/// spans) and one 193+-transaction customer (four-word spans), exercising
/// the multi-word carry fix-up kernels end-to-end. Filler ids are
/// customer-disjoint (support 1, pruned at min-count 2); a short shared
/// pattern over ids 1–3 is spliced into both customers so a small frequent
/// set survives; and hot id 7 rides along in every other transaction of the
/// longer customer but only three of the shorter one — a skewed occurrence
/// list that forces the vertical strategy's galloping join against short
/// prefix lists.
fn arb_long_span_database() -> impl Strategy<Value = Database> {
    let filler_a = proptest::collection::vec(10u32..30, 129..=160);
    let filler_b = proptest::collection::vec(30u32..50, 193..=240);
    let shared = proptest::collection::vec(1u32..=3, 2..4);
    (filler_a, filler_b, shared).prop_map(|(fa, fb, shared)| {
        let splice = |filler: &[u32], hot_stride: usize| -> Vec<Vec<u32>> {
            let mut txns: Vec<Vec<u32>> = filler.iter().map(|&f| vec![f]).collect();
            for (k, &id) in shared.iter().enumerate() {
                let pos = (k + 1) * txns.len() / (shared.len() + 1);
                txns.insert(pos, vec![id]);
            }
            for t in (0..txns.len()).step_by(hot_stride) {
                txns[t].push(7);
            }
            txns
        };
        let mut rows = Vec::new();
        for (c, txns) in [
            splice(&fa, fa.len().div_ceil(3)), // three hot occurrences
            splice(&fb, 2),                    // hot in every other transaction
        ]
        .into_iter()
        .enumerate()
        {
            for (t, items) in txns.into_iter().enumerate() {
                rows.push((c as u64 + 1, t as i64, items));
            }
        }
        Database::from_rows(rows)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Long-customer pin: three- and four-word bitmap frontiers and the
    /// galloping vertical join produce the exact same maximal patterns as
    /// every other strategy at every thread count — and the skewed hot-id
    /// lists actually took the galloping path.
    #[test]
    fn long_customers_mine_identically_across_all_strategies(
        db in arb_long_span_database(),
    ) {
        let mut gallop_skips = 0u64;
        for algorithm in [Algorithm::AprioriAll, Algorithm::DynamicSome { step: 2 }] {
            let mut baseline: Option<Vec<String>> = None;
            for strategy in [
                CountingStrategy::Direct,
                CountingStrategy::HashTree,
                CountingStrategy::Vertical,
                CountingStrategy::Bitmap,
                CountingStrategy::Auto,
            ] {
                for threads in [1usize, 2, 4] {
                    let (rendered, skips) = mine_rendered(&db, algorithm, strategy, threads, 2);
                    if matches!(strategy, CountingStrategy::Vertical) {
                        gallop_skips += skips;
                    }
                    if let Some(expected) = &baseline {
                        prop_assert_eq!(
                            &rendered, expected,
                            "{} / {} / {} threads", algorithm, strategy, threads
                        );
                    } else {
                        prop_assert!(
                            !rendered.is_empty(),
                            "the spliced shared pattern must survive min-count 2"
                        );
                        baseline = Some(rendered);
                    }
                }
            }
        }
        prop_assert!(
            gallop_skips > 0,
            "skewed hot-id occurrence lists must exercise the galloping join"
        );
    }
}
