//! Fixture workspace root: wires the seeded-rule modules together.

pub mod capture;
pub mod counting;
pub mod flow;
pub mod hop;
pub mod prelude;
pub mod recurse;
pub mod reducer;
pub mod rng;
pub mod stale;
pub mod strategy;
pub mod support;
pub mod tricky;
