//! Seed for `unseeded-randomness-outside-datagen`: product code minting its
//! own RNG. The `use` line itself must not fire — only construction does.

use seqpat_rand::{thread_rng, RngCore};

/// Seeded: a thread-local RNG in product code makes output depend on the
/// process, not the input data.
pub fn jittered_len(base: u32) -> u32 {
    let mut rng = thread_rng();
    base + (rng.next_u32() % 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Clean: RNG construction inside test code is sanctioned.
    #[test]
    fn jitter_stays_close() {
        let mut rng = thread_rng();
        let _ = rng.next_u32();
        assert!(jittered_len(5) >= 5);
    }
}
