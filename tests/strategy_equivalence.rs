//! End-to-end equivalence of every counting strategy through all three
//! algorithms, on a fixture whose maximal pattern is long enough to force
//! passes ≥ 4 — the regime where the vertical strategy's pass-to-pass
//! occurrence-list cache and the bitmap strategy's S-step folds are
//! actually exercised (pass 2 goes through the shared pair-counting fast
//! path in every strategy, so short fixtures never reach either kernel).

use seqpat::{Algorithm, CountingStrategy, Database, MinSupport, Miner, MinerConfig, Parallelism};

/// Five customers share the 5-step sequence ⟨(1)(2)(3)(4)(5)⟩; two more
/// carry prefixes/noise so intermediate passes have candidates to prune.
fn long_pattern_db() -> Database {
    let mut rows = Vec::new();
    for customer in 1..=5u64 {
        for (t, item) in [1u32, 2, 3, 4, 5].into_iter().enumerate() {
            rows.push((customer, t as i64, vec![item]));
        }
    }
    rows.extend([
        (6, 1, vec![1]),
        (6, 2, vec![2]),
        (6, 3, vec![3]),
        (7, 1, vec![2]),
        (7, 2, vec![5]),
        (7, 3, vec![6]),
    ]);
    Database::from_rows(rows)
}

fn render(patterns: &[seqpat::Pattern]) -> Vec<String> {
    patterns
        .iter()
        .map(|p| format!("{}:{}", p, p.support))
        .collect()
}

const ALGORITHMS: [Algorithm; 3] = [
    Algorithm::AprioriAll,
    Algorithm::AprioriSome,
    Algorithm::DynamicSome { step: 2 },
];

const STRATEGIES: [CountingStrategy; 5] = [
    CountingStrategy::Direct,
    CountingStrategy::HashTree,
    CountingStrategy::Vertical,
    CountingStrategy::Bitmap,
    CountingStrategy::Auto,
];

#[test]
fn long_patterns_agree_across_strategies_and_threads() {
    let db = long_pattern_db();
    for algorithm in ALGORITHMS {
        let mut baseline: Option<Vec<String>> = None;
        for strategy in STRATEGIES {
            let mut counters: Option<(u64, u64)> = None;
            for threads in [1usize, 2, 4] {
                let config = MinerConfig::new(MinSupport::Count(5))
                    .algorithm(algorithm)
                    .counting(strategy)
                    .parallelism(Parallelism::threads(threads));
                let result = Miner::new(config).mine(&db);
                let rendered = render(&result.patterns);
                // The fixture's answer: the full 5-step sequence is maximal.
                assert!(
                    rendered.contains(&"<(1)(2)(3)(4)(5)>:5".to_string()),
                    "{algorithm} / {strategy} / {threads} threads found {rendered:?}"
                );
                let expected = baseline.get_or_insert_with(|| rendered.clone());
                assert_eq!(
                    &rendered, expected,
                    "{algorithm} / {strategy} / {threads} threads"
                );
                // Kernel counters are thread-invariant, and each index
                // strategy reaches exactly its own kernel.
                let stats = &result.stats;
                let expected_counters = *counters.get_or_insert((stats.join_ops, stats.sstep_ops));
                assert_eq!(
                    (stats.join_ops, stats.sstep_ops),
                    expected_counters,
                    "{algorithm} / {strategy}: counters changed with {threads} threads"
                );
                match strategy {
                    CountingStrategy::Vertical => {
                        assert!(
                            stats.join_ops > 0,
                            "{algorithm}: vertical never reached the join kernel"
                        );
                        assert!(stats.vertical_peak_bytes > 0);
                        assert_eq!(stats.sstep_ops, 0);
                    }
                    CountingStrategy::Bitmap => {
                        assert!(
                            stats.sstep_ops > 0,
                            "{algorithm}: bitmap never reached the S-step kernel"
                        );
                        assert!(stats.bitmap_words > 0);
                        assert_eq!(stats.join_ops, 0);
                    }
                    CountingStrategy::Auto => {
                        // Seven customers is far below the Auto floor: it
                        // must route to the hash tree and say why.
                        let d = stats.auto_decision.as_ref().expect("auto decision");
                        assert_eq!(d.choice, CountingStrategy::HashTree);
                        assert_eq!(d.customers, 7);
                        assert_eq!(stats.join_ops, 0);
                        assert_eq!(stats.sstep_ops, 0);
                    }
                    _ => {
                        assert_eq!(stats.join_ops, 0);
                        assert_eq!(stats.vertical_peak_bytes, 0);
                        assert_eq!(stats.sstep_ops, 0);
                        assert_eq!(stats.bitmap_words, 0);
                        assert!(stats.auto_decision.is_none());
                    }
                }
            }
        }
    }
}

/// Customers longer than 64 transactions span several `u64` words in the
/// bitmap layout; the pattern's steps sit at positions 2, 68, and 69, so
/// supporting it requires the S-step carry to cross the word seam. Every
/// strategy (and every thread count) must agree on the answer.
fn multi_word_db() -> Database {
    let mut rows = Vec::new();
    for customer in 1..=3u64 {
        for t in 0..70i64 {
            let item = match t {
                2 => 1u32,
                68 => 2,
                69 => 3,
                // Per-(customer, transaction) noise: never reaches support 3.
                _ => 100 + customer as u32 * 100 + t as u32,
            };
            rows.push((customer, t, vec![item]));
        }
    }
    Database::from_rows(rows)
}

#[test]
fn customers_longer_than_64_transactions_agree_across_strategies() {
    let db = multi_word_db();
    let expected = vec!["<(1)(2)(3)>:3".to_string()];
    for algorithm in ALGORITHMS {
        for strategy in STRATEGIES {
            for threads in [1usize, 2, 4] {
                let config = MinerConfig::new(MinSupport::Count(3))
                    .algorithm(algorithm)
                    .counting(strategy)
                    .parallelism(Parallelism::threads(threads));
                let result = Miner::new(config).mine(&db);
                assert_eq!(
                    render(&result.patterns),
                    expected,
                    "{algorithm} / {strategy} / {threads} threads"
                );
            }
        }
    }
}

#[test]
fn cache_cap_zero_still_gives_identical_answers() {
    // Disabling occurrence-list retention forces every pass to fold its
    // candidates from the base index — more joins, same supports.
    let db = long_pattern_db();
    let cached =
        Miner::new(MinerConfig::new(MinSupport::Count(5)).counting(CountingStrategy::Vertical))
            .mine(&db);
    let mut config = MinerConfig::new(MinSupport::Count(5)).counting(CountingStrategy::Vertical);
    config.vertical.cache_cap_bytes = 0;
    let uncached = Miner::new(config).mine(&db);
    assert_eq!(render(&cached.patterns), render(&uncached.patterns));
    assert!(
        uncached.stats.join_ops > cached.stats.join_ops,
        "folding from scratch must cost extra joins (cached {}, uncached {})",
        cached.stats.join_ops,
        uncached.stats.join_ops
    );
}
