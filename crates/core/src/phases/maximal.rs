//! Maximal phase (paper §3, phase 5): drop every large sequence contained
//! in another large sequence.
//!
//! Containment here is the full, subset-aware relation on itemset sequences
//! (lifted to id space through the [`LitemsetTable`]), because a sequence of
//! *smaller* litemsets is contained in a sequence of *larger* ones even when
//! no id matches: `⟨(30)(40)⟩ ⊑ ⟨(30)(40 70)⟩`.
//!
//! Complexity note: the paper sketches an S-tree/hash-tree based maximal
//! computation; at the scale of the final answer set (which is small
//! compared to the candidate space) the quadratic longest-first scan below
//! with a presence-bitmap prefilter is consistently cheap, and its
//! simplicity makes the correctness argument immediate.

use crate::contain::id_subsequence_with_subsets;
use crate::types::transformed::{LitemsetId, LitemsetTable};

/// A large sequence in id space with its support count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LargeIdSequence {
    /// The litemset ids, in sequence order.
    pub ids: Vec<LitemsetId>,
    /// Number of supporting customers.
    pub support: u64,
}

/// Returns the maximal elements of `large` under subset-aware containment.
///
/// Output keeps longest-first order (ties keep relative input order), which
/// is a convenient presentation order; callers re-sort as needed.
pub fn maximal_phase(
    mut large: Vec<LargeIdSequence>,
    table: &LitemsetTable,
) -> Vec<LargeIdSequence> {
    // Containers-first order: a container is longer, or — at equal length —
    // has at least as many total items (equal-length containment forces the
    // identity index mapping, hence element-wise subsets). Sorting by
    // (length, total items) descending therefore guarantees every container
    // precedes what it contains, so one forward scan suffices.
    let total_items =
        |s: &LargeIdSequence| -> usize { s.ids.iter().map(|&id| table.itemset(id).len()).sum() };
    large.sort_by_key(|a| std::cmp::Reverse((a.ids.len(), total_items(a))));
    let mut kept: Vec<LargeIdSequence> = Vec::new();
    'candidates: for cand in large {
        for keeper in &kept {
            if id_subsequence_with_subsets(&keeper.ids, &cand.ids, table) {
                continue 'candidates;
            }
        }
        kept.push(cand);
    }
    debug_assert!(is_antichain(&kept, table));
    kept
}

/// Debug check: no kept sequence is contained in another kept sequence.
fn is_antichain(kept: &[LargeIdSequence], table: &LitemsetTable) -> bool {
    for (i, a) in kept.iter().enumerate() {
        for (j, b) in kept.iter().enumerate() {
            if i != j && id_subsequence_with_subsets(&b.ids, &a.ids, table) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::itemset::Itemset;

    fn table() -> LitemsetTable {
        // 0=(30) 1=(40) 2=(40 70) 3=(70) 4=(90)
        LitemsetTable::new(vec![
            (Itemset::new(vec![30]), 4),
            (Itemset::new(vec![40]), 2),
            (Itemset::new(vec![40, 70]), 2),
            (Itemset::new(vec![70]), 3),
            (Itemset::new(vec![90]), 3),
        ])
    }

    fn seq(ids: Vec<u32>, support: u64) -> LargeIdSequence {
        LargeIdSequence { ids, support }
    }

    #[test]
    fn paper_answer_set() {
        // All large sequences at 25% in the paper's example; the maximal
        // ones are ⟨(30)(90)⟩ = [0,4] and ⟨(30)(40 70)⟩ = [0,2].
        let all = vec![
            seq(vec![0], 4),
            seq(vec![1], 2),
            seq(vec![2], 2),
            seq(vec![3], 3),
            seq(vec![4], 3),
            seq(vec![0, 1], 2),
            seq(vec![0, 2], 2),
            seq(vec![0, 3], 2),
            seq(vec![0, 4], 2),
        ];
        let max = maximal_phase(all, &table());
        let mut strs: Vec<Vec<u32>> = max.into_iter().map(|s| s.ids).collect();
        strs.sort();
        assert_eq!(strs, vec![vec![0, 2], vec![0, 4]]);
    }

    #[test]
    fn subset_awareness_prunes_across_ids() {
        // ⟨(40)⟩ is contained in ⟨(40 70)⟩ although ids differ.
        let max = maximal_phase(vec![seq(vec![1], 2), seq(vec![2], 2)], &table());
        assert_eq!(max.len(), 1);
        assert_eq!(max[0].ids, vec![2]);
    }

    #[test]
    fn equal_length_incomparable_sequences_all_kept() {
        let max = maximal_phase(vec![seq(vec![0, 4], 2), seq(vec![4, 0], 2)], &table());
        assert_eq!(max.len(), 2);
    }

    #[test]
    fn duplicates_collapse() {
        let max = maximal_phase(vec![seq(vec![0, 4], 2), seq(vec![0, 4], 2)], &table());
        assert_eq!(max.len(), 1);
    }

    #[test]
    fn empty_input() {
        assert!(maximal_phase(vec![], &table()).is_empty());
    }
}
