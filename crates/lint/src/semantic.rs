//! The three call-graph / AST driven rules.
//!
//! These run over the whole parsed workspace at once (unlike the per-file
//! lexical rules in [`crate::rules`]): transitive panic reachability walks
//! the call graph from the kernel entry points, the hot-loop allocation
//! rule uses the parser's loop-scope nesting, and the exhaustive-match rule
//! cross-references `match` arms against the workspace's own enum
//! declarations. The fourth semantic rule, `stale-suppression`, lives in
//! the engine because it is defined by what the other rules did (not) do.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::parser::ParsedFile;
use crate::rules::{self, Violation};

/// Enums whose dispatch sites must stay exhaustive: adding a variant has to
/// fail lint at every `match` until the new case is handled explicitly.
pub const TARGET_ENUMS: &[&str] = &["CountingStrategy", "Parallelism", "Algorithm"];

/// Rule: transitive-panic-reachability.
///
/// Entry points are all non-test fns defined in kernel files. Any panic
/// construct in a *non*-kernel fn reachable from an entry point is flagged
/// (panic sites inside kernel files themselves are the lexical rule's
/// domain — reporting them here too would double-count every finding).
/// `absorb(path, line)` is consulted per panic site; returning `true`
/// (a valid suppression covers the site) silences it.
pub fn transitive_panic(
    files: &[ParsedFile],
    graph: &CallGraph,
    mut absorb: impl FnMut(&str, u32) -> bool,
) -> Vec<Violation> {
    let entries = graph.nodes_where(|fi, _| rules::is_kernel_path(&files[fi].path));
    let parents = graph.reachable_with_parents(&entries);
    let mut out = Vec::new();
    for &node in parents.keys() {
        let (fi, gi) = graph.nodes[node];
        let file = &files[fi];
        if rules::is_kernel_path(&file.path) {
            continue;
        }
        let f = &file.fns[gi];
        for p in &f.panics {
            if absorb(&file.path, p.line) {
                continue;
            }
            let chain = graph.chain(files, &parents, node);
            out.push(Violation {
                path: file.path.clone(),
                line: p.line,
                rule: rules::TRANSITIVE_PANIC_REACHABILITY,
                message: format!(
                    "{} in `{}` is reachable from kernel code ({chain}); \
                     restructure, or suppress at this site with a justification",
                    p.what, f.name
                ),
            });
        }
    }
    out
}

/// Rule: no-alloc-in-hot-loop.
///
/// Allocation sites whose smallest enclosing loop scope (lexical loop or
/// closure body) is innermost, in non-test fns of kernel files.
pub fn no_alloc_in_hot_loop(files: &[ParsedFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in files {
        if !rules::is_kernel_path(&file.path) {
            continue;
        }
        for f in &file.fns {
            if f.is_test {
                continue;
            }
            for a in &f.allocs {
                if !a.in_innermost_loop {
                    continue;
                }
                out.push(Violation {
                    path: file.path.clone(),
                    line: a.line,
                    rule: rules::NO_ALLOC_IN_HOT_LOOP,
                    message: format!(
                        "{} in the innermost loop of kernel fn `{}`; hoist into a \
                         reusable scratch buffer, or suppress with a justification",
                        a.what, f.name
                    ),
                });
            }
        }
    }
    out
}

/// Rule: exhaustive-strategy-match.
///
/// A `match` is *targeted* when any arm pattern's leading path starts with
/// one of [`TARGET_ENUMS`] (or `Self` inside an impl of one). A targeted
/// match must name every variant of that enum and must not have a
/// wildcard/binding catch-all arm.
pub fn exhaustive_strategy_match(files: &[ParsedFile]) -> Vec<Violation> {
    // Variant lists come from the workspace's own enum declarations, so the
    // rule stays self-contained (fixtures declare their own mini-enums).
    let mut variants: BTreeMap<&str, &[String]> = BTreeMap::new();
    for file in files {
        for e in &file.enums {
            if TARGET_ENUMS.contains(&e.name.as_str()) {
                variants.insert(e.name.as_str(), &e.variants);
            }
        }
    }
    let mut out = Vec::new();
    for file in files {
        for f in &file.fns {
            if f.is_test {
                continue;
            }
            for m in &f.matches {
                let target = m.arms.iter().find_map(|arm| {
                    let h0 = arm.head.first()?;
                    if arm.head.len() < 2 {
                        return None;
                    }
                    if variants.contains_key(h0.as_str()) {
                        return Some(h0.as_str());
                    }
                    if h0 == "Self" {
                        let it = f.impl_type.as_deref()?;
                        if variants.contains_key(it) {
                            return Some(it);
                        }
                    }
                    None
                });
                let Some(enum_name) = target else { continue };
                let vars = variants[enum_name];
                let named: BTreeSet<&str> = m
                    .arms
                    .iter()
                    .filter(|arm| {
                        arm.head.len() >= 2 && (arm.head[0] == enum_name || arm.head[0] == "Self")
                    })
                    .map(|arm| arm.head[1].as_str())
                    .collect();
                if let Some(wild) = m.arms.iter().find(|a| a.wildcard) {
                    out.push(Violation {
                        path: file.path.clone(),
                        line: wild.line.max(m.line),
                        rule: rules::EXHAUSTIVE_STRATEGY_MATCH,
                        message: format!(
                            "match on `{enum_name}` in `{}` has a catch-all arm; name \
                             every variant so adding one fails lint at this dispatch site",
                            f.name
                        ),
                    });
                    continue;
                }
                let missing: Vec<&str> = vars
                    .iter()
                    .map(String::as_str)
                    .filter(|v| !named.contains(v))
                    .collect();
                if !missing.is_empty() {
                    out.push(Violation {
                        path: file.path.clone(),
                        line: m.line,
                        rule: rules::EXHAUSTIVE_STRATEGY_MATCH,
                        message: format!(
                            "match on `{enum_name}` in `{}` does not name variant(s) {}; \
                             handle them explicitly",
                            f.name,
                            missing
                                .iter()
                                .map(|v| format!("`{v}`"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn parsed(sources: &[(&str, &str)]) -> Vec<ParsedFile> {
        sources.iter().map(|(p, s)| parse_file(p, s)).collect()
    }

    #[test]
    fn transitive_chain_is_caught_and_kernel_sites_are_not_double_reported() {
        let files = parsed(&[
            (
                "crates/core/src/counting.rs",
                "pub fn count_supports() { helper(); local.unwrap(); }\n",
            ),
            (
                "crates/core/src/helpers.rs",
                "pub fn helper() { x.unwrap(); }\n",
            ),
        ]);
        let g = CallGraph::build(&files);
        let v = transitive_panic(&files, &g, |_, _| false);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].path, "crates/core/src/helpers.rs");
        assert!(v[0].message.contains("count_supports -> helper"));
    }

    #[test]
    fn unreachable_panics_are_not_flagged() {
        let files = parsed(&[
            (
                "crates/core/src/counting.rs",
                "pub fn count_supports() {}\n",
            ),
            (
                "crates/core/src/misc.rs",
                "pub fn island() { x.unwrap(); }\n",
            ),
        ]);
        let g = CallGraph::build(&files);
        assert!(transitive_panic(&files, &g, |_, _| false).is_empty());
    }

    #[test]
    fn absorbed_sites_are_silenced() {
        let files = parsed(&[
            ("crates/core/src/counting.rs", "pub fn k() { helper(); }\n"),
            (
                "crates/core/src/helpers.rs",
                "pub fn helper() { x.unwrap(); }\n",
            ),
        ]);
        let g = CallGraph::build(&files);
        let mut asked = Vec::new();
        let v = transitive_panic(&files, &g, |p, l| {
            asked.push((p.to_string(), l));
            true
        });
        assert!(v.is_empty());
        assert_eq!(asked.len(), 1);
    }

    #[test]
    fn hot_loop_allocs_fire_only_in_kernel_files() {
        let src = "fn f(n: usize) { for i in 0..n { let v = vec![i]; } }\n";
        let kernel = parsed(&[("crates/core/src/vertical.rs", src)]);
        assert_eq!(no_alloc_in_hot_loop(&kernel).len(), 1);
        let plain = parsed(&[("crates/core/src/miner.rs", src)]);
        assert!(no_alloc_in_hot_loop(&plain).is_empty());
    }

    #[test]
    fn wildcard_match_on_a_target_enum_fires() {
        let files = parsed(&[(
            "x.rs",
            r#"
pub enum CountingStrategy { Direct, HashTree, Vertical }
fn dispatch(s: CountingStrategy) -> u32 {
    match s {
        CountingStrategy::Direct => 1,
        _ => 0,
    }
}
"#,
        )]);
        let v = exhaustive_strategy_match(&files);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("catch-all"));
    }

    #[test]
    fn missing_variant_fires_and_full_match_is_clean() {
        let files = parsed(&[(
            "x.rs",
            r#"
pub enum Algorithm { All, SomeA, Dynamic }
fn partial(a: Algorithm) -> u32 {
    match a {
        Algorithm::All => 1,
        Algorithm::SomeA => 2,
    }
}
fn full(a: Algorithm) -> u32 {
    match a {
        Algorithm::All => 1,
        Algorithm::SomeA => 2,
        Algorithm::Dynamic => 3,
    }
}
"#,
        )]);
        let v = exhaustive_strategy_match(&files);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("`Dynamic`"));
    }

    #[test]
    fn option_wrapped_matches_are_not_targeted() {
        let files = parsed(&[(
            "x.rs",
            r#"
pub enum Parallelism { Serial, Auto }
fn f(p: Option<Parallelism>) -> u32 {
    match p {
        Some(x) => 1,
        None => 0,
    }
}
"#,
        )]);
        assert!(exhaustive_strategy_match(&files).is_empty());
    }

    #[test]
    fn self_matches_inside_the_enum_impl_are_targeted() {
        let files = parsed(&[(
            "x.rs",
            r#"
pub enum Parallelism { Serial, Auto }
impl Parallelism {
    fn n(&self) -> u32 {
        match self {
            Self::Serial => 1,
        }
    }
}
"#,
        )]);
        let v = exhaustive_strategy_match(&files);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("`Auto`"));
    }
}
