//! Fixture kernel file (kernel basename): entry points for the seeded
//! transitive-panic chain, one hoisted loop that must stay silent, one
//! innermost-loop allocation that must fire, and an exhaustive match.

use crate::recurse::ping as trace_ping;
use crate::strategy::CountingStrategy;
use crate::support::resolve_support as seeded_resolve;

/// Reaches the seeded `unwrap` through the `pub use` in `prelude`.
pub fn count_pass(xs: &[u32]) -> u64 {
    crate::prelude::resolve_support(xs)
}

/// Reaches the same chain through a `use … as …` alias.
pub fn count_pass_aliased(xs: &[u32]) -> u64 {
    seeded_resolve(xs)
}

/// Reaches the `println!` inside the ping/pong SCC through a `use … as …`
/// alias: the rename must not break effect propagation into the cycle.
pub fn count_traced(n: u32) -> u64 {
    trace_ping(n)
}

/// Reaches the seeded unwrap through the prelude re-export of `via` plus
/// the method-call hop inside it.
pub fn count_hopped(v: u64) -> u64 {
    crate::prelude::via(v)
}

pub fn accumulate(xs: &[u32]) -> usize {
    // Hoisted: the buffer is bound at fn scope, pushes inside the loop
    // grow a pre-existing vector and must stay silent.
    let mut out = Vec::new();
    for &x in xs {
        out.push(x);
    }
    let mut total = 0;
    for &x in xs {
        let mut scratch = Vec::new(); // seeded: fresh alloc per iteration
        scratch.push(x);
        total += scratch.len();
    }
    total + out.len()
}

/// Names every variant: the exhaustive-match rule must stay silent here.
pub fn dispatch(strategy: CountingStrategy) -> &'static str {
    match strategy {
        CountingStrategy::Direct => "direct",
        CountingStrategy::HashTree => "hash-tree",
        CountingStrategy::Vertical => "vertical",
        CountingStrategy::Bitmap => "bitmap",
        CountingStrategy::Auto => "auto",
    }
}
