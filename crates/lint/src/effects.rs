//! Interprocedural effect inference over the workspace call graph.
//!
//! For every non-test `fn` the engine computes a monotone *effect set* —
//! which of [`Effect`]'s six elements the fn may exhibit, directly or
//! through any call chain. Inference is a bottom-up fixpoint over the
//! condensation of [`crate::callgraph::CallGraph`] into strongly connected
//! components (iterative Tarjan, deterministic order): Tarjan emits SCCs
//! callee-first, so a single pass in emission order reaches the fixpoint,
//! with recursion handled by joining every member's intrinsic effects and
//! cross-SCC successors at the component level.
//!
//! Each effect is tracked on two parallel lattices:
//!
//! * `inferred` — the effect reaches the fn from *any* intrinsic site;
//! * `inferred_unsanctioned` — it reaches the fn from an intrinsic site
//!   *outside* the effect's sanctioned zone (stats.rs for wall-clock, the
//!   I/O layer for I/O; see `rules::is_*_sanctioned_path`).
//!
//! The split is what keeps suppression site-granular: a kernel calling
//! `Stopwatch::start` gets a *boundary* finding at its own call line
//! (callee carries the effect, but only from sanctioned sites), while a
//! stray `Instant::now()` in a helper gets a *source-site* finding at the
//! helper line. Suppressing one chain never silences the others.
//!
//! Witness chains are hop-minimal: a reverse multi-source BFS per effect
//! (sources = intrinsic holders, ascending; adjacency sorted) gives every
//! fn its nearest intrinsic site and next hop toward it, so ties break
//! deterministically and `effects.json` is byte-identical across runs.

use crate::callgraph::CallGraph;
use crate::parser::ParsedFile;
use crate::rules;

/// One element of the effect lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Effect {
    /// May panic (`unwrap`/`expect`/panic-family macro).
    Panics,
    /// May allocate (vec!/collect/clone/Type::new/loop-local growth).
    Allocates,
    /// May perform file or stdio I/O.
    DoesIo,
    /// May read the wall clock (`Instant`/`SystemTime`/`.elapsed()`).
    WallClock,
    /// May spawn a thread.
    Spawns,
    /// May construct or acquire a lock (`Mutex`/`RwLock`/`.lock()`).
    Locks,
}

impl Effect {
    /// Every effect, in bit/serialization order.
    pub const ALL: [Effect; 6] = [
        Effect::Panics,
        Effect::Allocates,
        Effect::DoesIo,
        Effect::WallClock,
        Effect::Spawns,
        Effect::Locks,
    ];

    fn bit(self) -> u8 {
        match self {
            Effect::Panics => 1,
            Effect::Allocates => 1 << 1,
            Effect::DoesIo => 1 << 2,
            Effect::WallClock => 1 << 3,
            Effect::Spawns => 1 << 4,
            Effect::Locks => 1 << 5,
        }
    }

    /// Lowercase kebab name, as serialized in `effects.json`.
    pub fn name(self) -> &'static str {
        match self {
            Effect::Panics => "panics",
            Effect::Allocates => "allocates",
            Effect::DoesIo => "does-io",
            Effect::WallClock => "wall-clock",
            Effect::Spawns => "spawns",
            Effect::Locks => "locks",
        }
    }

    /// Sanctioned zone of this effect: intrinsic sites in such files carry
    /// the effect on the `inferred` lattice only, not `unsanctioned`.
    fn sanctioned_in(self, path: &str) -> bool {
        match self {
            Effect::DoesIo => rules::is_io_sanctioned_path(path),
            Effect::WallClock => rules::is_clock_sanctioned_path(path),
            // Panics, allocation, spawns, and locks have no sanctioned
            // zone: wherever the site is, the effect is "real" there.
            Effect::Panics | Effect::Allocates | Effect::Spawns | Effect::Locks => false,
        }
    }
}

/// A subset of the six effects; join is bitwise-or (a finite lattice, so
/// the SCC fixpoint terminates trivially).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EffectSet(u8);

impl EffectSet {
    /// The empty set (lattice bottom).
    pub fn empty() -> EffectSet {
        EffectSet(0)
    }

    /// True if `e` is in the set.
    pub fn contains(self, e: Effect) -> bool {
        self.0 & e.bit() != 0
    }

    /// Adds `e`.
    pub fn insert(&mut self, e: Effect) {
        self.0 |= e.bit();
    }

    /// Lattice join (set union).
    pub fn join(&mut self, other: EffectSet) {
        self.0 |= other.0;
    }

    /// True when no effect is present.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Members in [`Effect::ALL`] order.
    pub fn iter(self) -> impl Iterator<Item = Effect> {
        Effect::ALL.into_iter().filter(move |e| self.contains(*e))
    }
}

/// One intrinsic effect site: the line where a fn exhibits an effect
/// directly (not through a call).
#[derive(Debug)]
pub struct Site {
    /// Call-graph node the site belongs to.
    pub node: usize,
    /// Which effect.
    pub effect: Effect,
    /// 1-based line.
    pub line: u32,
    /// Human-readable construct, e.g. "`Instant::now()`".
    pub what: String,
    /// True when the site's file is inside the effect's sanctioned zone.
    pub sanctioned: bool,
}

/// Inference result over one call graph.
pub struct EffectTable {
    /// Per node: effects from the node's own sites.
    pub intrinsic: Vec<EffectSet>,
    /// Per node: intrinsic effects from unsanctioned sites only.
    pub intrinsic_unsanctioned: Vec<EffectSet>,
    /// Per node: the fixpoint — effects reachable through any call chain.
    pub inferred: Vec<EffectSet>,
    /// Per node: the fixpoint over unsanctioned sites only.
    pub inferred_unsanctioned: Vec<EffectSet>,
    /// Every intrinsic site, ordered by (node, effect, line).
    pub sites: Vec<Site>,
    /// SCCs in Tarjan emission order (callees before callers).
    pub sccs: Vec<Vec<usize>>,
    /// Per effect (in `Effect::ALL` order), per node: the next hop toward
    /// the nearest intrinsic holder (`node` itself when intrinsic;
    /// `usize::MAX` when the effect is absent).
    next_hop: [Vec<usize>; 6],
}

/// Method names that perform I/O when they do not resolve to a workspace
/// fn (then the effect flows through the resolved callee instead).
const IO_METHODS: &[&str] = &[
    "read",
    "write",
    "read_exact",
    "read_exact_at",
    "write_all",
    "write_fmt",
    "read_to_end",
    "read_to_string",
    "read_line",
    "flush",
    "seek",
    "rewind",
    "sync_all",
    "set_len",
];

/// Path qualifiers that mark a call as I/O regardless of the method name
/// (`File::open`, `fs::read`, `io::stdout`, …).
const IO_QUALIFIERS: &[&str] = &["File", "OpenOptions", "fs", "io"];

/// Path qualifiers that mark a call as a wall-clock read.
const CLOCK_QUALIFIERS: &[&str] = &["Instant", "SystemTime"];

/// Path qualifiers that mark a call as lock construction/acquisition.
const LOCK_QUALIFIERS: &[&str] = &["Mutex", "RwLock", "Condvar"];

/// Runs the full inference: intrinsic classification, Tarjan condensation,
/// and the bottom-up fixpoint on both lattices.
pub fn infer(files: &[ParsedFile], graph: &CallGraph) -> EffectTable {
    let n = graph.nodes.len();
    let mut intrinsic = vec![EffectSet::empty(); n];
    let mut intrinsic_unsanctioned = vec![EffectSet::empty(); n];
    let mut sites: Vec<Site> = Vec::new();

    for (node, &(fi, gi)) in graph.nodes.iter().enumerate() {
        let path = files[fi].path.as_str();
        let f = &files[fi].fns[gi];
        let mut add = |effect: Effect, line: u32, what: String| {
            let sanctioned = effect.sanctioned_in(path);
            intrinsic[node].insert(effect);
            if !sanctioned {
                intrinsic_unsanctioned[node].insert(effect);
            }
            sites.push(Site {
                node,
                effect,
                line,
                what,
                sanctioned,
            });
        };
        for p in &f.panics {
            add(Effect::Panics, p.line, p.what.clone());
        }
        for a in &f.allocs {
            add(Effect::Allocates, a.line, a.what.clone());
        }
        for io in &f.ios {
            add(Effect::DoesIo, io.line, io.what.clone());
        }
        for (ci, c) in f.calls.iter().enumerate() {
            let unresolved = graph.resolved_targets(node, ci).is_empty();
            let qual = c.path.last().map(String::as_str);
            let rendered = || {
                if c.is_method {
                    format!("`.{}()`", c.name)
                } else if let Some(q) = qual {
                    format!("`{q}::{}()`", c.name)
                } else {
                    format!("`{}()`", c.name)
                }
            };
            if c.name == "spawn" {
                add(Effect::Spawns, c.line, rendered());
            }
            if (c.is_method && c.name == "lock")
                || qual.is_some_and(|q| LOCK_QUALIFIERS.contains(&q))
            {
                add(Effect::Locks, c.line, rendered());
            }
            // `.elapsed()` is always intrinsic, resolved or not: resolving
            // it to `Stopwatch::elapsed` (whose own body is again
            // `.elapsed()`, a self-loop) would otherwise lose the effect.
            if qual.is_some_and(|q| CLOCK_QUALIFIERS.contains(&q))
                || (c.is_method && c.name == "elapsed")
            {
                add(Effect::WallClock, c.line, rendered());
            }
            let io_shaped = c.path.iter().any(|s| IO_QUALIFIERS.contains(&s.as_str()))
                || IO_METHODS.contains(&c.name.as_str());
            if io_shaped && unresolved {
                add(Effect::DoesIo, c.line, rendered());
            }
        }
    }
    sites.sort_by_key(|a| (a.node, a.effect, a.line));

    let sccs = tarjan_sccs(graph);

    // Bottom-up fixpoint. Tarjan emits SCCs callee-first, so by the time a
    // component is processed every cross-component successor is final; the
    // component-level join handles cycles in one step.
    let mut inferred = intrinsic.clone();
    let mut inferred_unsanctioned = intrinsic_unsanctioned.clone();
    let mut scc_of = vec![usize::MAX; n];
    for (si, scc) in sccs.iter().enumerate() {
        for &m in scc {
            scc_of[m] = si;
        }
    }
    for (si, scc) in sccs.iter().enumerate() {
        let mut all = EffectSet::empty();
        let mut uns = EffectSet::empty();
        for &m in scc {
            all.join(intrinsic[m]);
            uns.join(intrinsic_unsanctioned[m]);
            for &e in graph.edges_of(m) {
                if scc_of[e] != si {
                    all.join(inferred[e]);
                    uns.join(inferred_unsanctioned[e]);
                }
            }
        }
        for &m in scc {
            inferred[m] = all;
            inferred_unsanctioned[m] = uns;
        }
    }

    // Witness next-hop tables: one reverse multi-source BFS per effect from
    // the intrinsic holders (on the `inferred` lattice, sanctioned sites
    // included — a witness chain must exist whenever the effect does).
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for node in 0..n {
        for &e in graph.edges_of(node) {
            rev[e].push(node);
        }
    }
    for r in &mut rev {
        r.sort_unstable();
        r.dedup();
    }
    let next_hop = Effect::ALL.map(|effect| {
        let mut hop = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for node in 0..n {
            if intrinsic[node].contains(effect) {
                hop[node] = node;
                queue.push_back(node);
            }
        }
        while let Some(node) = queue.pop_front() {
            for &caller in &rev[node] {
                if hop[caller] == usize::MAX {
                    hop[caller] = node;
                    queue.push_back(caller);
                }
            }
        }
        hop
    });

    EffectTable {
        intrinsic,
        intrinsic_unsanctioned,
        inferred,
        inferred_unsanctioned,
        sites,
        sccs,
        next_hop,
    }
}

impl EffectTable {
    /// Hop-minimal witness chain from `node` to the nearest intrinsic site
    /// of `effect`, rendered as
    /// `"a -> b -> c (`what` at path:line)"`. `None` when absent.
    pub fn witness(
        &self,
        files: &[ParsedFile],
        graph: &CallGraph,
        node: usize,
        effect: Effect,
    ) -> Option<String> {
        let ei = Effect::ALL.iter().position(|&e| e == effect)?;
        let hops = &self.next_hop[ei];
        if hops.get(node).copied().unwrap_or(usize::MAX) == usize::MAX {
            return None;
        }
        let mut names: Vec<&str> = Vec::new();
        let mut at = node;
        loop {
            let (fi, gi) = graph.nodes[at];
            names.push(files[fi].fns[gi].name.as_str());
            let next = hops[at];
            if next == at {
                break;
            }
            at = next;
        }
        let (fi, _) = graph.nodes[at];
        let site = self
            .sites
            .iter()
            .find(|s| s.node == at && s.effect == effect)?;
        Some(format!(
            "{} ({} at {}:{})",
            names.join(" -> "),
            site.what,
            files[fi].path,
            site.line
        ))
    }
}

/// Iterative Tarjan over nodes in index order with sorted adjacency: the
/// SCC partition *and* its emission order are deterministic, and emission
/// order is callee-first (reverse topological over the condensation).
fn tarjan_sccs(graph: &CallGraph) -> Vec<Vec<usize>> {
    let n = graph.nodes.len();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS frames: (node, next edge position).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        frames.push((start, 0));
        while let Some(&(v, ei)) = frames.last() {
            if ei == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = graph.edges_of(v).get(ei) {
                frames.last_mut().expect("frame just read").1 += 1;
                if index[w] == UNSET {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

/// Renders the deterministic `effects.json` artifact: one entry per call
/// graph node in node order, with inferred/unsanctioned/intrinsic effect
/// lists and one witness chain per inferred effect. Pure function of the
/// parsed workspace — byte-identical across runs.
pub fn to_json(files: &[ParsedFile], graph: &CallGraph, table: &EffectTable) -> String {
    let esc = crate::engine::json_escape;
    let list = |set: EffectSet| -> String {
        set.iter()
            .map(|e| format!("\"{}\"", e.name()))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"seqpat-effects-v1\",\n");
    s.push_str(&format!("  \"functions\": {},\n", graph.nodes.len()));
    s.push_str(&format!("  \"sccs\": {},\n", table.sccs.len()));
    s.push_str("  \"fns\": [");
    for (node, &(fi, gi)) in graph.nodes.iter().enumerate() {
        let f = &files[fi].fns[gi];
        if node > 0 {
            s.push(',');
        }
        s.push_str("\n    {");
        s.push_str(&format!("\"path\": \"{}\", ", esc(&files[fi].path)));
        s.push_str(&format!("\"fn\": \"{}\", ", esc(&f.name)));
        match &f.impl_type {
            Some(t) => s.push_str(&format!("\"impl\": \"{}\", ", esc(t))),
            None => s.push_str("\"impl\": null, "),
        }
        s.push_str(&format!("\"line\": {}, ", f.line));
        s.push_str(&format!("\"effects\": [{}], ", list(table.inferred[node])));
        s.push_str(&format!(
            "\"unsanctioned\": [{}], ",
            list(table.inferred_unsanctioned[node])
        ));
        s.push_str(&format!("\"intrinsic\": [{}]", list(table.intrinsic[node])));
        let witnesses: Vec<String> = table.inferred[node]
            .iter()
            .filter_map(|e| {
                table
                    .witness(files, graph, node, e)
                    .map(|w| format!("\"{}\": \"{}\"", e.name(), esc(&w)))
            })
            .collect();
        if witnesses.is_empty() {
            s.push('}');
        } else {
            s.push_str(&format!(", \"witness\": {{{}}}}}", witnesses.join(", ")));
        }
    }
    if !graph.nodes.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn setup(sources: &[(&str, &str)]) -> (Vec<ParsedFile>, CallGraph, EffectTable) {
        let files: Vec<ParsedFile> = sources.iter().map(|(p, s)| parse_file(p, s)).collect();
        let graph = CallGraph::build(&files);
        let table = infer(&files, &graph);
        (files, graph, table)
    }

    fn node(files: &[ParsedFile], g: &CallGraph, name: &str) -> usize {
        g.nodes
            .iter()
            .position(|&(fi, gi)| files[fi].fns[gi].name == name)
            .unwrap()
    }

    #[test]
    fn effects_propagate_up_call_chains() {
        let (files, g, t) = setup(&[
            ("a.rs", "pub fn top() { mid(); }\n"),
            ("b.rs", "pub fn mid() { leaf(); }\n"),
            ("c.rs", "pub fn leaf() { x.unwrap(); let v = vec![1]; }\n"),
        ]);
        let top = node(&files, &g, "top");
        assert!(t.inferred[top].contains(Effect::Panics));
        assert!(t.inferred[top].contains(Effect::Allocates));
        assert!(t.intrinsic[top].is_empty());
    }

    #[test]
    fn mutual_recursion_converges_via_scc_join() {
        let (files, g, t) = setup(&[(
            "a.rs",
            "pub fn ping(n: u32) -> u32 { if n == 0 { println!(\"hi\"); 0 } else { pong(n) } }\n\
             pub fn pong(n: u32) -> u32 { ping(n - 1) }\n",
        )]);
        let ping = node(&files, &g, "ping");
        let pong = node(&files, &g, "pong");
        // Both halves of the cycle carry the I/O effect; only ping is
        // intrinsic. The pair forms one SCC.
        assert!(t.inferred[ping].contains(Effect::DoesIo));
        assert!(t.inferred[pong].contains(Effect::DoesIo));
        assert!(t.intrinsic[ping].contains(Effect::DoesIo));
        assert!(!t.intrinsic[pong].contains(Effect::DoesIo));
        assert!(t.sccs.iter().any(|s| s.len() == 2));
        // A witness exists from inside the cycle and terminates.
        let w = t.witness(&files, &g, pong, Effect::DoesIo).unwrap();
        assert!(w.starts_with("pong -> ping (`println!` at a.rs:"), "{w}");
    }

    #[test]
    fn sanctioned_sites_split_the_lattices() {
        let (files, g, t) = setup(&[
            (
                "crates/itemset/src/stats.rs",
                "impl Stopwatch { pub fn start() -> Stopwatch { Instant::now(); Stopwatch } }\n",
            ),
            (
                "crates/core/src/vertical.rs",
                "pub fn build_slice() { Stopwatch::start(); }\n",
            ),
        ]);
        let b = node(&files, &g, "build_slice");
        assert!(t.inferred[b].contains(Effect::WallClock));
        assert!(!t.inferred_unsanctioned[b].contains(Effect::WallClock));
    }

    #[test]
    fn elapsed_is_intrinsic_despite_self_resolution() {
        let (files, g, t) = setup(&[(
            "crates/itemset/src/stats.rs",
            "impl Stopwatch { pub fn elapsed(&self) -> u64 { self.started.elapsed() } }\n",
        )]);
        let e = node(&files, &g, "elapsed");
        assert!(t.intrinsic[e].contains(Effect::WallClock));
    }

    #[test]
    fn unresolved_io_methods_are_intrinsic_but_resolved_ones_flow() {
        let (files, g, t) = setup(&[
            (
                "crates/io/src/readat.rs",
                "impl ReadAt { pub fn read_exact_at(&self, o: u64) { \
                 std::os::unix::fs::FileExt::read_exact_at(&self.file, o); } }\n",
            ),
            (
                "crates/io/src/colstore.rs",
                "pub fn load_shard(r: &ReadAt) { r.read_exact_at(0); }\n",
            ),
        ]);
        let ra = node(&files, &g, "read_exact_at");
        let ls = node(&files, &g, "load_shard");
        // The fs-qualified full-path call is the intrinsic site; the method
        // call in load_shard resolves to it and only inherits the effect.
        assert!(t.intrinsic[ra].contains(Effect::DoesIo));
        assert!(!t.intrinsic[ls].contains(Effect::DoesIo));
        assert!(t.inferred[ls].contains(Effect::DoesIo));
        // Both are in the sanctioned zone.
        assert!(!t.inferred_unsanctioned[ls].contains(Effect::DoesIo));
    }

    #[test]
    fn spawns_and_locks_are_classified() {
        let (files, g, t) = setup(&[(
            "crates/itemset/src/parallel.rs",
            "pub fn map_chunks() { std::thread::scope(|s| { s.spawn(|| work()); }); }\n\
             pub fn guarded() { let m = Mutex::new(0); m.lock(); }\n",
        )]);
        let mc = node(&files, &g, "map_chunks");
        let gd = node(&files, &g, "guarded");
        assert!(t.intrinsic[mc].contains(Effect::Spawns));
        assert!(t.intrinsic[gd].contains(Effect::Locks));
        assert!(!t.intrinsic[mc].contains(Effect::Locks));
    }

    #[test]
    fn effects_json_is_deterministic_and_names_effects() {
        let sources = [
            ("a.rs", "pub fn top() { leaf(); }\n"),
            ("b.rs", "pub fn leaf() { x.unwrap(); }\n"),
        ];
        let (files, g, t) = setup(&sources);
        let j1 = to_json(&files, &g, &t);
        let (files2, g2, t2) = setup(&sources);
        let j2 = to_json(&files2, &g2, &t2);
        assert_eq!(j1, j2);
        assert!(j1.contains("\"fn\": \"top\""));
        assert!(j1.contains("\"effects\": [\"panics\"]"));
        assert!(j1.contains("top -> leaf (`.unwrap()` at b.rs:1)"));
    }
}
