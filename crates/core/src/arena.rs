//! Flat candidate storage for the counting passes.
//!
//! Every algorithm in this crate counts candidates one length at a time, so
//! a pass's candidate set is a rectangular table of litemset ids. Storing it
//! as `Vec<Vec<LitemsetId>>` costs one heap allocation per candidate and
//! scatters the ids across the heap; the [`CandidateArena`] keeps the whole
//! pass in **one** flat buffer (row-major, `candidate_len` ids per row) so
//! the counting kernels stream over contiguous memory and candidate sets can
//! be built, cloned, and binary-searched without per-row allocation.
//!
//! Rows are `&[LitemsetId]` slices into the buffer; ordering (for the
//! apriori join's prefix blocks and for [`CandidateArena::binary_search`])
//! is the usual lexicographic order on rows, which coincides with the order
//! of the flat buffer because all rows share one length.

use crate::cast::w64;
use crate::types::transformed::LitemsetId;

/// A set of equal-length candidate id-sequences in one flat buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CandidateArena {
    ids: Vec<LitemsetId>,
    len: usize,
}

impl CandidateArena {
    /// An empty arena whose rows will have `candidate_len` ids each.
    pub fn new(candidate_len: usize) -> Self {
        Self {
            ids: Vec::new(),
            len: candidate_len,
        }
    }

    /// Like [`CandidateArena::new`] with room for `rows` candidates.
    pub fn with_capacity(candidate_len: usize, rows: usize) -> Self {
        Self {
            ids: Vec::with_capacity(candidate_len * rows),
            len: candidate_len,
        }
    }

    /// Builds an arena from an iterator of rows (each of length
    /// `candidate_len`).
    pub fn from_rows<'a>(
        candidate_len: usize,
        rows: impl IntoIterator<Item = &'a [LitemsetId]>,
    ) -> Self {
        let mut arena = Self::new(candidate_len);
        for row in rows {
            arena.push(row);
        }
        arena
    }

    /// Appends one candidate.
    pub fn push(&mut self, row: &[LitemsetId]) {
        debug_assert_eq!(row.len(), self.len, "row length mismatch");
        self.ids.extend_from_slice(row);
    }

    /// Number of ids per candidate.
    pub fn candidate_len(&self) -> usize {
        self.len
    }

    /// Number of candidates stored.
    pub fn num_candidates(&self) -> usize {
        self.ids.len().checked_div(self.len).unwrap_or(0)
    }

    /// True when no candidates are stored.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The `i`-th candidate.
    pub fn get(&self, i: usize) -> &[LitemsetId] {
        debug_assert!(i < self.num_candidates(), "candidate index in range");
        &self.ids[i * self.len..(i + 1) * self.len]
    }

    /// Iterates over the candidates in storage order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[LitemsetId]> + Clone {
        // `max(1)` keeps `chunks_exact` legal for a default (len 0) arena,
        // which is necessarily empty and yields nothing either way.
        self.ids.chunks_exact(self.len.max(1))
    }

    /// Binary search for `row` over lexicographically sorted rows.
    pub fn binary_search(&self, row: &[LitemsetId]) -> Result<usize, usize> {
        debug_assert_eq!(row.len(), self.len);
        let n = self.num_candidates();
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.get(mid).cmp(row) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// True when the rows are sorted ascending and duplicate-free.
    pub fn is_sorted_unique(&self) -> bool {
        (1..self.num_candidates()).all(|i| self.get(i - 1) < self.get(i))
    }

    /// Heap bytes held by the id buffer.
    pub fn bytes(&self) -> u64 {
        w64(self.ids.len() * std::mem::size_of::<LitemsetId>())
    }

    /// Maximal runs `(start, end)` of consecutive candidates sharing their
    /// length-`len-1` prefix. The counting kernels schedule each run whole,
    /// so a prefix's fold/smear work is never split across workers — runs
    /// are contiguous because apriori-generated arenas are sorted. An arena
    /// with `candidate_len() == 0` has no prefixes and yields no runs.
    pub fn prefix_runs(&self) -> Vec<(usize, usize)> {
        let n = self.num_candidates();
        let mut runs: Vec<(usize, usize)> = Vec::new();
        if self.len == 0 || n == 0 {
            return runs;
        }
        let plen = self.len - 1;
        let mut start = 0usize;
        while start < n {
            let prefix = &self.get(start)[..plen];
            let mut end = start + 1;
            while end < n && &self.get(end)[..plen] == prefix {
                end += 1;
            }
            debug_assert!(start < end && end <= n, "runs are nonempty and in range");
            runs.push((start, end));
            start = end;
        }
        debug_assert!(
            runs.first().is_some_and(|r| r.0 == 0)
                && runs.last().is_some_and(|r| r.1 == n)
                && runs.windows(2).all(|w| w[0].1 == w[1].0),
            "runs tile the arena contiguously"
        );
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena(rows: &[&[LitemsetId]]) -> CandidateArena {
        CandidateArena::from_rows(rows.first().map_or(0, |r| r.len()), rows.iter().copied())
    }

    #[test]
    fn push_get_iter_roundtrip() {
        let a = arena(&[&[0, 1], &[0, 2], &[3, 1]]);
        assert_eq!(a.num_candidates(), 3);
        assert_eq!(a.candidate_len(), 2);
        assert_eq!(a.get(1), &[0, 2]);
        let rows: Vec<&[LitemsetId]> = a.iter().collect();
        assert_eq!(rows, vec![&[0, 1][..], &[0, 2], &[3, 1]]);
        assert_eq!(a.bytes(), 24);
    }

    #[test]
    fn empty_arenas() {
        let a = CandidateArena::default();
        assert!(a.is_empty());
        assert_eq!(a.num_candidates(), 0);
        assert_eq!(a.iter().count(), 0);
        let b = CandidateArena::with_capacity(3, 8);
        assert!(b.is_empty());
        assert_eq!(b.candidate_len(), 3);
        assert_eq!(b.iter().count(), 0);
    }

    #[test]
    fn binary_search_over_sorted_rows() {
        let a = arena(&[&[0, 1, 1], &[0, 2, 0], &[1, 0, 0], &[1, 0, 2]]);
        assert!(a.is_sorted_unique());
        assert_eq!(a.binary_search(&[0, 2, 0]), Ok(1));
        assert_eq!(a.binary_search(&[1, 0, 2]), Ok(3));
        assert_eq!(a.binary_search(&[0, 0, 0]), Err(0));
        assert_eq!(a.binary_search(&[1, 0, 1]), Err(3));
        assert_eq!(a.binary_search(&[9, 9, 9]), Err(4));
    }

    #[test]
    fn prefix_runs_tile_the_arena() {
        let a = arena(&[&[0, 1], &[0, 2], &[1, 0], &[1, 5], &[2, 2]]);
        assert_eq!(a.prefix_runs(), vec![(0, 2), (2, 4), (4, 5)]);
        // Length-1 candidates share the empty prefix: one run.
        let singles = arena(&[&[0], &[3], &[7]]);
        assert_eq!(singles.prefix_runs(), vec![(0, 3)]);
        assert!(CandidateArena::default().prefix_runs().is_empty());
        assert!(CandidateArena::new(2).prefix_runs().is_empty());
    }

    #[test]
    fn sortedness_check() {
        let unsorted = arena(&[&[1, 0], &[0, 1]]);
        assert!(!unsorted.is_sorted_unique());
        let dup = arena(&[&[0, 1], &[0, 1]]);
        assert!(!dup.is_sorted_unique());
    }
}
