//! **E4 — scale-up with transactions per customer** (the paper's
//! "Scale-up: Transactions per customer" figure).
//!
//! `|C|` sweeps {10, 20, 30, 40, 50} with the other shape parameters fixed
//! (T2.5-S4-I1.25) at minsup 1%. Longer customer histories mean more work
//! per containment test, so times grow somewhat super-linearly in `|C|` —
//! the paper reports the same gentle curve upward.

use seqpat_bench::harness::{measure, paper_algorithms};
use seqpat_bench::table::fmt_secs;
use seqpat_bench::{Args, Table};
use seqpat_datagen::{generate, GenParams};

fn main() {
    let args = Args::parse();
    let cs: &[f64] = if args.quick {
        &[10.0, 20.0]
    } else {
        &[10.0, 20.0, 30.0, 40.0, 50.0]
    };
    let minsup = 0.01;

    println!(
        "E4: scale-up with |C| (|D| = {}, minsup 1%)\n",
        args.customers
    );
    let mut table = Table::new(&["|C|", "algorithm", "time s", "relative"]);
    let mut rows = Vec::new();
    let mut baselines: Vec<f64> = Vec::new();
    for (i, &c) in cs.iter().enumerate() {
        let params = GenParams::shape(c, 2.5, 4.0, 1.25).customers(args.customers);
        let db = generate(&params, args.seed);
        for (ai, algorithm) in paper_algorithms().into_iter().enumerate() {
            let m = measure(&db, &params.label(), minsup, algorithm);
            if i == 0 {
                baselines.push(m.seconds.max(1e-9));
            }
            let relative = m.seconds / baselines[ai];
            table.row(vec![
                format!("{c:.0}"),
                m.algorithm.clone(),
                fmt_secs(m.seconds),
                format!("{relative:.2}"),
            ]);
            rows.push(format!(
                "{},{},{:.6},{:.4}",
                c, m.algorithm, m.seconds, relative
            ));
        }
    }
    table.print();
    let path = args
        .write_csv(
            "e4_scaleup_ctrans",
            "avg_transactions,algorithm,seconds,relative",
            &rows,
        )
        .expect("write CSV");
    println!("\nwrote {}", path.display());
}
