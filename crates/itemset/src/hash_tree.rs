//! The candidate hash tree of Apriori (VLDB 1994 §2.1.2).
//!
//! Candidates are stored in a tree whose interior nodes hash on the item at
//! the node's depth; leaves hold candidate indices. To find all candidates
//! contained in a transaction `t = (t₁ … tₘ)` (sorted), the tree is walked
//! from the root: at an interior node of depth `d` reached by hashing item
//! `tᵢ`, every later item `tⱼ (j > i)` is hashed to pick the next child;
//! at a leaf, each stored candidate is verified with a subset test. A
//! candidate can be reached along several paths, so callers deduplicate with
//! a visit stamp (see [`VisitStamps`]).

use crate::cast::{id32, idx};
use crate::Item;

/// Hash tree over a fixed candidate set (all candidates have equal length).
#[derive(Debug)]
pub struct HashTree {
    root: Node,
    fanout: usize,
    candidate_len: usize,
    len: usize,
}

#[derive(Debug)]
enum Node {
    /// Candidate indices into the external candidate table.
    Leaf(Vec<u32>),
    Interior(Vec<Node>),
}

impl HashTree {
    /// Builds a tree over `candidates`; all must have identical length ≥ 1.
    ///
    /// `fanout` is the interior branching factor, `leaf_capacity` the number
    /// of candidates a leaf holds before splitting (leaves at maximum depth
    /// never split and may exceed it).
    pub fn build(candidates: &[Vec<Item>], fanout: usize, leaf_capacity: usize) -> Self {
        assert!(fanout >= 2, "fanout must be at least 2");
        assert!(leaf_capacity >= 1, "leaf capacity must be at least 1");
        let candidate_len = candidates.first().map_or(0, |c| c.len());
        assert!(
            candidates.iter().all(|c| c.len() == candidate_len),
            "all candidates in one tree must have equal length"
        );
        let mut tree = Self {
            root: Node::Leaf(Vec::new()),
            fanout,
            candidate_len,
            len: candidates.len(),
        };
        for (i, cand) in candidates.iter().enumerate() {
            // seqpat-lint: allow(no-alloc-in-hot-loop) tree construction allocates per split; the probe path is allocation-free
            insert(
                &mut tree.root,
                cand,
                id32(i),
                0,
                fanout,
                leaf_capacity,
                candidates,
            );
        }
        tree
    }

    /// Number of candidates stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Invokes `on_match` for every candidate index whose itemset is a
    /// subset of the (sorted) `transaction`. May report an index more than
    /// once; `candidates` must be the slice the tree was built from.
    pub fn for_each_contained(
        &self,
        transaction: &[Item],
        candidates: &[Vec<Item>],
        on_match: &mut impl FnMut(u32),
    ) {
        if self.len == 0 || transaction.len() < self.candidate_len {
            return;
        }
        walk(
            &self.root,
            transaction,
            transaction,
            candidates,
            self.fanout,
            on_match,
        );
    }
}

fn bucket(item: Item, fanout: usize) -> usize {
    // Multiplicative scrambling: sequential item ids (the common case from
    // the generator) otherwise land in sequential buckets and skew leaves.
    idx(item.wrapping_mul(2654435761)) % fanout
}

#[allow(clippy::too_many_arguments)]
fn insert(
    node: &mut Node,
    cand: &[Item],
    slot: u32,
    depth: usize,
    fanout: usize,
    leaf_capacity: usize,
    candidates: &[Vec<Item>],
) {
    debug_assert!(
        depth <= cand.len(),
        "interior nodes only exist above the candidate length, so the depth cursor stays in range"
    );
    match node {
        Node::Interior(children) => {
            let b = bucket(cand[depth], fanout);
            insert(
                &mut children[b],
                cand,
                slot,
                depth + 1,
                fanout,
                leaf_capacity,
                candidates,
            );
        }
        Node::Leaf(ids) => {
            ids.push(slot);
            // Split when over capacity, unless we already hash on the last
            // item position (deeper hashing has nothing left to discriminate).
            if ids.len() > leaf_capacity && depth < cand.len() {
                let old = std::mem::take(ids);
                // seqpat-lint: allow(no-alloc-in-hot-loop) Vec::new() is capacity-0 (no heap allocation) and the split path is cold — it runs once per overflowing leaf, not per insert
                let mut children: Vec<Node> = (0..fanout).map(|_| Node::Leaf(Vec::new())).collect();
                for id in old {
                    let b = bucket(candidates[idx(id)][depth], fanout);
                    // Direct push: children are fresh leaves; re-splitting is
                    // handled by subsequent inserts if they overflow again.
                    match &mut children[b] {
                        Node::Leaf(v) => v.push(id),
                        // seqpat-lint: allow(no-panic-in-kernels) every child was created as a leaf above and nothing re-splits them before this loop ends
                        Node::Interior(_) => unreachable!(),
                    }
                }
                *node = Node::Interior(children);
            }
        }
    }
}

fn walk(
    node: &Node,
    full_transaction: &[Item],
    remaining: &[Item],
    candidates: &[Vec<Item>],
    fanout: usize,
    on_match: &mut impl FnMut(u32),
) {
    debug_assert!(
        remaining.len() <= full_transaction.len(),
        "`remaining` is a suffix of the transaction being walked"
    );
    match node {
        Node::Leaf(ids) => {
            // Verify against the FULL transaction: hash collisions mean the
            // descended prefix is not guaranteed to correspond to actual
            // matching items. Completeness holds because for any contained
            // candidate the walk also descends along the buckets of the
            // candidate's own items.
            for &id in ids {
                if is_subset(&candidates[idx(id)], full_transaction) {
                    on_match(id);
                }
            }
        }
        Node::Interior(children) => {
            for (i, &item) in remaining.iter().enumerate() {
                let child = &children[bucket(item, fanout)];
                walk(
                    child,
                    full_transaction,
                    &remaining[i + 1..],
                    candidates,
                    fanout,
                    on_match,
                );
            }
        }
    }
}

/// Subset test on sorted, duplicate-free slices.
fn is_subset(cand: &[Item], trans: &[Item]) -> bool {
    debug_assert!(
        cand.windows(2).all(|w| w[0] < w[1]) && trans.windows(2).all(|w| w[0] < w[1]),
        "both slices are sorted and duplicate-free"
    );
    let mut ti = 0;
    'outer: for &c in cand {
        while ti < trans.len() {
            match trans[ti].cmp(&c) {
                std::cmp::Ordering::Less => ti += 1,
                std::cmp::Ordering::Equal => {
                    ti += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Per-candidate visit stamps for deduplicating hash-tree matches.
///
/// The tree can report a candidate several times for one transaction (one
/// per path). Counting code stamps each candidate with an epoch — one epoch
/// per (customer, pass) — so each candidate is processed once per epoch
/// without clearing a bitmap between customers.
#[derive(Debug)]
pub struct VisitStamps {
    stamps: Vec<u64>,
    epoch: u64,
}

impl VisitStamps {
    /// Creates stamps for `n` candidates, all unvisited.
    pub fn new(n: usize) -> Self {
        Self {
            stamps: vec![0; n],
            epoch: 0,
        }
    }

    /// Starts a new epoch; all candidates become unvisited.
    pub fn next_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Marks `cand` visited in the current epoch; returns `true` iff this is
    /// the first visit this epoch.
    pub fn first_visit(&mut self, cand: u32) -> bool {
        debug_assert!(idx(cand) < self.stamps.len(), "one stamp per candidate");
        let slot = &mut self.stamps[idx(cand)];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matches(tree: &HashTree, cands: &[Vec<Item>], trans: &[Item]) -> Vec<u32> {
        let mut seen = VisitStamps::new(cands.len());
        seen.next_epoch();
        let mut out = Vec::new();
        tree.for_each_contained(trans, cands, &mut |id| {
            if seen.first_visit(id) {
                out.push(id);
            }
        });
        out.sort_unstable();
        out
    }

    #[test]
    fn finds_exactly_the_contained_candidates() {
        let cands: Vec<Vec<Item>> =
            vec![vec![1, 2], vec![1, 3], vec![2, 3], vec![2, 4], vec![3, 4]];
        let tree = HashTree::build(&cands, 4, 2);
        assert_eq!(matches(&tree, &cands, &[1, 2, 3]), vec![0, 1, 2]);
        assert_eq!(matches(&tree, &cands, &[2, 4]), vec![3]);
        assert_eq!(matches(&tree, &cands, &[5, 6]), Vec::<u32>::new());
    }

    #[test]
    fn transaction_shorter_than_candidates_matches_nothing() {
        let cands = vec![vec![1, 2, 3]];
        let tree = HashTree::build(&cands, 4, 2);
        assert!(matches(&tree, &cands, &[1, 2]).is_empty());
    }

    #[test]
    fn deep_split_still_correct() {
        // Tiny capacity forces maximal splitting.
        let cands: Vec<Vec<Item>> = (0..30u32).map(|i| vec![i, i + 1, i + 2]).collect();
        let tree = HashTree::build(&cands, 2, 1);
        for (i, c) in cands.iter().enumerate() {
            assert_eq!(matches(&tree, &cands, c), vec![i as u32]);
        }
        // A transaction covering several candidates.
        let trans: Vec<Item> = (0..10).collect();
        let got = matches(&tree, &cands, &trans);
        let expect: Vec<u32> = (0..8).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn exhaustive_agreement_with_linear_scan() {
        // Pseudo-random small universe, compare tree vs. brute force.
        let mut cands = Vec::new();
        let mut x: u32 = 7;
        for _ in 0..60 {
            x = x.wrapping_mul(48271) % 0x7fffffff;
            let a = x % 12;
            let b = a + 1 + (x >> 8) % 6;
            let c = b + 1 + (x >> 16) % 6;
            cands.push(vec![a, b, c]);
        }
        cands.sort();
        cands.dedup();
        let tree = HashTree::build(&cands, 4, 3);
        for t in 0..40u32 {
            let trans: Vec<Item> = (0..24)
                .filter(|i| (t.wrapping_mul(31) + i) % 3 != 0)
                .collect();
            let brute: Vec<u32> = cands
                .iter()
                .enumerate()
                .filter(|(_, c)| is_subset(c, &trans))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(matches(&tree, &cands, &trans), brute);
        }
    }

    #[test]
    fn empty_tree_is_inert() {
        let cands: Vec<Vec<Item>> = Vec::new();
        let tree = HashTree::build(&cands, 4, 2);
        assert!(tree.is_empty());
        assert!(matches(&tree, &cands, &[1, 2, 3]).is_empty());
    }

    #[test]
    fn visit_stamps_reset_per_epoch() {
        let mut s = VisitStamps::new(3);
        s.next_epoch();
        assert!(s.first_visit(1));
        assert!(!s.first_visit(1));
        s.next_epoch();
        assert!(s.first_visit(1));
    }
}
