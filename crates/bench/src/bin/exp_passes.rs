//! **E5 — per-pass candidate and large-sequence counts** (the paper's §5.2
//! analysis of *why* AprioriSome wins: it skips counting passes whose
//! candidates are mostly non-maximal).
//!
//! For one dataset/threshold, prints each algorithm's pass log: length,
//! direction, candidates generated, candidates actually counted, pruned by
//! containment, and large sequences found.

use seqpat_bench::harness::paper_algorithms;
use seqpat_bench::{Args, Table};
use seqpat_core::{MinSupport, Miner, MinerConfig};
use seqpat_datagen::{generate, GenParams};

fn main() {
    let args = Args::parse();
    let minsup = if args.quick { 0.01 } else { 0.005 };
    let dataset = "C10-T2.5-S4-I1.25";
    let params = GenParams::paper_dataset(dataset)
        .expect("paper dataset")
        .customers(args.customers);
    let db = generate(&params, args.seed);

    println!(
        "E5: per-pass analysis on {dataset} (|D| = {}, minsup {:.2}%)\n",
        args.customers,
        minsup * 100.0
    );
    let mut rows = Vec::new();
    for algorithm in paper_algorithms() {
        let config = MinerConfig::new(MinSupport::Fraction(minsup)).algorithm(algorithm);
        let result = Miner::new(config).mine(&db);
        println!("{algorithm}:");
        let mut table = Table::new(&["k", "direction", "generated", "counted", "pruned", "large"]);
        for pass in &result.stats.sequence_passes {
            table.row(vec![
                pass.k.to_string(),
                if pass.backward { "backward" } else { "forward" }.to_string(),
                pass.generated.to_string(),
                pass.counted.to_string(),
                pass.pruned_by_containment.to_string(),
                pass.large.to_string(),
            ]);
            rows.push(format!(
                "{},{},{},{},{},{},{}",
                algorithm,
                pass.k,
                if pass.backward { "backward" } else { "forward" },
                pass.generated,
                pass.counted,
                pass.pruned_by_containment,
                pass.large
            ));
        }
        table.print();
        println!(
            "totals: generated {}, counted {}, containment tests {}, answer {}\n",
            result.stats.candidates_generated,
            result.stats.candidates_counted,
            result.stats.containment_tests,
            result.patterns.len()
        );
    }
    let path = args
        .write_csv(
            "e5_passes",
            "algorithm,k,direction,generated,counted,pruned,large",
            &rows,
        )
        .expect("write CSV");
    println!("wrote {}", path.display());
}
